"""Static analysis and runtime invariant checking for the reproduction.

Every number this repository reports — write-amplification ratios,
crossover points, byte-identical traces — rests on two properties that
nothing else enforces mechanically:

* **Determinism** — simulated results must depend only on seeds and
  code, never on wall-clock time, unseeded randomness, hash/set
  iteration order, or real host I/O sneaking into a simulated path.
* **Engine invariants** — LeanStore-style latching (no page access
  without the frame latch) and write-ahead logging (no data-page
  write-back before its covering WAL record is durable).

Three prongs enforce them:

* :mod:`repro.analysis.lint` — an AST pass over the source tree with
  pluggable rules (``RPR001``…), run as ``python -m repro lint``;
* :mod:`repro.analysis.sanitizer` — an opt-in TSan-style runtime
  checker attached to a :class:`~repro.sim.cost.CostModel` via the
  nullable ``model.san`` hook (mirroring ``model.obs``), run as
  ``python -m repro sanitize``;
* :mod:`repro.analysis.race` — a vector-clock happens-before race
  detector over the event loop (``loop.race`` / ``model.race``), plus
  the seeded schedule-space explorer in :mod:`repro.analysis.explorer`,
  run as ``python -m repro race``.

See ``docs/static-analysis.md`` for the rule catalogue, the
sanitizer's invariant classes, and the HB edge catalogue.
"""

from repro.analysis.race import (
    RaceDetector,
    RaceReport,
    RaceScope,
    RaceViolation,
    attach_race_detector,
)
from repro.analysis.sanitizer import (
    LatchCycleViolation,
    LatchViolation,
    Sanitizer,
    SanitizerViolation,
    WalOrderViolation,
    attach_sanitizer,
)

__all__ = [
    "LatchCycleViolation",
    "LatchViolation",
    "RaceDetector",
    "RaceReport",
    "RaceScope",
    "RaceViolation",
    "Sanitizer",
    "SanitizerViolation",
    "WalOrderViolation",
    "attach_race_detector",
    "attach_sanitizer",
]
