"""Happens-before race detection for the discrete-event engine.

PR 7 replaced the analytic worker model with real coroutine workers on
an :class:`~repro.sched.loop.EventLoop`, which means the reproduction
now has genuine interleavings — and the latch/WAL sanitizer
(:mod:`repro.analysis.sanitizer`), which checks *per-page* invariants,
cannot see cross-coroutine ordering bugs.  This module is the third leg
of the verification stack: a vector-clock happens-before detector in
the FastTrack tradition, attached through the same nullable-hook
pattern as ``model.obs`` / ``model.san``.

**Tasks.**  Every atomic execution block belongs to a task: each worker
coroutine is one task, the pre-run setup context is ``main``, and all
``call`` events (arrival callbacks, deferred dispatches) run as the
single ``dispatcher`` task — the discrete-event analogue of "loop
callbacks run on the loop thread, serialized".

**Happens-before edges** (the catalogue, also in
``docs/static-analysis.md``):

1. *Program order* — blocks of one task are totally ordered.
2. *Event dispatch* — scheduling an event (``call_at``, ``spawn``, a
   resume pushed by :class:`~repro.sched.loop.Delay`/``Io``/``Take``
   handling) snapshots the scheduler's clock; the fired event joins it.
3. *Queue hand-off* — ``put`` → ``Take`` of the same item, whether
   handed to a parked worker or buffered.
4. *Lock transfer* — ``Release`` → next ``Acquire`` of the same
   :class:`~repro.sched.loop.Resource` (FIFO waiters).
5. *FIFO service* — an ``Io`` completion observes every earlier
   submitter's state *at its submit point* (service periods on one
   resource never overlap).  Note this does **not** order the blocks
   that run after two completions — that is what locks are for.
6. *Quiescence* — a fully drained loop happens-before whatever the
   caller does next (post-run digests, report formatting).

**Locations** are small tuples, e.g. ``("shard0", "frame", 17)``,
``("shard1", "wal", "append")``, ``("admission", "bucket", 3)``.  The
instrumented layers — buffer frames, the WAL writer's append position,
admission token buckets, plus anything a test reports explicitly —
call :meth:`RaceDetector.on_read` / :meth:`on_write` through a
:class:`RaceScope` bound to ``model.race``.  A write/write or
read/write pair on one location with no happens-before path between
them is reported as a :class:`RaceReport`.

Usage::

    det = attach_race_detector(loop)            # mode="collect"
    store.model.race = det.scope("shard0")      # engine-state accesses
    ... run the workload ...
    print(det.format_summary())

``mode="raise"`` throws :class:`RaceViolation` on the first race
(tests); ``mode="collect"`` records them all (the explorer and CI).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class RaceViolation(Exception):
    """An unsynchronized conflicting access pair was detected."""


def clock_leq(a: dict, b: dict) -> bool:
    """Component-wise ``a <= b`` — i.e. ``a`` happens-before-or-equals
    ``b``."""
    return all(v <= b.get(k, 0) for k, v in a.items())


def _join(into: dict, other: dict) -> None:
    for k, v in other.items():
        if v > into.get(k, 0):
            into[k] = v


class _Task:
    """One logical thread of execution with its vector clock."""

    __slots__ = ("name", "clock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.clock: dict = {name: 1}

    def tick(self) -> None:
        self.clock[self.name] += 1


@dataclass(frozen=True)
class RaceReport:
    """One conflicting access pair with no happens-before path."""

    location: tuple
    kind: str          # "write/write", "read/write", or "write/read"
    earlier_task: str
    later_task: str
    at_ns: int | None

    @property
    def location_str(self) -> str:
        return ".".join(str(part) for part in self.location)

    def format(self) -> str:
        when = "" if self.at_ns is None else f" at {self.at_ns} ns"
        return (f"{self.kind} race on {self.location_str}: "
                f"{self.earlier_task} and {self.later_task} are "
                f"unordered{when}")

    def to_dict(self) -> dict:
        return {
            "location": self.location_str,
            "kind": self.kind,
            "earlier_task": self.earlier_task,
            "later_task": self.later_task,
            "at_ns": self.at_ns,
        }


@dataclass
class RaceStats:
    """Hook-fire counters — nonzero counts prove instrumentation ran."""

    reads: int = 0
    writes: int = 0
    lock_acquires: int = 0
    lock_releases: int = 0
    queue_handoffs: int = 0
    resource_admits: int = 0
    events: int = 0
    races: int = 0

    def to_dict(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "lock_acquires": self.lock_acquires,
            "lock_releases": self.lock_releases,
            "queue_handoffs": self.queue_handoffs,
            "resource_admits": self.resource_admits,
            "events": self.events,
            "races": self.races,
        }


class _Location:
    """Per-location access history: last write plus per-task read clocks."""

    __slots__ = ("write_task", "write_clock", "reads")

    def __init__(self) -> None:
        self.write_task: str | None = None
        self.write_clock: dict | None = None
        self.reads: dict[str, dict] = {}


class RaceScope:
    """A prefix-binding proxy installed as ``model.race``.

    Several engines (one per shard) share one detector; each reports
    its accesses under its own prefix so ``("frame", 17)`` on shard 0
    and shard 1 are distinct locations.
    """

    __slots__ = ("detector", "prefix")

    def __init__(self, detector: "RaceDetector", prefix: str) -> None:
        self.detector = detector
        self.prefix = prefix

    def on_read(self, location: tuple) -> None:
        self.detector.on_read((self.prefix, *location))

    def on_write(self, location: tuple) -> None:
        self.detector.on_write((self.prefix, *location))


class RaceDetector:
    """Vector-clock happens-before checker over event-loop executions.

    ``mode="raise"`` throws on the first race; ``mode="collect"``
    records every race in :attr:`races` (what the explorer and the CI
    gate use).  All state is keyed by deterministic task names, so the
    report stream is itself replayable.
    """

    def __init__(self, mode: str = "collect") -> None:
        if mode not in ("raise", "collect"):
            raise ValueError(f"unknown race detector mode {mode!r}")
        self.mode = mode
        self.stats = RaceStats()
        self.races: list[RaceReport] = []
        #: Virtual-time source for report timestamps (set by
        #: :func:`attach_race_detector` to the loop's clock).
        self.now_fn = None
        self._main = _Task("main")
        self._dispatcher = _Task("dispatcher")
        self._current = self._main
        #: id(worker) -> task; names assigned in first-fire order (the
        #: loop is deterministic, so names are too) unless registered.
        self._worker_tasks: dict[int, _Task] = {}
        self._registered: dict[int, str] = {}
        self._locations: dict[tuple, _Location] = {}

    # ------------------------------------------------------------------
    # task plumbing (called by the event loop)

    def register(self, worker, name: str) -> None:
        """Give ``worker``'s task a stable human-readable name."""
        self._registered[id(worker)] = name

    def _task_for(self, worker) -> _Task:
        task = self._worker_tasks.get(id(worker))
        if task is None:
            name = self._registered.get(
                id(worker), f"task{len(self._worker_tasks)}")
            task = _Task(name)
            self._worker_tasks[id(worker)] = task
        return task

    def snapshot(self) -> dict:
        """The current block's clock, to ride along a scheduled event."""
        return dict(self._current.clock)

    def on_fire(self, hb: dict | None, kind: str, payload) -> None:
        """An event fires: switch context and join the dispatch edge."""
        self.stats.events += 1
        if kind == "call":
            task = self._dispatcher
        else:
            task = self._task_for(payload[0])
        if hb is not None:
            _join(task.clock, hb)
        task.tick()
        self._current = task

    def on_quiesce(self) -> None:
        """Drained loop: join every task into ``main`` and resume there."""
        for task in self._worker_tasks.values():
            _join(self._main.clock, task.clock)
        _join(self._main.clock, self._dispatcher.clock)
        self._main.tick()
        self._current = self._main

    # ------------------------------------------------------------------
    # synchronization edges

    def on_lock_acquire(self, resource, worker=None) -> None:
        self.stats.lock_acquires += 1
        task = self._current if worker is None else self._task_for(worker)
        if resource.hb_clock is not None:
            _join(task.clock, resource.hb_clock)

    def on_lock_release(self, resource) -> None:
        self.stats.lock_releases += 1
        resource.hb_clock = dict(self._current.clock)

    def on_resource_admit(self, resource) -> None:
        self.stats.resource_admits += 1
        if resource.hb_clock is None:
            resource.hb_clock = {}
        _join(self._current.clock, resource.hb_clock)
        _join(resource.hb_clock, self._current.clock)

    def on_queue_take(self, hb: dict) -> None:
        self.stats.queue_handoffs += 1
        _join(self._current.clock, hb)

    # ------------------------------------------------------------------
    # memory accesses

    def _now(self) -> int | None:
        return None if self.now_fn is None else int(self.now_fn())

    def _report(self, location: tuple, kind: str, earlier: str) -> None:
        self.stats.races += 1
        report = RaceReport(location=location, kind=kind,
                            earlier_task=earlier,
                            later_task=self._current.name,
                            at_ns=self._now())
        if self.mode == "raise":
            raise RaceViolation(report.format())
        self.races.append(report)

    def on_write(self, location: tuple) -> None:
        self.stats.writes += 1
        loc = self._locations.setdefault(location, _Location())
        task = self._current
        clock = task.clock
        if (loc.write_task is not None and loc.write_task != task.name
                and not clock_leq(loc.write_clock, clock)):
            self._report(location, "write/write", loc.write_task)
        for reader, read_clock in loc.reads.items():
            if reader != task.name and not clock_leq(read_clock, clock):
                self._report(location, "read/write", reader)
        loc.write_task = task.name
        loc.write_clock = dict(clock)
        loc.reads.clear()

    def on_read(self, location: tuple) -> None:
        self.stats.reads += 1
        loc = self._locations.setdefault(location, _Location())
        task = self._current
        if (loc.write_task is not None and loc.write_task != task.name
                and not clock_leq(loc.write_clock, task.clock)):
            self._report(location, "write/read", loc.write_task)
        loc.reads[task.name] = dict(task.clock)

    # ------------------------------------------------------------------
    # scoping and reporting

    def scope(self, prefix: str) -> RaceScope:
        """A proxy that prefixes every location with ``prefix`` — bind
        one per shard engine as ``model.race``."""
        return RaceScope(self, prefix)

    @property
    def current_task_name(self) -> str:
        return self._current.name

    def format_summary(self) -> str:
        stats = self.stats
        lines = [
            "race detector summary",
            f"  accesses         {stats.reads} reads, {stats.writes} "
            f"writes over {len(self._locations)} locations",
            f"  sync edges       {stats.lock_acquires} lock acquires, "
            f"{stats.lock_releases} releases, {stats.queue_handoffs} "
            f"queue hand-offs, {stats.resource_admits} admits",
            f"  events observed  {stats.events}",
            f"  races            {stats.races}",
        ]
        for report in self.races:
            lines.append(f"    {report.format()}")
        return "\n".join(lines)


def attach_race_detector(loop, mode: str = "collect") -> RaceDetector:
    """Create a :class:`RaceDetector` and attach it to ``loop.race``.

    Attach before scheduling any events: entries pushed earlier carry no
    happens-before snapshot and fall back to no-edge (conservative —
    they may produce false races, never missed ones).
    """
    detector = RaceDetector(mode=mode)
    detector.now_fn = lambda: loop.now_ns
    loop.race = detector
    return detector
