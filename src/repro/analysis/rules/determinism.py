"""Determinism rules: wall clocks, unseeded randomness, set ordering.

These rules guard the property the whole reproduction is built on: a
run is a pure function of (code, seeds).  Time comes from
:class:`~repro.sim.clock.VirtualClock`, randomness from explicitly
seeded ``random.Random`` instances, and anything that reaches output
must have a defined order.
"""

from __future__ import annotations

import ast

from repro.analysis.lint import Rule, dotted_name

#: ``time`` module entry points that read (or pace by) the host clock.
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.sleep",
})

#: ``(penultimate, last)`` dotted-name suffixes of datetime factories,
#: matching both ``datetime.now()`` and ``datetime.datetime.now()``.
_WALL_CLOCK_SUFFIXES = frozenset({
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
})

#: Module-level functions of ``random`` that draw from the hidden
#: process-global generator.  The distribution samplers the arrival
#: generators lean on (``expovariate`` for Poisson gaps, the variate
#: family for heavy-tailed service times) are listed explicitly: an
#: unseeded inter-arrival draw silently de-determinizes a whole
#: ``repro/sched`` traffic schedule.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randrange", "randint", "randbytes", "getrandbits",
    "uniform", "gauss", "normalvariate", "expovariate", "triangular",
    "choice", "choices", "sample", "shuffle", "betavariate", "seed",
    "lognormvariate", "paretovariate", "weibullvariate",
    "vonmisesvariate", "gammavariate", "binomialvariate",
})

#: Entropy sources that can never be seeded.
_ENTROPY_CALLS = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
})


class WallClockRule(Rule):
    """RPR001 — wall-clock reads outside the virtual clock.

    Simulated time only moves when a priced operation charges the
    :class:`~repro.sim.clock.VirtualClock`; reading the host clock (or
    sleeping on it) makes results depend on machine speed.  Host-side
    tooling that stamps *finished* results may suppress with a reason.
    """

    rule_id = "RPR001"
    title = "wall-clock call outside sim/clock.py"
    allowed_paths = ("repro/sim/clock.py",)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            parts = tuple(name.split("."))
            if name in _WALL_CLOCK_CALLS or parts[-2:] in _WALL_CLOCK_SUFFIXES:
                self.report(node, f"wall-clock call {name}() — simulated "
                                  f"code must use the VirtualClock")
        self.generic_visit(node)


class UnseededRandomRule(Rule):
    """RPR002 — randomness that does not flow from an explicit seed.

    Module-level ``random.*`` functions share one hidden global
    generator (any import-order change reshuffles every consumer);
    ``random.Random()`` without a seed, ``os.urandom``, ``secrets`` and
    ``uuid.uuid1/uuid4`` are nondeterministic by construction.
    """

    rule_id = "RPR002"
    title = "unseeded or global-state randomness"

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            parts = name.split(".")
            if (len(parts) == 2 and parts[0] == "random"
                    and parts[1] in _GLOBAL_RANDOM_FNS):
                self.report(node, f"{name}() uses the hidden global "
                                  f"generator — use a seeded random.Random")
            elif name == "random.Random" and not node.args and not node.keywords:
                self.report(node, "random.Random() without a seed draws "
                                  "entropy from the host")
            elif name in _ENTROPY_CALLS or parts[0] == "secrets":
                self.report(node, f"{name}() is a host entropy source")
        self.generic_visit(node)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in ("set", "frozenset")
    return False


class SetOrderRule(Rule):
    """RPR003 — iteration order of a bare set escaping into output.

    Sets have no defined iteration order across processes (string
    hashing is randomized unless ``PYTHONHASHSEED`` is pinned).
    Membership tests are fine; iterating a set expression — in a
    ``for``, a comprehension, or an ordering-sensitive sink such as
    ``list()``/``join()`` — leaks that order.  Route through
    ``sorted(...)`` instead.
    """

    rule_id = "RPR003"
    title = "iteration over an unordered set expression"

    _SINKS = frozenset({"list", "tuple", "enumerate", "iter", "next"})

    def _check_iter(self, node: ast.AST) -> None:
        if _is_set_expr(node):
            self.report(node, "iterating a bare set leaks hash order — "
                              "wrap in sorted(...)")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        is_join = isinstance(node.func, ast.Attribute) and \
            node.func.attr == "join"
        if name in self._SINKS or is_join:
            for arg in node.args:
                self._check_iter(arg)
        self.generic_visit(node)
