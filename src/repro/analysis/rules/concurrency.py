"""Concurrency rules for event-loop worker coroutines.

PR 7 gave the reproduction real interleavings: :data:`SimWorker`
generators yield ``Delay``/``Io``/``Take`` commands and run
concurrently on one :class:`~repro.sched.loop.EventLoop`.  These rules
catch, *statically*, the two bug shapes the happens-before detector
(:mod:`repro.analysis.race`) catches at runtime:

* **RPR007** — a worker coroutine mutates state it does not own (a
  ``global``/``nonlocal`` name, or an attribute/subscript reached
  through a name the coroutine never bound) outside an
  ``Acquire``/``Release`` window.  Two instances of that coroutine are
  a write/write race waiting for the schedule that exposes it.
* **RPR008** — a worker yields a suspending command (``Delay`` or
  ``Io``) while holding a lock (between ``yield Acquire(r)`` and
  ``yield Release(r)``) or a pinned frame (between ``fetch_extents``/
  ``pin`` and ``unpin``/``release``).  The critical section then spans
  an arbitrary amount of virtual time — other workers convoy behind
  the lock, and a pinned frame blocks eviction for the whole
  suspension.

Both rules only fire inside *loop coroutines* — generator functions
that yield at least one loop command — so ordinary generators are never
flagged.  The guard window is lexical (a linear scan of the function
body in source order), which matches the straight-line
acquire/work/release shape every worker in this repository uses;
intentional exceptions suppress inline::

    counter["n"] += 1  # repro: allow[RPR007] single-worker loop, no peer
"""

from __future__ import annotations

import ast

from repro.analysis.lint import Rule, dotted_name

#: The event-loop command protocol (repro.sched.loop).
_LOOP_COMMANDS = frozenset({"Delay", "Io", "Take", "Acquire", "Release"})

#: Commands whose yield suspends for simulated time (RPR008 targets).
_SUSPENDING = frozenset({"Delay", "Io"})

#: Attribute calls that pin frames / latch pages.
_PIN_CALLS = frozenset({"fetch_extents", "pin"})

#: Attribute calls that drop the pin again.
_UNPIN_CALLS = frozenset({"unpin", "release"})


def _yielded_command(node: ast.AST) -> str | None:
    """The loop-command class name a ``yield`` expression produces."""
    if not isinstance(node, ast.Yield) or node.value is None:
        return None
    value = node.value
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name is not None:
            tail = name.rsplit(".", 1)[-1]
            if tail in _LOOP_COMMANDS:
                return tail
    return None


def _is_loop_coroutine(func: ast.FunctionDef) -> bool:
    """A generator that yields at least one event-loop command."""
    for node in ast.walk(func):
        if isinstance(node, ast.FunctionDef) and node is not func:
            continue
        if _yielded_command(node) is not None:
            return True
    return False


def _bound_names(func: ast.FunctionDef) -> set[str]:
    """Names the coroutine itself binds: parameters and assignments."""
    args = func.args
    bound = {a.arg for a in (*args.posonlyargs, *args.args,
                             *args.kwonlyargs)}
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    def add_binding(target: ast.AST) -> None:
        # Only plain names bind; writing a[k] or a.b mutates an object
        # bound elsewhere and must NOT make its root look local.
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                add_binding(element)
        elif isinstance(target, ast.Starred):
            add_binding(target.value)

    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                add_binding(target)
        elif isinstance(node, (ast.For, ast.comprehension)):
            add_binding(node.target)
        elif isinstance(node, ast.withitem) and node.optional_vars:
            add_binding(node.optional_vars)
        elif isinstance(node, ast.NamedExpr):
            bound.add(node.target.id)
    return bound


def _declared_shared(func: ast.FunctionDef) -> set[str]:
    """Names the coroutine explicitly declares global/nonlocal."""
    shared: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            shared.update(node.names)
    return shared


def _root_name(node: ast.AST) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _LexicalScan:
    """In-source-order walk of a coroutine body threading held state."""

    def __init__(self) -> None:
        self.locks_held = 0
        self.pins_held = 0

    def scan(self, stmts: list) -> None:
        for stmt in stmts:
            self.enter_statement(stmt)
            for child_body in self._bodies(stmt):
                self.scan(child_body)

    @staticmethod
    def _bodies(stmt: ast.stmt) -> list:
        bodies = []
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if isinstance(block, list) and block \
                    and isinstance(block[0], ast.stmt):
                bodies.append(block)
        for handler in getattr(stmt, "handlers", ()):
            bodies.append(handler.body)
        return bodies

    def enter_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.FunctionDef):
            return  # nested functions are their own scan
        for node in ast.walk(stmt):
            command = _yielded_command(node)
            if command == "Acquire":
                self.locks_held += 1
            elif command == "Release":
                self.locks_held = max(0, self.locks_held - 1)
            elif command in _SUSPENDING:
                self.on_suspend(node, command)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute):
                if node.func.attr in _PIN_CALLS \
                        and not self._pin_disabled(node):
                    self.pins_held += 1
                elif node.func.attr in _UNPIN_CALLS:
                    self.pins_held = max(0, self.pins_held - 1)
        self.on_statement(stmt)

    @staticmethod
    def _pin_disabled(node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg == "pin" and isinstance(kw.value, ast.Constant) \
                    and not kw.value.value:
                return True
        return False

    # Hooks for the rules.
    def on_statement(self, stmt: ast.stmt) -> None:  # pragma: no cover
        pass

    def on_suspend(self, node: ast.AST,
                   command: str) -> None:  # pragma: no cover
        pass


class UnguardedSharedMutationRule(Rule):
    """RPR007 — shared-state mutation outside an Acquire/Release window.

    Inside a loop coroutine, an assignment or augmented assignment to a
    ``global``/``nonlocal`` name — or through an attribute/subscript
    whose root name the coroutine never bound — mutates state another
    instance of the coroutine can reach concurrently.  Unless the
    mutation sits lexically between ``yield Acquire(...)`` and ``yield
    Release(...)``, no happens-before edge orders the two writers.
    """

    rule_id = "RPR007"
    title = "coroutine mutates shared state without a Resource guard"

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if _is_loop_coroutine(node):
            self._scan_coroutine(node)
        self.generic_visit(node)

    def _scan_coroutine(self, func: ast.FunctionDef) -> None:
        rule = self
        bound = _bound_names(func)
        declared = _declared_shared(func)

        class Scan(_LexicalScan):
            def on_statement(self, stmt: ast.stmt) -> None:
                if self.locks_held > 0:
                    return
                if not isinstance(stmt, (ast.Assign, ast.AugAssign,
                                         ast.AnnAssign)):
                    return
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    rule._check_target(stmt, target, bound, declared,
                                       func.name)

        Scan().scan(func.body)

    def _check_target(self, stmt: ast.stmt, target: ast.AST,
                      bound: set[str], declared: set[str],
                      func_name: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(stmt, element, bound, declared,
                                   func_name)
            return
        if isinstance(target, ast.Name):
            if target.id in declared:
                self.report(stmt, f"coroutine {func_name} writes "
                                  f"global/nonlocal '{target.id}' "
                                  f"without a Resource guard — wrap in "
                                  f"yield Acquire/Release")
            return
        root = _root_name(target)
        if root is not None and root not in bound:
            self.report(stmt, f"coroutine {func_name} mutates shared "
                              f"state through '{root}' without a "
                              f"Resource guard — concurrent instances "
                              f"race; wrap in yield Acquire/Release")


class YieldAcrossCriticalSectionRule(Rule):
    """RPR008 — suspension while holding a latch or pinned frame.

    ``yield Delay(...)`` / ``yield Io(...)`` parks the coroutine for
    simulated time.  Doing so between ``yield Acquire`` and ``yield
    Release`` stretches the critical section across the suspension
    (every contender convoys); doing so with a frame still pinned
    blocks eviction of that extent for the whole wait.
    """

    rule_id = "RPR008"
    title = "yield of a suspending command inside a critical section"

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if _is_loop_coroutine(node):
            self._scan_coroutine(node)
        self.generic_visit(node)

    def _scan_coroutine(self, func: ast.FunctionDef) -> None:
        rule = self

        class Scan(_LexicalScan):
            def on_suspend(self, node: ast.AST, command: str) -> None:
                if self.locks_held > 0:
                    rule.report(node, f"yield {command}(...) in "
                                      f"{func.name} while holding a "
                                      f"lock — release before "
                                      f"suspending")
                elif self.pins_held > 0:
                    rule.report(node, f"yield {command}(...) in "
                                      f"{func.name} while frames are "
                                      f"pinned — unpin before "
                                      f"suspending")

        Scan().scan(func.body)
