"""Rule registry for the determinism linter.

Each rule lives in a themed module and registers here.  Adding a rule:
subclass :class:`repro.analysis.lint.Rule`, give it the next free
``RPRxxx`` ID and a one-line ``title``, implement ``visit_*`` methods
that call ``self.report(node, message)``, then append the class to
``ALL_RULES`` and document it in ``docs/static-analysis.md``.
"""

from repro.analysis.rules.concurrency import (
    UnguardedSharedMutationRule,
    YieldAcrossCriticalSectionRule,
)
from repro.analysis.rules.determinism import (
    SetOrderRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.rules.io import (
    HostFileIoRule,
    HostNetExecRule,
    SubstrateBypassRule,
)

#: Every registered rule, in ID order.
ALL_RULES = (
    WallClockRule,
    UnseededRandomRule,
    SetOrderRule,
    HostFileIoRule,
    HostNetExecRule,
    SubstrateBypassRule,
    UnguardedSharedMutationRule,
    YieldAcrossCriticalSectionRule,
)

__all__ = [
    "ALL_RULES",
    "HostFileIoRule",
    "HostNetExecRule",
    "SetOrderRule",
    "SubstrateBypassRule",
    "UnguardedSharedMutationRule",
    "UnseededRandomRule",
    "WallClockRule",
    "YieldAcrossCriticalSectionRule",
]
