"""I/O boundary rules: host filesystem, network/processes, substrate bypass.

The simulation owns its whole world: storage is
:class:`~repro.storage.device.SimulatedNVMe`, the network is
:mod:`repro.net.transport`, and every byte moved is priced by the
:class:`~repro.sim.cost.CostModel`.  Real host I/O inside a simulated
path breaks determinism *and* the cost accounting; poking the device's
raw page store bypasses both the price list and the per-page
protection information.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.lint import Rule, dotted_name

#: ``os`` functions that touch the host filesystem.
_OS_FILE_FNS = frozenset({
    "os.open", "os.remove", "os.unlink", "os.rename", "os.replace",
    "os.mkdir", "os.makedirs", "os.rmdir", "os.removedirs", "os.listdir",
    "os.scandir", "os.stat", "os.truncate", "os.link", "os.symlink",
})

#: Pathlib mutators/readers — ambiguous names (the BLOB API also has a
#: ``read_bytes``), so they are only flagged on a path-like receiver.
_PATHLIB_ATTRS = frozenset({
    "write_text", "read_text", "write_bytes", "read_bytes",
})
_PATH_RECEIVER = re.compile(r"(?i)\b(path|file|dir|folder)\w*\b")

#: Process/network escape hatches.
_EXEC_FNS = frozenset({"os.system", "os.popen", "os.fork", "os.kill"})
_NET_EXEC_MODULES = frozenset({
    "socket", "subprocess", "urllib", "requests", "http",
})

#: Raw device internals: touching these outside the storage substrate
#: and the I/O scheduler bypasses cost charging and
#: protection-information updates.  ``_splice_bytes``/``peek_bytes``
#: are the PMem equivalents of ``_poke``/``peek``: byte splices that
#: skip the persist pricing (cache-line flush + fence) of
#: ``write_bytes``.
_RAW_DEVICE_ATTRS = frozenset({"_pages", "_page_crc"})
_RAW_DEVICE_CALLS = frozenset({
    "_poke", "peek", "_scatter", "_gather", "_splice_bytes", "peek_bytes",
})
#: Receiver names that plausibly hold a device handle.  ``member`` /
#: ``replica`` / ``primary`` cover the replica layer, where every group
#: member owns its own (possibly fault-wrapped) device — reaching into
#: ``member.device._pages`` would bypass both the member's cost model
#: and its fault plan; ``pmem``/``stripe``/``striped`` cover the
#: heterogeneous tiers (PMem WAL/metadata, striped data members);
#: ``lindex`` / ``namespace`` cover the adaptive-indexing layer, whose
#: learned segments and interval numbering sit on the same priced
#: substrate — reaching around them to raw pages skips the probe and
#: retrain charges just like bypassing a device does.
_DEVICE_RECEIVER = re.compile(
    r"\b(device|inner|physical|nvme|member|replica|primary"
    r"|pmem|stripe|striped|lindex|namespace)\w*\b")


class HostFileIoRule(Rule):
    """RPR004 — real filesystem I/O outside the simulated device layer.

    Simulated code persists through :class:`SimulatedNVMe`; host files
    are for finished artifacts only (reports, traces), which belong in
    the CLI/bench boundary and carry an ``allow`` annotation saying so.
    """

    rule_id = "RPR004"
    title = "host filesystem I/O in simulated code"

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name in ("open", "io.open") or name in _OS_FILE_FNS:
            self.report(node, f"{name}() touches the host filesystem — "
                              f"simulated state lives on SimulatedNVMe")
        elif name and (name.startswith("shutil.")
                       or name.startswith("tempfile.")):
            self.report(node, f"{name}() touches the host filesystem")
        elif (isinstance(node.func, ast.Attribute)
              and node.func.attr in _PATHLIB_ATTRS
              and self._receiver_is_path(node.func.value)):
            self.report(node, f".{node.func.attr}() writes/reads a host "
                              f"path")
        self.generic_visit(node)

    @staticmethod
    def _receiver_is_path(node: ast.AST) -> bool:
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - defensive
            return False
        return bool(_PATH_RECEIVER.search(text))

    def _check_import(self, node, names) -> None:
        for name in names:
            if name.split(".")[0] in ("shutil", "tempfile"):
                self.report(node, f"import of host-filesystem module "
                                  f"{name!r}")

    def visit_Import(self, node: ast.Import) -> None:
        self._check_import(node, [a.name for a in node.names])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            self._check_import(node, [node.module])


class HostNetExecRule(Rule):
    """RPR005 — real sockets or subprocesses in simulated code.

    The transport layer (:mod:`repro.net`) simulates its links; real
    network or process escape makes results depend on the host
    environment.  Deliberate host-tooling hops (the CLI delegating to
    pytest) suppress with a reason.
    """

    rule_id = "RPR005"
    title = "host network/subprocess escape"

    def _check_module(self, node, names) -> None:
        for name in names:
            if name.split(".")[0] in _NET_EXEC_MODULES:
                self.report(node, f"import of host I/O module {name!r}")

    def visit_Import(self, node: ast.Import) -> None:
        self._check_module(node, [a.name for a in node.names])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            self._check_module(node, [node.module])

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name:
            root = name.split(".")[0]
            if root in ("socket", "subprocess") and "." in name:
                self.report(node, f"{name}() escapes to the host")
            elif name in _EXEC_FNS or name.startswith("os.exec") \
                    or name.startswith("os.spawn"):
                self.report(node, f"{name}() escapes to the host")
        self.generic_visit(node)


class SubstrateBypassRule(Rule):
    """RPR006 — raw device-state access that bypasses the cost model.

    ``SimulatedNVMe._pages`` / ``_page_crc`` / ``_poke()`` / ``peek()``
    / ``_scatter()`` / ``_gather()`` move bytes without charging I/O
    time or maintaining protection information.  Only the storage
    substrate itself (``repro/storage/``, which implements faults and
    remapping on top of them) and the I/O scheduler (``repro/io/``, the
    submission/completion-queue front end that prices whole batches)
    may use them; everything else goes through ``read``/``write``/
    ``submit`` or an :class:`~repro.io.IoScheduler`.

    Heuristic: flagged only when the receiver expression names a device
    (``device``/``inner``/``physical``/``nvme``), so unrelated
    attributes that happen to share a name don't trip it.
    """

    rule_id = "RPR006"
    title = "raw device access bypassing the cost model"
    allowed_paths = ("repro/storage/", "repro/io/")

    def _receiver_is_device(self, node: ast.AST) -> bool:
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - defensive
            return False
        return bool(_DEVICE_RECEIVER.search(text))

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in _RAW_DEVICE_ATTRS \
                and self._receiver_is_device(node.value):
            self.report(node, f"direct access to device.{node.attr} "
                              f"bypasses cost charging and protection info")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _RAW_DEVICE_CALLS \
                and self._receiver_is_device(node.func.value):
            self.report(node, f".{node.func.attr}() reads/writes pages "
                              f"without charging the cost model")
        self.generic_visit(node)
