"""Seeded schedule-space exploration for the event-loop engine.

A single event-loop run exercises *one* interleaving — the FIFO
tie-break among simultaneous events.  This module is the bounded
DPOR-lite pass the verification stack uses to visit many: it re-runs
one fixed workload under N deterministic perturbations of event
tie-breaking (:class:`~repro.sched.loop.SeededTieBreak` — only heap
*ties* move, so each seed is still perfectly replayable) and checks, on
every explored schedule:

* **Digest invariance** — the final store content must be identical
  across all schedules.  Per-tenant keyspaces are disjoint and each
  tenant's arrivals are strictly increasing, so same-key writes apply
  in arrival order no matter how ties break; a digest mismatch means
  scheduling leaked into data.
* **Race freedom** — the happens-before detector
  (:mod:`repro.analysis.race`) rides along and must find no
  write/write or read/write pair without an HB path.
* **Latch/WAL invariants** — one latch/WAL sanitizer
  (:mod:`repro.analysis.sanitizer`, ``mode="collect"``) is shared
  across all schedules with :meth:`~Sanitizer.reset_run` between them,
  so its latch-order graph cannot grow across schedules.
* **Replication invariants** — the completed writes are replayed *in
  completion order* (which legitimately differs per schedule) into a
  :class:`~repro.replica.ReplicaGroup`, the primary is killed mid
  stream, and after the epoch-fenced failover every acknowledged write
  must still read back byte-exact with the epoch strictly increased.
  Replica state is *excluded* from the cross-schedule digest: its
  timeline depends on completion order by design.

Before exploring, :meth:`ScheduleExplorer.self_check` runs a planted
race as a positive control — a detector that cannot see the bug it
exists for must not certify anything.

``python -m repro race --schedules 100`` drives this and emits a
canonical exploration digest: a hash over every per-schedule outcome,
reproducible across invocations, uploaded as a perf-gate artifact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.analysis.race import RaceViolation, attach_race_detector
from repro.analysis.sanitizer import Sanitizer
from repro.sched.admission import AdmissionController
from repro.sched.arrivals import Job, generate_jobs
from repro.sched.loop import (Acquire, Delay, EventLoop, Release, Resource,
                              SeededTieBreak)
from repro.sched.traffic import TrafficConfig, TrafficSim


def quantize_arrivals(jobs: list, grid_ns: int) -> list:
    """Snap arrival times to a coarse grid to manufacture ties.

    Poisson arrivals land on distinct nanoseconds, which leaves the
    tie-break policy nothing to perturb — every explored schedule would
    be the same schedule.  Snapping each arrival down to a ``grid_ns``
    multiple makes *cross-tenant* simultaneity common (the interesting
    case: those ops contend for workers, shard locks, and device
    queues) while each tenant's own stream is kept strictly increasing
    by bumping collisions to the next grid slot — so same-key writes
    still apply in arrival order and the store digest stays
    interleaving-invariant.
    """
    quantized: list = []
    last_by_tenant: dict[int, int] = {}
    for job in jobs:
        t_ns = (job.arrive_ns // grid_ns) * grid_ns
        prev = last_by_tenant.get(job.tenant)
        if prev is not None and t_ns <= prev:
            t_ns = prev + grid_ns
        last_by_tenant[job.tenant] = t_ns
        quantized.append(Job(tenant=job.tenant, index=job.index,
                             arrive_ns=t_ns, kind=job.kind, key=job.key,
                             payload=job.payload))
    return quantized


@dataclass
class ScheduleOutcome:
    """Everything one explored schedule is judged by."""

    seed: int
    store_digest: str
    completed: int
    races: int
    sanitizer_violations: int
    epoch: int
    acked_writes: int
    lost_acked: int

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "store_digest": self.store_digest,
            "completed": self.completed,
            "races": self.races,
            "sanitizer_violations": self.sanitizer_violations,
            "epoch": self.epoch,
            "acked_writes": self.acked_writes,
            "lost_acked": self.lost_acked,
        }


@dataclass
class ExplorationResult:
    """The verdict over the whole explored schedule space."""

    schedules: int
    base_seed: int
    store_digest: str
    exploration_digest: str
    races: int
    sanitizer_violations: int
    invariant_failures: list = field(default_factory=list)
    outcomes: list = field(default_factory=list)
    race_reports: list = field(default_factory=list)
    sanitizer_overflows: int = 0

    @property
    def ok(self) -> bool:
        return (not self.invariant_failures and self.races == 0
                and self.sanitizer_violations == 0)

    def to_dict(self) -> dict:
        return {
            "schedules": self.schedules,
            "base_seed": self.base_seed,
            "store_digest": self.store_digest,
            "exploration_digest": self.exploration_digest,
            "races": self.races,
            "sanitizer_violations": self.sanitizer_violations,
            "sanitizer_overflows": self.sanitizer_overflows,
            "invariant_failures": list(self.invariant_failures),
            "race_reports": [r.to_dict() for r in self.race_reports],
            "ok": self.ok,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def format_summary(self) -> str:
        lines = [
            f"explored {self.schedules} schedules (base seed "
            f"{self.base_seed})",
            f"  store digest     {self.store_digest[:16]}… "
            f"(invariant across all schedules)"
            if not self.invariant_failures else
            f"  store digest     DIVERGED",
            f"  races            {self.races}",
            f"  sanitizer        {self.sanitizer_violations} violations, "
            f"{self.sanitizer_overflows} order-graph overflows",
            f"  exploration      {self.exploration_digest}",
        ]
        for failure in self.invariant_failures:
            lines.append(f"  FAILED: {failure}")
        for report in self.race_reports:
            lines.append(f"    {report.format()}")
        lines.append("  verdict          "
                     + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def _planted_race_schedule(guarded: bool) -> int:
    """Run the positive-control workload; returns the race count.

    Two coroutines bump one shared counter.  Unguarded, their writes
    are concurrent (no HB path) and the detector must flag them;
    guarded by an :class:`~repro.sched.loop.Resource` lock, the
    release→acquire edge orders them and the schedule must be clean.
    """
    loop = EventLoop()
    detector = attach_race_detector(loop, mode="collect")
    lock = Resource("control.lock")
    shared = {"counter": 0}

    def bump(delay_ns: int):
        yield Delay(delay_ns)
        if guarded:
            yield Acquire(lock)
        detector.on_read(("control", "counter"))
        shared["counter"] += 1
        detector.on_write(("control", "counter"))
        if guarded:
            yield Release(lock)

    loop.spawn(bump(10))
    loop.spawn(bump(10))
    loop.run()
    return detector.stats.races


class ScheduleExplorer:
    """Bounded exploration of tie-break schedules over one workload."""

    def __init__(self, schedules: int = 100, seed: int = 0,
                 tenants: int = 2, per_tenant: int = 24,
                 config: TrafficConfig | None = None,
                 replica_writes: int = 10) -> None:
        if schedules < 1:
            raise ValueError("need at least one schedule")
        self.schedules = schedules
        self.seed = seed
        self.tenants = tenants
        self.config = config or TrafficConfig(
            n_workers=3, n_shards=2, n_keys=8, payload_bytes=256,
            read_ratio=0.5, seed=seed,
            device_bytes=64 << 20, buffer_bytes=8 << 20)
        self.replica_writes = replica_writes
        #: One fixed workload for every schedule: the explored variable
        #: is the interleaving, nothing else.
        self.jobs = quantize_arrivals(generate_jobs(
            tenants=tenants, per_tenant=per_tenant, rate_ops_s=2e5,
            seed=seed, n_keys=self.config.n_keys,
            payload_bytes=self.config.payload_bytes, read_ratio=0.5),
            grid_ns=20_000)
        #: Shared across schedules (reset_run between them) so the
        #: explorer itself exercises the bounded latch-order graph.
        self.sanitizer = Sanitizer(mode="collect")
        #: Order-graph overflows summed over schedules (reset_run
        #: zeroes the per-run counter, so we accumulate here).
        self._overflows = 0

    # ------------------------------------------------------------------

    def self_check(self) -> None:
        """Positive control: the detector must see a planted race."""
        if _planted_race_schedule(guarded=False) == 0:
            raise RaceViolation(
                "self-check failed: planted unguarded race not detected")
        if _planted_race_schedule(guarded=True) != 0:
            raise RaceViolation(
                "self-check failed: lock-guarded control flagged racy")

    def _admission(self) -> AdmissionController:
        # Modest per-tenant quota: most ops admitted, a deterministic
        # few shed, so the offered = admitted + shed accounting is
        # exercised under every schedule.
        return AdmissionController(policy="shed",
                                   rate_tokens_s=150_000.0, burst=12.0)

    def _store_digest(self, sim: TrafficSim) -> str:
        """Canonical hash of every tenant key's final content."""
        hasher = hashlib.sha256()
        for tenant in range(self.tenants):
            for idx in range(self.config.n_keys):
                key = b"t%02d-key%08d" % (tenant, idx)
                store = sim._stores[sim.shard_of(key)]
                hasher.update(key)
                hasher.update(hashlib.sha256(store.get(key)).digest())
        return hasher.hexdigest()

    def _replay_replication(self, completed: list) -> tuple[int, int, int]:
        """Feed completion-ordered writes through a crash + failover.

        Returns ``(epoch, acked_writes, lost_acked)``: the epoch after
        the fenced promotion, how many writes were acknowledged, and
        how many acknowledged writes failed to read back afterwards
        (must be zero on every schedule).
        """
        from repro.db.config import EngineConfig
        from repro.db.errors import DatabaseError
        from repro.replica import ReplicaGroup

        writes = [(job.key, job.payload) for job, _, _, _ in completed
                  if job.kind == "write"][:self.replica_writes]
        config = EngineConfig(device_pages=4096, wal_pages=256,
                              catalog_pages=64, buffer_pool_pages=1024)
        group = ReplicaGroup(n_replicas=2, quorum=2, config=config,
                             name="explore")
        epoch_before = group.epoch
        acked: dict[bytes, bytes] = {}
        crash_at = max(1, len(writes) // 2)
        for i, (key, payload) in enumerate(writes):
            if i == crash_at:
                group.crash_primary()
            group.put(key, payload)
            acked[key] = payload
        if len(writes) <= crash_at:
            group.crash_primary()
        lost = 0
        for key, payload in sorted(acked.items()):
            try:
                if group.get(key) != payload:
                    lost += 1
            except DatabaseError:
                lost += 1
        if group.epoch <= epoch_before:
            lost += 1_000_000  # epoch fencing not monotone
        return group.epoch, group.stats.acked_writes, lost

    def _run_schedule(self, index: int) -> tuple:
        schedule_seed = self.seed * 10_007 + index
        sim = TrafficSim(self.config, admission=self._admission(),
                         tiebreak=SeededTieBreak(schedule_seed))
        detector = sim.attach_race(mode="collect")
        san = self.sanitizer
        san.reset_run()
        san.now_fn = lambda: sim.loop.now_ns
        for store in sim._stores:
            store.model.san = san
        violations_before = len(san.violations)
        result = sim.run(self.jobs)
        if result.offered != result.admitted + result.shed:
            raise AssertionError(
                f"schedule {index}: offered {result.offered} != admitted "
                f"{result.admitted} + shed {result.shed}")
        self._overflows += san.order_overflows
        epoch, acked, lost = self._replay_replication(sim._completed)
        return ScheduleOutcome(
            seed=schedule_seed,
            store_digest=self._store_digest(sim),
            completed=result.completed,
            races=detector.stats.races,
            sanitizer_violations=len(san.violations) - violations_before,
            epoch=epoch,
            acked_writes=acked,
            lost_acked=lost,
        ), detector

    def explore(self) -> ExplorationResult:
        """Run every schedule and fold the outcomes into one verdict."""
        self.self_check()
        outcomes: list[ScheduleOutcome] = []
        race_reports: list = []
        failures: list[str] = []
        reference: ScheduleOutcome | None = None
        for index in range(self.schedules):
            outcome, detector = self._run_schedule(index)
            outcomes.append(outcome)
            race_reports.extend(detector.races)
            if reference is None:
                reference = outcome
            else:
                if outcome.store_digest != reference.store_digest:
                    failures.append(
                        f"schedule {index} (seed {outcome.seed}) store "
                        f"digest diverged from schedule 0")
                if outcome.completed != reference.completed:
                    failures.append(
                        f"schedule {index} completed {outcome.completed} "
                        f"ops, schedule 0 completed {reference.completed}")
            if outcome.lost_acked:
                failures.append(
                    f"schedule {index}: {outcome.lost_acked} acked "
                    f"write(s) lost across failover")
        canonical = json.dumps([o.to_dict() for o in outcomes],
                               sort_keys=True, separators=(",", ":"))
        exploration_digest = hashlib.sha256(
            canonical.encode()).hexdigest()
        return ExplorationResult(
            schedules=self.schedules,
            base_seed=self.seed,
            store_digest=reference.store_digest if reference else "",
            exploration_digest=exploration_digest,
            races=sum(o.races for o in outcomes),
            sanitizer_violations=sum(o.sanitizer_violations
                                     for o in outcomes),
            invariant_failures=failures,
            outcomes=outcomes,
            race_reports=race_reports,
            sanitizer_overflows=self._overflows,
        )
