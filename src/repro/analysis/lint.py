"""AST determinism linter: engine, rule base class, and reports.

The linter parses each source file once and runs every registered rule
(:mod:`repro.analysis.rules`) over the tree.  A rule is a
:class:`Rule` subclass — an ``ast.NodeVisitor`` with a stable ID
(``RPR001``…), a one-line title, and an optional tuple of path
fragments where the rule does not apply (e.g. the wall-clock rule is
structurally exempt in ``sim/clock.py``, the substrate-bypass rule in
``repro/storage/`` which *is* the substrate).

Intentional violations are suppressed inline::

    handle = open(path)  # repro: allow[RPR004] host artifact, not simulated I/O

The annotation must name the rule ID and should say why; it covers
exactly the source lines of the flagged statement.  Findings render as
``file:line:col: RPRxxx message`` diagnostics and as a machine-readable
JSON report (``--json``) for CI artifacts.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass

#: Inline suppression: ``# repro: allow[RPR001]`` or ``allow[RPR001,RPR004]``.
SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9,\s]+)\]")

#: Schema version of the JSON report.
REPORT_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule fired at a source location."""

    rule: str
    title: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "title": self.title,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule(ast.NodeVisitor):
    """Base class for linter rules; subclasses set the class attributes
    and call :meth:`report` from their ``visit_*`` methods."""

    rule_id = "RPR000"
    title = "abstract rule"
    #: Path fragments (``/``-normalized) where this rule never applies.
    allowed_paths: tuple[str, ...] = ()

    def __init__(self, path: str, suppressed: dict[int, set[str]]) -> None:
        self.path = path
        self._suppressed = suppressed
        self.findings: list[Finding] = []

    @classmethod
    def applies_to(cls, path: str) -> bool:
        norm = path.replace(os.sep, "/")
        return not any(frag in norm for frag in cls.allowed_paths)

    def report(self, node: ast.AST, message: str) -> None:
        first = getattr(node, "lineno", 0)
        last = getattr(node, "end_lineno", None) or first
        for line in range(first, last + 1):
            if self.rule_id in self._suppressed.get(line, ()):
                return
        self.findings.append(Finding(
            rule=self.rule_id, title=self.title, path=self.path,
            line=first, col=getattr(node, "col_offset", 0) + 1,
            message=message))


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map 1-based line number -> rule IDs allowed on that line."""
    out: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = SUPPRESS_RE.search(text)
        if match:
            ids = {part.strip() for part in match.group(1).split(",")}
            out[lineno] = {i for i in ids if i}
    return out


def lint_source(path: str, source: str) -> list[Finding]:
    """Run every applicable rule over one file's source text."""
    from repro.analysis.rules import ALL_RULES

    tree = ast.parse(source, filename=path)
    suppressed = parse_suppressions(source)
    findings: list[Finding] = []
    for rule_cls in ALL_RULES:
        if not rule_cls.applies_to(path):
            continue
        rule = rule_cls(path, suppressed)
        rule.visit(tree)
        findings.extend(rule.findings)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                out.extend(os.path.join(root, f) for f in sorted(files)
                           if f.endswith(".py"))
        else:
            out.append(path)
    return sorted(set(out))


def lint_paths(paths: list[str]) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; returns all findings."""
    findings: list[Finding] = []
    for filename in iter_python_files(paths):
        # The linter is host-side tooling: it reads source text from the
        # real filesystem by design.
        with open(filename, "r", encoding="utf-8") as fh:  # repro: allow[RPR004] linter reads host source files
            source = fh.read()
        findings.extend(lint_source(filename, source))
    return findings


def render_json(findings: list[Finding], files_scanned: int) -> str:
    """Machine-readable report (stable key order) for CI artifacts."""
    from repro.analysis.rules import ALL_RULES

    doc = {
        "version": REPORT_VERSION,
        "files_scanned": files_scanned,
        "rules": {cls.rule_id: cls.title for cls in ALL_RULES},
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
