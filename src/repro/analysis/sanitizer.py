"""Runtime invariant sanitizer for the buffer pool and WAL.

An opt-in, TSan-style checker attached to a
:class:`~repro.sim.cost.CostModel` through the nullable ``model.san``
hook (the same pattern as ``model.obs``): when it is ``None`` — the
default — the instrumented layers pay one attribute check and nothing
else, so benchmarks are unaffected.

Three invariant classes are enforced:

* **(a) Latch discipline** (:class:`LatchViolation`) — every page read
  or write must happen while the covering frame is latched, i.e. pinned
  (``pins > 0``) or allocation-protected (``prevent_evict``).  An
  unlatched access races with eviction: the frame could be written back
  and dropped mid-operation, silently losing the write or reading freed
  memory in the system being modeled.
* **(b) WAL-before-data** (:class:`WalOrderViolation`) — a dirty data
  page may only be written back once every WAL record covering its
  changes is durable.  Violating this breaks crash recovery: the data
  page on "disk" would reflect changes the log cannot redo or undo.
* **(c) Latch-order acyclicity** (:class:`LatchCycleViolation`) — the
  observed latch acquisition order must stay acyclic across the run.
  A cycle in the order graph is a deadlock waiting for the right
  interleaving.  Pages latched together in one batch are unordered
  (the pool acquires a batch atomically), so no intra-batch edges are
  recorded.

Usage::

    san = attach_sanitizer(store.model)   # mode="raise" by default
    ... run workload ...
    print(san.format_summary())

In ``mode="collect"`` violations are recorded instead of raised, which
is what ``python -m repro sanitize`` uses so one run reports every
problem at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SanitizerViolation(Exception):
    """Base class for invariant violations found at runtime."""


class LatchViolation(SanitizerViolation):
    """Page access without holding the covering frame latch."""


class WalOrderViolation(SanitizerViolation):
    """Data-page write-back before its covering WAL record is durable."""


class LatchCycleViolation(SanitizerViolation):
    """Latch acquisition order contains a cycle (potential deadlock)."""


@dataclass
class SanitizerStats:
    """Event counters — nonzero counts prove the hooks actually fired."""

    frame_reads: int = 0
    frame_writes: int = 0
    latch_acquires: int = 0
    latch_releases: int = 0
    writebacks_checked: int = 0
    wal_flushes: int = 0
    violations: int = 0

    def to_dict(self) -> dict:
        return {
            "frame_reads": self.frame_reads,
            "frame_writes": self.frame_writes,
            "latch_acquires": self.latch_acquires,
            "latch_releases": self.latch_releases,
            "writebacks_checked": self.writebacks_checked,
            "wal_flushes": self.wal_flushes,
            "violations": self.violations,
        }


@dataclass
class Sanitizer:
    """Records latch/WAL events and checks the three invariant classes.

    ``mode="raise"`` throws on the first violation (tests, debugging);
    ``mode="collect"`` records them all in :attr:`violations` (CI gate).
    """

    mode: str = "raise"
    stats: SanitizerStats = field(default_factory=SanitizerStats)
    #: Collected ``(kind, message, at_ns)`` triples in ``collect`` mode;
    #: ``at_ns`` is the virtual timestamp from :attr:`now_fn` (``None``
    #: when no clock is bound).
    violations: list = field(default_factory=list)
    current_worker: int = 0
    #: Nullable virtual-time source; under the event loop, bind
    #: ``san.now_fn = lambda: loop.now_ns`` so each collected violation
    #: carries the timestamp of the event that caused it.
    now_fn: "object | None" = field(default=None, repr=False)
    #: Cap on latch-order graph nodes.  The order graph accumulates one
    #: node per page ever latched; on long traffic runs (or many
    #: explored schedules without :meth:`reset_run`) that used to grow —
    #: and slow ``_has_path`` — without bound.  Past the cap, new nodes'
    #: edges are *not* recorded and :attr:`order_overflows` counts them,
    #: so saturation is visible instead of a silent slowdown.
    max_order_nodes: int = 4096
    #: Edges skipped because the order graph hit :attr:`max_order_nodes`.
    order_overflows: int = 0

    #: worker -> {head_pid: hold count} of latches currently held.
    _held: dict = field(default_factory=dict, repr=False)
    #: Latch-order graph: edges ``earlier -> later`` ever observed.
    _order: dict = field(default_factory=dict, repr=False)
    #: head_pid -> highest WAL LSN that must be durable before the
    #: frame may be written back.
    _coverage: dict = field(default_factory=dict, repr=False)
    _durable_lsn: int = 0
    #: worker -> set of head_pids it ever accessed (page-frame access
    #: sets, reported in the summary).
    _access_sets: dict = field(default_factory=dict, repr=False)
    #: Nodes currently in the latch-order graph (bounded by
    #: :attr:`max_order_nodes`).
    _order_nodes: set = field(default_factory=set, repr=False)

    # ------------------------------------------------------------------
    # plumbing

    def set_worker(self, worker: int) -> None:
        """Attribute subsequent events to a simulated worker."""
        self.current_worker = worker

    def reset_run(self) -> None:
        """Clear per-run state between schedules, keeping the mode.

        The explorer re-runs one workload under many interleavings with
        a fresh engine each time; carrying the latch-order graph (or
        held-latch maps) across schedules would both leak memory and
        manufacture false cycles from orders that never coexisted.
        Collected violations and cumulative stats are kept — they are
        the run's verdict, not its working state.
        """
        self._held.clear()
        self._order.clear()
        self._order_nodes.clear()
        self._coverage.clear()
        self._durable_lsn = 0
        self._access_sets.clear()
        self.order_overflows = 0

    def _violate(self, exc_cls, message: str) -> None:
        self.stats.violations += 1
        if self.mode == "raise":
            raise exc_cls(message)
        at_ns = None if self.now_fn is None else int(self.now_fn())
        self.violations.append((exc_cls.__name__, message, at_ns))

    @staticmethod
    def _latched(frame) -> bool:
        return frame.pins > 0 or frame.prevent_evict

    def _note_access(self, pid: int) -> None:
        self._access_sets.setdefault(self.current_worker, set()).add(pid)

    # ------------------------------------------------------------------
    # class (a): latch discipline

    def on_frame_read(self, frame) -> None:
        self.stats.frame_reads += 1
        self._note_access(frame.head_pid)
        if not self._latched(frame):
            self._violate(LatchViolation,
                          f"read of page {frame.head_pid} by worker "
                          f"{self.current_worker} without frame latch "
                          f"(pins=0, prevent_evict=False)")

    def on_frame_write(self, frame) -> None:
        self.stats.frame_writes += 1
        self._note_access(frame.head_pid)
        if not self._latched(frame):
            self._violate(LatchViolation,
                          f"write to page {frame.head_pid} by worker "
                          f"{self.current_worker} without frame latch "
                          f"(pins=0, prevent_evict=False)")

    # ------------------------------------------------------------------
    # class (c): latch-order acyclicity

    def _has_path(self, src: int, dst: int) -> bool:
        """Depth-first reachability in the order graph."""
        stack, seen = [src], set()
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._order.get(node, ()))
        return False

    def _record_order(self, old: int, new: int) -> None:
        """Add an ``old -> new`` edge unless the node cap is reached."""
        nodes = self._order_nodes
        fresh = {n for n in (old, new) if n not in nodes}
        if fresh and len(nodes) + len(fresh) > self.max_order_nodes:
            self.order_overflows += 1
            return
        nodes.update(fresh)
        self._order.setdefault(old, set()).add(new)

    def on_latch_acquire(self, pids, worker: int | None = None) -> None:
        """Record a batch acquisition; pages inside one batch are
        unordered with respect to each other."""
        who = self.current_worker if worker is None else worker
        held = self._held.setdefault(who, {})
        batch = set(pids)
        for new in pids:
            self.stats.latch_acquires += 1
            for old in held:
                if old in batch or old == new:
                    continue
                if self._has_path(new, old):
                    self._violate(
                        LatchCycleViolation,
                        f"worker {who} latches page {new} while holding "
                        f"{old}, but {new} -> {old} order was already "
                        f"observed — acquisition cycle")
                self._record_order(old, new)
            held[new] = held.get(new, 0) + 1

    def on_latch_release(self, pid: int, worker: int | None = None) -> None:
        who = self.current_worker if worker is None else worker
        self.stats.latch_releases += 1
        held = self._held.get(who, {})
        count = held.get(pid, 0)
        if count <= 1:
            held.pop(pid, None)
        else:
            held[pid] = count - 1

    # ------------------------------------------------------------------
    # class (b): WAL-before-data

    def note_page_coverage(self, pids, lsn: int) -> None:
        """Changes to ``pids`` are covered by WAL bytes up to ``lsn``."""
        for pid in pids:
            if lsn > self._coverage.get(pid, 0):
                self._coverage[pid] = lsn

    def on_wal_durable(self, lsn: int) -> None:
        self.stats.wal_flushes += 1
        if lsn > self._durable_lsn:
            self._durable_lsn = lsn

    def on_data_writeback(self, head_pid: int) -> None:
        self.stats.writebacks_checked += 1
        required = self._coverage.get(head_pid, 0)
        if required > self._durable_lsn:
            self._violate(
                WalOrderViolation,
                f"data page {head_pid} written back but its covering WAL "
                f"record (lsn {required}) is not durable "
                f"(durable lsn {self._durable_lsn})")

    def on_frame_drop(self, head_pid: int) -> None:
        """The extent was freed; its coverage obligation dies with it."""
        self._coverage.pop(head_pid, None)

    # ------------------------------------------------------------------
    # reporting

    def format_summary(self) -> str:
        stats = self.stats
        lines = [
            "sanitizer summary",
            f"  frame accesses   {stats.frame_reads} reads, "
            f"{stats.frame_writes} writes",
            f"  latches          {stats.latch_acquires} acquired, "
            f"{stats.latch_releases} released",
            f"  writebacks       {stats.writebacks_checked} checked "
            f"against {stats.wal_flushes} WAL flushes",
            f"  access sets      " + ", ".join(
                f"worker {w}: {len(pids)} pages"
                for w, pids in sorted(self._access_sets.items())),
            f"  violations       {stats.violations}",
        ]
        if self.order_overflows:
            lines.insert(-1, f"  order overflow   {self.order_overflows} "
                         f"edges dropped (graph capped at "
                         f"{self.max_order_nodes} nodes)")
        for kind, message, at_ns in self.violations:
            when = "" if at_ns is None else f" [at {at_ns} ns]"
            lines.append(f"    {kind}: {message}{when}")
        return "\n".join(lines)


def attach_sanitizer(model, mode: str = "raise") -> Sanitizer:
    """Create a :class:`Sanitizer` and attach it to ``model.san``.

    Frames obtained *before* attaching carry ``san=None`` and are not
    checked; attach before creating the store for full coverage.
    """
    san = Sanitizer(mode=mode)
    model.san = san
    return san
