"""Submission/completion-queue scheduler over the simulated NVMe device.

The paper attributes LeanStore's BLOB throughput to large, batched,
asynchronous writes that keep the device at full queue depth while file
systems pay per-page syscalls and serialized flushes (PAPER.md §IV-V).
:class:`IoScheduler` reproduces that structure deterministically:

* **Submission queue** — ``submit_read``/``submit_write`` enqueue
  requests without touching the device; each returns an
  :class:`IoTicket` that will carry the completion payload.
* **Coalescing** — at ``drain`` time the pending queue is sorted by
  (direction, category, pid) and runs of pid-adjacent requests of the
  same kind are merged into single larger transfers, up to
  ``max_merge_pages`` pages per merged command (real block schedulers
  bound merges the same way to keep tail latency in check).
* **Queue depth** — the merged batch is pushed to the device with the
  scheduler's configured depth; :meth:`CostModel._charge_io` overlaps
  the latency of in-flight commands instead of summing it, so deeper
  queues cost less until bandwidth binds.
* **Completion queue** — one ``io_submit``/``io_getevents`` syscall pair
  is charged per foreground drain (not per request), and merged read
  payloads are sliced back onto their originating tickets positionally.

Failure atomicity matches the device: if the device (or a fault
wrapper) raises mid-batch, the pending queue is left intact, so a
retry policy re-draining the scheduler resubmits the whole batch —
writes are idempotent, and partially applied prefixes are simply
rewritten.

Everything is observable through the nullable ``model.obs`` hook: an
``io.queue_depth`` histogram of post-merge batch sizes plus
``io.requests_in``/``io.requests_out``/``io.coalesced``/``io.drains``
counters from which a coalesce ratio follows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cost import CostModel
from repro.storage.device import IoRequest


@dataclass
class IoTicket:
    """One queued request; carries the read payload after completion."""

    pid: int
    npages: int
    data: bytes | None = None
    category: str = "data"
    #: Set by ``drain``: read payload for reads, ``None`` for writes.
    result: bytes | None = None
    done: bool = False

    @property
    def is_write(self) -> bool:
        return self.data is not None


@dataclass
class IoStats:
    """Scheduler-side accounting (device stats count merged commands)."""

    requests_in: int = 0
    requests_out: int = 0
    drains: int = 0

    @property
    def coalesced(self) -> int:
        return self.requests_in - self.requests_out

    @property
    def coalesce_ratio(self) -> float:
        """Fraction of enqueued requests absorbed into a neighbour."""
        if self.requests_in == 0:
            return 0.0
        return self.coalesced / self.requests_in


class IoScheduler:
    """Batched SQ/CQ front end over a device exposing ``submit()``.

    Callers must not enqueue conflicting writes to the same page within
    one drain window: coalescing sorts the queue, so their device order
    would be pid order, not submission order.  (The engine's buffer pool
    never does — each dirty frame is flushed once per batch.)
    """

    def __init__(self, device, model: CostModel, *,
                 queue_depth: int = 32, max_merge_pages: int = 64) -> None:
        if queue_depth < 1:
            raise ValueError("queue depth must be at least 1")
        if max_merge_pages < 1:
            raise ValueError("max merge size must be at least 1 page")
        self.device = device
        self.model = model
        self.queue_depth = queue_depth
        self.max_merge_pages = max_merge_pages
        #: Stripe unit of a striped device (None otherwise): a merged
        #: command crossing a stripe boundary would be re-split by the
        #: device, so coalescing keeps runs inside one stripe chunk.
        self.stripe_pages = getattr(device, "stripe_pages", None)
        self.stats = IoStats()
        self._pending: list[IoTicket] = []

    # -- submission ----------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._pending)

    def submit_read(self, pid: int, npages: int) -> IoTicket:
        """Queue a read of ``npages`` pages at ``pid``."""
        ticket = IoTicket(pid=pid, npages=npages)
        self._pending.append(ticket)
        return ticket

    def submit_write(self, pid: int, data: bytes,
                     category: str = "data") -> IoTicket:
        """Queue a write of whole pages starting at ``pid``."""
        ticket = IoTicket(pid=pid, npages=len(data) // self.device.page_size,
                          data=data, category=category)
        self._pending.append(ticket)
        return ticket

    # -- completion ----------------------------------------------------------

    def drain(self, background: bool = False,
              verify: bool = True) -> list[IoTicket]:
        """Coalesce, issue, and complete every pending request.

        Returns the tickets in their original submission order, each
        with ``result`` populated (reads) and ``done`` set.  On a device
        error the queue is preserved so a retry re-drains the batch.
        """
        if not self._pending:
            return []
        groups = self._coalesce(self._pending)
        requests = [self._merge_request(group) for group in groups]
        if not background:
            self.model.syscall("io_submit")
        payloads = self.device.submit(requests, background=background,
                                      verify=verify,
                                      queue_depth=self.queue_depth)
        if not background:
            self.model.syscall("io_getevents")
        # The batch is durably applied: account and complete.
        self.stats.requests_in += len(self._pending)
        self.stats.requests_out += len(requests)
        self.stats.drains += 1
        obs = self.model.obs
        if obs is not None:
            obs.count("io.requests_in", len(self._pending))
            obs.count("io.requests_out", len(requests))
            obs.count("io.coalesced", len(self._pending) - len(requests))
            obs.count("io.drains", background=background)
            obs.observe("io.queue_depth", float(len(requests)))
        ps = self.device.page_size
        for group, payload in zip(groups, payloads):
            offset = 0
            for ticket in group:
                if payload is not None:
                    ticket.result = payload[offset:offset
                                            + ticket.npages * ps]
                    offset += ticket.npages * ps
                ticket.done = True
        drained = self._pending
        self._pending = []
        return drained

    # -- internals -----------------------------------------------------------

    def _coalesce(self, tickets: list[IoTicket]) -> list[list[IoTicket]]:
        """Group sorted tickets into runs mergeable into one command."""
        ordered = sorted(tickets,
                         key=lambda t: (t.is_write, t.category, t.pid))
        groups: list[list[IoTicket]] = []
        run: list[IoTicket] = []
        run_pages = 0
        for ticket in ordered:
            if run and self._adjacent(run[-1], ticket) \
                    and run_pages + ticket.npages <= self.max_merge_pages \
                    and self._same_stripe(run[0], ticket):
                run.append(ticket)
                run_pages += ticket.npages
                continue
            if run:
                groups.append(run)
            run = [ticket]
            run_pages = ticket.npages
        groups.append(run)
        return groups

    def _same_stripe(self, head: IoTicket, ticket: IoTicket) -> bool:
        """Stripe-aware merge bound: both ends inside one stripe chunk."""
        if self.stripe_pages is None:
            return True
        return head.pid // self.stripe_pages \
            == (ticket.pid + ticket.npages - 1) // self.stripe_pages

    @staticmethod
    def _adjacent(prev: IoTicket, ticket: IoTicket) -> bool:
        return (prev.is_write == ticket.is_write
                and prev.category == ticket.category
                and prev.pid + prev.npages == ticket.pid)

    @staticmethod
    def _merge_request(group: list[IoTicket]) -> IoRequest:
        head = group[0]
        npages = sum(t.npages for t in group)
        if head.is_write:
            data = head.data if len(group) == 1 \
                else b"".join(t.data for t in group)  # type: ignore[misc]
            return IoRequest(pid=head.pid, npages=npages, data=data,
                             category=head.category)
        return IoRequest(pid=head.pid, npages=npages)
