"""Deterministic asynchronous I/O engine (submission/completion queues).

The paper's engine keeps the NVMe device at full queue depth by issuing
large batches of asynchronous requests (Section III-C, V); this package
provides the engine-side half of that: :class:`IoScheduler`, a
submission/completion queue with request coalescing whose costs flow
through the shared :class:`~repro.sim.cost.CostModel`.
"""

from repro.io.scheduler import IoScheduler, IoStats, IoTicket

__all__ = ["IoScheduler", "IoStats", "IoTicket"]
