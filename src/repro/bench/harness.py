"""Benchmark runners and result formatting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.adapters import StoreAdapter
from repro.sim.clock import Stopwatch
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload


@dataclass
class RunResult:
    """Outcome of one timed benchmark phase on one system."""

    system: str
    ops: int
    elapsed_ns: int
    extra: dict = field(default_factory=dict)

    @property
    def throughput_ops_s(self) -> float:
        if self.elapsed_ns <= 0:
            return float("inf")
        return self.ops * 1e9 / self.elapsed_ns

    @property
    def per_op_us(self) -> float:
        return self.elapsed_ns / self.ops / 1000 if self.ops else 0.0


def run_ycsb(store: StoreAdapter, config: YcsbConfig, n_ops: int,
             *, time_load: bool = False) -> RunResult:
    """Load the dataset, then run the timed YCSB phase.

    Reads verify content length so a broken adapter cannot silently
    benchmark nothing.
    """
    workload = YcsbWorkload(config)
    load_sw = Stopwatch(store.model.clock)
    with load_sw:
        for key, payload in workload.load_phase():
            store.put(key, payload)
    ops_done = 0
    with Stopwatch(store.model.clock) as sw:
        for op, key, payload in workload.operations(n_ops):
            if op == "read":
                data = store.get(key)
                assert data, f"empty read from {store.name}"
            else:
                store.replace(key, payload)
            ops_done += 1
    elapsed = sw.elapsed_ns + (load_sw.elapsed_ns if time_load else 0)
    return RunResult(system=store.name, ops=ops_done, elapsed_ns=elapsed)


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [max(len(str(headers[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(headers))]
    def fmt(row):
        return "  ".join(str(cell).rjust(w) for cell, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def print_table(title: str, headers: list[str],
                rows: list[list[str]]) -> None:
    print(f"\n=== {title} ===")
    print(format_table(headers, rows))


def human_throughput(ops_s: float) -> str:
    if ops_s >= 1e6:
        return f"{ops_s / 1e6:.2f}M"
    if ops_s >= 1e3:
        return f"{ops_s / 1e3:.1f}k"
    return f"{ops_s:.1f}"


def bar(value: float, maximum: float, width: int = 24) -> str:
    """ASCII bar scaled to ``maximum`` (figure-style visual column)."""
    if maximum <= 0:
        return ""
    filled = round(width * min(value, maximum) / maximum)
    return "#" * filled
