"""Seeded fault-injection sweep: the engine's failure-envelope benchmark.

Each *schedule* is one deterministic end-to-end experiment: a seeded
:class:`~repro.storage.faults.FaultPlan` wraps the device, a small
history-tracked workload runs (inserts, overwrites, deletes, reads),
the engine crashes, recovers, and every surviving key is audited against
the set of values that were ever *committed* for it.

The audit encodes the substrate's guarantee — **zero silent
corruption**:

* a read that succeeds must return some historically committed value
  for that key (a torn WAL tail may legally roll an acked transaction
  back to an earlier committed value — that loss is *flagged* by the
  truncation/failed-txn counters, never silent);
* anything else must surface as a typed
  :class:`~repro.db.errors.DatabaseError` (checksum mismatch,
  quarantine, WAL corruption, retries exhausted);
* a successful read of bytes never committed for that key is a
  **silent corruption** — the one outcome the design forbids.

Schedules are pure functions of their seed: :func:`run_sweep` digests
every schedule's counters into one SHA-256, so "same seed, byte-identical
stats" is a single string comparison.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.db.config import EngineConfig
from repro.db.database import BlobDB
from repro.db.errors import DatabaseError, KeyNotFoundError
from repro.sim.cost import CostModel
from repro.storage.factory import make_device
from repro.storage.faults import FaultPlan, FaultSpec, FaultyNVMe

#: Mixed-fault rates used by the default sweep (every class enabled).
DEFAULT_RATES = {
    "torn_write": 0.05,
    "bit_flip": 0.05,
    "transient_error": 0.05,
    "latency_spike": 0.02,
}

_PAYLOAD_SIZES = (400, 3000, 4096, 9000, 20000, 40000)


def small_config(**overrides) -> EngineConfig:
    """An EngineConfig sized for running hundreds of schedules quickly."""
    defaults = dict(device_pages=1024, wal_pages=64, catalog_pages=32,
                    buffer_pool_pages=256, wal_buffer_bytes=8192)
    defaults.update(overrides)
    return EngineConfig(**defaults)


@dataclass
class ScheduleResult:
    """Outcome of one seeded schedule."""

    seed: int
    #: "clean" (all faults absorbed invisibly), "reported" (some damage
    #: surfaced as typed errors), or "silent" (wrong bytes served —
    #: must never happen).
    outcome: str
    silent_corruptions: int
    #: Keys whose read raised a typed DatabaseError post-recovery.
    reported_keys: int
    #: Typed errors raised during the workload phase (and absorbed).
    workload_errors: int
    committed_txns: int
    faults: dict[str, int] = field(default_factory=dict)
    io_retries: int = 0
    wal_records_truncated: int = 0
    failed_txns: int = 0
    keys_quarantined: int = 0
    checksum_failures: int = 0
    recovery_error: str = ""

    def counters_line(self) -> str:
        """Canonical one-line rendering (input to the sweep digest)."""
        fault_bits = ",".join(f"{k}={v}" for k, v in sorted(self.faults.items()))
        return (f"seed={self.seed} outcome={self.outcome} "
                f"silent={self.silent_corruptions} "
                f"reported={self.reported_keys} "
                f"workload_errors={self.workload_errors} "
                f"committed={self.committed_txns} faults[{fault_bits}] "
                f"retries={self.io_retries} "
                f"truncated={self.wal_records_truncated} "
                f"failed={self.failed_txns} "
                f"quarantined={self.keys_quarantined} "
                f"crc_failures={self.checksum_failures} "
                f"recovery_error={self.recovery_error or '-'}")


def run_fault_schedule(seed: int, config: EngineConfig | None = None,
                       rates: dict[str, float] | None = None,
                       n_txns: int = 14) -> ScheduleResult:
    """Run one seeded workload/crash/recover/audit cycle under faults."""
    config = config or small_config()
    model = CostModel()
    inner = make_device(model, capacity_pages=config.device_pages,
                        page_size=config.page_size)
    plan = FaultPlan(FaultSpec(seed=seed, **(rates or DEFAULT_RATES)))
    device = FaultyNVMe(inner, plan)
    result = ScheduleResult(seed=seed, outcome="clean",
                            silent_corruptions=0, reported_keys=0,
                            workload_errors=0, committed_txns=0)

    #: The audit's ground truth: every payload ever *attempted* for a
    #: key.  An attempted-but-aborted payload can only survive recovery
    #: if its commit record became durable — i.e. it actually committed
    #: — so accepting any attempted value never masks garbage bytes,
    #: while correctly tolerating the ack-uncertainty window (a crash
    #: between commit-record durability and the client seeing the ack).
    #: The workload RNG is independent of the fault RNG, but both derive
    #: from the schedule seed, so the whole experiment replays from it.
    rng = random.Random(seed * 2654435761 % (1 << 32))
    acceptable: dict[bytes, list[bytes]] = {}
    live: set[bytes] = set()
    keys = [b"blob-%02d" % i for i in range(6)]

    db: BlobDB | None = None
    try:
        db = BlobDB(config=config, model=model, device=device)
        db.create_table("t")
    except DatabaseError as exc:
        # Formatting/DDL already degraded; the schedule reports and ends.
        result.outcome = "reported"
        result.recovery_error = type(exc).__name__
        _fill_counters(result, plan, db)
        return result

    for _ in range(n_txns):
        key = rng.choice(keys)
        op = rng.random()
        payload = rng.randbytes(rng.choice(_PAYLOAD_SIZES))
        try:
            if key in live and op < 0.25:
                with db.transaction() as txn:
                    db.delete_blob(txn, "t", key)
                live.discard(key)
            elif key in live:
                acceptable.setdefault(key, []).append(payload)
                with db.transaction() as txn:
                    db.delete_blob(txn, "t", key)
                    db.put_blob(txn, "t", key, payload)
            else:
                acceptable.setdefault(key, []).append(payload)
                with db.transaction() as txn:
                    db.put_blob(txn, "t", key, payload)
                live.add(key)
            result.committed_txns += 1
        except DatabaseError:
            # Typed degradation during the workload: the transaction
            # aborted cleanly; `live` may drift, which only skews the
            # op mix, never the audit.
            result.workload_errors += 1
        if rng.random() < 0.2:
            try:
                db.read_blob("t", key)
            except DatabaseError:
                result.workload_errors += 1

    # Record workload-phase repair work before the crash wipes it.
    _fill_counters(result, plan, db)

    # Crash and recover on the faulted device.
    db.crash()
    try:
        db = BlobDB.recover(device, config, model)
        db.scrub()
    except DatabaseError as exc:
        result.outcome = "reported"
        result.recovery_error = type(exc).__name__
        result.faults = plan.stats.as_dict()
        return result

    # Audit: every surviving key must read as an attempted-commit value
    # or fail with a typed error.  Anything else is silent corruption.
    for key in keys:
        try:
            data = db.read_blob("t", key)
        except KeyNotFoundError:
            continue  # absence = an earlier history point; never silent
        except DatabaseError:
            result.reported_keys += 1
            continue
        if data not in acceptable.get(key, []):
            result.silent_corruptions += 1
    _fill_counters(result, plan, db)
    if result.silent_corruptions:
        result.outcome = "silent"
    elif result.reported_keys or result.workload_errors or \
            result.recovery_error or result.wal_records_truncated or \
            result.keys_quarantined or result.failed_txns:
        result.outcome = "reported"
    return result


def _fill_counters(result: ScheduleResult, plan: FaultPlan,
                   db: BlobDB | None) -> None:
    result.faults = plan.stats.as_dict()
    if db is None:
        return
    report = db.stats_report()
    #: Retries accumulate across the workload and recovery engines;
    #: device-level counters (checksum failures) are cumulative already.
    result.io_retries += report.io_retries
    result.wal_records_truncated = report.wal_records_truncated
    result.failed_txns = len(getattr(db, "failed_txns", []) or [])
    result.keys_quarantined = report.keys_quarantined
    result.checksum_failures = report.checksum_failures


@dataclass
class SweepReport:
    """Aggregate of a multi-schedule sweep, with a reproducibility digest."""

    n_schedules: int
    clean: int
    reported: int
    silent: int
    faults: dict[str, int]
    io_retries: int
    wal_records_truncated: int
    keys_quarantined: int
    #: SHA-256 over every schedule's canonical counter line: two sweeps
    #: from the same seed must produce the *same digest*, byte for byte.
    digest: str
    schedules: list[ScheduleResult] = field(default_factory=list)

    def format(self) -> str:
        fault_bits = ", ".join(f"{k}={v}"
                               for k, v in sorted(self.faults.items()) if v)
        return "\n".join([
            f"schedules:   {self.n_schedules} "
            f"({self.clean} clean, {self.reported} reported, "
            f"{self.silent} SILENT)",
            f"injected:    {fault_bits or 'none'}",
            f"handled:     {self.io_retries} I/O retries, "
            f"{self.wal_records_truncated} WAL truncations, "
            f"{self.keys_quarantined} keys quarantined",
            f"digest:      {self.digest}",
        ])


def run_sweep(n_schedules: int = 200, seed: int = 0,
              config: EngineConfig | None = None,
              rates: dict[str, float] | None = None,
              n_txns: int = 14) -> SweepReport:
    """Run ``n_schedules`` independent seeded schedules and aggregate."""
    digest = hashlib.sha256()
    schedules: list[ScheduleResult] = []
    faults: dict[str, int] = {}
    clean = reported = silent = retries = truncated = quarantined = 0
    for i in range(n_schedules):
        res = run_fault_schedule(seed + i, config=config, rates=rates,
                                 n_txns=n_txns)
        schedules.append(res)
        digest.update(res.counters_line().encode())
        digest.update(b"\n")
        for k, v in res.faults.items():
            faults[k] = faults.get(k, 0) + v
        clean += res.outcome == "clean"
        reported += res.outcome == "reported"
        silent += res.outcome == "silent"
        retries += res.io_retries
        truncated += res.wal_records_truncated
        quarantined += res.keys_quarantined
    return SweepReport(n_schedules=n_schedules, clean=clean,
                       reported=reported, silent=silent, faults=faults,
                       io_retries=retries,
                       wal_records_truncated=truncated,
                       keys_quarantined=quarantined,
                       digest=digest.hexdigest(), schedules=schedules)
