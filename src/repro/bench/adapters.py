"""Uniform BLOB-store adapters over every system under test."""

from __future__ import annotations

from repro.baselines import (
    Btrfs,
    Ext4,
    Ext4Journal,
    F2fs,
    MysqlBlobStore,
    PostgresBlobStore,
    SimulatedFilesystem,
    SqliteBlobStore,
    Xfs,
)
from repro.db import BlobDB, EngineConfig
from repro.sim.cost import CostModel, CostParams
from repro.storage.factory import make_device

OUR_SYSTEMS = ("our", "our.ht", "our.physlog")
FS_SYSTEMS = ("ext4.ordered", "ext4.journal", "xfs", "btrfs", "f2fs")
DBMS_SYSTEMS = ("postgresql", "sqlite", "mysql")
ALL_SYSTEMS = OUR_SYSTEMS + FS_SYSTEMS + DBMS_SYSTEMS

_FS_CLASSES = {
    "ext4.ordered": Ext4,
    "ext4.journal": Ext4Journal,
    "xfs": Xfs,
    "btrfs": Btrfs,
    "f2fs": F2fs,
}

_DBMS_CLASSES = {
    "postgresql": PostgresBlobStore,
    "sqlite": SqliteBlobStore,
    "mysql": MysqlBlobStore,
}


class StoreAdapter:
    """``put`` / ``get`` / ``replace`` / ``delete`` / ``stat`` over one
    system, with the system's virtual clock exposed for timing.

    The semantics match the paper's benchmark loops: ``get`` leaves the
    caller with its own copy of the content (the ``memcpy()`` read
    operator), and ``replace`` swaps an entire BLOB (the paper's
    create/replace access pattern).
    """

    name: str

    @property
    def model(self) -> CostModel:
        raise NotImplementedError

    @property
    def device(self) -> SimulatedNVMe:
        raise NotImplementedError

    def put(self, key: bytes, data: bytes) -> None:
        raise NotImplementedError

    def get(self, key: bytes) -> bytes:
        raise NotImplementedError

    def replace(self, key: bytes, data: bytes) -> None:
        self.delete(key)
        self.put(key, data)

    def delete(self, key: bytes) -> None:
        raise NotImplementedError

    def stat(self, key: bytes) -> int:
        """Size lookup (metadata operation, Fig. 7)."""
        raise NotImplementedError

    def drop_caches(self) -> None:
        """Make the next reads cold (Fig. 9)."""
        raise NotImplementedError


class OurStoreAdapter(StoreAdapter):
    """The paper's engine (and its ``.ht`` / ``.physlog`` ablations)."""

    TABLE = "blobs"

    def __init__(self, variant: str, config: EngineConfig) -> None:
        self.name = variant
        self.db = BlobDB(config)
        self.db.create_table(self.TABLE)

    @property
    def model(self) -> CostModel:
        return self.db.model

    @property
    def device(self) -> SimulatedNVMe:
        return self.db.device

    def put(self, key: bytes, data: bytes) -> None:
        with self.db.transaction() as txn:
            self.db.put_blob(txn, self.TABLE, key, data)

    def get(self, key: bytes) -> bytes:
        # read_bytes performs the single client copy (aliasing view).
        return self.db.read_blob(self.TABLE, key)

    def replace(self, key: bytes, data: bytes) -> None:
        with self.db.transaction() as txn:
            self.db.delete_blob(txn, self.TABLE, key)
            self.db.put_blob(txn, self.TABLE, key, data)

    def delete(self, key: bytes) -> None:
        with self.db.transaction() as txn:
            self.db.delete_blob(txn, self.TABLE, key)

    def stat(self, key: bytes) -> int:
        return self.db.get_state(self.TABLE, key).size

    def drop_caches(self) -> None:
        # Settle any open group-commit window, push dirty state out,
        # then empty the buffer pool.
        self.db.drain_commit_window()
        self.db.pool.flush_all_dirty(background=True)
        self.db.pool.drop_all_volatile()


class FsStoreAdapter(StoreAdapter):
    """A file per BLOB on a simulated file system."""

    def __init__(self, fs: SimulatedFilesystem) -> None:
        self.name = fs.name
        self.fs = fs

    @property
    def model(self) -> CostModel:
        return self.fs.model

    @property
    def device(self) -> SimulatedNVMe:
        return self.fs.device

    @staticmethod
    def _path(key: bytes) -> str:
        return "/" + key.hex()

    def put(self, key: bytes, data: bytes) -> None:
        self.fs.write_file(self._path(key), data)

    def get(self, key: bytes) -> bytes:
        # pread copies kernel->user; the application's read operator
        # copies again — the two memcpys of Section V-B.
        data = self.fs.read_file(self._path(key))
        self.model.memcpy(len(data))
        return data

    def replace(self, key: bytes, data: bytes) -> None:
        # Overwrite via truncate+write, like applications replacing a
        # file in place (the ftruncate cost of Fig. 6c).
        self.fs.write_file(self._path(key), data)

    def delete(self, key: bytes) -> None:
        self.fs.unlink(self._path(key))

    def stat(self, key: bytes) -> int:
        return self.fs.stat(self._path(key)).size

    def drop_caches(self) -> None:
        self.fs.drop_caches()


class DbmsStoreAdapter(StoreAdapter):
    """PostgreSQL / SQLite / MySQL baseline models."""

    def __init__(self, store) -> None:
        self.name = store.name
        self.store = store

    @property
    def model(self) -> CostModel:
        return self.store.model

    @property
    def device(self) -> SimulatedNVMe:
        return self.store.device

    def put(self, key: bytes, data: bytes) -> None:
        self.store.put(key, data)

    def get(self, key: bytes) -> bytes:
        data = self.store.get(key)
        self.model.memcpy(len(data))  # the application's read operator
        return data

    def delete(self, key: bytes) -> None:
        self.store.delete(key)

    def stat(self, key: bytes) -> int:
        self.store.model.sql_statement()
        size = self.store._primary.lookup(key)
        if self.store.client_server:
            self.store.model.ipc_roundtrip(64)
        return size

    def drop_caches(self) -> None:
        pass  # baselines are excluded from the cold-cache experiments


def make_store(name: str, *, capacity_bytes: int = 1 << 30,
               buffer_bytes: int = 256 << 20,
               params: CostParams | None = None,
               **engine_overrides) -> StoreAdapter:
    """Build any system under test over its own device and cost model."""
    page = 4096
    capacity_pages = capacity_bytes // page
    if name in OUR_SYSTEMS:
        config = EngineConfig(
            device_pages=capacity_pages,
            buffer_pool_pages=buffer_bytes // page,
            wal_pages=min(capacity_pages // 8, 65536),
            catalog_pages=min(capacity_pages // 16, 8192),
            pool="hashtable" if name == "our.ht" else "vmcache",
            log_policy="physlog" if name == "our.physlog" else "async-blob",
            **engine_overrides,
        )
        adapter = OurStoreAdapter(name, config)
        if params is not None:
            adapter.db.model.params = params
        return adapter
    model = CostModel(params)
    device = make_device(model, capacity_pages=capacity_pages,
                         page_size=page)
    if name in _FS_CLASSES:
        return FsStoreAdapter(_FS_CLASSES[name](model, device))
    if name in _DBMS_CLASSES:
        return DbmsStoreAdapter(_DBMS_CLASSES[name](model, device))
    raise ValueError(f"unknown system {name!r}; pick from {ALL_SYSTEMS}")
