"""Benchmark harness: uniform store adapters, runners, result tables.

Every system under test — the engine variants (``our``, ``our.ht``,
``our.physlog``), the four file systems, and the three DBMS baselines —
is wrapped in one :class:`StoreAdapter` interface so each figure's
benchmark is a single loop over systems.  Throughput is simulated
transactions per simulated second, read from each system's virtual
clock.
"""

from repro.bench.adapters import (
    ALL_SYSTEMS,
    DBMS_SYSTEMS,
    FS_SYSTEMS,
    OUR_SYSTEMS,
    StoreAdapter,
    make_store,
)
from repro.bench.harness import RunResult, print_table, run_ycsb

__all__ = [
    "StoreAdapter",
    "make_store",
    "ALL_SYSTEMS",
    "OUR_SYSTEMS",
    "FS_SYSTEMS",
    "DBMS_SYSTEMS",
    "RunResult",
    "run_ycsb",
    "print_table",
]
