"""Pinned-seed benchmark baseline suite and the perf-regression gate.

``run_suite`` executes a small, fully deterministic benchmark suite —
YCSB at two payload sizes plus the synthetic Wikipedia corpus — on the
paper's engine and distills each workload into the numbers a perf PR is
judged by: virtual-time throughput, per-op latency quantiles, write
amplification by category, WAL flush/checkpoint counts, and buffer-pool
behaviour.  Because every quantity derives from the virtual clock and
seeded RNGs, two runs of the same code produce *identical* JSON — a perf
change shows up as a diff, noise cannot.

``compare`` is the gate: given a committed ``BENCH_<label>.json``
baseline and a fresh run, it fails on any >10 % regression in
throughput, p99 latency, or write amplification.  CI runs it against
``benchmarks/BENCH_seed.json``; refresh the baseline in the same PR as
an intentional perf change.
"""

from __future__ import annotations

import json

from repro.obs.metrics import Histogram
from repro.sim.clock import Stopwatch

#: Bump when the suite's workloads change incompatibly; the gate refuses
#: to compare across versions instead of reporting phantom regressions.
SUITE_VERSION = 1

#: Relative slack of the regression gate (10 %).
DEFAULT_TOLERANCE = 0.10

#: Metrics the gate checks: (json key path, direction, human name).
#: ``direction`` +1 means higher-is-better, -1 means lower-is-better.
GATED_METRICS = (
    (("throughput_ops_s",), +1, "throughput"),
    (("latency_us", "p99"), -1, "p99 latency"),
    (("write_amplification",), -1, "write amplification"),
)


def _engine_store():
    from repro.bench.adapters import make_store
    # A 200 us group-commit window: commits inside it share one WAL
    # flush and one sorted extent batch (the paper's group commit,
    # Section V-A, extended across the whole commit window).
    return make_store("our", capacity_bytes=1 << 30,
                      buffer_bytes=256 << 20,
                      group_commit_window_ns=200_000.0)


def _workload_result(store, ops: int, elapsed_ns: int, latency: Histogram,
                     payload_bytes: int) -> dict:
    """Distill one finished workload run into the gated JSON shape."""
    db = store.db
    # Settle any open group-commit window so deferred writes are
    # accounted — write amplification must not hide queued work.
    db.drain_commit_window()
    device = db.device
    report = db.stats_report()
    written = device.stats.bytes_written
    lat = latency.summary()
    return {
        "ops": ops,
        "elapsed_virtual_ms": round(elapsed_ns / 1e6, 3),
        "throughput_ops_s": round(ops * 1e9 / elapsed_ns, 1)
        if elapsed_ns else 0.0,
        "latency_us": {
            "mean": round(lat["mean"] / 1000, 1),
            "p50": round(lat["p50"] / 1000, 1),
            "p95": round(lat["p95"] / 1000, 1),
            "p99": round(lat["p99"] / 1000, 1),
            "max": round(lat["max"] / 1000, 1),
        },
        "payload_bytes": payload_bytes,
        "write_amplification": round(written / payload_bytes, 4)
        if payload_bytes else 0.0,
        "bytes_written_by_category": {
            k: v for k, v in sorted(
                device.stats.bytes_written_by_category.items()) if v},
        "wal": {
            "records": report.wal_records,
            "sync_flushes": report.wal_synchronous_flushes,
            "checkpoints": report.checkpoints_taken,
        },
        "pool": {
            "hit_ratio": round(report.pool_hit_ratio, 4),
            "evictions": report.pool_evictions,
        },
    }


def _run_ycsb(payload: int, n_records: int, n_ops: int, seed: int) -> dict:
    from repro.workloads.ycsb import YcsbConfig, YcsbWorkload

    store = _engine_store()
    config = YcsbConfig(n_records=n_records, payload=payload,
                        read_ratio=0.5, seed=seed)
    workload = YcsbWorkload(config)
    clock = store.model.clock
    latency = Histogram("op_ns")
    payload_bytes = 0
    for key, data in workload.load_phase():
        store.put(key, data)
        payload_bytes += len(data)
    start_ns = clock.now_ns
    ops = 0
    for op, key, data in workload.operations(n_ops):
        with Stopwatch(clock) as sw:
            if op == "read":
                got = store.get(key)
                assert got, "empty read"
            else:
                store.replace(key, data)
                payload_bytes += len(data)
        latency.observe(sw.elapsed_ns)
        ops += 1
    return _workload_result(store, ops, clock.now_ns - start_ns, latency,
                            payload_bytes)


def _run_wikipedia(n_articles: int, n_ops: int, seed: int) -> dict:
    from repro.workloads.wikipedia import WikipediaCorpus

    store = _engine_store()
    corpus = WikipediaCorpus(n_articles=n_articles, seed=seed)
    clock = store.model.clock
    latency = Histogram("op_ns")
    payload_bytes = 0
    for article in corpus.articles:
        content = corpus.content(article)
        store.put(article.title, content)
        payload_bytes += len(content)
    sample = corpus.view_sampler(seed=seed + 1)
    start_ns = clock.now_ns
    ops = 0
    for i in range(n_ops):
        article = sample()
        with Stopwatch(clock) as sw:
            if i % 10 == 9:  # 10 % hot-article rewrites
                content = corpus.content(article)
                store.replace(article.title, content)
                payload_bytes += len(content)
            else:
                got = store.get(article.title)
                assert len(got) == article.size
        latency.observe(sw.elapsed_ns)
        ops += 1
    return _workload_result(store, ops, clock.now_ns - start_ns, latency,
                            payload_bytes)


#: Queue depths of the iodepth sweep (powers of four up to past the
#: simulated device's submission-queue limit).
IODEPTH_SWEEP = (1, 4, 16, 64)


def _run_iodepth(queue_depth: int) -> dict:
    """One point of the queue-depth sweep.

    Scattered 4-page extent reads (plus periodic write batches) are
    pushed through an :class:`~repro.io.IoScheduler` pinned to
    ``queue_depth``; everything else — request sequence, extent
    placement, payload bytes — is identical across depths, so the sweep
    isolates how submission-queue depth shapes latency overlap.
    """
    import random

    from repro.io import IoScheduler
    from repro.sim.cost import CostModel
    from repro.storage.factory import make_device

    model = CostModel()
    device = make_device(model, capacity_pages=4096)
    sched = IoScheduler(device, model, queue_depth=queue_depth,
                        max_merge_pages=64)
    ps = device.page_size
    n_extents, ext_pages = 256, 4
    rng = random.Random(11)
    # Preload every extent off the timed path.
    for idx in range(n_extents):
        device.write(idx * ext_pages, rng.randbytes(ext_pages * ps),
                     background=True)
    written_before = device.stats.bytes_written
    clock = model.clock
    latency = Histogram("batch_ns")
    start_ns = clock.now_ns
    ops = 0
    payload_bytes = 0
    for round_no in range(24):
        read_idx = rng.sample(range(n_extents), 44)
        write_idx = rng.sample(range(n_extents), 16) \
            if round_no % 3 == 2 else []
        write_data = [rng.randbytes(ext_pages * ps) for _ in write_idx]
        with Stopwatch(clock) as sw:
            for idx in read_idx:
                sched.submit_read(idx * ext_pages, ext_pages)
            sched.drain()
            for idx, data in zip(write_idx, write_data):
                sched.submit_write(idx * ext_pages, data)
            if write_idx:
                sched.drain()
        latency.observe(sw.elapsed_ns)
        ops += len(read_idx) + len(write_idx)
        payload_bytes += sum(len(d) for d in write_data)
    elapsed_ns = clock.now_ns - start_ns
    written = device.stats.bytes_written - written_before
    lat = latency.summary()
    return {
        "ops": ops,
        "elapsed_virtual_ms": round(elapsed_ns / 1e6, 3),
        "throughput_ops_s": round(ops * 1e9 / elapsed_ns, 1)
        if elapsed_ns else 0.0,
        "latency_us": {
            "mean": round(lat["mean"] / 1000, 1),
            "p50": round(lat["p50"] / 1000, 1),
            "p95": round(lat["p95"] / 1000, 1),
            "p99": round(lat["p99"] / 1000, 1),
            "max": round(lat["max"] / 1000, 1),
        },
        "payload_bytes": payload_bytes,
        "write_amplification": round(written / payload_bytes, 4)
        if payload_bytes else 0.0,
        "queue_depth": queue_depth,
        "io": {
            "requests_in": sched.stats.requests_in,
            "requests_out": sched.stats.requests_out,
            "coalesce_ratio": round(sched.stats.coalesce_ratio, 4),
            "drains": sched.stats.drains,
        },
    }


def run_iodepth_sweep(depths: tuple[int, ...] = IODEPTH_SWEEP) -> dict:
    """The full queue-depth sweep as one JSON-ready document."""
    return {
        "suite_version": SUITE_VERSION,
        "sweep": [_run_iodepth(qd) for qd in depths],
    }


#: Shard counts of the sharded-engine sweep.
SHARD_SWEEP = (1, 2, 4, 8)

#: Zipf skew of the adversarial sweep point (paper-standard hot-key
#: skew; ~half of the samples land on a handful of keys).
SHARD_SKEW_THETA = 0.99


def _run_shards(n_shards: int, zipf_theta: float, *, n_records: int = 96,
                n_batches: int = 24, batch: int = 128,
                payload: int = 4096, seed: int = 3) -> dict:
    """One point of the sharded scatter-gather sweep (ycsb_4k shape).

    A fixed key population is hash-partitioned over ``n_shards``
    independent engines; each round issues one ``multiget`` (or, every
    fourth round, one ``multiput`` replace) of ``batch`` sampled keys.
    The observed batch latency is the router's makespan — uniform
    sampling splits the batch evenly and the makespan shrinks with the
    shard count; Zipf-``theta`` sampling piles the batch onto the hot
    key's shard and the makespan collapses back toward serial.
    """
    import random

    from repro.db.config import EngineConfig
    from repro.shard import ShardedBlobDB
    from repro.workloads.ycsb import zipf_sampler

    config = EngineConfig(device_pages=16384, wal_pages=512,
                          catalog_pages=128, buffer_pool_pages=4096)
    sdb = ShardedBlobDB(n_shards=n_shards, config=config)
    rng = random.Random(seed)
    keys = [b"user%010d" % i for i in range(n_records)]
    payload_bytes = 0
    # Load phase (untimed): populate every key via scattered batches.
    for lo in range(0, n_records, 32):
        items = [(key, rng.randbytes(payload))
                 for key in keys[lo:lo + 32]]
        sdb.multiput(items)
        payload_bytes += sum(len(data) for _, data in items)
    if zipf_theta > 0:
        sample = zipf_sampler(n_records, zipf_theta, rng)
    else:
        def sample() -> int:
            return rng.randrange(n_records)
    clock = sdb.model.clock
    latency = Histogram("batch_ns")
    start_ns = clock.now_ns
    ops = 0
    for round_no in range(n_batches):
        idx = [sample() for _ in range(batch)]
        if round_no % 4 == 3:
            # Replace batch: duplicates are deliberate — a skewed
            # stream hammers the hot key, and every hit is an upsert
            # the hot shard must serialize (last writer wins).
            items = [(keys[i], rng.randbytes(payload)) for i in idx]
            with Stopwatch(clock) as sw:
                sdb.multiput(items)
            payload_bytes += sum(len(data) for _, data in items)
        else:
            with Stopwatch(clock) as sw:
                got = sdb.multiget([keys[i] for i in idx])
            assert all(len(data) == payload for data in got)
        latency.observe(sw.elapsed_ns)
        ops += len(idx)
    sdb.drain_commit_window()
    elapsed_ns = clock.now_ns - start_ns
    written = sum(shard.device.stats.bytes_written for shard in sdb.shards)
    report = sdb.stats_report()
    lat = latency.summary()
    return {
        "ops": ops,
        "elapsed_virtual_ms": round(elapsed_ns / 1e6, 3),
        "throughput_ops_s": round(ops * 1e9 / elapsed_ns, 1)
        if elapsed_ns else 0.0,
        "latency_us": {
            "mean": round(lat["mean"] / 1000, 1),
            "p50": round(lat["p50"] / 1000, 1),
            "p95": round(lat["p95"] / 1000, 1),
            "p99": round(lat["p99"] / 1000, 1),
            "max": round(lat["max"] / 1000, 1),
        },
        "payload_bytes": payload_bytes,
        "write_amplification": round(written / payload_bytes, 4)
        if payload_bytes else 0.0,
        "n_shards": n_shards,
        "zipf_theta": zipf_theta,
        "shard": {
            "fanout_batches": report.shard_fanout_batches,
            "routed_keys": report.shard_routed_keys,
            "imbalance": round(report.shard_imbalance, 4),
            "keys_per_shard": report.shard_keys_per_shard,
        },
    }


def run_shard_sweep(shards: tuple[int, ...] = SHARD_SWEEP) -> dict:
    """Shard-count sweep (uniform keys) plus one Zipf-skewed point."""
    points = [_run_shards(n, 0.0) for n in shards]
    points.append(_run_shards(shards[-1], SHARD_SKEW_THETA))
    return {
        "suite_version": SUITE_VERSION,
        "sweep": points,
    }


def shard_sweep_self_check(first: dict, second: dict) -> list[str]:
    """The sweep's acceptance checks; non-empty return = failure.

    Enforced by ``repro bench shards`` (and therefore by the CI
    perf-gate job): the sweep must be deterministic, uniform-key
    throughput must rise monotonically with the shard count and reach
    >=3x at the widest point, and Zipf skew must measurably degrade the
    widest point — if it doesn't, the makespan model is broken.
    """
    failures: list[str] = []
    if render(first) != render(second):
        failures.append("shard sweep not deterministic: two runs differ")
    uniform = [p for p in first["sweep"] if p["zipf_theta"] == 0.0]
    tp = [p["throughput_ops_s"] for p in uniform]
    for a, b in zip(tp, tp[1:]):
        if b < a:
            failures.append(
                f"throughput not monotone in shard count: {a} -> {b}")
    if tp and tp[-1] < 3.0 * tp[0]:
        failures.append(
            f"insufficient speedup at {uniform[-1]['n_shards']} shards: "
            f"{tp[-1] / tp[0]:.2f}x < 3x")
    skewed = [p for p in first["sweep"] if p["zipf_theta"] > 0.0]
    for point in skewed:
        peer = [p for p in uniform if p["n_shards"] == point["n_shards"]]
        if peer and point["throughput_ops_s"] >= 0.8 * \
                peer[0]["throughput_ops_s"]:
            failures.append(
                f"Zipf {point['zipf_theta']} skew shows no degradation at "
                f"{point['n_shards']} shards: "
                f"{point['throughput_ops_s']} vs uniform "
                f"{peer[0]['throughput_ops_s']}")
    return failures


#: Group-commit windows (virtual ns) of the WAL-placement sweep: a
#: durable ack per commit, then windows covering ~25 and ~100 commits —
#: enough amortization to shrink the PMem gap without erasing it.
PMEM_COMMIT_WINDOWS_NS = (0.0, 20_000.0, 80_000.0)

#: Stripe widths of the multi-device data sweep.
PMEM_STRIPE_SWEEP = (1, 2, 4)

#: Required speedup of the widest stripe point over one device.
PMEM_STRIPE_MIN_SPEEDUP = 2.0


def _run_pmem_commit(window_ns: float, on_pmem: bool) -> dict:
    """One point of the WAL-placement durable-commit latency sweep.

    A fixed insert/commit stream runs against two engines that differ
    *only* in where the WAL ring lives: on the byte-addressable PMem
    tier (byte appends, persist priced as cache-line flush + fence) or
    on the block NVMe (page round-up + fdatasync).  The client requires
    a *durable* acknowledgment at every group-commit window boundary —
    window 0 syncs every commit, a wider window lets commits share one
    sync — so the sweep shows how far amortization closes the gap.
    PMem must win at *every* window for the placement policy to be
    unconditional.
    """
    import random

    from repro.db.config import EngineConfig
    from repro.db.database import BlobDB

    config = EngineConfig(device_pages=16384, wal_pages=512,
                          catalog_pages=512, buffer_pool_pages=4096,
                          group_commit_window_ns=window_ns,
                          pmem_pages=2048 if on_pmem else 0)
    db = BlobDB(config)
    db.create_table("t")
    rng = random.Random(29)
    payload = 8192
    payload_bytes = 0
    # Load phase (untimed): warm the pool and the WAL ring.
    for i in range(16):
        txn = db.begin()
        db.put(txn, "t", b"warm%04d" % i, rng.randbytes(payload))
        db.commit(txn)
        payload_bytes += payload
    db.drain_commit_window()
    db.wal.sync_flush()
    clock = db.model.clock
    latency = Histogram("commit_ns")
    deadline: float | None = None
    start_ns = clock.now_ns
    ops = 0
    for i in range(160):
        data = rng.randbytes(payload)
        with Stopwatch(clock) as sw:
            txn = db.begin()
            db.put(txn, "t", b"pm%05d" % i, data)
            db.commit(txn)
            if deadline is None:
                deadline = clock.now_ns + window_ns
            if clock.now_ns >= deadline:
                # The window closed on this commit: it drains the group
                # and pays the synchronous durability point for everyone
                # who rode along.
                db.drain_commit_window()
                db.wal.sync_flush()
                deadline = None
        latency.observe(sw.elapsed_ns)
        payload_bytes += payload
        ops += 1
    db.drain_commit_window()
    db.wal.sync_flush()
    elapsed_ns = clock.now_ns - start_ns
    report = db.stats_report()
    written = sum(
        sum(dev.stats.bytes_written_by_category.values())
        for dev in db.storage.devices)
    lat = latency.summary()
    return {
        "ops": ops,
        "elapsed_virtual_ms": round(elapsed_ns / 1e6, 3),
        "throughput_ops_s": round(ops * 1e9 / elapsed_ns, 1)
        if elapsed_ns else 0.0,
        "latency_us": {
            # Three decimals: wide windows amortize the sync down to
            # tens of ns per op, and the strictly-below gate compares
            # these rounded values.
            "mean": round(lat["mean"] / 1000, 3),
            "p50": round(lat["p50"] / 1000, 3),
            "p95": round(lat["p95"] / 1000, 3),
            "p99": round(lat["p99"] / 1000, 3),
            "max": round(lat["max"] / 1000, 3),
        },
        "payload_bytes": payload_bytes,
        "write_amplification": round(written / payload_bytes, 4)
        if payload_bytes else 0.0,
        "window_us": round(window_ns / 1000, 1),
        "wal_on": report.wal_device_kind,
        "wal": {
            "records": report.wal_records,
            "sync_flushes": report.wal_synchronous_flushes,
            "byte_appends": report.wal_byte_appends,
            "pmem_bytes": report.pmem_bytes_written,
        },
    }


def _run_pmem_stripe(n_devices: int) -> dict:
    """One point of the striped multiget/flush throughput sweep.

    The same scattered 8-page extent reads (plus periodic write-back
    batches) from the iodepth sweep, pushed through an
    :class:`~repro.io.IoScheduler` over a :class:`StripedDevice` of
    ``n_devices`` members.  The request stream is identical across
    widths; only the number of independent SQ/CQ queues absorbing it
    changes, so the sweep isolates the makespan win of striping.
    """
    import random

    from repro.io import IoScheduler
    from repro.sim.cost import CostModel
    from repro.storage.factory import make_device

    model = CostModel()
    ext_pages = 8
    device = make_device(model, capacity_pages=8192, kind="striped",
                         n_devices=n_devices, stripe_pages=ext_pages)
    sched = IoScheduler(device, model, queue_depth=32, max_merge_pages=64)
    ps = device.page_size
    n_extents = 128
    rng = random.Random(13)
    for idx in range(n_extents):  # untimed preload
        device.write(idx * ext_pages, rng.randbytes(ext_pages * ps),
                     background=True)
    written_before = device.stats.bytes_written
    clock = model.clock
    latency = Histogram("batch_ns")
    start_ns = clock.now_ns
    ops = 0
    payload_bytes = 0
    for round_no in range(24):
        read_idx = rng.sample(range(n_extents), 96)
        write_idx = rng.sample(range(n_extents), 32) \
            if round_no % 3 == 2 else []
        write_data = [rng.randbytes(ext_pages * ps) for _ in write_idx]
        with Stopwatch(clock) as sw:
            for idx in read_idx:
                sched.submit_read(idx * ext_pages, ext_pages)
            sched.drain()
            for idx, data in zip(write_idx, write_data):
                sched.submit_write(idx * ext_pages, data)
            if write_idx:
                sched.drain()
        latency.observe(sw.elapsed_ns)
        ops += len(read_idx) + len(write_idx)
        payload_bytes += sum(len(d) for d in write_data)
    elapsed_ns = clock.now_ns - start_ns
    written = device.stats.bytes_written - written_before
    lat = latency.summary()
    return {
        "ops": ops,
        "elapsed_virtual_ms": round(elapsed_ns / 1e6, 3),
        "throughput_ops_s": round(ops * 1e9 / elapsed_ns, 1)
        if elapsed_ns else 0.0,
        "latency_us": {
            "mean": round(lat["mean"] / 1000, 1),
            "p50": round(lat["p50"] / 1000, 1),
            "p95": round(lat["p95"] / 1000, 1),
            "p99": round(lat["p99"] / 1000, 1),
            "max": round(lat["max"] / 1000, 1),
        },
        "payload_bytes": payload_bytes,
        "write_amplification": round(written / payload_bytes, 4)
        if payload_bytes else 0.0,
        "n_devices": n_devices,
        "io": {
            "requests_in": sched.stats.requests_in,
            "requests_out": sched.stats.requests_out,
            "coalesce_ratio": round(sched.stats.coalesce_ratio, 4),
            "drains": sched.stats.drains,
        },
    }


def run_pmem_sweep() -> dict:
    """WAL-placement and stripe-width sweeps as one JSON document."""
    commit = []
    for window_ns in PMEM_COMMIT_WINDOWS_NS:
        for on_pmem in (False, True):
            commit.append(_run_pmem_commit(window_ns, on_pmem))
    return {
        "suite_version": SUITE_VERSION,
        "commit": commit,
        "stripe": [_run_pmem_stripe(k) for k in PMEM_STRIPE_SWEEP],
    }


def pmem_self_check(first: dict, second: dict) -> list[str]:
    """The heterogeneous-storage sweep's acceptance checks.

    Enforced by ``repro bench pmem`` (and the CI perf-gate job): the
    sweep must be deterministic, WAL-on-PMem commit latency must be
    *strictly* below WAL-on-NVMe at every group-commit window, and
    stripe throughput must rise monotonically with the width and reach
    >=2x at 4 devices — otherwise the byte-append fast path or the
    makespan pricing is broken.
    """
    failures: list[str] = []
    if render(first) != render(second):
        failures.append("pmem sweep not deterministic: two runs differ")
    by_window: dict[float, dict[str, dict]] = {}
    for point in first["commit"]:
        by_window.setdefault(point["window_us"], {})[point["wal_on"]] = \
            point
    for window_us in sorted(by_window):
        pair = by_window[window_us]
        pmem = pair["pmem"]["latency_us"]["mean"]
        nvme = pair["nvme"]["latency_us"]["mean"]
        if not pmem < nvme:
            failures.append(
                f"WAL-on-PMem not below NVMe at window {window_us} us: "
                f"{pmem} vs {nvme} us mean commit")
    tp = [p["throughput_ops_s"] for p in first["stripe"]]
    widths = [p["n_devices"] for p in first["stripe"]]
    for (wa, a), (wb, b) in zip(zip(widths, tp), zip(widths[1:], tp[1:])):
        if b < a:
            failures.append(
                f"stripe throughput not monotone: x{wa} {a} -> x{wb} {b}")
    if tp and tp[-1] < PMEM_STRIPE_MIN_SPEEDUP * tp[0]:
        failures.append(
            f"insufficient stripe speedup at {widths[-1]} devices: "
            f"{tp[-1] / tp[0]:.2f}x < {PMEM_STRIPE_MIN_SPEEDUP}x")
    return failures


#: Quorum sizes of the replication sweep (3-member groups).
REPLICATION_QUORUMS = (1, 2, 3)

#: Seeded fault schedules of the availability storm.
REPLICATION_STORM_SCHEDULES = 100

#: Simulated upper bound on one failover's group-clock duration; a
#: promotion that takes longer than this (20 ms) means retry backoff or
#: catch-up work has run away and availability is fiction.
REPLICATION_FAILOVER_BOUND_US = 20_000.0


def _run_replication(quorum: int, *, n_ops: int = 48,
                     payload: int = 2048, seed: int = 5) -> dict:
    """One point of the quorum commit-latency sweep.

    A 3-member replica group on deliberately *heterogeneous* links —
    shared memory (primary-local, unused), RDMA, TCP — commits a fixed
    put/read mix.  The only thing that varies across points is the
    quorum size, so the sweep isolates what a quorum buys: ``q=1`` never
    waits for a link, ``q=2`` waits for the fastest (RDMA) ack and
    hides the slow TCP replica, ``q=3`` pays the slowest link on every
    commit.  Commit latency must be *strictly* increasing in the quorum
    size (enforced by :func:`replication_self_check`).
    """
    import random

    from repro.db.config import EngineConfig
    from repro.net.transport import RDMA, SHARED_MEMORY, TCP_ETHERNET
    from repro.replica import ReplicaGroup

    config = EngineConfig(device_pages=16384, wal_pages=512,
                          catalog_pages=128, buffer_pool_pages=4096)
    group = ReplicaGroup(n_replicas=2, quorum=quorum, config=config,
                         transport=[SHARED_MEMORY, RDMA, TCP_ETHERNET],
                         name=f"bench_q{quorum}")
    rng = random.Random(seed)
    keys = [b"rep%05d" % i for i in range(16)]
    payload_bytes = 0
    # Load phase (untimed): populate every key once.
    for key in keys:
        group.put(key, rng.randbytes(payload))
        payload_bytes += payload
    clock = group.model.clock
    latency = Histogram("commit_ns")
    start_ns = clock.now_ns
    ops = 0
    for i in range(n_ops):
        key = keys[i % len(keys)]
        with Stopwatch(clock) as sw:
            if i % 3 == 2:
                got = group.read_any(key)
                assert len(got) == payload
            else:
                group.put(key, rng.randbytes(payload))
                payload_bytes += payload
        latency.observe(sw.elapsed_ns)
        ops += 1
    group.drain()
    elapsed_ns = clock.now_ns - start_ns
    written = sum(m.db.device.stats.bytes_written for m in group.members)
    report = group.stats_report()
    lat = latency.summary()
    return {
        "ops": ops,
        "elapsed_virtual_ms": round(elapsed_ns / 1e6, 3),
        "throughput_ops_s": round(ops * 1e9 / elapsed_ns, 1)
        if elapsed_ns else 0.0,
        "latency_us": {
            "mean": round(lat["mean"] / 1000, 2),
            "p50": round(lat["p50"] / 1000, 2),
            "p95": round(lat["p95"] / 1000, 2),
            "p99": round(lat["p99"] / 1000, 2),
            "max": round(lat["max"] / 1000, 2),
        },
        "payload_bytes": payload_bytes,
        "write_amplification": round(written / payload_bytes, 4)
        if payload_bytes else 0.0,
        "quorum": quorum,
        "replication": {
            "acked_writes": report.replica_acked_writes,
            "records_shipped": report.replica_records_shipped,
            "ship_retries": report.replica_ship_retries,
            "max_lag_records": report.replica_max_lag_records,
            "stale_reads": report.replica_stale_reads,
        },
    }


def _storm_schedule(seed: int) -> tuple[str, dict]:
    """One seeded kill-and-recover schedule of the availability storm.

    Writes (and deletes) through a faulty-linked 3-member quorum-2
    group, kills the primary mid-batch at a drawn point, audits the
    failed-over group for the zero-loss contract, rejoins the deposed
    primary, and converges.  Returns a canonical counter line (digest
    input) plus the violation counts the self-check gates on.
    """
    import random

    from repro.db.config import EngineConfig
    from repro.db.errors import DatabaseError
    from repro.replica import ReplicaGroup
    from repro.storage.faults import FaultPlanFactory, FaultSpec

    config = EngineConfig(device_pages=16384, wal_pages=512,
                          catalog_pages=128, buffer_pool_pages=4096)
    links = FaultPlanFactory(FaultSpec(
        seed=seed, network_error=0.04,
        latency_spike=0.02, latency_spike_ns=400_000.0,
        partition=0.01, partition_max_ns=2_000_000.0))
    group = ReplicaGroup(n_replicas=2, quorum=2, config=config,
                         link_faults=links, name=f"storm{seed}")
    rng = random.Random(seed)
    acked: dict[bytes, bytes] = {}
    deleted: list[bytes] = []
    for i in range(20):
        key = b"st%04d" % i
        data = rng.randbytes(rng.randrange(64, 320))
        group.put(key, data)
        acked[key] = data
    for key in sorted(acked)[:3]:
        group.delete(key)
        del acked[key]
        deleted.append(key)
    old_primary = group.primary_id
    mid_key, mid_data = b"st-mid", rng.randbytes(128)
    n_ships = rng.randrange(0, 3)
    group.crash_primary(mid_record=(mid_key, mid_data, n_ships))
    # Audit 1, on the freshly promoted primary: every acknowledged
    # write readable byte-exact, every acknowledged delete gone, and
    # the unacknowledged mid-crash record all-or-nothing.
    lost = 0
    torn = 0
    for key, data in sorted(acked.items()):
        try:
            if group.get(key) != data:
                lost += 1
        except DatabaseError:
            lost += 1
    for key in deleted:
        if group.exists(key):
            lost += 1
    mid_kept = group.exists(mid_key)
    if mid_kept and group.get(mid_key) != mid_data:
        torn += 1
    group.rejoin(old_primary)
    # Converge: repeated catch-up rounds let member clocks walk past
    # any open partition window (each retry's backoff advances them).
    for _ in range(20):
        group.catch_up()
        if group.max_lag() == 0:
            break
    residual_lag = group.max_lag()
    # Audit 2, after the deposed primary rejoined and was truncated.
    for key, data in sorted(acked.items()):
        try:
            if group.get(key) != data:
                lost += 1
        except DatabaseError:
            lost += 1
    stats = group.stats
    line = (f"s{seed} epoch={group.epoch} primary={group.primary_id} "
            f"acked={stats.acked_writes} shipped={stats.records_shipped} "
            f"retries={group.ship_retries()} fenced={stats.fenced_ships} "
            f"trunc={stats.truncated_records} "
            f"mid={'kept' if mid_kept else 'dropped'} "
            f"lag={residual_lag} "
            f"failover_ns={int(stats.last_failover_ns)}")
    return line, {
        "lost": lost,
        "torn": torn,
        "mid_kept": 1 if mid_kept else 0,
        "failovers": stats.failovers,
        "rejoins": stats.rejoins,
        "acked_writes": stats.acked_writes,
        "records_shipped": stats.records_shipped,
        "ship_retries": group.ship_retries(),
        "fenced_ships": stats.fenced_ships,
        "truncated_records": stats.truncated_records,
        "failover_ns": stats.last_failover_ns,
    }


def run_replication_storm(
        n_schedules: int = REPLICATION_STORM_SCHEDULES,
        base_seed: int = 9000) -> dict:
    """Availability under storm: ``n_schedules`` seeded kill schedules.

    The whole storm reduces to one SHA-256 digest over the canonical
    per-schedule counter lines — same code + same seed must reproduce it
    bit-for-bit, which is what makes a hundred crash/failover/rejoin
    schedules a CI artifact instead of a flaky soak test.
    """
    import hashlib

    lines: list[str] = []
    totals = {"lost": 0, "torn": 0, "mid_kept": 0, "failovers": 0,
              "rejoins": 0, "acked_writes": 0, "records_shipped": 0,
              "ship_retries": 0, "fenced_ships": 0,
              "truncated_records": 0}
    max_failover_ns = 0.0
    for i in range(n_schedules):
        line, counters = _storm_schedule(base_seed + i)
        lines.append(line)
        for key in totals:
            totals[key] += counters[key]
        max_failover_ns = max(max_failover_ns, counters["failover_ns"])
    digest = hashlib.sha256("\n".join(lines).encode("ascii")).hexdigest()
    return {
        "schedules": n_schedules,
        "base_seed": base_seed,
        "digest": digest,
        "lost_acked_writes": totals["lost"],
        "torn_records": totals["torn"],
        "mid_records_survived": totals["mid_kept"],
        "failovers": totals["failovers"],
        "rejoins": totals["rejoins"],
        "acked_writes": totals["acked_writes"],
        "records_shipped": totals["records_shipped"],
        "ship_retries": totals["ship_retries"],
        "fenced_ships": totals["fenced_ships"],
        "truncated_records": totals["truncated_records"],
        "max_failover_us": round(max_failover_ns / 1000, 1),
    }


def run_replication_sweep() -> dict:
    """Quorum-latency sweep plus the availability storm, one document."""
    return {
        "suite_version": SUITE_VERSION,
        "sweep": [_run_replication(q) for q in REPLICATION_QUORUMS],
        "storm": run_replication_storm(),
    }


def replication_self_check(first: dict, second: dict) -> list[str]:
    """The replication sweep's acceptance checks; non-empty = failure.

    Enforced by ``repro bench replication`` (and the CI perf-gate job):
    the sweep and storm must be deterministic (two in-process runs,
    identical rendering — digest included), commit latency must be
    *strictly* increasing in quorum size, and the storm must show real
    failovers, zero lost acknowledged writes, no torn records, and
    bounded failover makespans.
    """
    failures: list[str] = []
    if render(first) != render(second):
        failures.append("replication sweep not deterministic: runs differ")
    by_quorum = {p["quorum"]: p for p in first["sweep"]}
    means = [by_quorum[q]["latency_us"]["mean"]
             for q in sorted(by_quorum)]
    for a, b in zip(means, means[1:]):
        if b <= a:
            failures.append(
                f"commit latency not strictly increasing with quorum: "
                f"{means} us")
            break
    storm = first["storm"]
    if storm["lost_acked_writes"]:
        failures.append(
            f"{storm['lost_acked_writes']} acknowledged writes lost "
            f"across {storm['schedules']} schedules")
    if storm["torn_records"]:
        failures.append(f"{storm['torn_records']} torn mid-crash records")
    if storm["failovers"] < storm["schedules"]:
        failures.append(
            f"only {storm['failovers']} failovers in "
            f"{storm['schedules']} kill schedules")
    if storm["max_failover_us"] > REPLICATION_FAILOVER_BOUND_US:
        failures.append(
            f"failover makespan unbounded: {storm['max_failover_us']} us "
            f"> {REPLICATION_FAILOVER_BOUND_US} us")
    return failures


#: Offered-load multipliers of the open-loop traffic sweep, as
#: fractions of the measured closed-loop capacity: one point well below
#: the knee, one near it, and two past it.
TRAFFIC_SWEEP = (0.25, 1.0, 2.0, 4.0)

#: Token rate of the admission-protected overload point, as a fraction
#: of closed-loop capacity (split evenly across the tenants).
TRAFFIC_ADMIT_FRACTION = 0.4

#: Upper bound on the protected point's p999 latency relative to the
#: unprotected overload point: shedding must cut the tail at least in
#: half or admission control is decorative.
TRAFFIC_P999_PROTECTION = 0.5

#: Tenants and per-tenant op count of every open-loop point.
_TRAFFIC_TENANTS = 2
_TRAFFIC_OPS_PER_TENANT = 100


def _traffic_sim(admission=None):
    from repro.sched import TrafficConfig, TrafficSim

    return TrafficSim(TrafficConfig(
        n_workers=2, n_shards=1, n_keys=32, payload_bytes=4096,
        read_ratio=0.5, seed=17), admission=admission)


def run_traffic_sweep(mults: tuple[float, ...] = TRAFFIC_SWEEP) -> dict:
    """Open-loop traffic sweep over the discrete-event scheduler.

    First a closed-loop run measures the fleet's service capacity (the
    calibration point — the same quantity ``WorkerSim`` estimates
    analytically).  Then each sweep point replays a seeded Poisson
    arrival schedule at a multiple of that capacity through
    :class:`~repro.sched.TrafficSim`: below the knee completed
    throughput tracks offered load; past it throughput saturates and
    p999 latency explodes — the open-loop behaviour a closed-loop
    (or analytic) harness is structurally blind to.  A final pair of
    points replays the worst overload through token-bucket admission
    (shed and queue policies) to show a bounded tail and exact shed
    accounting.
    """
    from repro.sched import AdmissionController, generate_jobs

    closed = _traffic_sim().run_closed(
        _TRAFFIC_TENANTS * 48, tenants=_TRAFFIC_TENANTS)
    capacity = closed.throughput_ops_s

    def jobs_at(mult: float):
        # Per-tenant rate: aggregate offered load = tenants * rate.
        return generate_jobs(
            tenants=_TRAFFIC_TENANTS, per_tenant=_TRAFFIC_OPS_PER_TENANT,
            rate_ops_s=capacity * mult / _TRAFFIC_TENANTS, seed=17,
            n_keys=32, payload_bytes=4096, read_ratio=0.5)

    open_points = []
    for mult in mults:
        point = _traffic_sim().run(jobs_at(mult)).as_dict()
        point["offered_mult"] = mult
        point["admission"] = None
        open_points.append(point)

    admitted_points = []
    for policy in ("shed", "queue"):
        ctl = AdmissionController(
            policy=policy,
            rate_tokens_s=capacity * TRAFFIC_ADMIT_FRACTION
            / _TRAFFIC_TENANTS,
            burst=4.0)
        point = _traffic_sim(admission=ctl).run(
            jobs_at(mults[-1])).as_dict()
        point["offered_mult"] = mults[-1]
        point["admission"] = {
            "policy": policy,
            "rate_fraction": TRAFFIC_ADMIT_FRACTION,
            "burst": 4.0,
        }
        admitted_points.append(point)

    closed_point = closed.as_dict()
    closed_point["offered_mult"] = None
    closed_point["admission"] = None
    return {
        "suite_version": SUITE_VERSION,
        "capacity_ops_s": round(capacity, 1),
        "closed_loop": closed_point,
        "sweep": open_points + admitted_points,
    }


def traffic_self_check(first: dict, second: dict) -> list[str]:
    """The traffic sweep's acceptance checks; non-empty = failure.

    Enforced by ``repro bench traffic`` (and therefore the CI perf-gate
    job): the sweep must be deterministic (two in-process runs render
    byte-identically), open-loop throughput must saturate at a knee
    while p999 grows without admission control, and the admission
    points must show a bounded tail with *exact* shed accounting.
    """
    failures: list[str] = []
    if render(first) != render(second):
        failures.append("traffic sweep not deterministic: two runs differ")
    open_pts = {p["offered_mult"]: p for p in first["sweep"]
                if p["admission"] is None}
    mults = sorted(open_pts)
    capacity = first["capacity_ops_s"]
    low, high = open_pts[mults[0]], open_pts[mults[-1]]
    # Below the knee, completed throughput tracks offered load.
    offered_low = capacity * mults[0]
    if abs(low["throughput_ops_s"] - offered_low) > 0.3 * offered_low:
        failures.append(
            f"below-knee point off its offered load: "
            f"{low['throughput_ops_s']} vs offered {offered_low:.1f}")
    # Past the knee, throughput saturates ...
    knee_pts = [open_pts[m] for m in mults if m >= 2.0]
    if len(knee_pts) >= 2 and knee_pts[-1]["throughput_ops_s"] > \
            1.15 * knee_pts[0]["throughput_ops_s"]:
        failures.append(
            f"no saturation knee: {knee_pts[0]['throughput_ops_s']} -> "
            f"{knee_pts[-1]['throughput_ops_s']} op/s past 2x offered")
    # ... and the unprotected tail explodes.
    if high["latency_us"]["p999"] < 5 * low["latency_us"]["p999"]:
        failures.append(
            f"p999 does not grow across the knee: "
            f"{low['latency_us']['p999']} -> {high['latency_us']['p999']}"
            f" us")
    if any(p["shed"] for p in open_pts.values()):
        failures.append("open-loop points shed without admission control")
    for point in first["sweep"]:
        adm = point["admission"]
        if adm is None:
            continue
        name = f"admission[{adm['policy']}]"
        if point["offered"] != point["admitted"] + point["shed"]:
            failures.append(
                f"{name}: offered {point['offered']} != admitted "
                f"{point['admitted']} + shed {point['shed']}")
        if point["completed"] != point["admitted"]:
            failures.append(
                f"{name}: completed {point['completed']} != admitted "
                f"{point['admitted']}")
        if adm["policy"] == "shed":
            if not point["shed"]:
                failures.append(f"{name}: overload point shed nothing")
            bound = TRAFFIC_P999_PROTECTION * high["latency_us"]["p999"]
            if point["latency_us"]["p999"] >= bound:
                failures.append(
                    f"{name}: p999 not bounded: "
                    f"{point['latency_us']['p999']} us >= {bound:.2f} us "
                    f"({TRAFFIC_P999_PROTECTION:.0%} of unprotected)")
        else:
            if point["shed"]:
                failures.append(
                    f"{name}: queue policy shed {point['shed']} ops")
            if not point["queued_ops"]:
                failures.append(
                    f"{name}: overload point queued nothing")
    return failures


#: Relation-index engines of the adaptive-indexing sweep.
INDEX_ENGINE_SWEEP = ("btree", "art", "learned")

#: (zipf_theta, write_ratio) of the two crossover points: a
#: read-mostly uniform mix where the learned tier's O(log segments)
#: probe beats ART's per-byte node walk, and a write-heavy Zipf-skewed
#: mix that hammers one hot segment with retrains until ART wins.
INDEX_CROSSOVER_POINTS = ((0.0, 0.1), (0.99, 0.8))

#: Required margin of the crossover gate: the winner of each point must
#: beat the loser by at least this factor (measured headroom ~1.2x on
#: the uniform point and ~1.35x on the skewed one).
INDEX_CROSSOVER_MARGIN = 1.1

#: Namespaces of the recursive-scan comparison.
NS_SCAN_WORKLOADS = ("gitclone", "wikipedia")

#: Required speedup of the interval-numbered accelerator over the
#: per-level readdir+getattr walk on both namespaces.
NS_SCAN_MIN_SPEEDUP = 3.0


def _make_index_engine(engine: str):
    """A bare relation index of the given kind on a fresh cost model."""
    from repro.art import ArtTree
    from repro.btree import BTree
    from repro.db.config import EngineConfig
    from repro.lindex import LearnedIndex
    from repro.sim.cost import CostModel

    model = CostModel()
    defaults = EngineConfig()
    if engine == "art":
        return model, ArtTree(model=model)
    if engine == "learned":
        return model, LearnedIndex(model=model,
                                   epsilon=defaults.lindex_epsilon,
                                   delta_max=defaults.lindex_delta_max)
    return model, BTree(node_bytes=defaults.page_size, model=model,
                        key_size=lambda k: len(k))


def _run_index_point(engine: str, zipf_theta: float, write_ratio: float,
                     *, n_slots: int = 2048, n_ops: int = 2400,
                     seed: int = 11) -> dict:
    """One point of the relation-index crossover sweep.

    The index alone is measured — no WAL, no buffer pool — so the point
    isolates exactly what the engines disagree on: probe and maintain
    cost.  Each of ``n_slots`` objects starts with one version key
    (``obj/<slot*1000>``); an op either looks up a slot's latest version
    or inserts the next one.  Uniform sampling spreads inserts thinly
    (the learned tier's deltas absorb them); Zipf sampling piles them
    onto a few hot segments and forces retrain churn.
    """
    import random

    from repro.workloads.ycsb import zipf_sampler

    model, tree = _make_index_engine(engine)
    counts = [0] * n_slots
    for slot in range(n_slots):
        tree.insert(b"obj/%012d" % (slot * 1000), b"v0")
    rng = random.Random(seed)
    if zipf_theta > 0:
        sample = zipf_sampler(n_slots, zipf_theta, rng)
    else:
        def sample() -> int:
            return rng.randrange(n_slots)
    clock = model.clock
    latency = Histogram("op_ns")
    start_ns = clock.now_ns
    reads = writes = 0
    for _ in range(n_ops):
        slot = sample()
        if rng.random() < write_ratio:
            counts[slot] += 1
            with Stopwatch(clock) as sw:
                tree.insert(b"obj/%012d" % (slot * 1000 + counts[slot]),
                            b"v")
            writes += 1
        else:
            with Stopwatch(clock) as sw:
                got = tree.lookup(b"obj/%012d" % (slot * 1000
                                                  + counts[slot]))
            assert got is not None
            reads += 1
        latency.observe(sw.elapsed_ns)
    elapsed_ns = clock.now_ns - start_ns
    lat = latency.summary()
    point = {
        "engine": engine,
        "zipf_theta": zipf_theta,
        "write_ratio": write_ratio,
        "ops": n_ops,
        "reads": reads,
        "writes": writes,
        "entries": len(tree),
        "elapsed_virtual_ms": round(elapsed_ns / 1e6, 3),
        "throughput_ops_s": round(n_ops * 1e9 / elapsed_ns, 1)
        if elapsed_ns else 0.0,
        "latency_us": {
            "mean": round(lat["mean"] / 1000, 3),
            "p50": round(lat["p50"] / 1000, 3),
            "p95": round(lat["p95"] / 1000, 3),
            "p99": round(lat["p99"] / 1000, 3),
            "max": round(lat["max"] / 1000, 3),
        },
        # No device underneath a bare index: the gate key is pinned 0.
        "write_amplification": 0.0,
    }
    if engine == "learned":
        tree_stats = tree.stats()
        point["learned"] = {
            "segments": tree_stats.segment_count,
            "retrains": tree_stats.retrain_count,
            "delta_hits": tree_stats.delta_hit_count,
            "probes": tree_stats.probe_count,
            "max_segment_error": tree_stats.max_segment_error,
        }
    return point


def _run_ns_scan(workload: str, *, seed: int = 17) -> dict:
    """One point of the recursive-scan comparison.

    A directory-shaped namespace (git checkout or a sharded wiki dump)
    is committed as inline rows, then ``readdir -R`` plus subtree
    ``statfs`` run twice: once as the classic per-level decomposition —
    one ``readdir`` per directory, one ``getattr`` per entry — and once
    through the interval-numbered accelerator, where each is one range
    scan.  Listings must match exactly; only the virtual time differs.
    """
    import random

    from repro.db.config import EngineConfig
    from repro.db.database import BlobDB
    from repro.fuse.vfs import BlobFuse

    db = BlobDB(EngineConfig())
    rng = random.Random(seed)
    keys: list[bytes] = []
    if workload == "gitclone":
        # The gitclone trace's tree shape (dirNNNN/fileNNNNNN.c) at
        # bench scale: 24 directories x 15 files.
        table, n_dirs, n_files = "repo", 24, 360
        for i in range(n_files):
            keys.append(b"src/dir%04d/file%06d.c" % (i % n_dirs, i))
    else:
        # Wikipedia titles sharded over two-digit buckets.
        table = "wiki"
        for i in range(240):
            keys.append(b"wiki/%02d/article%08d" % (i % 16, i))
    db.create_table(table)
    for lo in range(0, len(keys), 64):
        with db.transaction() as txn:
            for key in keys[lo:lo + 64]:
                db.put(txn, table, key,
                       rng.randbytes(rng.randrange(40, 200)))
    fs = BlobFuse(db)
    clock = db.model.clock
    with Stopwatch(clock) as plain_sw:
        plain = fs.readdir_recursive("/" + table)
        plain_totals = fs.subtree_statfs("/" + table)
    fs.attach_namespace()
    with Stopwatch(clock) as accel_sw:
        accel = fs.readdir_recursive("/" + table)
        accel_totals = fs.subtree_statfs("/" + table)
    speedup = plain_sw.elapsed_ns / accel_sw.elapsed_ns \
        if accel_sw.elapsed_ns else 0.0
    entries = len(accel)
    elapsed_ns = accel_sw.elapsed_ns
    return {
        "workload": workload,
        "entries": entries,
        "listings_match": plain == accel and plain_totals == accel_totals,
        "plain_us": round(plain_sw.elapsed_ns / 1000, 3),
        "accelerated_us": round(accel_sw.elapsed_ns / 1000, 3),
        "speedup": round(speedup, 2),
        "range_scans": db.ns.range_scans,
        "interval_nodes": db.ns.nodes,
        "subtree": plain_totals,
        # Gated shape: entries listed per second through the
        # accelerator, tail = the two scans' slower one.
        "ops": entries,
        "throughput_ops_s": round(entries * 1e9 / elapsed_ns, 1)
        if elapsed_ns else 0.0,
        "latency_us": {
            "mean": round(elapsed_ns / 2000, 3),
            "p50": round(elapsed_ns / 2000, 3),
            "p95": round(elapsed_ns / 2000, 3),
            "p99": round(elapsed_ns / 2000, 3),
            "max": round(elapsed_ns / 1000, 3),
        },
        "write_amplification": 0.0,
    }


def run_index_sweep() -> dict:
    """Engine crossover plus recursive-scan points as one document."""
    engines = []
    for zipf_theta, write_ratio in INDEX_CROSSOVER_POINTS:
        for engine in INDEX_ENGINE_SWEEP:
            engines.append(_run_index_point(engine, zipf_theta,
                                            write_ratio))
    return {
        "suite_version": SUITE_VERSION,
        "engines": engines,
        "ns_scan": [_run_ns_scan(w) for w in NS_SCAN_WORKLOADS],
    }


def index_self_check(first: dict, second: dict) -> list[str]:
    """The adaptive-indexing sweep's acceptance checks.

    Enforced by ``repro bench index`` (and the CI perf-gate job): the
    sweep must be deterministic, the learned tier must beat ART by
    >=:data:`INDEX_CROSSOVER_MARGIN` on the read-mostly uniform point
    *and* lose to it by the same margin on the write-heavy Zipf point
    (no crossover means either the probe pricing or the retrain pricing
    is broken), and the interval accelerator must list both namespaces
    >=:data:`NS_SCAN_MIN_SPEEDUP` x faster than the per-level walk
    while producing identical listings.
    """
    failures: list[str] = []
    if render(first) != render(second):
        failures.append("index sweep not deterministic: two runs differ")
    by_point: dict[tuple[float, float], dict[str, dict]] = {}
    for point in first["engines"]:
        by_point.setdefault(
            (point["zipf_theta"], point["write_ratio"]), {})[
            point["engine"]] = point
    for (theta, write_ratio), engines in sorted(by_point.items()):
        learned = engines["learned"]["throughput_ops_s"]
        art = engines["art"]["throughput_ops_s"]
        tag = f"theta={theta} writes={write_ratio:.0%}"
        if theta == 0.0:
            if learned < INDEX_CROSSOVER_MARGIN * art:
                failures.append(
                    f"learned tier does not win the uniform point "
                    f"({tag}): {learned} vs ART {art} op/s")
        else:
            if art < INDEX_CROSSOVER_MARGIN * learned:
                failures.append(
                    f"ART does not win the skewed point ({tag}): "
                    f"{art} vs learned {learned} op/s")
        if engines["learned"].get("learned", {}).get("retrains", 0) <= 0 \
                and theta > 0.0:
            failures.append(
                f"no retrain churn on the skewed point ({tag})")
    for point in first["ns_scan"]:
        name = f"ns_scan[{point['workload']}]"
        if not point["listings_match"]:
            failures.append(f"{name}: accelerated listing differs from "
                            f"the per-level walk")
        if point["speedup"] < NS_SCAN_MIN_SPEEDUP:
            failures.append(
                f"{name}: interval scan speedup {point['speedup']}x "
                f"< {NS_SCAN_MIN_SPEEDUP}x")
        if point["range_scans"] < 2:
            failures.append(
                f"{name}: expected >=2 interval range scans, saw "
                f"{point['range_scans']}")
    return failures


def run_suite(label: str = "local") -> dict:
    """Run the pinned-seed suite; returns the JSON-ready document."""
    workloads = {
        # 4 KB rows: the small-object regime (Fig. 5 territory).
        "ycsb_4k": _run_ycsb(payload=4096, n_records=32, n_ops=240,
                             seed=0),
        # 100 KB BLOBs: the paper's mid-size regime (Fig. 6).
        "ycsb_100k": _run_ycsb(payload=100 * 1024, n_records=12,
                               n_ops=60, seed=0),
        # Wikipedia: realistic size distribution + Zipf popularity.
        "wikipedia": _run_wikipedia(n_articles=100, n_ops=150, seed=7),
    }
    # The queue-depth sweep rides in the gated suite so a perf change
    # that hurts deep-queue pipelining fails the same gate.
    for point in run_iodepth_sweep()["sweep"]:
        workloads[f"iodepth_qd{point['queue_depth']}"] = point
    # So does the shard sweep: scatter-gather speedup (and the skewed
    # point's degradation) are perf properties the gate protects.
    for point in run_shard_sweep()["sweep"]:
        name = f"shards_s{point['n_shards']}"
        if point["zipf_theta"] > 0:
            name += f"_zipf{int(point['zipf_theta'] * 100)}"
        workloads[name] = point
    # And the quorum sweep: replication's commit-latency cost curve is
    # a perf property too (the storm stays in `bench replication` —
    # it gates robustness, not throughput).
    for quorum in REPLICATION_QUORUMS:
        workloads[f"replication_q{quorum}"] = _run_replication(quorum)
    # And the heterogeneous-storage sweep: the PMem byte-append win and
    # the stripe makespan win are exactly the perf properties this PR
    # class would regress.
    pmem = run_pmem_sweep()
    for point in pmem["commit"]:
        window = int(point["window_us"])
        workloads[f"pmem_wal_{point['wal_on']}_w{window}us"] = point
    for point in pmem["stripe"]:
        workloads[f"stripe_k{point['n_devices']}"] = point
    # And the adaptive-indexing sweep: the learned/ART crossover and
    # the interval-scan speedup are the perf properties PR-class
    # "indexing" changes would regress.
    index = run_index_sweep()
    for point in index["engines"]:
        name = f"index_{point['engine']}_" + (
            "uniform" if point["zipf_theta"] == 0.0
            else f"zipf{int(point['zipf_theta'] * 100)}")
        workloads[name] = point
    for point in index["ns_scan"]:
        workloads[f"ns_scan_{point['workload']}"] = point
    # And the traffic sweep: the saturation knee, the open-loop tail,
    # and the admission-protected overload point are perf properties —
    # a change that moves the knee or unbounds p999 fails the gate.
    traffic = run_traffic_sweep()
    workloads["traffic_closed"] = traffic["closed_loop"]
    for point in traffic["sweep"]:
        if point["admission"] is None:
            mult = point["offered_mult"]
            name = f"traffic_x{str(mult).replace('.', '')}"
        else:
            name = f"traffic_admit_{point['admission']['policy']}"
        workloads[name] = point
    return {
        "label": label,
        "suite_version": SUITE_VERSION,
        "workloads": workloads,
    }


def host_stamp() -> dict:
    """Provenance of a *finished* run: host wall-clock time.

    Deliberately outside :func:`run_suite` — the suite itself must stay
    byte-identical across runs, and :func:`compare` ignores unknown
    top-level keys, so callers (the CLI) attach this after the fact.
    """
    import time

    return {
        "unix_time": int(time.time()),  # repro: allow[RPR001] host-side provenance stamp, not simulated time
    }


def render(doc: dict) -> str:
    """Canonical byte-stable serialization of a suite document."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write_baseline(path: str, doc: dict) -> None:
    # Baseline JSONs are host artifacts the gate diffs across commits.
    with open(path, "w", encoding="utf-8") as fh:  # repro: allow[RPR004] host baseline artifact
        fh.write(render(doc))


def load_baseline(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:  # repro: allow[RPR004] host baseline artifact
        return json.load(fh)


def _lookup(result: dict, path: tuple[str, ...]) -> float:
    value = result
    for part in path:
        value = value[part]
    return float(value)


def compare(baseline: dict, current: dict,
            tolerance: float = DEFAULT_TOLERANCE) \
        -> tuple[list[str], list[str]]:
    """Gate a fresh suite run against a committed baseline.

    Returns ``(regressions, notes)``.  A non-empty ``regressions`` list
    means the gate fails: some workload lost more than ``tolerance`` on
    a gated metric.  ``notes`` records improvements and skipped
    workloads (informational only).
    """
    regressions: list[str] = []
    notes: list[str] = []
    if baseline.get("suite_version") != current.get("suite_version"):
        regressions.append(
            f"suite version mismatch: baseline "
            f"v{baseline.get('suite_version')} vs current "
            f"v{current.get('suite_version')} — refresh the baseline")
        return regressions, notes
    base_wl = baseline.get("workloads", {})
    cur_wl = current.get("workloads", {})
    for name in sorted(base_wl):
        if name not in cur_wl:
            regressions.append(f"{name}: missing from current run")
            continue
        for path, direction, title in GATED_METRICS:
            base = _lookup(base_wl[name], path)
            cur = _lookup(cur_wl[name], path)
            if base <= 0:
                continue
            change = (cur - base) / base
            worse = -change if direction > 0 else change
            detail = (f"{name}: {title} {base:g} -> {cur:g} "
                      f"({change:+.1%})")
            if worse > tolerance:
                regressions.append("REGRESSION " + detail)
            elif worse < -tolerance:
                notes.append("improvement " + detail)
    for name in sorted(set(cur_wl) - set(base_wl)):
        notes.append(f"{name}: new workload (no baseline)")
    return regressions, notes


def format_report(doc: dict) -> str:
    """Human-readable one-line-per-workload summary."""
    lines = [f"bench suite v{doc['suite_version']} [{doc['label']}]"]
    for name, wl in sorted(doc["workloads"].items()):
        lines.append(
            f"  {name:<10} {wl['ops']:>5} ops  "
            f"{wl['throughput_ops_s']:>12.1f} op/s  "
            f"p99 {wl['latency_us']['p99']:>10.1f} us  "
            f"WA {wl['write_amplification']:.2f}x")
    return "\n".join(lines)
