"""Byte-addressable simulated persistent memory (Optane DCPMM class).

The device that changes the WAL calculus (ROADMAP #5, "On Usage of
Non-Volatile Memory as Primary Storage for DBMS"): persistence is
byte-granular, so a log append persists exactly the appended bytes —
no page round-up, no read-modify-write of a partially filled log page —
and durability is a cache-line flush plus one fence instead of a block
write latency and an ``fdatasync``.

:class:`SimulatedPMem` keeps the full page-oriented interface of
:class:`~repro.storage.device.SimulatedNVMe` (same sparse page store,
same protection information, same ``submit`` batch semantics), so page
consumers — catalog checkpoints, the recovery scan, fault wrappers —
work unchanged; only the *pricing* flows through the ``pmem_*``
``CostParams`` channel.  On top of that it adds the byte-granular
``write_bytes``/``read_bytes`` fast path the WAL writer negotiates via
``capabilities.byte_addressable``.

Protection information on byte appends stays page-shaped (the CRC map
is per page, so ``verify_range`` keeps working over the WAL region) but
is *priced* per appended byte — the media protects in line granularity,
and a byte append never re-reads the rest of the page.
"""

from __future__ import annotations

import zlib

from repro.storage.device import (
    DeviceCapabilities,
    DeviceFull,
    SimulatedNVMe,
)


class SimulatedPMem(SimulatedNVMe):
    """A byte-addressable persistent-memory device.

    Inherits the sparse page store and batch interface of the NVMe
    simulation; overrides the cost channel (``pmem_*`` parameters) and
    adds byte-granular persists.
    """

    @property
    def capabilities(self) -> DeviceCapabilities:
        return DeviceCapabilities(kind="pmem", byte_addressable=True,
                                  queue_depth=None)

    # -- cost channel ---------------------------------------------------------

    def _charge_batch(self, read_bytes: int, n_reads: int, write_bytes: int,
                      n_writes: int, queue_depth: int | None) -> None:
        """PMem channel: loads and persists, no command queue.

        A batch of page requests is one streaming access — latency is
        paid once per direction, bandwidth per byte, and persisted
        pages pay line flushes + one fence via ``pmem_persist``.
        """
        if n_reads:
            self.model.pmem_read(read_bytes)
        if n_writes:
            self.model.pmem_persist(write_bytes)
            if self.protect:
                self.model.crc32_bytes(write_bytes)

    # -- byte-granular interface ---------------------------------------------

    def _check_byte_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0:
            raise ValueError(
                f"bad byte range offset={offset} nbytes={nbytes}")
        if offset + nbytes > self.capacity_bytes:
            raise DeviceFull(
                f"byte range [{offset}, {offset + nbytes}) beyond capacity "
                f"{self.capacity_bytes} bytes")

    def write_bytes(self, offset: int, data: bytes, category: str = "wal",
                    background: bool = False) -> None:
        """Persist ``data`` at byte ``offset`` — the WAL fast path.

        Accounts exactly ``len(data)`` bytes under ``category`` (write
        amplification sees no padding) and prices store + cache-line
        flush + fence.  ``background=True`` accounts bytes without
        charging time, mirroring the block device's semantics.
        """
        if not data:
            return
        self._check_byte_range(offset, len(data))
        self._splice_bytes(offset, data)
        if category not in self.stats.bytes_written_by_category:
            self.stats.bytes_written_by_category[category] = 0
        self.stats.bytes_written_by_category[category] += len(data)
        self.stats.write_requests_by_category[category] = \
            self.stats.write_requests_by_category.get(category, 0) + 1
        self.stats.write_requests += 1
        self.stats.byte_append_requests += 1
        obs = self.model.obs
        if obs is not None:
            obs.count("device.write_bytes", len(data), category=category)
            obs.count("device.byte_appends", background=background)
        if not background:
            self.model.pmem_persist(len(data))
            if self.protect:
                # Line-granular protection update over the new bytes
                # only: a byte append never re-reads the page remainder.
                self.model.crc32_bytes(len(data))

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        """Load ``nbytes`` at byte ``offset`` (priced, byte-granular)."""
        self._check_byte_range(offset, nbytes)
        if nbytes == 0:
            return b""
        self.stats.read_requests += 1
        self.stats.bytes_read += nbytes
        obs = self.model.obs
        if obs is not None:
            obs.count("device.read_bytes", nbytes)
        self.model.pmem_read(nbytes)
        return self.peek_bytes(offset, nbytes)

    # -- raw byte store (substrate-internal; see RPR006) ----------------------

    def _splice_bytes(self, offset: int, data: bytes) -> None:
        """Splice raw bytes into the page store, refreshing page CRCs.

        Substrate-internal: callers outside the storage layer must go
        through :meth:`write_bytes` so cost and accounting stay honest.
        The fault layer also pokes here to model torn appends.
        """
        ps = self.page_size
        pos = 0
        while pos < len(data):
            pid, byte_off = divmod(offset + pos, ps)
            take = min(ps - byte_off, len(data) - pos)
            page = bytearray(self._pages.get(pid, b"\x00" * ps))
            page[byte_off:byte_off + take] = data[pos:pos + take]
            stored = bytes(page)
            self._pages[pid] = stored
            if self.protect:
                self._page_crc[pid] = zlib.crc32(stored)
                self.integrity.pages_protected += 1
            pos += take

    def peek_bytes(self, offset: int, nbytes: int) -> bytes:
        """Raw byte view without charging (test/fault-injection helper)."""
        self._check_byte_range(offset, nbytes)
        if nbytes == 0:
            return b""
        ps = self.page_size
        first_pid = offset // ps
        last_pid = (offset + nbytes - 1) // ps
        raw = self._gather(first_pid, last_pid - first_pid + 1)
        start = offset - first_pid * ps
        return raw[start:start + nbytes]
