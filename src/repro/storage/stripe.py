"""K-way striping over independent simulated NVMe devices.

"DuckDB on xNVMe" (PAPERS.md) locates the other half of real NVMe
throughput in keeping *multiple independent device queues* full; one
simulated device per shard serializes what real deployments spread over
several drives.  :class:`StripedDevice` reproduces the multi-queue win
deterministically:

* the logical page space is chunked into ``stripe_pages``-page stripe
  units assigned round-robin to ``n_devices`` members, each a full
  :class:`~repro.storage.device.SimulatedNVMe` with its **own**
  :class:`~repro.sim.cost.CostModel` (its own clock and SQ/CQ queue —
  the per-device cost channel);
* a batch ``submit`` splits every request at stripe boundaries, hands
  each member its fragment batch, and advances the parent clock by the
  **makespan** (the slowest member), so member queues drain in parallel
  exactly like the sharded engine's gather;
* stats, protection information, and fault accounting are unioned over
  members; ``verify_range`` maps member-local damage back to logical
  pids, so a fault injected into one member quarantines only that
  stripe's pages.

``n_devices=1`` degenerates to a transparent pass-through sharing the
parent model — byte-identical (bytes, stats, virtual time) to a bare
``SimulatedNVMe``, which the capability tests pin down.
"""

from __future__ import annotations

from repro.sim.cost import CostModel
from repro.storage.device import (
    CapabilityError,
    DeviceCapabilities,
    DeviceFull,
    DeviceStats,
    IntegrityStats,
    IoRequest,
    SimulatedNVMe,
    _npages,
)


class StripedDevice:
    """One logical page device striped across K member devices."""

    def __init__(self, model: CostModel, capacity_pages: int,
                 page_size: int = 4096, protect: bool = True,
                 n_devices: int = 2, stripe_pages: int = 64,
                 fault_factory=None) -> None:
        if capacity_pages <= 0 or page_size <= 0:
            raise ValueError("capacity and page size must be positive")
        if n_devices < 1:
            raise ValueError("striping needs at least one device")
        if stripe_pages < 1:
            raise ValueError("stripe unit must be at least one page")
        self.model = model
        self.capacity_pages = capacity_pages
        self.page_size = page_size
        self.protect = protect
        self.n_devices = n_devices
        #: Stripe unit in pages; the I/O scheduler reads this attribute
        #: to keep coalesced runs inside one stripe chunk.
        self.stripe_pages = stripe_pages
        chunks = (capacity_pages + stripe_pages - 1) // stripe_pages
        member_chunks = (chunks + n_devices - 1) // n_devices
        member_capacity = max(1, member_chunks) * stripe_pages
        self.members = []
        for i in range(n_devices):
            # K=1 shares the parent model (true pass-through); K>1 gives
            # each member its own clock so queues drain independently.
            member_model = model if n_devices == 1 \
                else CostModel(model.params)
            member = SimulatedNVMe(member_model,
                                   capacity_pages=member_capacity,
                                   page_size=page_size, protect=protect)
            if fault_factory is not None:
                from repro.storage.faults import FaultyNVMe
                member = FaultyNVMe(member,
                                    fault_factory.plan_for(f"stripe{i}"))
            self.members.append(member)

    @property
    def capabilities(self) -> DeviceCapabilities:
        return DeviceCapabilities(
            kind="striped", byte_addressable=False,
            queue_depth=self.model.params.ssd_queue_depth,
            stripe_width=self.n_devices)

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_pages * self.page_size

    @property
    def stats(self) -> DeviceStats:
        return DeviceStats.merge(m.stats for m in self.members)

    @property
    def integrity(self) -> IntegrityStats:
        return IntegrityStats.merge(m.integrity for m in self.members)

    @property
    def fault_stats(self):
        """Union of member fault accounting (fault-wrapped members only)."""
        stats = [m.fault_stats for m in self.members
                 if hasattr(m, "fault_stats")]
        if not stats:
            return None
        total = type(stats[0])()
        for part in stats:
            for name in vars(part):
                setattr(total, name, getattr(total, name)
                        + getattr(part, name))
        return total

    # -- address mapping ------------------------------------------------------

    def _check_range(self, pid: int, npages: int) -> None:
        if pid < 0 or npages <= 0:
            raise ValueError(f"bad I/O range pid={pid} npages={npages}")
        if pid + npages > self.capacity_pages:
            raise DeviceFull(
                f"I/O [{pid}, {pid + npages}) beyond capacity "
                f"{self.capacity_pages} pages")

    def _fragments(self, pid: int, npages: int):
        """Yield ``(member, member_pid, npages, page_offset)`` splits.

        Logical stripe chunk ``c`` lives on member ``c % K`` at member
        chunk ``c // K``; a request is split wherever it crosses a
        chunk boundary.
        """
        off = 0
        while off < npages:
            chunk, in_chunk = divmod(pid + off, self.stripe_pages)
            member = chunk % self.n_devices
            member_pid = (chunk // self.n_devices) * self.stripe_pages \
                + in_chunk
            take = min(self.stripe_pages - in_chunk, npages - off)
            yield member, member_pid, take, off
            off += take

    def _to_logical(self, member: int, member_pid: int) -> int:
        member_chunk, in_chunk = divmod(member_pid, self.stripe_pages)
        chunk = member_chunk * self.n_devices + member
        return chunk * self.stripe_pages + in_chunk

    # -- I/O ------------------------------------------------------------------

    def write(self, pid: int, data: bytes, category: str = "data",
              background: bool = False) -> None:
        npages = _npages(data, self.page_size)
        self._check_range(pid, npages)
        if self.n_devices == 1:
            self.members[0].write(pid, data, category=category,
                                  background=background)
            return
        self.submit([IoRequest(pid=pid, npages=npages, data=data,
                               category=category)], background=background)

    def read(self, pid: int, npages: int, verify: bool = True) -> bytes:
        self._check_range(pid, npages)
        if self.n_devices == 1:
            return self.members[0].read(pid, npages, verify=verify)
        result = self.submit([IoRequest(pid=pid, npages=npages)],
                             verify=verify)[0]
        assert result is not None
        return result

    def submit(self, requests: list[IoRequest],
               background: bool = False,
               verify: bool = True,
               queue_depth: int | None = None) -> list[bytes | None]:
        """Scatter a batch over member queues; price the makespan.

        Each member executes its fragment batch on its own clock; the
        parent clock advances by the slowest member's elapsed time —
        per-device SQ/CQ draining, not serialized waves.
        """
        if not requests:
            return []
        for req in requests:
            self._check_range(req.pid, req.npages)
        if self.n_devices == 1:
            return self.members[0].submit(requests, background=background,
                                          verify=verify,
                                          queue_depth=queue_depth)
        ps = self.page_size
        per_member: dict[int, list[IoRequest]] = {}
        frag_map: list[list[tuple[int, int]]] = []
        n_fragments = 0
        for req in requests:
            frags: list[tuple[int, int]] = []
            for member, member_pid, take, off in self._fragments(
                    req.pid, req.npages):
                if req.is_write:
                    assert req.data is not None
                    sub = IoRequest(pid=member_pid, npages=take,
                                    data=req.data[off * ps:(off + take) * ps],
                                    category=req.category)
                else:
                    sub = IoRequest(pid=member_pid, npages=take)
                queue = per_member.setdefault(member, [])
                frags.append((member, len(queue)))
                queue.append(sub)
                n_fragments += 1
            frag_map.append(frags)
        results_by_member: dict[int, list[bytes | None]] = {}
        makespan = 0.0
        for member_id in sorted(per_member):
            member = self.members[member_id]
            start = member.model.clock.now_ns
            results_by_member[member_id] = member.submit(
                per_member[member_id], background=background, verify=verify,
                queue_depth=queue_depth)
            makespan = max(makespan,
                           member.model.clock.now_ns - start)
        if makespan > 0.0:
            self.model.clock.advance(makespan)
            self.model.io_time_ns += makespan
        obs = self.model.obs
        if obs is not None:
            obs.count("stripe.fragments", n_fragments)
            obs.observe("stripe.makespan_ns", makespan)
        results: list[bytes | None] = []
        for req, frags in zip(requests, frag_map):
            if req.is_write:
                results.append(None)
            else:
                parts = [results_by_member[m][i] for m, i in frags]
                results.append(b"".join(p for p in parts
                                        if p is not None))
        return results

    def write_bytes(self, offset: int, data: bytes, category: str = "wal",
                    background: bool = False) -> None:
        raise CapabilityError(
            "StripedDevice is block-addressable: byte-granular appends "
            "need a byte-addressable device")

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        raise CapabilityError(
            "StripedDevice is block-addressable: byte-granular reads "
            "need a byte-addressable device")

    # -- protection information ------------------------------------------------

    def check_page(self, pid: int) -> bool:
        self._check_range(pid, 1)
        for member, member_pid, _take, _off in self._fragments(pid, 1):
            return self.members[member].check_page(member_pid)
        return True

    def verify_range(self, pid: int, npages: int) -> list[int]:
        """Member-local CRC audit mapped back to *logical* pids.

        Damage injected into one member therefore surfaces as exactly
        that member's stripe chunks — the quarantine stays per stripe.
        """
        self._check_range(pid, npages)
        bad: list[int] = []
        for member_id, member_pid, take, _off in self._fragments(pid,
                                                                 npages):
            member = self.members[member_id]
            start = member.model.clock.now_ns
            member_bad = member.verify_range(member_pid, take)
            if self.n_devices > 1:
                # CRC auditing is serial CPU work: sum, not makespan.
                self.model.clock.advance(
                    member.model.clock.now_ns - start)
            bad.extend(self._to_logical(member_id, p) for p in member_bad)
        return sorted(bad)

    def peek(self, pid: int, npages: int = 1) -> bytes:
        self._check_range(pid, npages)
        return b"".join(
            self.members[m].peek(mpid, take)
            for m, mpid, take, _off in self._fragments(pid, npages))

    def _poke(self, pid: int, data: bytes) -> None:
        """Raw fault-injection splice, fanned out to the owning members."""
        ps = self.page_size
        npages = (len(data) + ps - 1) // ps
        for member, member_pid, take, off in self._fragments(pid, npages):
            self.members[member]._poke(
                member_pid, data[off * ps:(off + take) * ps])

    def resident_pages(self) -> int:
        return sum(m.resident_pages() for m in self.members)
