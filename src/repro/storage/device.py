"""Page-addressed simulated NVMe SSD with write-amplification accounting.

The device stores real bytes (so crash-recovery tests read back exactly
what survived a simulated crash) and charges I/O time to the owning
:class:`~repro.sim.cost.CostModel`.  Requests submitted as one batch
overlap their latency like commands in an NVMe submission queue, which is
how the paper's single-commit "multiple asynchronous I/O requests"
(Section III-C) gain their advantage over dependent, interleaved I/O.

End-to-end data protection: like NVMe protection information (T10
DIF/DIX), every page written through the normal I/O path records an
out-of-band CRC32; verifying reads recompute it and raise
:class:`~repro.db.errors.ChecksumMismatchError` instead of returning
silently corrupt bytes.  The fault-injection layer
(:mod:`repro.storage.faults`) corrupts stored pages *without* touching
the recorded checksums — exactly the divergence real torn writes and
bit rot produce relative to a device's protection metadata.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterable, Protocol, runtime_checkable

from repro.sim.cost import CostModel

#: Write categories used for amplification accounting.
WRITE_CATEGORIES = ("data", "wal", "journal", "meta", "dwb", "index")


class DeviceFull(Exception):
    """A write addressed a page beyond the device capacity."""


class CapabilityError(Exception):
    """An operation was issued to a device that lacks the capability.

    The canonical case: a byte-granular append (``write_bytes``) on a
    block-addressable device, which can only persist whole pages.
    Callers negotiate through :attr:`StorageDevice.capabilities` instead
    of catching this in hot paths.
    """


@dataclass(frozen=True)
class DeviceCapabilities:
    """What a device can do and how its I/O is priced.

    * ``kind`` — cost channel: which ``CostParams`` entries price this
      device's transfers (``"nvme"`` → ``ssd_*``, ``"pmem"`` →
      ``pmem_*``; wrappers report their substrate).
    * ``byte_addressable`` — supports ``write_bytes``/``read_bytes``
      with byte granularity and cache-line-flush durability; block
      devices only move whole pages.
    * ``queue_depth`` — device-internal command parallelism; ``None``
      for byte-addressable media, whose loads/stores have no queue.
    * ``stripe_width`` — number of independent backing devices (> 1 for
      :class:`~repro.storage.stripe.StripedDevice`); with
      ``stripe_pages`` it lets the I/O scheduler keep coalesced runs
      inside one stripe chunk.
    """

    kind: str
    byte_addressable: bool = False
    queue_depth: int | None = None
    stripe_width: int = 1


@runtime_checkable
class StorageDevice(Protocol):
    """The capability-typed protocol every simulated device satisfies.

    Engine, WAL, buffer pool, shards, replicas, and the I/O scheduler
    hold devices through this interface only; concrete devices
    (:class:`SimulatedNVMe`, :class:`~repro.storage.pmem.SimulatedPMem`,
    :class:`~repro.storage.stripe.StripedDevice`, fault wrappers) are
    interchangeable behind it.
    """

    model: CostModel
    page_size: int
    capacity_pages: int

    @property
    def capabilities(self) -> DeviceCapabilities: ...

    @property
    def stats(self) -> "DeviceStats": ...

    def write(self, pid: int, data: bytes, category: str = "data",
              background: bool = False) -> None: ...

    def read(self, pid: int, npages: int, verify: bool = True) -> bytes: ...

    def submit(self, requests: list["IoRequest"], background: bool = False,
               verify: bool = True,
               queue_depth: int | None = None) -> list[bytes | None]: ...

    def write_bytes(self, offset: int, data: bytes, category: str = "wal",
                    background: bool = False) -> None: ...

    def verify_range(self, pid: int, npages: int) -> list[int]: ...

    def check_page(self, pid: int) -> bool: ...

    def peek(self, pid: int, npages: int = 1) -> bytes: ...

    def resident_pages(self) -> int: ...


def capabilities_of(device) -> DeviceCapabilities:
    """The device's capability record (unknown block device if absent)."""
    caps = getattr(device, "capabilities", None)
    if caps is None:
        return DeviceCapabilities(kind="unknown")
    return caps


@dataclass
class IoRequest:
    """One contiguous device command: ``npages`` starting at page ``pid``.

    For writes, ``data`` holds exactly ``npages * page_size`` bytes.
    """

    pid: int
    npages: int
    data: bytes | None = None
    category: str = "data"

    @property
    def is_write(self) -> bool:
        return self.data is not None


@dataclass
class DeviceStats:
    """Byte/request accounting, split by category for writes."""

    bytes_read: int = 0
    read_requests: int = 0
    write_requests: int = 0
    #: Byte-granular appends (byte-addressable devices only).  Their
    #: exact byte counts land in ``bytes_written_by_category`` — never
    #: rounded up to pages, so write amplification stays honest.
    byte_append_requests: int = 0
    bytes_written_by_category: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in WRITE_CATEGORIES})
    write_requests_by_category: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in WRITE_CATEGORIES})

    @property
    def bytes_written(self) -> int:
        return sum(self.bytes_written_by_category.values())

    def write_amplification(self, payload_bytes: int) -> float:
        """Device bytes written per logical payload byte."""
        if payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        return self.bytes_written / payload_bytes

    def snapshot(self) -> "DeviceStats":
        return DeviceStats(
            bytes_read=self.bytes_read,
            read_requests=self.read_requests,
            write_requests=self.write_requests,
            byte_append_requests=self.byte_append_requests,
            bytes_written_by_category=dict(self.bytes_written_by_category),
            write_requests_by_category=dict(self.write_requests_by_category),
        )

    def delta_since(self, earlier: "DeviceStats") -> "DeviceStats":
        # Custom categories may first appear on either side of the
        # interval, so every per-category delta is taken over the union
        # of both key sets (a key missing on one side counts as zero).
        return DeviceStats(
            bytes_read=self.bytes_read - earlier.bytes_read,
            read_requests=self.read_requests - earlier.read_requests,
            write_requests=self.write_requests - earlier.write_requests,
            byte_append_requests=self.byte_append_requests
            - earlier.byte_append_requests,
            bytes_written_by_category=_dict_delta(
                self.bytes_written_by_category,
                earlier.bytes_written_by_category),
            write_requests_by_category=_dict_delta(
                self.write_requests_by_category,
                earlier.write_requests_by_category),
        )

    @classmethod
    def merge(cls, parts: Iterable["DeviceStats"]) -> "DeviceStats":
        """Union accounting over stripe members (or any device set).

        Per-category maps are summed over the union of key sets, so a
        category that only one member ever saw still aggregates.
        """
        total = cls()
        for part in parts:
            total.bytes_read += part.bytes_read
            total.read_requests += part.read_requests
            total.write_requests += part.write_requests
            total.byte_append_requests += part.byte_append_requests
            for cat, nbytes in part.bytes_written_by_category.items():
                total.bytes_written_by_category[cat] = \
                    total.bytes_written_by_category.get(cat, 0) + nbytes
            for cat, count in part.write_requests_by_category.items():
                total.write_requests_by_category[cat] = \
                    total.write_requests_by_category.get(cat, 0) + count
        return total


def _dict_delta(now: dict[str, int], earlier: dict[str, int]) \
        -> dict[str, int]:
    keys = sorted(set(now) | set(earlier))
    return {k: now.get(k, 0) - earlier.get(k, 0) for k in keys}


@dataclass
class IntegrityStats:
    """Protection-information accounting (per-page CRC32)."""

    pages_protected: int = 0
    pages_verified: int = 0
    checksum_failures: int = 0

    @classmethod
    def merge(cls, parts: Iterable["IntegrityStats"]) -> "IntegrityStats":
        total = cls()
        for part in parts:
            total.pages_protected += part.pages_protected
            total.pages_verified += part.pages_verified
            total.checksum_failures += part.checksum_failures
        return total


class SimulatedNVMe:
    """A sparse array of ``capacity_pages`` pages of ``page_size`` bytes."""

    def __init__(self, model: CostModel, capacity_pages: int,
                 page_size: int = 4096, protect: bool = True) -> None:
        if capacity_pages <= 0 or page_size <= 0:
            raise ValueError("capacity and page size must be positive")
        self.model = model
        self.capacity_pages = capacity_pages
        self.page_size = page_size
        self.stats = DeviceStats()
        #: Out-of-band per-page CRC32 protection information.
        self.protect = protect
        self.integrity = IntegrityStats()
        self._page_crc: dict[int, int] = {}
        self._pages: dict[int, bytes] = {}

    @property
    def capabilities(self) -> DeviceCapabilities:
        return DeviceCapabilities(
            kind="nvme", byte_addressable=False,
            queue_depth=self.model.params.ssd_queue_depth)

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_pages * self.page_size

    def _check_range(self, pid: int, npages: int) -> None:
        if pid < 0 or npages <= 0:
            raise ValueError(f"bad I/O range pid={pid} npages={npages}")
        if pid + npages > self.capacity_pages:
            raise DeviceFull(
                f"I/O [{pid}, {pid + npages}) beyond capacity "
                f"{self.capacity_pages} pages")

    # -- synchronous single-request API ------------------------------------

    def write(self, pid: int, data: bytes, category: str = "data",
              background: bool = False) -> None:
        """Write ``data`` (a whole number of pages) starting at ``pid``."""
        self.submit([IoRequest(pid=pid, npages=_npages(data, self.page_size),
                               data=data, category=category)],
                    background=background)

    def read(self, pid: int, npages: int, verify: bool = True) -> bytes:
        """Read ``npages`` pages starting at ``pid``.

        ``verify=True`` checks each page against its recorded protection
        CRC and raises ``ChecksumMismatchError`` on divergence; recovery
        paths that handle corruption themselves pass ``verify=False``.
        """
        self._check_range(pid, npages)
        self.stats.read_requests += 1
        nbytes = npages * self.page_size
        self.stats.bytes_read += nbytes
        obs = self.model.obs
        if obs is not None:
            obs.begin("device.read")
        try:
            self._charge_batch(nbytes, 1, 0, 0, None)
            if verify:
                self._verify_pages(pid, npages)
        finally:
            if obs is not None:
                obs.end(pid=pid, bytes=nbytes)
                obs.count("device.read_bytes", nbytes)
                obs.count("device.read_requests")
        return self._gather(pid, npages)

    # -- asynchronous batch API ---------------------------------------------

    def submit(self, requests: list[IoRequest],
               background: bool = False,
               verify: bool = True,
               queue_depth: int | None = None) -> list[bytes | None]:
        """Execute a batch of commands whose latencies overlap.

        Returns, positionally, the read data for read requests and ``None``
        for writes.  This models ``io_uring``/libaio submission: one wave
        of up-to-queue-depth commands pays one device latency.
        ``queue_depth`` caps how many of the batch's commands are in
        flight at once (the submitter's SQ depth); the device-internal
        ``ssd_queue_depth`` remains the upper bound.

        ``background=True`` models work hidden from the critical path —
        page-cache writeback in file systems, a DBMS group committer, the
        asynchronous extent flush of the paper's commit protocol: bytes
        and requests are *accounted* (write amplification is real) but no
        simulated time is charged to the issuing worker.
        """
        if not requests:
            return []
        read_bytes = 0
        write_bytes = 0
        n_reads = 0
        n_writes = 0
        results: list[bytes | None] = []
        for req in requests:
            self._check_range(req.pid, req.npages)
            nbytes = req.npages * self.page_size
            if req.is_write:
                assert req.data is not None
                if len(req.data) != nbytes:
                    raise ValueError(
                        f"write of {req.npages} pages needs {nbytes} bytes, "
                        f"got {len(req.data)}")
                if req.category not in self.stats.bytes_written_by_category:
                    self.stats.bytes_written_by_category[req.category] = 0
                self._scatter(req.pid, req.data)
                self.stats.bytes_written_by_category[req.category] += nbytes
                self.stats.write_requests_by_category[req.category] = \
                    self.stats.write_requests_by_category.get(
                        req.category, 0) + 1
                write_bytes += nbytes
                n_writes += 1
                results.append(None)
            else:
                if verify:
                    self._verify_pages(req.pid, req.npages)
                results.append(self._gather(req.pid, req.npages))
                read_bytes += nbytes
                n_reads += 1
        self.stats.read_requests += n_reads
        self.stats.write_requests += n_writes
        self.stats.bytes_read += read_bytes
        obs = self.model.obs
        if obs is not None:
            for req in requests:
                if req.is_write:
                    obs.count("device.write_bytes",
                              req.npages * self.page_size,
                              category=req.category)
            if n_writes:
                obs.count("device.write_requests", n_writes,
                          background=background)
            if n_reads:
                obs.count("device.read_bytes", read_bytes)
                obs.count("device.read_requests", n_reads)
            obs.begin("device.submit")
        try:
            if not background:
                self._charge_batch(read_bytes, n_reads, write_bytes,
                                   n_writes, queue_depth)
        finally:
            if obs is not None:
                obs.end(reads=n_reads, writes=n_writes,
                        read_bytes=read_bytes, write_bytes=write_bytes,
                        background=background)
        return results

    # -- cost channel ---------------------------------------------------------

    def _charge_batch(self, read_bytes: int, n_reads: int, write_bytes: int,
                      n_writes: int, queue_depth: int | None) -> None:
        """Price one foreground batch through this device's cost channel.

        The block channel: NVMe command latencies overlap in waves up to
        the queue depth, bandwidth is paid per byte, and protected
        writes pay CRC computation.  Byte-addressable devices override
        this with their own ``CostParams`` entries.
        """
        if n_reads:
            self.model.ssd_read(read_bytes, requests=n_reads,
                                queue_depth=queue_depth)
        if n_writes:
            self.model.ssd_write(write_bytes, requests=n_writes,
                                 queue_depth=queue_depth)
            if self.protect:
                self.model.crc32_bytes(write_bytes)

    # -- byte-granular interface (capability-gated) ---------------------------

    def write_bytes(self, offset: int, data: bytes, category: str = "wal",
                    background: bool = False) -> None:
        """Byte-granular persist — unsupported on block devices."""
        raise CapabilityError(
            f"{type(self).__name__} is block-addressable: byte-granular "
            f"appends need a byte-addressable device (capabilities."
            f"byte_addressable)")

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        """Byte-granular load — unsupported on block devices."""
        raise CapabilityError(
            f"{type(self).__name__} is block-addressable: byte-granular "
            f"reads need a byte-addressable device")

    # -- page store ------------------------------------------------------------

    def _scatter(self, pid: int, data: bytes) -> None:
        ps = self.page_size
        for i in range(len(data) // ps):
            page = bytes(data[i * ps:(i + 1) * ps])
            self._pages[pid + i] = page
            if self.protect:
                self._page_crc[pid + i] = zlib.crc32(page)
                self.integrity.pages_protected += 1

    def _poke(self, pid: int, data: bytes) -> None:
        """Overwrite raw page content *without* updating protection info.

        Fault-injection hook: this is how a torn write or a flipped bit
        diverges the stored bytes from their recorded checksums.  Never
        used by the engine's own I/O paths.
        """
        ps = self.page_size
        for i in range((len(data) + ps - 1) // ps):
            chunk = bytes(data[i * ps:(i + 1) * ps])
            if len(chunk) < ps:
                old = self._pages.get(pid + i, b"\x00" * ps)
                chunk = chunk + old[len(chunk):]
            self._pages[pid + i] = chunk

    def _gather(self, pid: int, npages: int) -> bytes:
        ps = self.page_size
        blank = b"\x00" * ps
        return b"".join(self._pages.get(pid + i, blank) for i in range(npages))

    # -- protection information -------------------------------------------------

    def check_page(self, pid: int) -> bool:
        """True when the stored page matches its recorded CRC (or has none)."""
        expected = self._page_crc.get(pid)
        if expected is None:
            return True
        stored = self._pages.get(pid)
        if stored is None:
            stored = b"\x00" * self.page_size
        return zlib.crc32(stored) == expected

    def _verify_pages(self, pid: int, npages: int) -> None:
        """Raise ``ChecksumMismatchError`` on the first failing page."""
        if not self.protect:
            return
        self.model.crc32_bytes(npages * self.page_size)
        for p in range(pid, pid + npages):
            if p in self._page_crc:
                self.integrity.pages_verified += 1
            if not self.check_page(p):
                self.integrity.checksum_failures += 1
                from repro.db.errors import ChecksumMismatchError
                raise ChecksumMismatchError(
                    f"page {p} failed its protection CRC", pid=p)

    def verify_range(self, pid: int, npages: int) -> list[int]:
        """Return the pids in range whose stored bytes fail their CRC.

        Unlike a verifying read this never raises — recovery uses it to
        locate damage (e.g. in the WAL ring) and decide between repair,
        truncation, and reporting.
        """
        self._check_range(pid, npages)
        if not self.protect:
            return []
        self.model.crc32_bytes(npages * self.page_size)
        bad = [p for p in range(pid, pid + npages) if not self.check_page(p)]
        self.integrity.pages_verified += npages
        self.integrity.checksum_failures += len(bad)
        return bad

    def peek(self, pid: int, npages: int = 1) -> bytes:
        """Read without charging I/O time (test/inspection helper)."""
        self._check_range(pid, npages)
        return self._gather(pid, npages)

    def resident_pages(self) -> int:
        """Number of pages ever written (occupancy, not logical usage)."""
        return len(self._pages)


def _npages(data: bytes, page_size: int) -> int:
    if len(data) == 0 or len(data) % page_size:
        raise ValueError(
            f"data length {len(data)} is not a whole number of "
            f"{page_size}-byte pages")
    return len(data) // page_size
