"""Simulated page-addressed NVMe storage.

All systems in this reproduction — our engine, the file-system baselines
and the DBMS baselines — persist real bytes to a :class:`SimulatedNVMe`.
The device accounts every written byte under a category (``data``,
``wal``, ``journal``, ``meta``, ``dwb``, ``index``), which is how the
paper's write-amplification and copies-per-BLOB claims are measured
(Table I "Duplicated copies", Section II "Excessive BLOB writes").
"""

from repro.storage.device import (
    DeviceFull,
    DeviceStats,
    IoRequest,
    SimulatedNVMe,
    WRITE_CATEGORIES,
)

__all__ = [
    "SimulatedNVMe",
    "DeviceStats",
    "IoRequest",
    "DeviceFull",
    "WRITE_CATEGORIES",
]
