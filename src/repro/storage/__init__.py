"""Simulated storage behind a capability-typed device layer.

All systems in this reproduction — our engine, the file-system baselines
and the DBMS baselines — persist real bytes through a
:class:`StorageDevice`: block-addressable NVMe (:class:`SimulatedNVMe`,
optionally striped K ways via :class:`StripedDevice` or remapped
out-of-place), or byte-addressable persistent memory
(:class:`SimulatedPMem`).  Devices account every written byte under a
category (``data``, ``wal``, ``journal``, ``meta``, ``dwb``,
``index``), which is how the paper's write-amplification and
copies-per-BLOB claims are measured (Table I "Duplicated copies",
Section II "Excessive BLOB writes").

Consumers negotiate through :attr:`StorageDevice.capabilities` (block
vs byte-addressable, queue model, stripe width) and construct devices
via :func:`make_device` / :func:`build_storage` instead of naming
concrete classes — see ``docs/storage.md``.
"""

from repro.storage.device import (
    CapabilityError,
    DeviceCapabilities,
    DeviceFull,
    DeviceStats,
    IoRequest,
    SimulatedNVMe,
    StorageDevice,
    WRITE_CATEGORIES,
    capabilities_of,
)
from repro.storage.factory import StorageSet, build_storage, make_device
from repro.storage.pmem import SimulatedPMem
from repro.storage.stripe import StripedDevice

__all__ = [
    "CapabilityError",
    "DeviceCapabilities",
    "DeviceFull",
    "DeviceStats",
    "IoRequest",
    "SimulatedNVMe",
    "SimulatedPMem",
    "StorageDevice",
    "StorageSet",
    "StripedDevice",
    "WRITE_CATEGORIES",
    "build_storage",
    "capabilities_of",
    "make_device",
]
