"""Device construction and tier placement behind the capability layer.

Every engine-side consumer (database, WAL, pool, shards, replicas,
benches) obtains devices from here instead of constructing
``SimulatedNVMe`` directly, so device-specific assumptions stay inside
``repro/storage/``.  :func:`build_storage` applies the placement policy
of an :class:`~repro.db.config.EngineConfig`:

* **data** — blobs and the extent allocator's area: a plain NVMe, a
  :class:`~repro.storage.remap.RemappedDevice` (``out_of_place``), or a
  :class:`~repro.storage.stripe.StripedDevice` (``stripe_devices > 1``);
* **meta** — superblock + catalog checkpoint slots: the PMem tier when
  one is configured (hot metadata is small and rewritten often — the
  byte tier absorbs it), otherwise an alias of the data device;
* **wal** — the log ring: PMem under ``wal_placement="auto"``/"pmem"``
  (the byte-append fast path), NVMe when forced or when no PMem exists.

``wal_placement="pmem"`` without a PMem tier is a capability error —
the config layer rejects it; ``"auto"`` *falls back* to NVMe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cost import CostModel
from repro.storage.device import SimulatedNVMe
from repro.storage.pmem import SimulatedPMem
from repro.storage.stripe import StripedDevice


@dataclass
class StorageSet:
    """The devices one engine instance persists through.

    ``meta`` and ``wal`` alias ``data`` on homogeneous configurations;
    :meth:`map` preserves that aliasing when wrapping (fault injection).
    """

    data: object
    meta: object
    wal: object

    @property
    def devices(self) -> list:
        """The distinct devices, data first (stable order)."""
        distinct: list = []
        for dev in (self.data, self.meta, self.wal):
            if not any(dev is seen for seen in distinct):
                distinct.append(dev)
        return distinct

    @property
    def heterogeneous(self) -> bool:
        return self.meta is not self.data or self.wal is not self.data

    def map(self, fn) -> "StorageSet":
        """Apply ``fn`` once per distinct device, preserving aliases."""
        mapped: dict[int, object] = {}
        for dev in self.devices:
            mapped[id(dev)] = fn(dev)
        return StorageSet(data=mapped[id(self.data)],
                          meta=mapped[id(self.meta)],
                          wal=mapped[id(self.wal)])


def make_device(model: CostModel, *, capacity_pages: int,
                page_size: int = 4096, kind: str = "nvme",
                protect: bool = True, **kwargs):
    """Construct one device of the given capability ``kind``.

    ``kind="striped"`` accepts ``n_devices``/``stripe_pages``/
    ``fault_factory``; the other kinds take no extra arguments.
    """
    if kind == "nvme":
        if kwargs:
            raise TypeError(f"unexpected nvme arguments: {sorted(kwargs)}")
        return SimulatedNVMe(model, capacity_pages=capacity_pages,
                             page_size=page_size, protect=protect)
    if kind == "pmem":
        if kwargs:
            raise TypeError(f"unexpected pmem arguments: {sorted(kwargs)}")
        return SimulatedPMem(model, capacity_pages=capacity_pages,
                             page_size=page_size, protect=protect)
    if kind == "striped":
        return StripedDevice(model, capacity_pages=capacity_pages,
                             page_size=page_size, protect=protect, **kwargs)
    raise ValueError(f"unknown device kind {kind!r}")


def build_storage(config, model: CostModel) -> StorageSet:
    """Build the device set an :class:`EngineConfig` places data on."""
    if config.out_of_place:
        from repro.storage.remap import RemappedDevice
        data = RemappedDevice(
            model, physical_pages=config.device_pages,
            logical_pages=config.device_pages
            * config.logical_space_multiplier,
            page_size=config.page_size)
    elif config.stripe_devices > 1:
        data = make_device(model, capacity_pages=config.device_pages,
                           page_size=config.page_size, kind="striped",
                           n_devices=config.stripe_devices,
                           stripe_pages=config.stripe_chunk_pages)
    else:
        data = make_device(model, capacity_pages=config.device_pages,
                           page_size=config.page_size)
    if config.pmem_pages > 0:
        pmem = make_device(model, capacity_pages=config.pmem_pages,
                           page_size=config.page_size, kind="pmem")
        wal = pmem if config.wal_on_pmem else data
        return StorageSet(data=data, meta=pmem, wal=wal)
    return StorageSet(data=data, meta=data, wal=data)
