"""Deterministic fault injection for the simulated storage stack.

Three pieces turn the repro from "correct on a perfect disk" into an
engine whose failure envelope is itself measured and tested:

* :class:`FaultPlan` — a seeded schedule deciding, per device operation,
  whether to inject a torn write, a silent bit flip, a transient
  ``DeviceIOError``, or a latency spike.  The schedule is a pure
  function of the seed and the operation sequence, so a failing run
  replays byte-identically from its seed.
* :class:`FaultyNVMe` — a wrapper composing with
  :class:`~repro.storage.device.SimulatedNVMe` (or the out-of-place
  :class:`~repro.storage.remap.RemappedDevice`): any existing test or
  benchmark runs under faults unchanged.  Corruption is applied *below*
  the device's protection information — the stored bytes diverge from
  their recorded CRCs exactly as real torn writes and bit rot diverge
  from NVMe end-to-end protection metadata.
* :class:`RetryPolicy` — bounded retry with exponential backoff, driven
  by the virtual clock so retried runs remain fully deterministic.
  Retries fire only on :class:`~repro.db.errors.TransientError`;
  persistent corruption is never retried blindly.

The Sears & van Ingen line of work ("To BLOB or Not To BLOB",
"Fragmentation in Large Object Repositories") shows BLOB stores degrade
precisely under such storage-level misbehaviour; this module makes that
misbehaviour a first-class, reproducible test input.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, fields, replace

from repro.db.errors import DeviceIOError, RetriesExhaustedError, TransientError
from repro.storage.device import IoRequest


@dataclass(frozen=True)
class FaultSpec:
    """Rates and bounds of a fault schedule (all probabilities per op)."""

    seed: int = 0
    #: Probability that a write request lands only a prefix (torn at a
    #: uniformly drawn byte, possibly mid-page).
    torn_write: float = 0.0
    #: Probability that one bit of one written page flips at rest.
    bit_flip: float = 0.0
    #: Probability that a device operation fails with ``DeviceIOError``.
    transient_error: float = 0.0
    #: Probability that an operation stalls for ``latency_spike_ns``.
    latency_spike: float = 0.0
    #: Probability that a network exchange is lost (remote store only).
    network_error: float = 0.0
    #: Probability that a network exchange opens a *partition*: the link
    #: stays dead for a drawn duration instead of losing one exchange.
    partition: float = 0.0
    #: A transient burst never exceeds this many consecutive failures,
    #: so any retry policy with more attempts is guaranteed to succeed.
    max_consecutive_transients: int = 2
    latency_spike_ns: float = 2_000_000.0
    #: Upper bound of a drawn partition duration; the draw is uniform in
    #: ``[partition_max_ns / 2, partition_max_ns]`` so partitions are
    #: never degenerate one-exchange blips.
    partition_max_ns: float = 8_000_000.0

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for f in fields(self):
            v = getattr(self, f.name)
            if f.name != "seed" and isinstance(v, float) and v:
                parts.append(f"{f.name}={v:g}")
        return " ".join(parts)


@dataclass
class FaultStats:
    """What a plan actually injected (deterministic given the run)."""

    torn_writes: int = 0
    bit_flips: int = 0
    transient_errors: int = 0
    latency_spikes: int = 0
    network_errors: int = 0
    partitions: int = 0

    @property
    def total(self) -> int:
        return (self.torn_writes + self.bit_flips + self.transient_errors
                + self.latency_spikes + self.network_errors
                + self.partitions)

    def as_dict(self) -> dict[str, int]:
        return {
            "torn_writes": self.torn_writes,
            "bit_flips": self.bit_flips,
            "transient_errors": self.transient_errors,
            "latency_spikes": self.latency_spikes,
            "network_errors": self.network_errors,
            "partitions": self.partitions,
        }


class FaultPlan:
    """Seeded, order-deterministic fault schedule.

    Every decision consumes draws from one ``random.Random(seed)`` in a
    fixed per-operation order, so two runs issuing the same operation
    sequence against plans with the same spec inject identical faults.
    """

    def __init__(self, spec: FaultSpec | None = None, **overrides) -> None:
        self.spec = spec or FaultSpec(**overrides)
        if spec is not None and overrides:
            raise ValueError("pass a FaultSpec or keyword rates, not both")
        self._rng = random.Random(self.spec.seed)
        self.stats = FaultStats()
        self._consecutive_transients = 0
        self._consecutive_network = 0

    # -- per-operation draws ------------------------------------------------

    def draw_transient(self) -> bool:
        """One draw per device operation; bursts are capped."""
        if self.spec.transient_error <= 0.0:
            return False
        hit = self._rng.random() < self.spec.transient_error
        if hit and self._consecutive_transients \
                < self.spec.max_consecutive_transients:
            self._consecutive_transients += 1
            self.stats.transient_errors += 1
            return True
        self._consecutive_transients = 0
        return False

    def draw_network_fault(self) -> bool:
        """One draw per request/response exchange; bursts are capped."""
        if self.spec.network_error <= 0.0:
            return False
        hit = self._rng.random() < self.spec.network_error
        if hit and self._consecutive_network \
                < self.spec.max_consecutive_transients:
            self._consecutive_network += 1
            self.stats.network_errors += 1
            return True
        self._consecutive_network = 0
        return False

    def draw_latency_spike_ns(self) -> float:
        if self.spec.latency_spike <= 0.0:
            return 0.0
        if self._rng.random() < self.spec.latency_spike:
            self.stats.latency_spikes += 1
            return self.spec.latency_spike_ns
        return 0.0

    def draw_partition_ns(self) -> float:
        """Duration of a network partition opening at this exchange.

        Returns 0.0 for a healthy exchange.  A non-zero draw means the
        link goes dead *now* and stays dead for the returned number of
        simulated nanoseconds — callers (the replica WAL-shipping links)
        fail every exchange until their clock passes the deadline,
        modelling a partition rather than independent losses.  The
        duration is drawn uniformly from the upper half of
        ``partition_max_ns`` so a partition always outlives at least one
        retry backoff.
        """
        if self.spec.partition <= 0.0:
            return 0.0
        if self._rng.random() < self.spec.partition:
            self.stats.partitions += 1
            return self.spec.partition_max_ns * self._rng.uniform(0.5, 1.0)
        return 0.0

    def draw_fault_index(self, n_requests: int) -> int:
        """Index of the request a transient batch failure lands on.

        Requests ahead of the drawn index have already completed when
        the error surfaces; the failing request and everything queued
        behind it never reach the device.  Single-request operations
        consume no extra draw, preserving the schedule of plans written
        before batch-position faults existed.
        """
        if n_requests <= 1:
            return 0
        return self._rng.randrange(n_requests)

    def draw_torn_byte(self, nbytes: int) -> int | None:
        """Byte offset at which a write tears, or None for a clean write."""
        if self.spec.torn_write <= 0.0:
            return None
        if self._rng.random() < self.spec.torn_write:
            self.stats.torn_writes += 1
            return self._rng.randrange(nbytes)
        return None

    def draw_bit_flip(self, npages: int, page_size: int) \
            -> tuple[int, int] | None:
        """(page index, bit index) to flip in a write, or None."""
        if self.spec.bit_flip <= 0.0:
            return None
        if self._rng.random() < self.spec.bit_flip:
            self.stats.bit_flips += 1
            return (self._rng.randrange(npages),
                    self._rng.randrange(page_size * 8))
        return None


def derive_seed(base_seed: int, target: str) -> int:
    """Stable per-target sub-seed of one base seed.

    A Knuth multiplicative mix of the base seed with a CRC32 of the
    target name: pure arithmetic, so the derived seed is identical
    across processes and Python versions (unlike ``hash()``), and
    distinct targets get decorrelated streams.
    """
    return (base_seed * 2654435761 + zlib.crc32(target.encode("utf-8"))) \
        % (1 << 32)


class FaultPlanFactory:
    """Derives one independent :class:`FaultPlan` per named target.

    A replica group needs a *separate* schedule per member device and
    per shipping link — sharing one plan would entangle the draw order
    of unrelated members, so adding a replica would reshuffle every
    other member's faults.  The factory gives each target its own
    ``random.Random`` seeded by :func:`derive_seed`, so every member's
    schedule is a pure function of ``(base seed, target name)`` and the
    whole group remains digest-reproducible from the one base seed.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        #: Plans handed out so far, by target name (insertion order).
        self.plans: dict[str, FaultPlan] = {}

    def plan_for(self, target: str) -> FaultPlan:
        """The target's plan (created on first use, then stable)."""
        plan = self.plans.get(target)
        if plan is None:
            plan = FaultPlan(replace(
                self.spec, seed=derive_seed(self.spec.seed, target)))
            self.plans[target] = plan
        return plan

    def stats(self) -> FaultStats:
        """Aggregate injected-fault counters across every target."""
        total = FaultStats()
        for plan in self.plans.values():
            for name, value in plan.stats.as_dict().items():
                setattr(total, name, getattr(total, name) + value)
        return total


class FaultyNVMe:
    """Device wrapper injecting the plan's faults below the engine.

    Composes with any device exposing the :class:`SimulatedNVMe`
    interface plus the raw ``peek``/``_poke`` hooks.  Transient errors
    and latency spikes fire *before* the inner operation (a retry sees a
    fresh draw); torn writes and bit flips silently mutate the stored
    bytes *after* it, leaving the recorded protection CRCs describing
    the data the engine intended to write.
    """

    #: State-carrying inner methods forwarded through a fault-accounting
    #: shim rather than verbatim.  These are the ``crash()``/
    #: ``snapshot()``-style operations an engine calls *around* plain
    #: I/O — trimming freed extents at commit, CRC-scanning a region
    #: during recovery or scrub.  A verbatim passthrough would let a
    #: "faulty" device behave perfectly on exactly the paths that decide
    #: whether a crashed-then-recovered engine is healthy; the shim
    #: keeps the plan's draw sequence and latency-spike accounting
    #: running.  (They stay infallible — no injected ``DeviceIOError`` —
    #: because recovery scans them without a retry loop by design.)
    _ACCOUNTED_STATE_METHODS = frozenset({"trim", "verify_range",
                                          "check_page"})

    def __init__(self, inner, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan

    @property
    def fault_stats(self) -> FaultStats:
        return self.plan.stats

    def __getattr__(self, name: str):
        # Guard: during unpickle/copy, attribute lookups can arrive
        # before ``inner`` exists in the instance dict; delegating the
        # lookup of ``inner`` itself would recurse forever.
        if name in ("inner", "plan"):
            raise AttributeError(name)
        attr = getattr(self.inner, name)
        if name in self._ACCOUNTED_STATE_METHODS and callable(attr):
            def forward(*args, _method=attr, **kwargs):
                spike = self.plan.draw_latency_spike_ns()
                if spike:
                    self.inner.model.clock.advance(spike)
                return _method(*args, **kwargs)
            forward.__name__ = name
            return forward
        return attr

    # -- faulted I/O ---------------------------------------------------------

    def _pre_op(self) -> None:
        if self.plan.draw_transient():
            raise DeviceIOError("injected transient device error")
        spike = self.plan.draw_latency_spike_ns()
        if spike:
            self.inner.model.clock.advance(spike)

    def write(self, pid: int, data: bytes, category: str = "data",
              background: bool = False) -> None:
        npages = len(data) // self.inner.page_size
        self.submit([IoRequest(pid=pid, npages=npages, data=data,
                               category=category)], background=background)

    def read(self, pid: int, npages: int, verify: bool = True) -> bytes:
        self._pre_op()
        return self.inner.read(pid, npages, verify=verify)

    def submit(self, requests: list[IoRequest],
               background: bool = False,
               verify: bool = True,
               queue_depth: int | None = None) -> list[bytes | None]:
        if self.plan.draw_transient():
            # A queued batch does not fail atomically: the error surfaces
            # on request k, after requests [0, k) completed and before
            # [k, n) were issued.  The prefix is applied verbatim (its
            # own torn/flip draws happen on the retry that rewrites it).
            k = self.plan.draw_fault_index(len(requests))
            if k:
                self.inner.submit(requests[:k], background=background,
                                  verify=verify, queue_depth=queue_depth)
            raise DeviceIOError(
                f"injected transient device error at request {k}")
        spike = self.plan.draw_latency_spike_ns()
        if spike:
            self.inner.model.clock.advance(spike)
        ps = self.inner.page_size
        damage: list[tuple[int, bytes]] = []
        flips: list[tuple[int, int]] = []
        for req in requests:
            if not req.is_write:
                continue
            assert req.data is not None
            torn_at = self.plan.draw_torn_byte(len(req.data))
            if torn_at is not None:
                # Pages past the tear keep their old content; the page
                # containing the tear is spliced new-prefix/old-suffix.
                pre = self.inner.peek(req.pid, req.npages)
                page, in_page = divmod(torn_at, ps)
                image = req.data[page * ps:page * ps + in_page] \
                    + pre[page * ps + in_page:]
                damage.append((req.pid + page, image))
            flip = self.plan.draw_bit_flip(req.npages, ps)
            if flip is not None:
                flips.append((req.pid + flip[0], flip[1]))
        results = self.inner.submit(requests, background=background,
                                    verify=verify, queue_depth=queue_depth)
        for pid, image in damage:
            self.inner._poke(pid, image)
        for pid, bit in flips:
            page = bytearray(self.inner.peek(pid, 1))
            page[bit // 8] ^= 1 << (bit % 8)
            self.inner._poke(pid, bytes(page))
        return results

    def write_bytes(self, offset: int, data: bytes, category: str = "wal",
                    background: bool = False) -> None:
        """Faulted byte-granular append (byte-addressable inner only).

        Torn appends land only a prefix of the new bytes (the suffix
        keeps its pre-append content, CRCs diverging exactly like a torn
        block write); bit flips corrupt one bit inside the appended
        range.  A block-only inner raises its own ``CapabilityError``
        before any fault draw is consumed.
        """
        caps = getattr(self.inner, "capabilities", None)
        if caps is None or not caps.byte_addressable:
            self.inner.write_bytes(offset, data, category=category,
                                   background=background)
            return
        self._pre_op()
        if not data:
            self.inner.write_bytes(offset, data, category=category,
                                   background=background)
            return
        torn_at = self.plan.draw_torn_byte(len(data))
        flip = self.plan.draw_bit_flip(1, len(data))
        pre_suffix = None
        if torn_at is not None:
            pre_suffix = self.inner.peek_bytes(offset + torn_at,
                                               len(data) - torn_at)
        self.inner.write_bytes(offset, data, category=category,
                               background=background)
        if pre_suffix is not None:
            self._poke_bytes(offset + torn_at, pre_suffix)
        if flip is not None:
            _page, bit = flip
            byte = bytearray(self.inner.peek_bytes(offset + bit // 8, 1))
            byte[0] ^= 1 << (bit % 8)
            self._poke_bytes(offset + bit // 8, bytes(byte))

    def _poke_bytes(self, offset: int, data: bytes) -> None:
        """Raw byte splice *without* refreshing protection CRCs.

        The byte-granular analogue of ``_poke``: composes page images
        through ``peek`` so the stored bytes diverge from the CRCs the
        clean append recorded — which is what makes the damage
        detectable.
        """
        ps = self.inner.page_size
        pos = 0
        while pos < len(data):
            pid, byte_off = divmod(offset + pos, ps)
            take = min(ps - byte_off, len(data) - pos)
            page = bytearray(self.inner.peek(pid, 1))
            page[byte_off:byte_off + take] = data[pos:pos + take]
            self.inner._poke(pid, bytes(page))
            pos += take


# -- deterministic bounded retry ---------------------------------------------


@dataclass
class RetryStats:
    operations: int = 0
    retries: int = 0
    exhausted: int = 0
    backoff_ns: float = 0.0


class RetryPolicy:
    """Bounded retry with exponential backoff on the virtual clock.

    ``attempts`` counts total tries; backoff between try *i* and *i+1*
    is ``base_delay_ns * multiplier**i``, advanced on the shared virtual
    clock (the worker sleeps, it does not burn CPU).  Only
    :class:`TransientError` is retried; when the budget is exhausted the
    last fault is wrapped in :class:`RetriesExhaustedError` — graceful
    degradation as a typed error, never a hang or a bare exception.
    """

    def __init__(self, model, attempts: int = 4,
                 base_delay_ns: float = 50_000.0,
                 multiplier: float = 2.0) -> None:
        if attempts < 1:
            raise ValueError("retry policy needs at least one attempt")
        self.model = model
        self.attempts = attempts
        self.base_delay_ns = base_delay_ns
        self.multiplier = multiplier
        self.stats = RetryStats()

    def run(self, op):
        """Execute ``op()`` under the policy and return its result."""
        self.stats.operations += 1
        delay = self.base_delay_ns
        for attempt in range(self.attempts):
            try:
                return op()
            except TransientError as fault:
                if attempt == self.attempts - 1:
                    self.stats.exhausted += 1
                    raise RetriesExhaustedError(
                        f"{fault} (after {self.attempts} attempts)"
                    ) from fault
                self.stats.retries += 1
                self.stats.backoff_ns += delay
                self.model.clock.advance(delay)
                delay *= self.multiplier
        raise AssertionError("unreachable")
