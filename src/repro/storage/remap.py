"""Out-of-place writes: logical PIDs decoupled from physical addresses.

The paper's proposed answer to storage aging (Section VI): "in
principle, out-of-place write policy can solve the aging problem.  The
core idea is to decouple logical PID from the on-storage physical
address.  Consequently, the DBMS can allocate every extent as new and
map those PIDs with the available physical addresses."

:class:`RemappedDevice` implements that layer over a physical
:class:`~repro.storage.device.SimulatedNVMe` with FTL-like semantics:

* the *logical* address space is larger than the physical device, so the
  extent allocator never fragments — every extent is allocated fresh;
* every logical page write lands on a freshly allocated physical page
  (log-structured); the previous physical page, if any, returns to the
  free pool immediately — overwrites self-reclaim;
* ``trim`` releases the physical pages of deleted logical extents;
* reads translate per page and gather (one request per physically
  contiguous run), priced through the shared cost model.

Physical space is exhausted only when *live* data exceeds the device —
fragmentation of the logical space is free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cost import CostModel
from repro.storage.device import (
    DeviceCapabilities,
    DeviceFull,
    IoRequest,
    SimulatedNVMe,
)


@dataclass
class RemapStats:
    logical_writes: int = 0
    relocations: int = 0
    trimmed_pages: int = 0

    @property
    def live_fraction_meaningful(self) -> bool:  # pragma: no cover
        return True


class RemappedDevice:
    """A logical page device backed by out-of-place physical writes.

    Implements the same interface the engine uses on
    :class:`SimulatedNVMe` (``write``/``read``/``submit``/``peek``/
    ``stats``/``capacity_pages``/``page_size``), so it can be passed to
    :class:`~repro.db.database.BlobDB` as the device.
    """

    #: Cost of one logical->physical map update (cached FTL entry).
    _MAP_UPDATE_NS = 30.0

    def __init__(self, model: CostModel, physical_pages: int,
                 logical_pages: int | None = None,
                 page_size: int = 4096) -> None:
        self.model = model
        self.physical = SimulatedNVMe(model, capacity_pages=physical_pages,
                                      page_size=page_size)
        #: The logical space defaults to 8x the physical device: extents
        #: are always allocated fresh and never reuse a fragmented range.
        self.capacity_pages = logical_pages or physical_pages * 8
        self.page_size = page_size
        self._map: dict[int, int] = {}
        self._free: list[int] = list(range(physical_pages - 1, -1, -1))
        self.remap_stats = RemapStats()

    # -- interface parity with SimulatedNVMe --------------------------------

    @property
    def capabilities(self) -> DeviceCapabilities:
        return DeviceCapabilities(
            kind="remap", byte_addressable=False,
            queue_depth=self.model.params.ssd_queue_depth)

    @property
    def stats(self):
        return self.physical.stats

    @property
    def integrity(self):
        return self.physical.integrity

    @property
    def protect(self) -> bool:
        return self.physical.protect

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_pages * self.page_size

    def live_pages(self) -> int:
        return len(self._map)

    def physical_utilization(self) -> float:
        return len(self._map) / self.physical.capacity_pages

    # -- translation ----------------------------------------------------------

    def _allocate_physical(self) -> int:
        if not self._free:
            raise DeviceFull("out-of-place device: no free physical pages")
        return self._free.pop()

    def _translate_write(self, logical: int) -> int:
        """Out-of-place: a write always gets a fresh physical page."""
        self.model.cpu(self._MAP_UPDATE_NS)
        new_phys = self._allocate_physical()
        old = self._map.get(logical)
        if old is not None:
            self._free.append(old)
            self.remap_stats.relocations += 1
        self._map[logical] = new_phys
        self.remap_stats.logical_writes += 1
        return new_phys

    def _check_logical(self, pid: int, npages: int) -> None:
        if pid < 0 or npages <= 0 or pid + npages > self.capacity_pages:
            raise DeviceFull(
                f"logical I/O [{pid}, {pid + npages}) beyond logical "
                f"capacity {self.capacity_pages}")

    # -- I/O --------------------------------------------------------------------

    def write(self, pid: int, data: bytes, category: str = "data",
              background: bool = False) -> None:
        npages = len(data) // self.page_size
        self.submit([IoRequest(pid=pid, npages=npages, data=data,
                               category=category)], background=background)

    def read(self, pid: int, npages: int, verify: bool = True) -> bytes:
        self._check_logical(pid, npages)
        return b"".join(
            self.physical.read(self._map[pid + i], 1, verify=verify)
            if pid + i in self._map else b"\x00" * self.page_size
            for i in range(npages))

    def submit(self, requests: list[IoRequest],
               background: bool = False,
               verify: bool = True,
               queue_depth: int | None = None) -> list[bytes | None]:
        """Translate each logical request into physical run requests."""
        physical_requests: list[IoRequest] = []
        plans: list[tuple[IoRequest, list[int]] | None] = []
        for req in requests:
            self._check_logical(req.pid, req.npages)
            if req.is_write:
                assert req.data is not None
                phys = [self._translate_write(req.pid + i)
                        for i in range(req.npages)]
                for run_start, run_len, data_off in _runs(phys):
                    physical_requests.append(IoRequest(
                        pid=run_start, npages=run_len,
                        data=req.data[data_off * self.page_size:
                                      (data_off + run_len) * self.page_size],
                        category=req.category))
                plans.append(None)
            else:
                phys = [self._map.get(req.pid + i, -1)
                        for i in range(req.npages)]
                for run_start, run_len, _ in _runs([p for p in phys if p >= 0]):
                    physical_requests.append(IoRequest(pid=run_start,
                                                       npages=run_len))
                plans.append((req, phys))
        self.physical.submit(physical_requests, background=background,
                             queue_depth=queue_depth)
        # Reads re-gather from physical state (content-exact, cost above).
        results: list[bytes | None] = []
        for plan in plans:
            if plan is None:
                results.append(None)
                continue
            req, phys = plan
            if verify:
                for p in phys:
                    if p >= 0:
                        self.physical._verify_pages(p, 1)
            blank = b"\x00" * self.page_size
            results.append(b"".join(
                self.physical.peek(p, 1) if p >= 0 else blank
                for p in phys))
        return results

    def peek(self, pid: int, npages: int = 1) -> bytes:
        self._check_logical(pid, npages)
        blank = b"\x00" * self.page_size
        return b"".join(
            self.physical.peek(self._map[pid + i], 1)
            if pid + i in self._map else blank
            for i in range(npages))

    def _poke(self, pid: int, data: bytes) -> None:
        """Fault-injection hook: raw overwrite of the *current* mapping."""
        ps = self.page_size
        for i in range((len(data) + ps - 1) // ps):
            phys = self._map.get(pid + i)
            if phys is not None:
                self.physical._poke(phys, data[i * ps:(i + 1) * ps])

    def check_page(self, pid: int) -> bool:
        phys = self._map.get(pid)
        return True if phys is None else self.physical.check_page(phys)

    def verify_range(self, pid: int, npages: int) -> list[int]:
        """Logical pids in range whose mapped physical page fails its CRC."""
        self._check_logical(pid, npages)
        if not self.protect:
            return []
        self.model.crc32_bytes(npages * self.page_size)
        bad = [p for p in range(pid, pid + npages) if not self.check_page(p)]
        self.integrity.pages_verified += npages
        self.integrity.checksum_failures += len(bad)
        return bad

    # -- reclamation ----------------------------------------------------------------

    def trim(self, pid: int, npages: int) -> None:
        """Release the physical pages of a deleted logical range."""
        self._check_logical(pid, npages)
        for i in range(npages):
            phys = self._map.pop(pid + i, None)
            if phys is not None:
                self._free.append(phys)
                self.remap_stats.trimmed_pages += 1

    def resident_pages(self) -> int:
        return self.physical.resident_pages()


def _runs(pages: list[int]):
    """Split a physical page list into contiguous (start, len, offset)."""
    out = []
    i = 0
    while i < len(pages):
        j = i
        while j + 1 < len(pages) and pages[j + 1] == pages[j] + 1:
            j += 1
        out.append((pages[i], j - i + 1, i))
        i = j + 1
    return out
