"""Write-ahead logging with group commit and checkpointing.

The decisive difference between the paper's design and conventional
engines lives here: with *asynchronous BLOB logging* the WAL receives
only the tiny Blob State while BLOB content goes straight to its extents
at commit (one write per BLOB); with physical logging (``physlog``, the
paper's baseline) BLOB content is segmented through the WAL buffer and
additionally written during buffer eviction (two writes per BLOB, more
frequent checkpoints).
"""

from repro.wal.records import (
    BlobChunkRecord,
    BlobDeltaRecord,
    CheckpointRecord,
    DeleteRecord,
    InsertRecord,
    LogRecord,
    TxnAbortRecord,
    TxnBeginRecord,
    TxnCommitRecord,
    UpdateRecord,
    decode_records,
)
from repro.wal.writer import WalFullError, WalStats, WalWriter

__all__ = [
    "LogRecord",
    "TxnBeginRecord",
    "TxnCommitRecord",
    "TxnAbortRecord",
    "InsertRecord",
    "DeleteRecord",
    "UpdateRecord",
    "BlobDeltaRecord",
    "BlobChunkRecord",
    "CheckpointRecord",
    "decode_records",
    "WalWriter",
    "WalStats",
    "WalFullError",
]
