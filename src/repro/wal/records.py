"""Log record types and their binary framing.

Framing: ``[u8 type][u32 payload_len][u64 seq][payload][u32 crc32]``.
A scan stops at the first frame whose type is unknown, whose length runs
past the buffer, whose CRC fails, or whose sequence number is not
strictly increasing — which is how recovery finds the end of the valid
log after a crash mid-flush *and* avoids replaying stale records from an
earlier pass over the WAL ring.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import ClassVar, Iterator

_FRAME = struct.Struct(">BIQ")
_CRC = struct.Struct(">I")


def _pack_bytes(*parts: bytes) -> bytes:
    """Concatenate length-prefixed byte strings."""
    out = bytearray()
    for part in parts:
        out += struct.pack(">I", len(part))
        out += part
    return bytes(out)


class _ByteCursor:
    def __init__(self, raw: bytes) -> None:
        self.raw = raw
        self.off = 0

    def take(self) -> bytes:
        (n,) = struct.unpack_from(">I", self.raw, self.off)
        self.off += 4
        part = self.raw[self.off:self.off + n]
        if len(part) != n:
            raise ValueError("truncated byte field")
        self.off += n
        return part

    def take_u64(self) -> int:
        (v,) = struct.unpack_from(">Q", self.raw, self.off)
        self.off += 8
        return v


@dataclass(frozen=True)
class LogRecord:
    """Base class; subclasses define ``TYPE`` and payload (de)coding."""

    TYPE: ClassVar[int] = 0

    def payload(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def from_payload(cls, raw: bytes) -> "LogRecord":
        raise NotImplementedError

    def encode(self, seq: int = 0) -> bytes:
        payload = self.payload()
        frame = _FRAME.pack(self.TYPE, len(payload), seq) + payload
        return frame + _CRC.pack(zlib.crc32(frame))


@dataclass(frozen=True)
class TxnBeginRecord(LogRecord):
    TYPE: ClassVar[int] = 1
    txn_id: int = 0

    def payload(self) -> bytes:
        return struct.pack(">Q", self.txn_id)

    @classmethod
    def from_payload(cls, raw: bytes) -> "TxnBeginRecord":
        return cls(txn_id=struct.unpack(">Q", raw)[0])


@dataclass(frozen=True)
class TxnCommitRecord(LogRecord):
    TYPE: ClassVar[int] = 2
    txn_id: int = 0

    def payload(self) -> bytes:
        return struct.pack(">Q", self.txn_id)

    @classmethod
    def from_payload(cls, raw: bytes) -> "TxnCommitRecord":
        return cls(txn_id=struct.unpack(">Q", raw)[0])


@dataclass(frozen=True)
class TxnAbortRecord(LogRecord):
    TYPE: ClassVar[int] = 3
    txn_id: int = 0

    def payload(self) -> bytes:
        return struct.pack(">Q", self.txn_id)

    @classmethod
    def from_payload(cls, raw: bytes) -> "TxnAbortRecord":
        return cls(txn_id=struct.unpack(">Q", raw)[0])


@dataclass(frozen=True)
class InsertRecord(LogRecord):
    """Logical insert of ``key -> value`` into ``table``.

    For BLOB columns ``value`` is the *serialized Blob State* — never the
    BLOB content.  This is the paper's single-flush logging: the content
    is durable in its extents, only the metadata goes through the WAL.
    """

    TYPE: ClassVar[int] = 4
    txn_id: int = 0
    table: str = ""
    key: bytes = b""
    value: bytes = b""

    def payload(self) -> bytes:
        return struct.pack(">Q", self.txn_id) + _pack_bytes(
            self.table.encode(), self.key, self.value)

    @classmethod
    def from_payload(cls, raw: bytes) -> "InsertRecord":
        cur = _ByteCursor(raw)
        txn_id = cur.take_u64()
        return cls(txn_id=txn_id, table=cur.take().decode(),
                   key=cur.take(), value=cur.take())


@dataclass(frozen=True)
class DeleteRecord(LogRecord):
    """Logical delete; carries the old value so recovery can rebuild the
    free lists from the deleted Blob State's extents."""

    TYPE: ClassVar[int] = 5
    txn_id: int = 0
    table: str = ""
    key: bytes = b""
    old_value: bytes = b""

    def payload(self) -> bytes:
        return struct.pack(">Q", self.txn_id) + _pack_bytes(
            self.table.encode(), self.key, self.old_value)

    @classmethod
    def from_payload(cls, raw: bytes) -> "DeleteRecord":
        cur = _ByteCursor(raw)
        txn_id = cur.take_u64()
        return cls(txn_id=txn_id, table=cur.take().decode(),
                   key=cur.take(), old_value=cur.take())


@dataclass(frozen=True)
class UpdateRecord(LogRecord):
    """Logical update of ``key`` from ``old_value`` to ``new_value``."""

    TYPE: ClassVar[int] = 6
    txn_id: int = 0
    table: str = ""
    key: bytes = b""
    old_value: bytes = b""
    new_value: bytes = b""

    def payload(self) -> bytes:
        return struct.pack(">Q", self.txn_id) + _pack_bytes(
            self.table.encode(), self.key, self.old_value, self.new_value)

    @classmethod
    def from_payload(cls, raw: bytes) -> "UpdateRecord":
        cur = _ByteCursor(raw)
        txn_id = cur.take_u64()
        return cls(txn_id=txn_id, table=cur.take().decode(), key=cur.take(),
                   old_value=cur.take(), new_value=cur.take())


@dataclass(frozen=True)
class BlobDeltaRecord(LogRecord):
    """Physical delta for the in-place BLOB update scheme (Section III-D,
    scheme 1): redo writes ``data`` at byte ``offset`` of page ``pid``.

    Carries its table/key so recovery can repair one BLOB's content
    without touching pages that later transactions reused for other
    BLOBs (checksum-guided repair-on-demand).
    """

    TYPE: ClassVar[int] = 7
    txn_id: int = 0
    table: str = ""
    key: bytes = b""
    pid: int = 0
    offset: int = 0
    data: bytes = b""

    def payload(self) -> bytes:
        return struct.pack(">QQQ", self.txn_id, self.pid, self.offset) + \
            _pack_bytes(self.table.encode(), self.key, self.data)

    @classmethod
    def from_payload(cls, raw: bytes) -> "BlobDeltaRecord":
        txn_id, pid, offset = struct.unpack_from(">QQQ", raw, 0)
        cur = _ByteCursor(raw)
        cur.off = 24
        return cls(txn_id=txn_id, table=cur.take().decode(), key=cur.take(),
                   pid=pid, offset=offset, data=cur.take())


@dataclass(frozen=True)
class BlobChunkRecord(LogRecord):
    """One segment of BLOB content logged physically (``physlog`` only)."""

    TYPE: ClassVar[int] = 8
    txn_id: int = 0
    table: str = ""
    key: bytes = b""
    offset: int = 0
    data: bytes = b""

    def payload(self) -> bytes:
        return struct.pack(">QQ", self.txn_id, self.offset) + _pack_bytes(
            self.table.encode(), self.key, self.data)

    @classmethod
    def from_payload(cls, raw: bytes) -> "BlobChunkRecord":
        txn_id, offset = struct.unpack_from(">QQ", raw, 0)
        cur = _ByteCursor(raw)
        cur.off = 16
        return cls(txn_id=txn_id, offset=offset, table=cur.take().decode(),
                   key=cur.take(), data=cur.take())


@dataclass(frozen=True)
class CheckpointRecord(LogRecord):
    """Marks a completed checkpoint (WAL before this point is obsolete)."""

    TYPE: ClassVar[int] = 9
    checkpoint_id: int = 0

    def payload(self) -> bytes:
        return struct.pack(">Q", self.checkpoint_id)

    @classmethod
    def from_payload(cls, raw: bytes) -> "CheckpointRecord":
        return cls(checkpoint_id=struct.unpack(">Q", raw)[0])


_RECORD_TYPES: dict[int, type[LogRecord]] = {
    cls.TYPE: cls
    for cls in (TxnBeginRecord, TxnCommitRecord, TxnAbortRecord,
                InsertRecord, DeleteRecord, UpdateRecord,
                BlobDeltaRecord, BlobChunkRecord, CheckpointRecord)
}


def decode_records(raw: bytes) -> Iterator[LogRecord]:
    """Decode frames until the log ends or corruption is detected.

    Sequence numbers must be strictly increasing; a drop marks the seam
    where the current ring pass ends and stale bytes from the previous
    pass begin.
    """
    for _, record in decode_records_with_seq(raw):
        yield record


def decode_records_with_seq(raw: bytes) -> Iterator[tuple[int, LogRecord]]:
    """Like :func:`decode_records` but yields ``(seq, record)``."""
    yield from scan_records(raw).records


@dataclass
class WalScan:
    """Result of structurally scanning a WAL region prefix.

    ``stop_reason`` distinguishes a log that simply ended (``"end"`` —
    the remaining bytes never held a frame of this pass) from one that
    stopped at a damaged or stale frame (``"bad_frame"`` — a CRC
    failure, an unknown type, a length overrun, or a sequence drop).
    """

    records: list[tuple[int, "LogRecord"]]
    #: Bytes of validated frames; the scan stopped at this offset.
    valid_bytes: int
    #: Highest validated frame sequence (-1 when no frame decoded).
    max_seq: int
    stop_reason: str


def scan_records(raw: bytes) -> WalScan:
    """Validate frames from offset 0, reporting where and why the scan
    stopped — recovery uses this to decide between tail truncation and
    declaring unrecoverable mid-log corruption."""
    records: list[tuple[int, LogRecord]] = []
    off = 0
    end = len(raw)
    last_seq = -1
    while True:
        if off + _FRAME.size + _CRC.size > end:
            return WalScan(records, off, last_seq, "end")
        rtype, length, seq = _FRAME.unpack_from(raw, off)
        if rtype == 0 and length == 0 and seq == 0:
            # Zero bytes: never-written (or padded) region, a clean end.
            return WalScan(records, off, last_seq, "end")
        cls = _RECORD_TYPES.get(rtype)
        if cls is None or seq <= last_seq:
            return WalScan(records, off, last_seq, "bad_frame")
        frame_end = off + _FRAME.size + length
        if frame_end + _CRC.size > end:
            return WalScan(records, off, last_seq, "bad_frame")
        frame = raw[off:frame_end]
        (crc,) = _CRC.unpack_from(raw, frame_end)
        if zlib.crc32(frame) != crc:
            return WalScan(records, off, last_seq, "bad_frame")
        try:
            record = cls.from_payload(raw[off + _FRAME.size:frame_end])
        except (ValueError, struct.error):
            return WalScan(records, off, last_seq, "bad_frame")
        records.append((seq, record))
        last_seq = seq
        off = frame_end + _CRC.size


def find_frame_beyond(raw: bytes, start: int, min_seq: int,
                      probe_bytes: int = 65536) -> int | None:
    """Look past a damaged frame for a valid frame of the *same* pass.

    Probes byte offsets in ``[start, start + probe_bytes)`` for a frame
    whose CRC validates and whose sequence exceeds ``min_seq`` (a stale
    frame from an earlier ring pass does not count).  Returns the offset
    of such a frame, meaning committed records exist beyond the damage
    and truncating at ``start`` would silently drop them; ``None`` means
    the damage is confined to the tail and truncation is safe.
    """
    end = len(raw)
    limit = min(end, start + probe_bytes)
    for off in range(start, limit):
        if off + _FRAME.size + _CRC.size > end:
            break
        rtype, length, seq = _FRAME.unpack_from(raw, off)
        cls = _RECORD_TYPES.get(rtype)
        if cls is None or seq <= min_seq:
            continue
        frame_end = off + _FRAME.size + length
        if frame_end + _CRC.size > end:
            continue
        frame = raw[off:frame_end]
        (crc,) = _CRC.unpack_from(raw, frame_end)
        if zlib.crc32(frame) != crc:
            continue
        try:
            cls.from_payload(raw[off + _FRAME.size:frame_end])
        except (ValueError, struct.error):
            continue
        return off
    return None
