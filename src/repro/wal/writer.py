"""WAL buffer, group commit, and checkpoint-triggering ring writer.

The writer appends encoded records to an in-memory buffer and flushes
them to a dedicated device region:

* ``group_commit_flush`` — the common case: the group committer drains
  the buffer off the critical path (``background=True`` device I/O), so a
  committing transaction pays no device latency (Section V-A: "our
  implementation uses group commit so the critical path usually does not
  involve I/O").
* An ``append`` that overflows the buffer must *wait*: the overflowing
  flush is synchronous.  This is the physlog penalty the paper measures —
  "transactions must spend considerable time waiting for the group commit
  to finish" when BLOB-sized records stream through a BLOB-sized buffer
  (Section V-B, 10 MB payload).

When the region runs low the writer invokes the checkpoint callback and
rewinds — checkpoint frequency is therefore proportional to logged bytes,
reproducing "it increases the log size and thus triggers WAL
checkpointing more frequently" (Section II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.io import IoScheduler
from repro.sim.cost import CostModel
from repro.storage.device import SimulatedNVMe
from repro.wal.records import LogRecord, decode_records

#: Chunk size (pages) of the deep-queue sequential scan recovery uses to
#: read the log region: the region is split into chunks submitted as one
#: batch, so chunk latencies overlap up to the scan queue depth instead
#: of serializing behind one giant command.
SCAN_CHUNK_PAGES = 64
SCAN_QUEUE_DEPTH = 32


def scan_region(device, model: CostModel, region_pid: int,
                npages: int, *, verify: bool = False) -> bytes:
    """Read ``npages`` at ``region_pid`` as one deep-queue chunked batch."""
    if npages <= 0:
        return b""
    scheduler = IoScheduler(device, model, queue_depth=SCAN_QUEUE_DEPTH,
                            max_merge_pages=SCAN_CHUNK_PAGES)
    tickets = []
    pid = region_pid
    remaining = npages
    while remaining > 0:
        chunk = min(SCAN_CHUNK_PAGES, remaining)
        tickets.append(scheduler.submit_read(pid, chunk))
        pid += chunk
        remaining -= chunk
    scheduler.drain(verify=verify)
    return b"".join(t.result for t in tickets)  # type: ignore[misc]


class WalFullError(Exception):
    """A single record is too large for the whole WAL region."""


@dataclass
class WalStats:
    records: int = 0
    bytes_appended: int = 0
    flushes: int = 0
    synchronous_flushes: int = 0
    checkpoints: int = 0


class WalWriter:
    """Appends records to a buffered ring over a device region."""

    def __init__(self, device: SimulatedNVMe, model: CostModel,
                 region_pid: int, region_pages: int,
                 buffer_bytes: int = 1 << 20,
                 checkpoint_cb: Callable[[], None] | None = None,
                 category: str = "wal") -> None:
        if region_pages < 2:
            raise ValueError("WAL region needs at least two pages")
        if buffer_bytes < 4096:
            raise ValueError("WAL buffer must hold at least one page")
        self.device = device
        self.model = model
        self.region_pid = region_pid
        self.region_pages = region_pages
        self.buffer_bytes = buffer_bytes
        self.checkpoint_cb = checkpoint_cb
        self.category = category
        caps = getattr(device, "capabilities", None)
        #: Byte-addressable log devices (PMem) take the byte-append fast
        #: path: no page round-up, no durable-prefix rewrite, persistence
        #: via cache-line flush + fence instead of fdatasync.
        self._byte_log = bool(caps is not None and caps.byte_addressable)
        #: Optional RetryPolicy; when set, region writes survive
        #: transient device faults (set by the engine, not per-call).
        self.retry = None
        self.stats = WalStats()
        self._buffer = bytearray()
        #: Bytes durably written into the region since the last rewind.
        self._write_off = 0
        #: Durable prefix of the current (incomplete) region page; a flush
        #: that lands mid-page rewrites the page including this prefix.
        self._page_head = b""
        self._lsn = 0
        #: Strictly increasing frame sequence; never rewinds, so stale
        #: ring bytes from a previous pass are detectable at recovery.
        self._next_seq = 1
        #: Re-entrancy guard: an overflow flush can trigger a checkpoint
        #: whose callback drains the group-commit window, which asks for
        #: another flush of bytes the outer flush is already persisting.
        self._in_flush = False

    @property
    def region_bytes(self) -> int:
        return self.region_pages * self.device.page_size

    @property
    def lsn(self) -> int:
        """Monotonic count of bytes ever appended."""
        return self._lsn

    def used_fraction(self) -> float:
        if not self.region_bytes:
            return 0.0
        return (self._write_off + len(self._buffer)) / self.region_bytes

    # -- appending ---------------------------------------------------------

    def append(self, record: LogRecord) -> int:
        """Buffer one record; returns its LSN.

        Copies the encoded record into the WAL buffer (priced memcpy).
        If the buffer overflows, it is flushed *synchronously* — the
        appender waits, as a physlog transaction does when a BLOB is
        segmented through a buffer of similar size.
        """
        race = self.model.race
        if race is not None:
            # The append position (_lsn/_next_seq) is one shared cursor:
            # two unordered appenders would interleave torn records.
            race.on_write(("wal", "append"))
        encoded = record.encode(self._next_seq)
        self._next_seq += 1
        if len(encoded) > self.region_bytes:
            raise WalFullError(
                f"record of {len(encoded)} bytes exceeds WAL region")
        lsn = self._lsn
        obs = self.model.obs
        if obs is not None:
            obs.begin("wal.append")
        try:
            self.model.memcpy(len(encoded))
            self._buffer += encoded
            self._lsn += len(encoded)
            self.stats.records += 1
            self.stats.bytes_appended += len(encoded)
            while len(self._buffer) > self.buffer_bytes:
                self._flush_prefix(self.buffer_bytes, background=False)
        finally:
            if obs is not None:
                obs.end(bytes=len(encoded))
                obs.count("wal.records")
                obs.count("wal.bytes_appended", len(encoded))
        return lsn

    # -- flushing -----------------------------------------------------------

    def group_commit_flush(self) -> None:
        """Drain the buffer off the critical path (group committer)."""
        self._flush_prefix(len(self._buffer), background=True)

    def sync_flush(self) -> None:
        """Drain the buffer synchronously (fsync-like durability point)."""
        self._flush_prefix(len(self._buffer), background=False)
        if not self._byte_log:
            # PMem appends persist inside write_bytes (cache-line flush
            # + fence); block devices need the fdatasync round-trip.
            self.model.syscall("fdatasync")

    def _flush_prefix(self, nbytes: int, background: bool) -> None:
        if nbytes <= 0 or not self._buffer or self._in_flush:
            return
        nbytes = min(nbytes, len(self._buffer))
        obs = self.model.obs
        if obs is not None:
            obs.begin("wal.flush")
        self._in_flush = True
        try:
            ps = self.device.page_size
            self._ensure_space(nbytes)
            if self._byte_log:
                # Byte-append fast path: exactly the new bytes land — no
                # page round-up, no re-write of the durable page prefix.
                chunk = bytes(self._buffer[:nbytes])
                byte_off = self.region_pid * ps + self._write_off

                def _write() -> None:
                    self.device.write_bytes(byte_off, chunk,
                                            category=self.category,
                                            background=background)
            else:
                # The write starts at the page holding the current offset
                # and must re-include that page's already-durable prefix.
                chunk = self._page_head + bytes(self._buffer[:nbytes])
                npages = (len(chunk) + ps - 1) // ps
                padded = chunk.ljust(npages * ps, b"\x00")
                first_pid = self.region_pid \
                    + (self._write_off - len(self._page_head)) // ps

                def _write() -> None:
                    self.device.write(first_pid, padded,
                                      category=self.category,
                                      background=background)
            flush_start = self.model.clock.now_ns
            if self.retry is not None:
                self.retry.run(_write)
            else:
                _write()
            if not background:
                # Foreground flush time is amortizable by group commit:
                # one flush serves every worker in the commit window
                # (repro.sim.workers divides this by the worker count).
                self.model.wal_flush_time_ns += \
                    self.model.clock.now_ns - flush_start
            del self._buffer[:nbytes]
            self._write_off += nbytes
            if not self._byte_log:
                in_page = self._write_off % ps
                self._page_head = chunk[-in_page:] if in_page else b""
            san = self.model.san
            if san is not None:
                # Everything up to (appended - still buffered) is durable.
                san.on_wal_durable(self._lsn - len(self._buffer))
            self.stats.flushes += 1
            if not background:
                self.stats.synchronous_flushes += 1
        finally:
            self._in_flush = False
            if obs is not None:
                obs.end(bytes=nbytes, background=background)
                obs.count("wal.flushes", background=background)

    def _ensure_space(self, nbytes: int) -> None:
        # Block rings leave one page of slack for the final page's zero
        # padding; byte logs append exactly and use the whole region.
        slack = 0 if self._byte_log else self.device.page_size
        if self._write_off + nbytes > self.region_bytes - slack:
            self.checkpoint()

    # -- checkpointing --------------------------------------------------------

    def checkpoint(self) -> None:
        """Run the engine checkpoint and rewind the ring."""
        self.stats.checkpoints += 1
        obs = self.model.obs
        if obs is not None:
            obs.begin("wal.checkpoint")
        try:
            if self.checkpoint_cb is not None:
                self.checkpoint_cb()
            self._write_off = 0
            self._page_head = b""
        finally:
            if obs is not None:
                obs.end()
                obs.count("wal.checkpoints")

    def reset(self) -> None:
        """Rewind without invoking the callback (post-checkpoint reset)."""
        self._write_off = 0
        self._page_head = b""

    def set_seq_floor(self, seq: int) -> None:
        """Continue frame sequencing above ``seq`` (used after recovery,
        so stale pre-crash ring records stay distinguishable)."""
        self._next_seq = max(self._next_seq, seq + 1)

    # -- recovery support ---------------------------------------------------------

    def durable_records(self) -> list[LogRecord]:
        """Decode the records currently durable in the region.

        Used by recovery after a crash: buffered-but-unflushed records are
        volatile and correctly absent.
        """
        ps = self.device.page_size
        npages = (self._write_off + ps - 1) // ps
        if npages == 0:
            return []
        # Recovery pays for its log scan like any other read — a chunked
        # deep-queue sequential batch; skip the checksum verify because
        # torn final pages are expected here.
        raw = scan_region(self.device, self.model, self.region_pid, npages)
        return list(decode_records(raw[:self._write_off]))
