"""Virtual-memory aliasing areas (Section IV-B).

Every worker owns a *worker-local aliasing area*; BLOBs larger than it
reserve a contiguous run of logical blocks from a *shared aliasing area*
guarded by a bitmap range lock ("a simple range lock using a bitmap and
compare-and-swap").  The paper's example: a 160 GB shared area split into
1 GB blocks needs a 160-bit bitmap — three ``uint64_t`` words.

The simulation allocates no real virtual memory; it tracks the bitmap,
charges the exmap page-table update per aliasing call, and charges the
TLB shootdown on release — the costs Table II and Fig. 10 are about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cost import CostModel


class AliasingExhausted(Exception):
    """No contiguous run of shared blocks can cover the request."""


@dataclass
class AliasHandle:
    """An acquired aliasing range; pass back to ``release``."""

    worker_id: int
    npages: int
    shared_first_block: int = -1
    shared_nblocks: int = 0

    @property
    def is_shared(self) -> bool:
        return self.shared_nblocks > 0


@dataclass
class AliasingStats:
    local_acquires: int = 0
    shared_acquires: int = 0
    cas_retries: int = 0
    releases: int = 0
    tlb_shootdowns: int = 0


class AliasingManager:
    """Worker-local areas plus a block-granular shared area."""

    def __init__(self, model: CostModel, n_workers: int,
                 worker_local_pages: int, shared_pages: int) -> None:
        if n_workers < 1 or worker_local_pages < 1 or shared_pages < 1:
            raise ValueError("aliasing geometry must be positive")
        self.model = model
        self.n_workers = n_workers
        self.worker_local_pages = worker_local_pages
        # Shared area is split into blocks the size of a worker-local area.
        self.block_pages = worker_local_pages
        self.n_blocks = max(1, shared_pages // self.block_pages)
        self._bitmap = 0
        self.stats = AliasingStats()

    @property
    def bitmap_words(self) -> int:
        """Number of uint64 words the range-lock bitmap occupies."""
        return (self.n_blocks + 63) // 64

    def total_virtual_pages(self) -> int:
        """Virtual address budget: all local areas plus the shared area."""
        return (self.n_workers * self.worker_local_pages
                + self.n_blocks * self.block_pages)

    # -- acquire/release ---------------------------------------------------------

    def acquire(self, worker_id: int, npages: int) -> AliasHandle:
        """Map ``npages`` of extents into an aliasing area.

        Charges one exmap call writing ``npages`` PTEs; shared-area
        requests additionally pay the bitmap compare-and-swap.
        """
        if not (0 <= worker_id < self.n_workers):
            raise ValueError(f"worker {worker_id} out of range")
        if npages <= 0:
            raise ValueError("npages must be positive")
        if npages <= self.worker_local_pages:
            self.model.exmap_alias(npages)
            self.stats.local_acquires += 1
            return AliasHandle(worker_id=worker_id, npages=npages)
        nblocks = (npages + self.block_pages - 1) // self.block_pages
        first = self._reserve_blocks(nblocks)
        self.model.exmap_alias(npages)
        self.stats.shared_acquires += 1
        return AliasHandle(worker_id=worker_id, npages=npages,
                           shared_first_block=first, shared_nblocks=nblocks)

    def _reserve_blocks(self, nblocks: int) -> int:
        """First-fit contiguous run in the bitmap, set atomically (CAS)."""
        if nblocks > self.n_blocks:
            raise AliasingExhausted(
                f"need {nblocks} blocks, shared area has {self.n_blocks}")
        mask = (1 << nblocks) - 1
        for first in range(self.n_blocks - nblocks + 1):
            if self._bitmap & (mask << first) == 0:
                # One CAS on the word(s) holding the range.
                self.model.latch(contended=False)
                self._bitmap |= mask << first
                return first
        raise AliasingExhausted(
            f"no contiguous {nblocks}-block run free in shared area")

    def release(self, handle: AliasHandle) -> None:
        """Unalias: clear PTEs and shoot down the stale TLB entries."""
        if handle.is_shared:
            mask = ((1 << handle.shared_nblocks) - 1) << handle.shared_first_block
            if self._bitmap & mask != mask:
                raise ValueError("releasing blocks that are not reserved")
            self.model.latch(contended=False)
            self._bitmap &= ~mask
        self.model.exmap_alias(handle.npages)
        self.model.tlb_shootdown()
        self.stats.releases += 1
        self.stats.tlb_shootdowns += 1

    def blocks_in_use(self) -> int:
        return bin(self._bitmap).count("1")
