"""Buffer management: hash-table pool vs. vmcache+exmap (Section IV).

Two pools with one interface:

* :class:`HashTablePool` — the traditional design (``Our.ht`` in the
  paper): a hash table maps each *page* to its frame, so reading an
  N-page extent costs N translations, and a multi-extent BLOB must be
  materialized with ``malloc()`` + ``memcpy()`` before an application can
  see it as contiguous memory.
* :class:`VmcachePool` — vmcache with exmap: one translation per
  *extent*, and *virtual-memory aliasing* presents disjoint extents as a
  single contiguous region with no copy, at the price of a page-table
  update and a TLB shootdown per aliasing operation.

Both pools implement the paper's extent-granularity synchronization and
the size-fair eviction policy (Section III-G), and honour the
``prevent_evict`` flag that protects freshly allocated extents until
their commit-time flush completes (Section III-C).
"""

from repro.buffer.frames import BlobView, ExtentFrame
from repro.buffer.pool import BufferPoolBase, PoolStats
from repro.buffer.hashtable_pool import HashTablePool
from repro.buffer.vmcache import VmcachePool
from repro.buffer.aliasing import AliasingExhausted, AliasingManager

__all__ = [
    "ExtentFrame",
    "BlobView",
    "BufferPoolBase",
    "PoolStats",
    "HashTablePool",
    "VmcachePool",
    "AliasingManager",
    "AliasingExhausted",
]
