"""vmcache + exmap buffer pool (``Our`` in the paper, Section IV).

Differences from the hash-table pool, both priced by the cost model:

* **Translation**: vmcache indexes frames by virtual address, so locating
  an extent costs *one* translation regardless of its page count.
* **Materialization**: a multi-extent BLOB is presented as contiguous
  memory by *virtual memory aliasing* — an exmap page-table update plus a
  TLB shootdown on release — instead of ``malloc`` + ``memcpy``.  A
  single-extent BLOB is already contiguous and needs no aliasing at all.
"""

from __future__ import annotations

from repro.buffer.aliasing import AliasingManager
from repro.buffer.frames import BlobView
from repro.buffer.pool import BufferPoolBase
from repro.sim.cost import CostModel
from repro.storage.device import SimulatedNVMe

#: Default worker-local aliasing area: 16 MB of 4 KiB pages (Section V-F
#: shows 4 MB vs 16 MB perform alike; 16 MB avoids the shared area for
#: the paper's default 10 MB BLOBs).
DEFAULT_WORKER_LOCAL_PAGES = 4096

#: Below this size a multi-extent BLOB is materialized with a plain
#: copy instead of aliased: the paper's own Fig. 10 shows the TLB
#: shootdown outweighs malloc+memcpy for small objects, so the engine
#: picks per size (an engineering refinement of Section V-E's analysis).
DEFAULT_ALIAS_THRESHOLD_BYTES = 64 * 1024


class VmcachePool(BufferPoolBase):
    """Buffer pool with one-translation-per-extent and aliasing reads."""

    def __init__(self, device: SimulatedNVMe, model: CostModel,
                 capacity_pages: int, *, n_workers: int = 1,
                 worker_local_pages: int = DEFAULT_WORKER_LOCAL_PAGES,
                 alias_threshold_bytes: int = DEFAULT_ALIAS_THRESHOLD_BYTES,
                 eviction_seed: int = 0) -> None:
        super().__init__(device, model, capacity_pages,
                         eviction_seed=eviction_seed)
        self.alias_threshold_bytes = alias_threshold_bytes
        # The shared aliasing area matches the buffer pool size, split
        # into worker-local-sized logical blocks (Section IV-B).
        self.aliasing = AliasingManager(
            model, n_workers=n_workers,
            worker_local_pages=worker_local_pages,
            shared_pages=max(capacity_pages, worker_local_pages))

    def _translate(self, npages: int) -> None:
        # One translation per extent, independent of the page count.
        self.model.vmcache_translate()

    def read_blob(self, ranges: list[tuple[int, int]], size: int,
                  worker_id: int = 0) -> BlobView:
        """Alias the BLOB's extents into one contiguous view (zero copy).

        Single-extent BLOBs are contiguous already; small multi-extent
        BLOBs are cheaper to copy than to alias (TLB shootdown), so the
        pool picks by ``alias_threshold_bytes``.
        """
        san = self.model.san
        if san is not None:
            san.set_worker(worker_id)
        frames = self.fetch_extents(ranges, pin=True)
        obs = self.model.obs
        if len(frames) > 1 and size < self.alias_threshold_bytes:
            if obs is not None:
                obs.count("pool.materialize", mode="copy")
            self.model.malloc(size)
            self.model.memcpy(size)
            if san is not None:
                for frame in frames:
                    san.on_frame_read(frame)
            data = b"".join(bytes(f.data) for f in frames)[:size]
            return BlobView(frames, size,
                            release=lambda: self.unpin(frames),
                            materialized=data)
        handle = None
        if len(frames) > 1:
            if obs is not None:
                obs.count("pool.materialize", mode="alias")
            total_pages = sum(f.npages for f in frames)
            handle = self.aliasing.acquire(worker_id, total_pages)

        def release() -> None:
            if handle is not None:
                self.aliasing.release(handle)
            self.unpin(frames)

        return BlobView(frames, size, release=release)
