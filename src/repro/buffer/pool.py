"""Common buffer-pool machinery: residency, fair eviction, write-back."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.buffer.frames import BlobView, ExtentFrame
from repro.io import IoScheduler
from repro.sim.cost import CostModel
from repro.storage.device import SimulatedNVMe


@dataclass
class PoolStats:
    """Counters for the buffer experiments (Figs. 9, 10)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferPoolBase:
    """Extent-granular buffer pool over a simulated device.

    Subclasses implement the translation cost (:meth:`_translate`) and the
    materialization strategy (:meth:`read_blob`): that is exactly where
    the hash-table design and vmcache+exmap differ in the paper.
    """

    def __init__(self, device: SimulatedNVMe, model: CostModel,
                 capacity_pages: int, eviction_seed: int = 0,
                 eviction_policy: str = "fair", *,
                 io_queue_depth: int = 32,
                 io_max_merge_pages: int = 64) -> None:
        if capacity_pages <= 0:
            raise ValueError("capacity must be positive")
        if eviction_policy not in ("fair", "uniform"):
            raise ValueError("eviction_policy must be 'fair' or 'uniform'")
        self.device = device
        self.model = model
        self.capacity_pages = capacity_pages
        #: SQ/CQ front end: every batched pool I/O (miss loads, flush
        #: batches) goes through one scheduler so adjacent extents
        #: coalesce and batches are priced at its queue depth.
        self.io = IoScheduler(device, model, queue_depth=io_queue_depth,
                              max_merge_pages=io_max_merge_pages)
        #: "fair" accepts a victim with probability proportional to its
        #: page count (Section III-G); "uniform" treats every extent as
        #: equally evictable (the ablation baseline).
        self.eviction_policy = eviction_policy
        #: Optional RetryPolicy; when set, device I/O issued by the pool
        #: survives transient faults (set by the engine, not per-call).
        self.retry = None
        self.stats = PoolStats()
        self._frames: dict[int, ExtentFrame] = {}
        self._used_pages = 0
        self._clockhand = 0
        self._rng = random.Random(eviction_seed)
        self._max_extent_pages = 1

    # -- residency -----------------------------------------------------------

    @property
    def used_pages(self) -> int:
        return self._used_pages

    def is_resident(self, head_pid: int) -> bool:
        return head_pid in self._frames

    def frame_is_current(self, frame: ExtentFrame) -> bool:
        """True while ``frame`` still owns its pages in this pool.

        A deferred group-commit flush uses this to skip frames whose
        blob was dropped or replaced after the commit that queued them:
        their pages may have been reallocated to someone else.
        """
        return self._frames.get(frame.head_pid) is frame

    def get_frame(self, head_pid: int) -> ExtentFrame | None:
        frame = self._frames.get(head_pid)
        if frame is not None:
            self._translate(frame.npages)
            self._touch(frame)
        return frame

    def _touch(self, frame: ExtentFrame) -> None:
        self._clockhand += 1
        frame.last_use = self._clockhand

    def _device_call(self, op):
        """Issue a device operation, retrying transient faults if a
        retry policy is attached."""
        if self.retry is not None:
            return self.retry.run(op)
        return op()

    def _translate(self, npages: int) -> None:
        """Charge the page-translation cost; subclass-specific."""
        raise NotImplementedError

    # -- allocation of fresh frames ----------------------------------------------

    def allocate_frame(self, head_pid: int, npages: int, *,
                       prevent_evict: bool = True) -> ExtentFrame:
        """Create a frame for a newly allocated extent (no device read).

        Freshly allocated BLOB extents are protected from eviction until
        their commit-time flush completes (Section III-C).
        """
        if head_pid in self._frames:
            raise ValueError(f"extent {head_pid} already resident")
        self._make_room(npages)
        frame = ExtentFrame(head_pid=head_pid, npages=npages,
                            page_size=self.device.page_size,
                            prevent_evict=prevent_evict,
                            san=self.model.san,
                            race=self.model.race)
        self._frames[head_pid] = frame
        self._used_pages += npages
        self._max_extent_pages = max(self._max_extent_pages, npages)
        self._touch(frame)
        return frame

    # -- reads ------------------------------------------------------------------

    def fetch_extents(self, ranges: list[tuple[int, int]],
                      pin: bool = True) -> list[ExtentFrame]:
        """Ensure all extents are resident; misses load in ONE async batch.

        This is the paper's read path: "allocates N buffer frames for all
        those extents and reads the extents using a single asynchronous
        IO system call" (Section III-D).
        """
        missing: list[tuple[int, int]] = []
        for pid, npages in ranges:
            frame = self._frames.get(pid)
            self._translate(npages)
            if frame is None:
                self.stats.misses += 1
                missing.append((pid, npages))
            else:
                self.stats.hits += 1
        obs = self.model.obs
        if obs is not None:
            obs.count("pool.hits", len(ranges) - len(missing))
            obs.count("pool.misses", len(missing))
        if missing:
            if obs is not None:
                obs.begin("pool.load")
            try:
                self._make_room(sum(n for _, n in missing))
                tickets = [self.io.submit_read(pid, n)
                           for pid, n in missing]
                self._device_call(self.io.drain)
                for (pid, npages), ticket in zip(missing, tickets):
                    assert ticket.result is not None
                    frame = ExtentFrame(head_pid=pid, npages=npages,
                                        page_size=self.device.page_size,
                                        data=bytearray(ticket.result),
                                        san=self.model.san,
                                        race=self.model.race)
                    self._frames[pid] = frame
                    self._used_pages += npages
                    self._max_extent_pages = max(self._max_extent_pages,
                                                 npages)
            finally:
                if obs is not None:
                    obs.end(extents=len(missing),
                            pages=sum(n for _, n in missing))
        san = self.model.san
        race = self.model.race
        if san is not None and pin:
            # One batch acquisition: pages latched together are unordered
            # with respect to each other (the pool pins them atomically).
            san.on_latch_acquire([pid for pid, _ in ranges])
        frames = []
        for pid, _ in ranges:
            frame = self._frames[pid]
            if san is not None:
                frame.san = san
            if race is not None:
                frame.race = race
            self._touch(frame)
            if pin:
                frame.pins += 1
            frames.append(frame)
        return frames

    def unpin(self, frames: list[ExtentFrame]) -> None:
        for frame in frames:
            if frame.pins <= 0:
                raise RuntimeError(f"frame {frame.head_pid} is not pinned")
            frame.pins -= 1
            if frame.san is not None:
                frame.san.on_latch_release(frame.head_pid)

    def read_blob(self, ranges: list[tuple[int, int]], size: int,
                  worker_id: int = 0) -> BlobView:
        """Present a possibly multi-extent BLOB as contiguous memory."""
        raise NotImplementedError

    # -- write-back and eviction ---------------------------------------------------

    def write_back(self, frame: ExtentFrame, category: str = "data") -> int:
        """Flush the frame's dirty page range; returns bytes written."""
        if not frame.is_dirty:
            return 0
        san = self.model.san
        if san is not None and category == "data":
            san.on_data_writeback(frame.head_pid)
        payload = frame.dirty_slice()
        obs = self.model.obs
        if obs is not None:
            obs.begin("pool.writeback")
        try:
            self._device_call(lambda: self.device.write(
                frame.head_pid + frame.dirty_from, payload,
                category=category))
        finally:
            if obs is not None:
                obs.end(pid=frame.head_pid, bytes=len(payload))
                obs.count("pool.writebacks")
        frame.clean()
        self.stats.writebacks += 1
        return len(payload)

    def flush_batch(self, frames: list[ExtentFrame], category: str = "data",
                    background: bool = False) -> int:
        """Flush many frames' dirty ranges as one async batch.

        ``background=True`` models work a group committer / checkpointer
        performs off the critical path.  Frames are sorted by head pid
        before submission so the scheduler sees pid-adjacent extents
        next to each other and can coalesce them into larger transfers.
        """
        total = 0
        flushed = 0
        san = self.model.san
        for frame in sorted(frames, key=lambda f: f.head_pid):
            if not frame.is_dirty:
                continue
            if san is not None and category == "data":
                san.on_data_writeback(frame.head_pid)
            payload = frame.dirty_slice()
            self.io.submit_write(frame.head_pid + frame.dirty_from,
                                 payload, category=category)
            total += len(payload)
            flushed += 1
            frame.clean()
            self.stats.writebacks += 1
        if flushed:
            obs = self.model.obs
            if obs is not None:
                obs.begin("pool.flush_batch")
            try:
                self._device_call(
                    lambda: self.io.drain(background=background))
            finally:
                if obs is not None:
                    obs.end(extents=flushed, bytes=total,
                            background=background)
                    obs.count("pool.writebacks", flushed)
        return total

    def flush_all_dirty(self, category: str = "data",
                        background: bool = True,
                        skip_protected: bool = True) -> int:
        """Checkpoint helper: flush every dirty, unprotected frame."""
        victims = [f for f in self._frames.values()
                   if f.is_dirty and not (skip_protected and f.prevent_evict)]
        return self.flush_batch(victims, category=category,
                                background=background)

    def drop(self, head_pid: int) -> None:
        """Remove an extent from the pool (deleted BLOBs); must be clean."""
        frame = self._frames.pop(head_pid, None)
        if frame is not None:
            self._used_pages -= frame.npages
            if frame.san is not None:
                frame.san.on_frame_drop(head_pid)

    def _make_room(self, npages: int) -> None:
        if npages > self.capacity_pages:
            raise ValueError(
                f"extent batch of {npages} pages exceeds pool capacity "
                f"{self.capacity_pages}")
        guard = 0
        while self._used_pages + npages > self.capacity_pages:
            if not self._evict_one(force=guard > 2 * len(self._frames) + 8):
                guard += 1
                if guard > 4 * len(self._frames) + 16:
                    raise RuntimeError(
                        "buffer pool wedged: everything pinned or protected")

    def _evict_one(self, force: bool = False) -> bool:
        """Fair (size-weighted) eviction of one extent (Section III-G).

        An N-page extent is accepted with probability proportional to N:
        ``rand(MAX_EXT_SIZE) < extent_size`` — so large extents leave the
        pool N times more readily than single pages.
        """
        candidates = list(self._frames.values())
        if not candidates:
            return False
        self._rng.shuffle(candidates)
        for frame in candidates:
            if frame.prevent_evict or frame.pins > 0:
                continue
            if self.eviction_policy == "fair":
                accept = force or \
                    self._rng.randrange(self._max_extent_pages) < frame.npages
            else:
                accept = True
            if not accept:
                continue
            obs = self.model.obs
            if obs is not None:
                obs.instant("pool.evict", pid=frame.head_pid,
                            npages=frame.npages, dirty=frame.is_dirty)
                obs.count("pool.evictions")
            if frame.is_dirty:
                self.write_back(frame)
            del self._frames[frame.head_pid]
            self._used_pages -= frame.npages
            self.stats.evictions += 1
            return True
        return False

    def drop_all_volatile(self) -> None:
        """Crash simulation: all frames vanish without write-back."""
        self._frames.clear()
        self._used_pages = 0
