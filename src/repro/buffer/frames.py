"""Buffer frames at extent granularity.

The paper synchronizes and evicts at extent granularity (coarse-grained
latching, Section III-G), so a frame covers one whole extent: its head
PID identifies it, and a contiguous dirty range tracks which pages a
commit-time flush must write ("the DBMS only writes the dirty pages",
Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExtentFrame:
    """In-memory image of one extent."""

    head_pid: int
    npages: int
    page_size: int
    data: bytearray = field(repr=False, default_factory=bytearray)
    #: First/last+1 dirty page offsets within the extent; empty when clean.
    dirty_from: int = 0
    dirty_to: int = 0
    #: Set after allocation, cleared when the commit-time flush completes;
    #: the eviction policy never touches a protected extent.
    prevent_evict: bool = False
    #: Readers pin the frame so eviction cannot drop it mid-access.
    pins: int = 0
    #: Monotonic use stamp for eviction candidate ordering.
    last_use: int = 0
    #: Runtime sanitizer hook (``model.san``); ``None`` — the default —
    #: costs one attribute check per access.  Excluded from equality:
    #: frame identity is its content and state, not its instrumentation.
    san: "object | None" = field(default=None, repr=False, compare=False)
    #: Happens-before detector hook (``model.race``), same pattern and
    #: same equality exclusion as ``san``.
    race: "object | None" = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.data:
            self.data = bytearray(self.npages * self.page_size)
        elif len(self.data) != self.npages * self.page_size:
            raise ValueError("frame data does not match extent geometry")

    @property
    def is_dirty(self) -> bool:
        return self.dirty_to > self.dirty_from

    @property
    def dirty_pages(self) -> int:
        return self.dirty_to - self.dirty_from

    def mark_dirty(self, first_page: int, last_page: int) -> None:
        """Extend the dirty range to cover pages [first_page, last_page)."""
        if not (0 <= first_page < last_page <= self.npages):
            raise ValueError(
                f"dirty range [{first_page}, {last_page}) outside extent "
                f"of {self.npages} pages")
        if self.is_dirty:
            self.dirty_from = min(self.dirty_from, first_page)
            self.dirty_to = max(self.dirty_to, last_page)
        else:
            self.dirty_from, self.dirty_to = first_page, last_page

    def clean(self) -> None:
        self.dirty_from = self.dirty_to = 0

    def dirty_slice(self) -> bytes:
        """The bytes of the dirty page range (what a flush writes)."""
        ps = self.page_size
        return bytes(self.data[self.dirty_from * ps:self.dirty_to * ps])

    def write_at(self, offset: int, payload: bytes) -> None:
        """Copy ``payload`` into the extent and dirty the touched pages."""
        if self.san is not None:
            self.san.on_frame_write(self)
        if self.race is not None:
            self.race.on_write(("frame", self.head_pid))
        end = offset + len(payload)
        if end > len(self.data):
            raise ValueError("write beyond extent capacity")
        self.data[offset:end] = payload
        ps = self.page_size
        self.mark_dirty(offset // ps, (end + ps - 1) // ps)


class BlobView:
    """A BLOB presented as contiguous memory.

    For the vmcache pool this models an *aliasing area*: the frames stay
    where they are and the view is zero-copy; releasing the view triggers
    the unalias (page-table clear + TLB shootdown).  For the hash-table
    pool the view owns a materialized copy.  Either way, the application
    reads the content with exactly one explicit ``copy_to_client`` —
    matching the paper's "only one memory copy is required" argument.
    """

    def __init__(self, frames: list[ExtentFrame], size: int,
                 release: "callable | None" = None,
                 materialized: bytes | None = None) -> None:
        self._frames = frames
        self.size = size
        self._release = release
        self._materialized = materialized
        self._released = False

    def contiguous(self) -> bytes:
        """The BLOB content as one buffer (zero-copy in simulation)."""
        if self._released:
            raise RuntimeError("view used after release")
        if self._materialized is not None:
            return self._materialized
        for frame in self._frames:
            if frame.san is not None:
                frame.san.on_frame_read(frame)
            if frame.race is not None:
                frame.race.on_read(("frame", frame.head_pid))
        joined = b"".join(bytes(f.data) for f in self._frames)
        return joined[:self.size]

    def copy_to_client(self, model) -> bytes:
        """The application-side read: one memcpy of the BLOB's size."""
        data = self.contiguous()
        model.memcpy(self.size)
        return data

    def release(self) -> None:
        """Return the view (unalias / unpin); idempotent."""
        if self._released:
            return
        self._released = True
        if self._release is not None:
            self._release()

    def __enter__(self) -> "BlobView":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()
