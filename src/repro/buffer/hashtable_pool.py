"""Traditional hash-table buffer pool (``Our.ht`` in the paper).

Kept as a faithfully-priced baseline: page-granular hash translation
(N probes for an N-page extent) and ``malloc`` + ``memcpy``
materialization of multi-extent BLOBs, including the first-touch page
faults of the fresh anonymous buffer.  These are precisely the costs the
paper's Fig. 10 attributes the vmcache advantage to.
"""

from __future__ import annotations

from repro.buffer.frames import BlobView
from repro.buffer.pool import BufferPoolBase

#: glibc M_MMAP_THRESHOLD: allocations above this use a fresh anonymous
#: mmap (page faults on first touch); smaller ones recycle arena memory.
#: This is why the hash-table pool is competitive at 100 KB but falls
#: behind at 1-10 MB in the paper's Fig. 10.
MMAP_THRESHOLD = 128 * 1024


class HashTablePool(BufferPoolBase):
    """Buffer pool with per-page hash translation and copying reads."""

    def _translate(self, npages: int) -> None:
        # One hash probe per page: "previous buffer pool designs trigger
        # exactly N page translations" (Section IV-A).
        for _ in range(npages):
            self.model.hashtable_probe()

    def read_blob(self, ranges: list[tuple[int, int]], size: int,
                  worker_id: int = 0) -> BlobView:
        """Materialize the BLOB into a fresh contiguous buffer (copy)."""
        san = self.model.san
        if san is not None:
            san.set_worker(worker_id)
        frames = self.fetch_extents(ranges, pin=True)
        if len(frames) == 1:
            # A single extent is contiguous in the frame already.
            return BlobView(frames, size, release=lambda: self.unpin(frames))
        # malloc a staging buffer and memcpy every extent into it; big
        # buffers come from fresh anonymous mmaps that page-fault on
        # first touch, small ones recycle warm arena memory.
        self.model.malloc(size)
        self.model.memcpy(size, faults=size > MMAP_THRESHOLD)
        if san is not None:
            for frame in frames:
                san.on_frame_read(frame)
        data = b"".join(bytes(f.data) for f in frames)[:size]
        view = BlobView(frames, size, release=lambda: self.unpin(frames),
                        materialized=data)
        return view
