"""Extent allocation with per-tier free lists (Sections III-A and III-D).

Because extent sizes are static per tier, reuse needs only one free list
per tier: deletion pushes head PIDs onto a transaction-local list, commit
publishes them to the per-tier free lists, and later allocations pop from
the free list before extending the high-water mark.  This is the design
Figure 11 evaluates: recycling stays cheap at any storage utilization.

Tail extents are arbitrary-sized; their space is kept in a size-keyed
free map and reused on exact size match (first-fit on equal size), which
is sufficient because tail sizes repeat under stable workloads.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.extent import AllocationPlan, Extent, TailExtent
from repro.core.tier import TierTable


class StorageFull(Exception):
    """No free extent and no room left to extend the data area."""


@dataclass
class AllocatorStats:
    """Counters exposed to the recycling experiment (Fig. 11)."""

    fresh_extents: int = 0
    reused_extents: int = 0
    freed_extents: int = 0

    @property
    def reuse_ratio(self) -> float:
        total = self.fresh_extents + self.reused_extents
        return self.reused_extents / total if total else 0.0


class ExtentAllocator:
    """Bump allocator over a page range plus per-tier free lists."""

    def __init__(self, tiers: TierTable, first_pid: int,
                 capacity_pages: int, model=None) -> None:
        if capacity_pages <= 0:
            raise ValueError("capacity must be positive")
        self.tiers = tiers
        self.first_pid = first_pid
        self.capacity_pages = capacity_pages
        #: Optional CostModel; only its ``obs`` tracer is consulted, so
        #: allocation decisions can be traced (extent reuse vs fresh).
        self.model = model
        self._next_pid = first_pid
        self._free: dict[int, list[int]] = defaultdict(list)       # tier -> pids
        self._free_tails: dict[int, list[int]] = defaultdict(list)  # npages -> pids
        self._free_pages = 0
        self.stats = AllocatorStats()

    # -- capacity ------------------------------------------------------------

    @property
    def end_pid(self) -> int:
        return self.first_pid + self.capacity_pages

    @property
    def allocated_pages(self) -> int:
        """Pages currently handed out (bump minus recycled free space)."""
        return (self._next_pid - self.first_pid) - self._free_pages

    def utilization(self) -> float:
        if not self.capacity_pages:
            return 0.0
        return self.allocated_pages / self.capacity_pages

    def _bump(self, npages: int) -> int:
        if self._next_pid + npages > self.end_pid:
            raise StorageFull(
                f"need {npages} pages, {self.end_pid - self._next_pid} left")
        pid = self._next_pid
        self._next_pid += npages
        return pid

    # -- allocation -------------------------------------------------------------

    def allocate_extent(self, tier_index: int) -> Extent:
        """Allocate one extent of the given tier (free list first)."""
        npages = self.tiers.size(tier_index)
        free = self._free.get(tier_index)
        if free:
            pid = free.pop()
            self._free_pages -= npages
            self.stats.reused_extents += 1
            reused = True
        else:
            pid = self._bump(npages)
            self.stats.fresh_extents += 1
            reused = False
        obs = self.model.obs if self.model is not None else None
        if obs is not None:
            obs.instant("alloc.extent", tier=tier_index, pid=pid,
                        npages=npages, reused=reused)
            obs.count("alloc.extents", kind="reused" if reused else "fresh")
        return Extent(pid=pid, npages=npages, tier_index=tier_index)

    def allocate_tail(self, npages: int) -> TailExtent:
        """Allocate one arbitrarily-sized tail extent."""
        if npages <= 0:
            raise ValueError("tail extent needs at least one page")
        free = self._free_tails.get(npages)
        if free:
            pid = free.pop()
            self._free_pages -= npages
            self.stats.reused_extents += 1
            reused = True
        else:
            pid = self._bump(npages)
            self.stats.fresh_extents += 1
            reused = False
        obs = self.model.obs if self.model is not None else None
        if obs is not None:
            obs.instant("alloc.tail", pid=pid, npages=npages, reused=reused)
            obs.count("alloc.extents", kind="reused" if reused else "fresh")
        return TailExtent(pid=pid, npages=npages)

    def allocate_plan(self, plan: AllocationPlan) \
            -> tuple[list[Extent], TailExtent | None]:
        """Allocate everything an :class:`AllocationPlan` asks for."""
        extents = [self.allocate_extent(i) for i in plan.tier_indices]
        tail = self.allocate_tail(plan.tail_pages) if plan.tail_pages else None
        return extents, tail

    # -- deallocation ---------------------------------------------------------------

    def free_extents(self, extents: list[Extent]) -> None:
        """Publish deleted tiered extents to the per-tier free lists.

        Called at transaction commit with the transaction's temporary
        free list (Section III-D "BLOB deletion and extent reusability").
        """
        for extent in extents:
            self._free[extent.tier_index].append(extent.pid)
            self._free_pages += extent.npages
            self.stats.freed_extents += 1
        if extents and self.model is not None and self.model.obs is not None:
            self.model.obs.count("alloc.freed", len(extents))

    def free_tail(self, tail: TailExtent) -> None:
        self._free_tails[tail.npages].append(tail.pid)
        self._free_pages += tail.npages
        self.stats.freed_extents += 1

    def free_list_length(self, tier_index: int) -> int:
        return len(self._free.get(tier_index, ()))

    # -- checkpoint / recovery support -----------------------------------------

    def snapshot(self) -> tuple[int, dict[int, list[int]], dict[int, list[int]]]:
        """State persisted by a checkpoint: bump pointer and free lists."""
        return (self._next_pid,
                {t: list(p) for t, p in self._free.items() if p},
                {n: list(p) for n, p in self._free_tails.items() if p})

    def restore(self, next_pid: int, free_extents: dict[int, list[int]],
                free_tails: dict[int, list[int]]) -> None:
        """Reset to a snapshot (used when loading a checkpoint)."""
        if not (self.first_pid <= next_pid <= self.end_pid):
            raise ValueError(f"bump pointer {next_pid} outside data area")
        self._next_pid = next_pid
        self._free = defaultdict(list, {t: list(p)
                                        for t, p in free_extents.items()})
        self._free_tails = defaultdict(list, {n: list(p)
                                              for n, p in free_tails.items()})
        self._free_pages = (
            sum(self.tiers.size(t) * len(p) for t, p in self._free.items())
            + sum(n * len(p) for n, p in self._free_tails.items()))

    def note_allocated(self, pid: int, npages: int, tier_index: int | None,
                       end_pid: int) -> None:
        """Recovery: mark an extent seen in a live Blob State as in use."""
        if tier_index is not None and pid in self._free.get(tier_index, ()):
            self._free[tier_index].remove(pid)
            self._free_pages -= npages
        elif tier_index is None and pid in self._free_tails.get(npages, ()):
            self._free_tails[npages].remove(pid)
            self._free_pages -= npages
        if end_pid > self._next_pid:
            self._next_pid = min(end_pid, self.end_pid)
