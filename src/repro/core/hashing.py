"""Hasher selection: reference pure-Python SHA-256 vs hashlib-backed.

Both produce identical digests and expose the resumable-state interface;
see :mod:`repro.sha`.  ``resume_or_rehash`` centralizes the fallback the
fast hasher needs after a simulated crash: when the live intermediate
state is gone, the BLOB content is re-hashed from scratch (the cost the
paper's stored intermediate digest normally avoids).
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol

from repro.sha.fast import _TOKEN_PREFIX, FastSha256, StateLost
from repro.sha.sha256 import Sha256, Sha256State

HASHER_KINDS = ("reference", "fast")


class ResumableHasher(Protocol):
    def update(self, data: bytes) -> None: ...
    def digest(self) -> bytes: ...
    def state(self) -> Sha256State: ...


def new_hasher(kind: str, data: bytes = b"") -> ResumableHasher:
    if kind == "reference":
        return Sha256(data)
    if kind == "fast":
        return FastSha256(data)
    raise ValueError(f"unknown hasher kind {kind!r}; pick from {HASHER_KINDS}")


def resume_or_rehash(kind: str, state: Sha256State,
                     read_existing: Callable[[], Iterable[bytes]]) -> ResumableHasher:
    """Resume from an intermediate state, re-hashing content if it's lost.

    ``read_existing`` is only invoked on the fallback path; it must yield
    the BLOB's current content in order.
    """
    cls = Sha256 if kind == "reference" else FastSha256
    try:
        if kind == "reference" and state.chaining.startswith(_TOKEN_PREFIX):
            # A fast-hasher token is not a real chaining value; the
            # reference hasher cannot resume from it.
            raise StateLost("token-based state from FastSha256")
        return cls.resume(state)
    except StateLost:
        hasher = cls()
        for chunk in read_existing():
            hasher.update(chunk)
        return hasher
