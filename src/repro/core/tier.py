"""Extent-tier size formula (paper Section III-A).

An extent sequence stores a BLOB as a flat list of extents whose sizes
grow exponentially, so a short list can represent a huge object.  The
size of every extent is *static*: it depends only on the extent's
position in the sequence, so Blob State does not need to store per-extent
sizes — only head-page PIDs — halving BLOB metadata.

The paper's formula splits tiers into levels of ``tiers_per_level`` each;
a tier at position ``pos`` within level ``level`` (both 0-based) has

    size = (level + 1) ** (tiers_per_level - pos) * (level + 2) ** pos

pages.  With 10 tiers per level this yields 1, 2, 4, ..., 512, 1k, 1.5k,
2.3k, ... (the table in Section III-A).  Tiers past ``max_levels`` levels
repeat the largest size.

Power-of-Two and Fibonacci tier tables are provided as the baselines the
paper rejects for their waste (50 % and 38.2 % respectively).
"""

from __future__ import annotations

from functools import lru_cache


class TierTable:
    """Common interface: a static mapping from tier index to extent size."""

    #: Human-readable name used in benchmark output.
    name = "abstract"

    def size(self, tier_index: int) -> int:
        """Extent size in pages for the tier at ``tier_index`` (0-based)."""
        raise NotImplementedError

    def cumulative(self, n_tiers: int) -> int:
        """Total pages of the first ``n_tiers`` extents."""
        return sum(self.size(i) for i in range(n_tiers))

    def tiers_for_pages(self, npages: int) -> int:
        """Smallest number of leading tiers whose capacity covers ``npages``."""
        if npages <= 0:
            raise ValueError("npages must be positive")
        total = 0
        i = 0
        while total < npages:
            total += self.size(i)
            i += 1
        return i

    def waste_fraction(self, npages: int) -> float:
        """Internal fragmentation when storing exactly ``npages`` pages."""
        capacity = self.cumulative(self.tiers_for_pages(npages))
        return (capacity - npages) / capacity

    def max_pages(self, n_extents: int) -> int:
        """Largest BLOB (in pages) an ``n_extents``-long sequence can hold."""
        return self.cumulative(n_extents)


class ExtentTier(TierTable):
    """The paper's proposed tier formula."""

    name = "extent-tier"

    def __init__(self, tiers_per_level: int = 10, max_levels: int = 13) -> None:
        if tiers_per_level < 1 or max_levels < 1:
            raise ValueError("tiers_per_level and max_levels must be >= 1")
        self.tiers_per_level = tiers_per_level
        self.max_levels = max_levels
        self._size = lru_cache(maxsize=None)(self._size_uncached)

    def _size_uncached(self, tier_index: int) -> int:
        t = self.tiers_per_level
        capped = min(tier_index, self.max_levels * t - 1)
        level, pos = divmod(capped, t)
        return (level + 1) ** (t - pos) * (level + 2) ** pos

    def size(self, tier_index: int) -> int:
        if tier_index < 0:
            raise ValueError("tier index must be >= 0")
        return self._size(tier_index)


class PowerOfTwoTier(TierTable):
    """Baseline: extent ``i`` has ``2**i`` pages (≈50 % worst-case waste)."""

    name = "power-of-two"

    def size(self, tier_index: int) -> int:
        if tier_index < 0:
            raise ValueError("tier index must be >= 0")
        return 1 << tier_index


class FibonacciTier(TierTable):
    """Baseline: Fibonacci extent sizes (≈38.2 % worst-case waste)."""

    name = "fibonacci"

    def __init__(self) -> None:
        self._cache = [1, 2]

    def size(self, tier_index: int) -> int:
        if tier_index < 0:
            raise ValueError("tier index must be >= 0")
        while len(self._cache) <= tier_index:
            self._cache.append(self._cache[-1] + self._cache[-2])
        return self._cache[tier_index]
