"""Extents, tail extents, and extent-sequence planning (Section III-A).

A BLOB is stored as an *extent sequence*: extents of statically-tiered
sizes (see :mod:`repro.core.tier`), optionally finished by one
arbitrarily-sized *tail extent* that eliminates internal fragmentation
for static BLOBs at the cost of slower growth (Section III-H).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tier import TierTable


@dataclass(frozen=True)
class Extent:
    """A contiguous run of physical pages belonging to a tier."""

    pid: int
    npages: int
    tier_index: int

    def __post_init__(self) -> None:
        if self.pid < 0 or self.npages <= 0 or self.tier_index < 0:
            raise ValueError(f"invalid extent {self}")


@dataclass(frozen=True)
class TailExtent:
    """One arbitrarily-sized extent replacing the last tiered extent."""

    pid: int
    npages: int

    def __post_init__(self) -> None:
        if self.pid < 0 or self.npages <= 0:
            raise ValueError(f"invalid tail extent {self}")


@dataclass(frozen=True)
class AllocationPlan:
    """What to allocate for a create or grow operation.

    ``tier_indices`` are the tiered extents to allocate (in order), and
    ``tail_pages`` is the size of a tail extent or 0 when none is used.
    """

    tier_indices: tuple[int, ...]
    tail_pages: int

    def capacity_pages(self, tiers: TierTable) -> int:
        return sum(tiers.size(i) for i in self.tier_indices) + self.tail_pages


def plan_create(npages: int, tiers: TierTable, *,
                use_tail: bool = False) -> AllocationPlan:
    """Plan the smallest extent sequence for a new ``npages``-page BLOB.

    Without a tail extent, leading tiers ``0..k`` are taken until their
    capacity covers the BLOB (Figure 1(a)).  With ``use_tail``, tiers are
    taken only while they still fit *entirely* below the BLOB size and the
    exact remainder becomes the tail (Figure 1(b)) — zero wasted pages.
    """
    if npages <= 0:
        raise ValueError("BLOB must span at least one page")
    if not use_tail:
        k = tiers.tiers_for_pages(npages)
        return AllocationPlan(tier_indices=tuple(range(k)), tail_pages=0)
    total = 0
    indices: list[int] = []
    i = 0
    while total + tiers.size(i) < npages:
        total += tiers.size(i)
        indices.append(i)
        i += 1
    return AllocationPlan(tier_indices=tuple(indices), tail_pages=npages - total)


def plan_growth(current_extents: int, current_capacity: int,
                new_total_pages: int, tiers: TierTable) -> AllocationPlan:
    """Plan the extra tiered extents needed to grow to ``new_total_pages``.

    The sequence already holds ``current_extents`` tiered extents with
    ``current_capacity`` pages; growth appends tiers
    ``current_extents, current_extents+1, ...`` until capacity suffices
    (Figure 3).  Tail-extent BLOBs must be converted by the caller first
    (clone the tail into a tiered extent, Section III-D).
    """
    if new_total_pages <= current_capacity:
        return AllocationPlan(tier_indices=(), tail_pages=0)
    total = current_capacity
    indices: list[int] = []
    i = current_extents
    while total < new_total_pages:
        total += tiers.size(i)
        indices.append(i)
        i += 1
    return AllocationPlan(tier_indices=tuple(indices), tail_pages=0)


def extent_page_ranges(head_pids: list[int], tiers: TierTable,
                       tail: TailExtent | None = None) -> list[tuple[int, int]]:
    """Expand head PIDs (+ optional tail) into ``(pid, npages)`` ranges."""
    ranges = [(pid, tiers.size(i)) for i, pid in enumerate(head_pids)]
    if tail is not None:
        ranges.append((tail.pid, tail.npages))
    return ranges
