"""Incremental Blob State comparator (Section III-F).

Index structures order Blob States *by BLOB content* without storing the
content in the index.  Comparisons are resolved as cheaply as possible:

1. **SHA-256 equality** — identical digests mean identical content
   (point-query fast path; see the paper's footnote on SHA-256's
   practical collision resistance).
2. **Embedded prefix** — the first 32 bytes stored in the Blob State
   decide most range comparisons without touching the BLOB.
3. **Incremental extent comparison** — only when both prefixes match are
   the extents dereferenced, one extent at a time, stopping at the first
   difference.
4. **Size tiebreak** — if one BLOB is a prefix of the other, the shorter
   one sorts first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.blob_state import PREFIX_LEN, BlobState

#: Yields the BLOB's logical content one extent at a time.
ChunkReader = Callable[[BlobState], Iterator[bytes]]


@dataclass
class ComparatorStats:
    """How often each escalation level resolved a comparison."""

    sha_hits: int = 0
    prefix_hits: int = 0
    deep_compares: int = 0
    size_tiebreaks: int = 0


class BlobStateComparator:
    """Three-way comparator over Blob States ordered by BLOB content."""

    def __init__(self, read_chunks: ChunkReader) -> None:
        self._read_chunks = read_chunks
        self.stats = ComparatorStats()

    def equal(self, a: BlobState, b: BlobState) -> bool:
        """Point-query equality: one digest comparison, no BLOB access."""
        return a.sha256 == b.sha256

    def compare(self, a: BlobState, b: BlobState) -> int:
        """Return <0, 0, >0 ordering ``a`` against ``b`` by content."""
        if a.sha256 == b.sha256:
            self.stats.sha_hits += 1
            return 0
        n = min(len(a.prefix), len(b.prefix))
        if a.prefix[:n] != b.prefix[:n]:
            self.stats.prefix_hits += 1
            return -1 if a.prefix[:n] < b.prefix[:n] else 1
        if len(a.prefix) != len(b.prefix):
            # One BLOB is shorter than PREFIX_LEN and a strict prefix of
            # the other's prefix: the shorter sorts first.
            self.stats.size_tiebreaks += 1
            return -1 if len(a.prefix) < len(b.prefix) else 1
        if len(a.prefix) < PREFIX_LEN:
            # Both fit inside the prefix and the prefixes are equal, yet
            # the digests differ — impossible unless states are corrupt.
            raise ValueError("equal short prefixes with different digests")
        return self._deep_compare(a, b)

    def _deep_compare(self, a: BlobState, b: BlobState) -> int:
        """Compare extent-by-extent; never materializes both BLOBs."""
        self.stats.deep_compares += 1
        iter_a = _byte_windows(self._read_chunks(a))
        iter_b = _byte_windows(self._read_chunks(b))
        buf_a = buf_b = b""
        while True:
            if not buf_a:
                buf_a = next(iter_a, b"")
            if not buf_b:
                buf_b = next(iter_b, b"")
            if not buf_a or not buf_b:
                break
            n = min(len(buf_a), len(buf_b))
            if buf_a[:n] != buf_b[:n]:
                return -1 if buf_a[:n] < buf_b[:n] else 1
            buf_a, buf_b = buf_a[n:], buf_b[n:]
        self.stats.size_tiebreaks += 1
        if a.size == b.size:
            return 0
        return -1 if a.size < b.size else 1


def _byte_windows(chunks: Iterator[bytes]) -> Iterator[bytes]:
    for chunk in chunks:
        if chunk:
            yield bytes(chunk)
