"""BLOB logging policies (Section III-C, baselines in Section V-B).

* :class:`AsyncBlobLogging` (``Our``) — the paper's contribution: the WAL
  carries only the Blob State; BLOB content is flushed *once*, directly
  to its extents, at transaction commit.  Ordering is WAL-first (the Blob
  State must be durable before the extents, or a crash leaves unusable
  holes), and freshly written extents stay ``prevent_evict``-protected
  until the flush completes.

* :class:`PhysicalLogging` (``Our.physlog``) — identical engine, but BLOB
  content is segmented through the WAL buffer like a conventional DBMS.
  Content is therefore written **twice** (WAL now, extents later during
  eviction or checkpoint), the log grows by the BLOB size (more frequent
  checkpoints), and a transaction whose BLOB rivals the WAL buffer size
  stalls on synchronous segment flushes — the three costs the paper's
  Figure 6 measures.
"""

from __future__ import annotations

from dataclasses import replace

from repro.buffer.frames import ExtentFrame
from repro.buffer.pool import BufferPoolBase
from repro.db.transaction import Transaction
from repro.wal.records import (
    BlobChunkRecord,
    BlobDeltaRecord,
    TxnAbortRecord,
    TxnCommitRecord,
)
from repro.wal.writer import WalWriter


class LogPolicyBase:
    """Strategy interface: how BLOB content reaches durability."""

    name = "abstract"

    def __init__(self, wal: WalWriter) -> None:
        self.wal = wal

    def log_blob_content(self, txn: Transaction, table: str, key: bytes,
                         data: bytes, offset: int,
                         frames: list[ExtentFrame]) -> None:
        """Called after BLOB bytes were placed into protected frames."""
        raise NotImplementedError

    def log_deltas(self, txn: Transaction,
                   deltas: list[BlobDeltaRecord]) -> None:
        """In-place update scheme: physical deltas always go to the WAL."""
        for delta in deltas:
            self.wal.append(replace(delta, txn_id=txn.txn_id))
        san = self.wal.model.san
        if san is not None and deltas:
            san.note_page_coverage([d.pid for d in deltas], self.wal.lsn)

    def on_commit(self, txn: Transaction, pool: BufferPoolBase) -> None:
        """Make the transaction durable and settle its dirty extents."""
        raise NotImplementedError

    def on_abort(self, txn: Transaction, pool: BufferPoolBase) -> None:
        self.wal.append(TxnAbortRecord(txn_id=txn.txn_id))
        self.wal.group_commit_flush()


class AsyncBlobLogging(LogPolicyBase):
    """Single-flush logging: WAL gets metadata, extents get content once."""

    name = "async-blob"

    def log_blob_content(self, txn: Transaction, table: str, key: bytes,
                         data: bytes, offset: int,
                         frames: list[ExtentFrame]) -> None:
        # Content is NOT logged; the frames wait for the commit flush.
        txn.remember_flush(frames)

    def on_commit(self, txn: Transaction, pool: BufferPoolBase) -> None:
        self.wal.append(TxnCommitRecord(txn_id=txn.txn_id))
        san = self.wal.model.san
        if san is not None:
            # The extents may not hit the device before the commit record.
            san.note_page_coverage(
                [f.head_pid for f in txn.pending_flush], self.wal.lsn)
        # Durability order (Section III-C): the WAL buffer — which holds
        # the Blob States — is persisted *before* the extents.
        self.wal.group_commit_flush()
        pool.flush_batch(txn.pending_flush, category="data", background=True)
        for frame in txn.pending_flush:
            frame.prevent_evict = False


class PhysicalLogging(LogPolicyBase):
    """Conventional logging: BLOB content segments through the WAL."""

    name = "physlog"

    def __init__(self, wal: WalWriter, segment_bytes: int | None = None) -> None:
        super().__init__(wal)
        #: Segments "to accommodate BLOBs larger than the WAL buffer"
        #: (Section V-B); defaults to the WAL buffer size.
        self.segment_bytes = segment_bytes or wal.buffer_bytes

    def log_blob_content(self, txn: Transaction, table: str, key: bytes,
                         data: bytes, offset: int,
                         frames: list[ExtentFrame]) -> None:
        for start in range(0, len(data), self.segment_bytes):
            piece = data[start:start + self.segment_bytes]
            self.wal.append(BlobChunkRecord(
                txn_id=txn.txn_id, table=table, key=key,
                offset=offset + start, data=piece))
        san = self.wal.model.san
        if san is not None and frames:
            san.note_page_coverage([f.head_pid for f in frames],
                                   self.wal.lsn)
        # Frames are NOT scheduled for a commit flush: like conventional
        # engines, the dirty pages are written later by eviction or the
        # checkpointer — the second write of every BLOB.
        txn.physlog_frames.extend(frames)

    def on_commit(self, txn: Transaction, pool: BufferPoolBase) -> None:
        self.wal.append(TxnCommitRecord(txn_id=txn.txn_id))
        san = self.wal.model.san
        if san is not None:
            pids = [f.head_pid for f in txn.pending_flush] \
                + [f.head_pid for f in txn.physlog_frames]
            san.note_page_coverage(pids, self.wal.lsn)
        self.wal.group_commit_flush()
        # Commit-time flush applies only to frames other code explicitly
        # queued (e.g. clone-updated extents); content-bearing frames stay
        # dirty but become evictable now that their chunks are durable.
        pool.flush_batch(txn.pending_flush, category="data", background=True)
        for frame in txn.pending_flush:
            frame.prevent_evict = False
        for frame in txn.physlog_frames:
            frame.prevent_evict = False


def make_policy(name: str, wal: WalWriter) -> LogPolicyBase:
    if name == "async-blob":
        return AsyncBlobLogging(wal)
    if name == "physlog":
        return PhysicalLogging(wal)
    raise ValueError(f"unknown log policy {name!r}")
