"""BLOB logging policies (Section III-C, baselines in Section V-B).

* :class:`AsyncBlobLogging` (``Our``) — the paper's contribution: the WAL
  carries only the Blob State; BLOB content is flushed *once*, directly
  to its extents, at transaction commit.  Ordering is WAL-first (the Blob
  State must be durable before the extents, or a crash leaves unusable
  holes), and freshly written extents stay ``prevent_evict``-protected
  until the flush completes.

* :class:`PhysicalLogging` (``Our.physlog``) — identical engine, but BLOB
  content is segmented through the WAL buffer like a conventional DBMS.
  Content is therefore written **twice** (WAL now, extents later during
  eviction or checkpoint), the log grows by the BLOB size (more frequent
  checkpoints), and a transaction whose BLOB rivals the WAL buffer size
  stalls on synchronous segment flushes — the three costs the paper's
  Figure 6 measures.
"""

from __future__ import annotations

from dataclasses import replace

from repro.buffer.frames import ExtentFrame
from repro.buffer.pool import BufferPoolBase
from repro.db.transaction import Transaction
from repro.wal.records import (
    BlobChunkRecord,
    BlobDeltaRecord,
    TxnAbortRecord,
    TxnCommitRecord,
)
from repro.wal.writer import WalWriter


class LogPolicyBase:
    """Strategy interface: how BLOB content reaches durability.

    All policies share the cross-worker group-commit window: with
    ``commit_window_ns > 0`` a committing transaction does not flush —
    it queues its WAL bytes and dirty extents into the open window, and
    the commit whose virtual time passes the window deadline drains
    everything with *one* WAL flush and *one* sorted, coalesced extent
    batch.  WAL-before-data ordering is preserved because deferred
    extents are flushed only after the window's WAL flush, and deferred
    frames stay ``prevent_evict`` until then.
    """

    name = "abstract"

    def __init__(self, wal: WalWriter) -> None:
        self.wal = wal
        #: Group-commit window length in simulated ns; 0 (the default)
        #: flushes at every commit, which crash tests rely on.
        self.commit_window_ns = 0.0
        self._window_deadline: float | None = None
        #: Deferred dirty extents to flush (and then unprotect) at drain.
        self._window_frames: list[ExtentFrame] = []
        #: Deferred frames to unprotect only (physlog content frames:
        #: their bytes are in the WAL, they stay dirty past the drain).
        self._window_protected: list[ExtentFrame] = []
        self._window_commits = 0

    def _commit_durability(self, txn: Transaction, pool: BufferPoolBase,
                           protected: tuple[ExtentFrame, ...] | list[
                               ExtentFrame] = ()) -> None:
        """Flush now, or defer this commit into the group-commit window."""
        if self.commit_window_ns <= 0.0:
            self.wal.group_commit_flush()
            pool.flush_batch(txn.pending_flush, category="data",
                             background=True)
            for frame in txn.pending_flush:
                frame.prevent_evict = False
            for frame in protected:
                frame.prevent_evict = False
            return
        self._window_frames.extend(txn.pending_flush)
        self._window_protected.extend(protected)
        self._window_commits += 1
        now = self.wal.model.clock.now_ns
        if self._window_deadline is None:
            # This commit opens the window; later commits ride along
            # until one lands past the deadline and drains for the group.
            self._window_deadline = now + self.commit_window_ns
        elif now >= self._window_deadline:
            self.drain_commit_window(pool)

    def drain_commit_window(self, pool: BufferPoolBase) -> None:
        """Settle every deferred commit: one WAL flush, one extent batch.

        Also the synchronization point for checkpoints, snapshots, and
        cache drops: anything that needs the pool's durable state to
        match the committed state must drain the window first.
        """
        if self._window_deadline is None and not self._window_frames \
                and not self._window_protected:
            return
        if self.wal._in_flush:
            # A forced checkpoint runs inside a WAL flush; the nested
            # flush below would be a no-op, so the deferred records are
            # not yet durable and the extents must not be written first.
            # Keep the window open — frames stay protected and the drain
            # completes at the next commit or explicit drain.
            return
        commits = self._window_commits
        # WAL first: the deferred Blob States must be durable before any
        # deferred extent content (Section III-C ordering, unchanged).
        self.wal.group_commit_flush()
        seen: set[int] = set()
        live: list[ExtentFrame] = []
        for frame in self._window_frames:
            if id(frame) in seen:
                continue
            seen.add(id(frame))
            # A deferred frame whose blob was dropped or replaced inside
            # the window no longer owns its pages; flushing it would
            # clobber whatever the allocator put there since.
            if pool.frame_is_current(frame):
                live.append(frame)
        pool.flush_batch(live, category="data", background=True)
        for frame in self._window_frames:
            frame.prevent_evict = False
        for frame in self._window_protected:
            frame.prevent_evict = False
        self._window_frames = []
        self._window_protected = []
        self._window_deadline = None
        self._window_commits = 0
        obs = self.wal.model.obs
        if obs is not None:
            obs.count("wal.window_drains")
            obs.count("wal.window_commits", commits)

    def log_blob_content(self, txn: Transaction, table: str, key: bytes,
                         data: bytes, offset: int,
                         frames: list[ExtentFrame]) -> None:
        """Called after BLOB bytes were placed into protected frames."""
        raise NotImplementedError

    def log_deltas(self, txn: Transaction,
                   deltas: list[BlobDeltaRecord]) -> None:
        """In-place update scheme: physical deltas always go to the WAL."""
        for delta in deltas:
            self.wal.append(replace(delta, txn_id=txn.txn_id))
        san = self.wal.model.san
        if san is not None and deltas:
            san.note_page_coverage([d.pid for d in deltas], self.wal.lsn)

    def on_commit(self, txn: Transaction, pool: BufferPoolBase) -> None:
        """Make the transaction durable and settle its dirty extents."""
        raise NotImplementedError

    def on_abort(self, txn: Transaction, pool: BufferPoolBase) -> None:
        if not txn.logged:
            # Never appended anything — nothing to undo at recovery.
            return
        self.wal.append(TxnAbortRecord(txn_id=txn.txn_id))
        self.wal.group_commit_flush()


class AsyncBlobLogging(LogPolicyBase):
    """Single-flush logging: WAL gets metadata, extents get content once."""

    name = "async-blob"

    def log_blob_content(self, txn: Transaction, table: str, key: bytes,
                         data: bytes, offset: int,
                         frames: list[ExtentFrame]) -> None:
        # Content is NOT logged; the frames wait for the commit flush.
        txn.remember_flush(frames)

    def on_commit(self, txn: Transaction, pool: BufferPoolBase) -> None:
        if not txn.logged and not txn.pending_flush:
            # Read-only: no records were logged, so the commit needs no
            # record (and no flush) either.
            return
        self.wal.append(TxnCommitRecord(txn_id=txn.txn_id))
        san = self.wal.model.san
        if san is not None:
            # The extents may not hit the device before the commit record.
            san.note_page_coverage(
                [f.head_pid for f in txn.pending_flush], self.wal.lsn)
        # Durability order (Section III-C): the WAL buffer — which holds
        # the Blob States — is persisted *before* the extents.  With a
        # group-commit window both flushes may be deferred together.
        self._commit_durability(txn, pool)


class PhysicalLogging(LogPolicyBase):
    """Conventional logging: BLOB content segments through the WAL."""

    name = "physlog"

    def __init__(self, wal: WalWriter, segment_bytes: int | None = None) -> None:
        super().__init__(wal)
        #: Segments "to accommodate BLOBs larger than the WAL buffer"
        #: (Section V-B); defaults to the WAL buffer size.
        self.segment_bytes = segment_bytes or wal.buffer_bytes

    def log_blob_content(self, txn: Transaction, table: str, key: bytes,
                         data: bytes, offset: int,
                         frames: list[ExtentFrame]) -> None:
        for start in range(0, len(data), self.segment_bytes):
            piece = data[start:start + self.segment_bytes]
            self.wal.append(BlobChunkRecord(
                txn_id=txn.txn_id, table=table, key=key,
                offset=offset + start, data=piece))
        san = self.wal.model.san
        if san is not None and frames:
            san.note_page_coverage([f.head_pid for f in frames],
                                   self.wal.lsn)
        # Frames are NOT scheduled for a commit flush: like conventional
        # engines, the dirty pages are written later by eviction or the
        # checkpointer — the second write of every BLOB.
        txn.physlog_frames.extend(frames)

    def on_commit(self, txn: Transaction, pool: BufferPoolBase) -> None:
        if not txn.logged and not txn.pending_flush \
                and not txn.physlog_frames:
            return
        self.wal.append(TxnCommitRecord(txn_id=txn.txn_id))
        san = self.wal.model.san
        if san is not None:
            pids = [f.head_pid for f in txn.pending_flush] \
                + [f.head_pid for f in txn.physlog_frames]
            san.note_page_coverage(pids, self.wal.lsn)
        # Commit-time flush applies only to frames other code explicitly
        # queued (e.g. clone-updated extents); content-bearing frames stay
        # dirty but become evictable once their chunks are durable — so
        # under a window their unprotection defers with the WAL flush.
        self._commit_durability(txn, pool, protected=txn.physlog_frames)


def make_policy(name: str, wal: WalWriter) -> LogPolicyBase:
    if name == "async-blob":
        return AsyncBlobLogging(wal)
    if name == "physlog":
        return PhysicalLogging(wal)
    raise ValueError(f"unknown log policy {name!r}")
