"""Blob State: the single indirection layer for BLOBs (Section III-B).

A Blob State bundles *all* metadata of one BLOB:

* **size** — logical size in bytes;
* **sha256** — full-content digest, used for durability validation during
  recovery and for cheap equality checks in the Blob State index;
* **sha_state** — the intermediate SHA-256 state (chaining value before
  the final padded block), letting growth operations resume hashing
  without re-reading existing content;
* **prefix** — the first 32 bytes, used by the incremental comparator to
  answer most range comparisons without dereferencing the BLOB;
* **tail_extent** — optional ``(pid, npages)`` arbitrary-size last extent;
* **extent_pids** — head-page PIDs of the tiered extents; combined with
  the static tier table this determines every extent's physical location.

It is stored inline with the owning tuple, so one relation lookup yields
everything needed to read the BLOB — unlike TOAST's extra relation or the
overflow-page chains of SQLite/MySQL/SQL Server (Table I).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from repro.core.extent import TailExtent, extent_page_ranges
from repro.core.tier import TierTable
from repro.sha.sha256 import Sha256State

PREFIX_LEN = 32

_MAGIC = b"BS"
_FLAG_TAIL = 0x01
_HEADER = struct.Struct(">2sBQ")       # magic, flags, size
_TAIL = struct.Struct(">QI")           # tail pid, tail npages
_NEXTENTS = struct.Struct(">H")
_PID = struct.Struct(">Q")


@dataclass(frozen=True)
class BlobState:
    """Immutable snapshot of one BLOB's metadata."""

    size: int
    sha256: bytes
    sha_state: Sha256State
    prefix: bytes
    extent_pids: tuple[int, ...] = ()
    tail_extent: TailExtent | None = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("size must be >= 0")
        if len(self.sha256) != 32:
            raise ValueError("sha256 must be 32 bytes")
        if len(self.prefix) > PREFIX_LEN:
            raise ValueError(f"prefix longer than {PREFIX_LEN} bytes")
        if len(self.prefix) != min(self.size, PREFIX_LEN):
            raise ValueError("prefix must be the first min(size, 32) bytes")

    # -- geometry ---------------------------------------------------------

    @property
    def num_extents(self) -> int:
        """Number of tiered extents (tail extent excluded, as in the paper)."""
        return len(self.extent_pids)

    def page_ranges(self, tiers: TierTable) -> list[tuple[int, int]]:
        """Physical ``(pid, npages)`` of all extents, tail included."""
        return extent_page_ranges(list(self.extent_pids), tiers, self.tail_extent)

    def capacity_pages(self, tiers: TierTable) -> int:
        return sum(n for _, n in self.page_ranges(tiers))

    def used_pages(self, page_size: int) -> int:
        return (self.size + page_size - 1) // page_size

    # -- serialization -------------------------------------------------------

    def serialize(self) -> bytes:
        """Binary encoding stored in the owning tuple and in the WAL."""
        flags = _FLAG_TAIL if self.tail_extent is not None else 0
        parts = [
            _HEADER.pack(_MAGIC, flags, self.size),
            self.sha256,
            self.sha_state.serialize(),
            bytes([len(self.prefix)]),
            self.prefix.ljust(PREFIX_LEN, b"\x00"),
        ]
        if self.tail_extent is not None:
            parts.append(_TAIL.pack(self.tail_extent.pid, self.tail_extent.npages))
        parts.append(_NEXTENTS.pack(len(self.extent_pids)))
        parts.extend(_PID.pack(pid) for pid in self.extent_pids)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, raw: bytes | memoryview) -> "BlobState":
        raw = bytes(raw)
        magic, flags, size = _HEADER.unpack_from(raw, 0)
        if magic != _MAGIC:
            raise ValueError("not a serialized BlobState")
        off = _HEADER.size
        sha256 = raw[off:off + 32]
        off += 32
        sha_state = Sha256State.deserialize(
            raw[off:off + Sha256State.SERIALIZED_SIZE])
        off += Sha256State.SERIALIZED_SIZE
        prefix_len = raw[off]
        off += 1
        prefix = raw[off:off + prefix_len]
        off += PREFIX_LEN
        tail = None
        if flags & _FLAG_TAIL:
            tail_pid, tail_npages = _TAIL.unpack_from(raw, off)
            tail = TailExtent(pid=tail_pid, npages=tail_npages)
            off += _TAIL.size
        (n_extents,) = _NEXTENTS.unpack_from(raw, off)
        off += _NEXTENTS.size
        pids = tuple(_PID.unpack_from(raw, off + i * _PID.size)[0]
                     for i in range(n_extents))
        return cls(size=size, sha256=sha256, sha_state=sha_state,
                   prefix=prefix, extent_pids=pids, tail_extent=tail)

    def serialized_size(self) -> int:
        return len(self.serialize())

    # -- functional updates -----------------------------------------------------

    def with_extents(self, extent_pids: tuple[int, ...]) -> "BlobState":
        return replace(self, extent_pids=extent_pids)

    def with_content(self, size: int, sha256: bytes, sha_state: Sha256State,
                     prefix: bytes) -> "BlobState":
        return replace(self, size=size, sha256=sha256,
                       sha_state=sha_state, prefix=prefix)
