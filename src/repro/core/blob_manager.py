"""BLOB operations over the buffer pool and extent allocator (III-C/D).

The :class:`BlobManager` owns the mechanics of the paper's BLOB
life-cycle — planning and allocating extent sequences, writing content
into protected buffer frames, resumable hashing, growth, the two update
schemes, and deletion — while transactional concerns (WAL ordering,
commit-time flushing, free-list publication) stay in the database layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.buffer.frames import BlobView, ExtentFrame
from repro.buffer.pool import BufferPoolBase
from repro.core.allocator import ExtentAllocator
from repro.core.blob_state import PREFIX_LEN, BlobState
from repro.core.extent import Extent, TailExtent, plan_create, plan_growth
from repro.core.hashing import new_hasher, resume_or_rehash
from repro.core.tier import TierTable
from repro.sim.cost import CostModel
from repro.wal.records import BlobDeltaRecord


@dataclass
class UpdateResult:
    """Outcome of an in-range BLOB update."""

    state: BlobState
    dirty_frames: list[ExtentFrame]
    delta_records: list[BlobDeltaRecord]
    freed_extents: list[Extent]
    freed_tail: TailExtent | None = None
    scheme_used: str = "delta"


@dataclass
class CreateResult:
    state: BlobState
    dirty_frames: list[ExtentFrame]
    #: Extents/tail to roll back if the transaction aborts.
    new_extents: list[Extent] = field(default_factory=list)
    new_tail: TailExtent | None = None
    #: Tail extent replaced by a clone during growth; the caller frees it
    #: at commit (its space is reusable only once the txn is durable).
    freed_tail: TailExtent | None = None
    #: Content relocated by the tail clone: ``(logical_offset, bytes,
    #: frame)``.  The caller must route it through the logging policy so
    #: the clone is flushed at commit (and, under physical logging,
    #: re-logged at its new location).
    clone_log: tuple[int, bytes, ExtentFrame] | None = None


class BlobManager:
    """Implements BLOB create / read / grow / update / delete."""

    def __init__(self, pool: BufferPoolBase, allocator: ExtentAllocator,
                 tiers: TierTable, model: CostModel, page_size: int,
                 hasher_kind: str = "fast",
                 use_tail_extents: bool = False) -> None:
        self.pool = pool
        self.allocator = allocator
        self.tiers = tiers
        self.model = model
        self.page_size = page_size
        self.hasher_kind = hasher_kind
        self.use_tail_extents = use_tail_extents

    # -- create -----------------------------------------------------------

    def create(self, data: bytes, use_tail: bool | None = None) -> CreateResult:
        """Allocate the smallest extent sequence and fill it with ``data``.

        The returned frames are ``prevent_evict``-protected and dirty;
        the commit protocol flushes them and lifts the protection.
        """
        if use_tail is None:
            use_tail = self.use_tail_extents
        hasher = new_hasher(self.hasher_kind, data)
        self.model.hash_bytes(len(data))
        if not data:
            state = BlobState(size=0, sha256=hasher.digest(),
                              sha_state=hasher.state(), prefix=b"")
            return CreateResult(state=state, dirty_frames=[])
        npages = (len(data) + self.page_size - 1) // self.page_size
        plan = plan_create(npages, self.tiers, use_tail=use_tail)
        extents, tail = self.allocator.allocate_plan(plan)
        frames = [self.pool.allocate_frame(e.pid, e.npages) for e in extents]
        if tail is not None:
            frames.append(self.pool.allocate_frame(tail.pid, tail.npages))
        self._write_across(frames, 0, data)
        self.model.memcpy(len(data))
        state = BlobState(
            size=len(data), sha256=hasher.digest(), sha_state=hasher.state(),
            prefix=data[:PREFIX_LEN],
            extent_pids=tuple(e.pid for e in extents), tail_extent=tail)
        return CreateResult(state=state, dirty_frames=frames,
                            new_extents=extents, new_tail=tail)

    # -- read --------------------------------------------------------------

    def read(self, state: BlobState, worker_id: int = 0) -> BlobView:
        """Present the BLOB as contiguous memory (pool-specific strategy)."""
        if state.size == 0:
            return BlobView([], 0)
        return self.pool.read_blob(state.page_ranges(self.tiers), state.size,
                                   worker_id=worker_id)

    def read_bytes(self, state: BlobState, worker_id: int = 0) -> bytes:
        """Convenience: the full content as ``bytes`` (one client memcpy)."""
        with self.read(state, worker_id) as view:
            return view.copy_to_client(self.model)

    def read_chunks(self, state: BlobState) -> Iterator[bytes]:
        """Yield content one extent at a time (incremental comparator)."""
        remaining = state.size
        for pid, npages in state.page_ranges(self.tiers):
            if remaining <= 0:
                return
            frames = self.pool.fetch_extents([(pid, npages)])
            take = min(remaining, npages * self.page_size)
            chunk = bytes(frames[0].data[:take])
            self.pool.unpin(frames)
            remaining -= take
            yield chunk

    def read_range(self, state: BlobState, offset: int, length: int,
                   worker_id: int = 0) -> bytes:
        """Read ``length`` bytes at ``offset`` touching only the extents
        that overlap the range.

        This is the ``pread``-shaped access path (the FUSE ``read`` of
        Listing 1): a 4 KB read from a multi-gigabyte BLOB fetches one
        extent, not the whole object.  The copy-out of the requested
        bytes is charged as the single client memcpy.
        """
        if offset < 0 or length < 0:
            raise ValueError("offset/length must be non-negative")
        if offset >= state.size or length == 0:
            return b""
        length = min(length, state.size - offset)
        end = offset + length
        ranges = []
        windows = []
        logical = 0
        for pid, npages in state.page_ranges(self.tiers):
            ext_bytes = npages * self.page_size
            lo = max(logical, offset)
            hi = min(logical + ext_bytes, end)
            if lo < hi:
                ranges.append((pid, npages))
                windows.append((logical, lo, hi))
            logical += ext_bytes
        frames = self.pool.fetch_extents(ranges, pin=True)
        try:
            pieces = [bytes(frame.data[lo - base:hi - base])
                      for frame, (base, lo, hi) in zip(frames, windows)]
        finally:
            self.pool.unpin(frames)
        self.model.memcpy(length)
        return b"".join(pieces)

    # -- grow ----------------------------------------------------------------

    def grow(self, state: BlobState, extra: bytes) -> CreateResult:
        """Append ``extra`` to the BLOB (Section III-D, Figure 3).

        Hashing resumes from the stored intermediate digest, so existing
        content is *not* re-read; only the partially-filled last extent
        and the newly allocated extents are touched.
        """
        if not extra:
            return CreateResult(state=state, dirty_frames=[])
        new_extents: list[Extent] = []
        freed_tail: TailExtent | None = None
        clone_log: tuple[int, bytes, ExtentFrame] | None = None
        if state.tail_extent is not None:
            state, cloned, freed_tail, clone_log = self._clone_tail(state)
            new_extents.append(cloned)

        old_size = state.size
        capacity = state.capacity_pages(self.tiers)
        total_pages = (old_size + len(extra) + self.page_size - 1) \
            // self.page_size
        plan = plan_growth(state.num_extents, capacity, total_pages, self.tiers)
        grown = [self.allocator.allocate_extent(i) for i in plan.tier_indices]
        new_extents.extend(grown)
        new_frames = [self.pool.allocate_frame(e.pid, e.npages) for e in grown]

        dirty: list[ExtentFrame] = list(new_frames)
        all_pids = list(state.extent_pids) + [e.pid for e in grown]
        # The write begins inside the current last extent when it has
        # room; only extents overlapping the appended range are fetched,
        # and they stay pinned for the duration of the write.
        touched = self._write_pinned(all_pids, old_size, extra)
        for frame in touched:
            if frame not in dirty:
                dirty.append(frame)
        self.model.memcpy(len(extra))

        hasher = resume_or_rehash(self.hasher_kind, state.sha_state,
                                  lambda: self.read_chunks(state))
        hasher.update(extra)
        self.model.hash_bytes(len(extra))
        prefix = state.prefix
        if old_size < PREFIX_LEN:
            prefix = (prefix + extra)[:PREFIX_LEN]
        new_state = BlobState(
            size=old_size + len(extra), sha256=hasher.digest(),
            sha_state=hasher.state(), prefix=prefix,
            extent_pids=tuple(all_pids), tail_extent=None)
        return CreateResult(state=new_state, dirty_frames=dirty,
                            new_extents=new_extents, freed_tail=freed_tail,
                            clone_log=clone_log)

    def _clone_tail(self, state: BlobState) \
            -> tuple[BlobState, Extent, TailExtent,
                     tuple[int, bytes, ExtentFrame]]:
        """Clone the tail extent into the next tiered extent (III-D).

        Returns the relocated content with its logical offset so the
        caller can log/flush it: the clone holds live data that exists
        nowhere else durable until the commit-time flush.
        """
        tail = state.tail_extent
        assert tail is not None
        tier_index = state.num_extents
        clone = self.allocator.allocate_extent(tier_index)
        frame = self.pool.allocate_frame(clone.pid, clone.npages)
        src = self.pool.fetch_extents([(tail.pid, tail.npages)])
        payload = bytes(src[0].data)
        self.pool.unpin(src)
        frame.write_at(0, payload)
        self.model.memcpy(len(payload))
        new_state = BlobState(
            size=state.size, sha256=state.sha256, sha_state=state.sha_state,
            prefix=state.prefix,
            extent_pids=state.extent_pids + (clone.pid,), tail_extent=None)
        clone_offset = self.tiers.cumulative(state.num_extents) \
            * self.page_size
        live_bytes = payload[:max(0, state.size - clone_offset)]
        return new_state, clone, tail, (clone_offset, live_bytes, frame)

    # -- update -----------------------------------------------------------------

    def update_range(self, state: BlobState, offset: int, data: bytes,
                     scheme: str = "auto") -> UpdateResult:
        """Overwrite ``data`` at ``offset`` (Section III-D).

        ``delta``: log a physical delta and update extents in place (new
        data written twice: WAL + extent).  ``clone``: allocate same-tier
        clone extents and redirect the Blob State (old data written once
        more).  ``auto`` picks the cheaper by bytes written.
        """
        if offset < 0 or offset + len(data) > state.size:
            raise ValueError("update range outside BLOB bounds")
        if not data:
            return UpdateResult(state=state, dirty_frames=[],
                                delta_records=[], freed_extents=[])
        ranges = state.page_ranges(self.tiers)
        touched = self._touched_extents(ranges, offset, len(data))
        touched_bytes = sum(ranges[i][1] for i in touched) * self.page_size
        if scheme == "auto":
            scheme = "delta" if 2 * len(data) <= touched_bytes else "clone"
        if scheme == "delta":
            result = self._update_delta(state, ranges, offset, data)
        elif scheme == "clone":
            result = self._update_clone(state, ranges, touched, offset, data)
        else:
            raise ValueError(f"unknown update scheme {scheme!r}")
        result.state = self._rehash_after_update(result.state, offset, data)
        return result

    def _update_delta(self, state: BlobState, ranges, offset: int,
                      data: bytes) -> UpdateResult:
        windows = self._layout_ranges(ranges)
        deltas: list[BlobDeltaRecord] = []
        dirty: list[ExtentFrame] = []
        for (pid, npages), (start, end) in zip(ranges, windows):
            lo = max(start, offset)
            hi = min(end, offset + len(data))
            if lo >= hi:
                continue
            frames = self.pool.fetch_extents([(pid, npages)])
            frame = frames[0]
            piece = data[lo - offset:hi - offset]
            frame.write_at(lo - start, piece)
            self.model.memcpy(len(piece))
            deltas.append(BlobDeltaRecord(
                pid=frame.head_pid, offset=lo - start, data=piece))
            dirty.append(frame)
            self.pool.unpin(frames)
        return UpdateResult(state=state, dirty_frames=dirty,
                            delta_records=deltas, freed_extents=[],
                            scheme_used="delta")

    def _update_clone(self, state: BlobState, ranges, touched, offset: int,
                      data: bytes) -> UpdateResult:
        layout = self._layout_ranges(ranges)
        new_pids = list(state.extent_pids)
        new_tail = state.tail_extent
        dirty: list[ExtentFrame] = []
        freed: list[Extent] = []
        for i in touched:
            pid, npages = ranges[i]
            start, end = layout[i]
            old = self.pool.fetch_extents([(pid, npages)])
            old_bytes = bytes(old[0].data)
            self.pool.unpin(old)
            is_tail = state.tail_extent is not None and i == len(ranges) - 1
            if is_tail:
                clone_tail = self.allocator.allocate_tail(npages)
                clone_pid = clone_tail.pid
                new_tail = clone_tail
            else:
                tier_index = i
                clone = self.allocator.allocate_extent(tier_index)
                clone_pid = clone.pid
                new_pids[i] = clone.pid
                freed.append(Extent(pid=pid, npages=npages,
                                    tier_index=tier_index))
            frame = self.pool.allocate_frame(clone_pid, npages)
            frame.write_at(0, old_bytes)       # old data written once more
            self.model.memcpy(len(old_bytes))
            lo = max(start, offset)
            hi = min(end, offset + len(data))
            frame.write_at(lo - start, data[lo - offset:hi - offset])
            self.model.memcpy(hi - lo)
            dirty.append(frame)
        freed_tail = None
        if new_tail is not state.tail_extent and state.tail_extent is not None:
            freed_tail = state.tail_extent
        new_state = BlobState(
            size=state.size, sha256=state.sha256, sha_state=state.sha_state,
            prefix=state.prefix, extent_pids=tuple(new_pids),
            tail_extent=new_tail)
        return UpdateResult(state=new_state, dirty_frames=dirty,
                            delta_records=[], freed_extents=freed,
                            freed_tail=freed_tail, scheme_used="clone")

    def _rehash_after_update(self, state: BlobState, offset: int,
                             data: bytes) -> BlobState:
        """Recompute digest and prefix after an in-range overwrite.

        A middle update invalidates the resumable chain, so the content
        is re-hashed in full — one reason the paper argues whole-BLOB
        replacement is the common, and cheaper, pattern.
        """
        hasher = new_hasher(self.hasher_kind)
        for chunk in self.read_chunks(state):
            hasher.update(chunk)
        self.model.hash_bytes(state.size)
        prefix = state.prefix
        if offset < PREFIX_LEN:
            mutable = bytearray(prefix)
            end = min(PREFIX_LEN, offset + len(data))
            mutable[offset:end] = data[:end - offset]
            prefix = bytes(mutable[:min(state.size, PREFIX_LEN)])
        return state.with_content(size=state.size, sha256=hasher.digest(),
                                  sha_state=hasher.state(), prefix=prefix)

    # -- delete --------------------------------------------------------------------

    def delete(self, state: BlobState) \
            -> tuple[list[Extent], TailExtent | None]:
        """Return the extents for the commit-time free (III-D).

        The extents go onto the transaction's temporary list; the commit
        publishes them to the free lists *and* drops their buffer frames.
        Frames must stay resident until then: if the transaction aborts,
        the restored row still points at them, and under physical logging
        a dirty frame may hold the only copy of the content.
        """
        extents = [Extent(pid=pid, npages=self.tiers.size(i), tier_index=i)
                   for i, pid in enumerate(state.extent_pids)]
        return extents, state.tail_extent

    # -- validation -------------------------------------------------------------------

    def validate(self, state: BlobState) -> bool:
        """Recompute the content digest and compare (recovery analysis)."""
        hasher = new_hasher(self.hasher_kind)
        for chunk in self.read_chunks(state):
            hasher.update(chunk)
        self.model.hash_bytes(state.size)
        return hasher.digest() == state.sha256

    # -- layout helpers ----------------------------------------------------------------

    def _write_pinned(self, pids: list[int], offset: int,
                      data: bytes) -> list[ExtentFrame]:
        """Write ``data`` at logical ``offset``, fetching and pinning
        only the extents that overlap the write window.

        The frames are unpinned before returning; callers that need them
        to survive until commit protect them via the transaction's flush
        list.  Extents outside the window are never materialized — a
        4 KB append to a multi-gigabyte BLOB touches one extent.
        """
        end_off = offset + len(data)
        ranges: list[tuple[int, int]] = []
        windows: list[tuple[int, int, int]] = []
        logical = 0
        for i, pid in enumerate(pids):
            npages = self.tiers.size(i)
            nbytes = npages * self.page_size
            lo = max(logical, offset)
            hi = min(logical + nbytes, end_off)
            if lo < hi:
                ranges.append((pid, npages))
                windows.append((logical, lo, hi))
            logical += nbytes
        frames = self.pool.fetch_extents(ranges, pin=True)
        try:
            for frame, (base, lo, hi) in zip(frames, windows):
                frame.write_at(lo - base, data[lo - offset:hi - offset])
        finally:
            self.pool.unpin(frames)
        return frames

    def _layout_ranges(self, ranges: list[tuple[int, int]]) \
            -> list[tuple[int, int]]:
        """Logical byte windows [start, end) of each physical range."""
        out = []
        offset = 0
        for _, npages in ranges:
            nbytes = npages * self.page_size
            out.append((offset, offset + nbytes))
            offset += nbytes
        return out

    def _touched_extents(self, ranges, offset: int, length: int) -> list[int]:
        windows = self._layout_ranges(ranges)
        return [i for i, (start, end) in enumerate(windows)
                if start < offset + length and end > offset]

    def _write_layout(self, layout, offset: int, data: bytes) \
            -> list[ExtentFrame]:
        """Write ``data`` at logical ``offset`` across the frame layout."""
        touched = []
        end_off = offset + len(data)
        for frame, start, end in layout:
            lo = max(start, offset)
            hi = min(end, end_off)
            if lo >= hi:
                continue
            frame.write_at(lo - start, data[lo - offset:hi - offset])
            touched.append(frame)
        return touched

    def _write_across(self, frames: list[ExtentFrame], offset: int,
                      data: bytes) -> None:
        layout = []
        pos = 0
        for frame in frames:
            nbytes = frame.npages * self.page_size
            layout.append((frame, pos, pos + nbytes))
            pos += nbytes
        self._write_layout(layout, offset, data)
