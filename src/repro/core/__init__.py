"""The paper's primary contribution: single-flush BLOB storage.

Subsystems (paper Section III):

* :mod:`repro.core.tier` — the extent-tier size formula and its
  Power-of-Two / Fibonacci baselines (III-A).
* :mod:`repro.core.extent` — extent sequences and tail extents (III-A).
* :mod:`repro.core.blob_state` — the single-indirection Blob State (III-B).
* :mod:`repro.core.allocator` — per-tier free lists and extent reuse (III-D).
* :mod:`repro.core.comparator` — the incremental Blob State comparator (III-F).
* :mod:`repro.core.blob_manager` — create/read/grow/update/delete (III-C/D).
* :mod:`repro.core.log_policy` — asynchronous single-flush BLOB logging and
  the ``physlog`` baseline (III-C, V-B).
* :mod:`repro.core.recovery` — analysis/redo/undo with SHA-256 validation
  (III-C "BLOB Recoverability").
"""

from repro.core.tier import ExtentTier, PowerOfTwoTier, FibonacciTier
from repro.core.extent import Extent, TailExtent, plan_create, plan_growth
from repro.core.blob_state import BlobState
from repro.core.allocator import ExtentAllocator, StorageFull
from repro.core.comparator import BlobStateComparator

__all__ = [
    "ExtentTier",
    "PowerOfTwoTier",
    "FibonacciTier",
    "Extent",
    "TailExtent",
    "plan_create",
    "plan_growth",
    "BlobState",
    "ExtentAllocator",
    "StorageFull",
    "BlobStateComparator",
]
