"""Crash recovery: analysis / redo / undo with SHA-256 validation.

The paper's recoverability argument (Section III-C): the Blob State is
forced to the WAL *before* the extents are written, so after a crash the
Analysis phase can recompute each committed BLOB's SHA-256 from the
device and compare it against the digest in the logged Blob State.  A
mismatch means the crash hit the window between WAL durability and the
extent flush — the transaction is declared *failed* and joins the UNDO
list, and because its effects are never redone, its extents are never
marked allocated: the "unusable holes" reclaim themselves.

Physical redo comes first (physlog chunk records and in-place delta
records rewrite device pages), then validation, then logical redo of the
surviving transactions, then the allocator rebuild from the checkpoint
snapshot plus the replayed allocation/free deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.blob_state import BlobState
from repro.core.hashing import new_hasher
from repro.core.tier import TierTable
from repro.db.catalog import CatalogSnapshot, Superblock, decode_value
from repro.db.config import EngineConfig
from repro.db.errors import WalCorruptionError
from repro.sim.cost import CostModel
from repro.storage.device import SimulatedNVMe
from repro.wal.records import (
    BlobChunkRecord,
    BlobDeltaRecord,
    DeleteRecord,
    InsertRecord,
    TxnAbortRecord,
    TxnBeginRecord,
    TxnCommitRecord,
    UpdateRecord,
    find_frame_beyond,
    scan_records,
)
from repro.wal.writer import scan_region


@dataclass
class RecoveredState:
    """Everything needed to restart the engine."""

    tables: dict[str, dict[bytes, object]] = field(default_factory=dict)
    allocator_next_pid: int = 0
    free_extents: dict[int, list[int]] = field(default_factory=dict)
    free_tails: dict[int, list[int]] = field(default_factory=dict)
    next_txn_id: int = 1
    checkpoint_id: int = 0
    #: Committed-in-WAL transactions whose BLOB content failed validation.
    failed_txns: list[int] = field(default_factory=list)
    #: Highest valid WAL frame sequence; the new WAL continues above it.
    wal_max_seq: int = 0
    #: WAL-region pages whose stored bytes failed their protection CRC.
    wal_corrupt_pages: int = 0
    #: Damaged-tail truncations: each discards the log from the first
    #: unreadable record onward (at least that record is lost).
    wal_records_truncated: int = 0
    #: Keys whose durable content no longer matches its digest and could
    #: not be repaired from the WAL — readable only as a typed error.
    quarantined: list[tuple[str, bytes]] = field(default_factory=list)
    extents_quarantined: int = 0
    #: Keys whose content was restored by replaying physical WAL records.
    repaired_keys: int = 0


def _io(retry, op):
    """Run a device operation, retrying transient faults when a policy
    is attached (recovery must survive the same faults as normal I/O)."""
    if retry is not None:
        return retry.run(op)
    return op()


def recover_state(device: SimulatedNVMe, config: EngineConfig,
                  model: CostModel, tiers: TierTable,
                  retry=None, meta_device=None,
                  wal_device=None) -> RecoveredState:
    """Run the full recovery pipeline against a crashed device.

    ``device`` is the data tier; heterogeneous engines pass the devices
    holding the catalog (``meta_device``) and the WAL ring
    (``wal_device``) separately — both default to the data device.
    """
    obs = model.obs
    if obs is None:
        return _recover_state_body(device, config, model, tiers, retry,
                                   meta_device, wal_device)
    obs.begin("recovery")
    try:
        return _recover_state_body(device, config, model, tiers, retry,
                                   meta_device, wal_device)
    finally:
        obs.end()


def _recover_state_body(device: SimulatedNVMe, config: EngineConfig,
                        model: CostModel, tiers: TierTable,
                        retry=None, meta_device=None,
                        wal_device=None) -> RecoveredState:
    meta_device = meta_device if meta_device is not None else device
    wal_device = wal_device if wal_device is not None else device
    obs = model.obs
    state = RecoveredState(allocator_next_pid=config.data_start_pid)
    snapshot = None
    if obs is not None:
        obs.begin("recovery.snapshot")
    try:
        snapshot = _load_snapshot(meta_device, config, retry)
    finally:
        if obs is not None:
            obs.end(found=snapshot is not None)
    if snapshot is not None:
        state.checkpoint_id = snapshot.checkpoint_id
        state.next_txn_id = snapshot.next_txn_id
        state.allocator_next_pid = snapshot.allocator_next_pid
        state.free_extents = {t: list(p)
                              for t, p in snapshot.free_extents.items()}
        state.free_tails = {n: list(p)
                            for n, p in snapshot.free_tails.items()}
        for name, rows in snapshot.tables.items():
            state.tables[name] = {k: decode_value(v) for k, v in rows}

    if obs is not None:
        obs.begin("recovery.wal_scan")
    try:
        records = _read_wal(wal_device, config, model, state, retry)
    finally:
        if obs is not None:
            obs.end(corrupt_pages=state.wal_corrupt_pages,
                    truncated=state.wal_records_truncated)
    committed, aborted, seen_txns = _analyze_outcomes(records)
    if seen_txns:
        state.next_txn_id = max(state.next_txn_id, max(seen_txns) + 1)

    # Analysis: validate the BLOB content each key would end up with.
    # A digest mismatch first triggers *repair-on-demand* — replaying the
    # key's physical WAL records (physlog chunks, in-place deltas) and
    # re-checking — because those records exist precisely to redo writes
    # whose extent flush the crash interrupted.  Repair is keyed, never
    # blanket: pages that later transactions legitimately reused for
    # other BLOBs are left alone.  If repair cannot restore the digest,
    # the writing transaction is declared *failed*; the live value then
    # falls back to an earlier version, which is re-validated (fixpoint)
    # — the paper's UNDO list for torn BLOB flushes.
    snapshot_tables = {name: dict(rows) for name, rows in state.tables.items()}
    failed: set[int] = set()
    repaired: set[tuple[str, bytes, int]] = set()
    verified: set[tuple[str, bytes, int]] = set()
    #: Snapshot-owned keys whose content is corrupt: no transaction to
    #: fail, no WAL records to replay — the key is quarantined so reads
    #: surface a typed error instead of wrong bytes.
    quarantined: set[tuple[str, bytes]] = set()
    #: Successful repair overlays, held back until the fixpoint settles:
    #: writing one early would poison fallback validation if its
    #: transaction is later failed by a *different* key.
    overlays: dict[tuple[str, bytes], tuple[int, dict]] = {}
    if obs is not None:
        obs.begin("recovery.analysis")
    try:
        _analysis_fixpoint(device, model, tiers, config, records, committed,
                           failed, repaired, verified, quarantined, overlays,
                           snapshot_tables, state, retry)
    finally:
        if obs is not None:
            obs.end(failed_txns=len(failed), quarantined=len(quarantined),
                    repaired=len(overlays))
    state.failed_txns = sorted(failed)
    state.quarantined = sorted(quarantined)
    valid = committed - failed

    # Fixpoint settled: commit the overlays of still-valid live owners.
    final_live = _compute_live(snapshot_tables, records, valid)
    for (table, key), (txn_id, overlay) in overlays.items():
        owner = final_live.get((table, key), (None, None))[0]
        if owner == txn_id and (txn_id is None or txn_id in valid):
            state.repaired_keys += 1
            for pid, image in overlay.items():
                _io(retry, lambda p=pid, im=image: device.write(
                    p, bytes(im), category="data"))

    # Logical redo + allocator delta replay, in log order.
    if obs is not None:
        obs.begin("recovery.redo")
    try:
        _redo_logical(state, records, valid, tiers, config)
    finally:
        if obs is not None:
            obs.end(records=len(records))
    return state


def _analysis_fixpoint(device, model, tiers, config, records, committed,
                       failed, repaired, verified, quarantined, overlays,
                       snapshot_tables, state, retry) -> None:
    """The validate/repair/fail fixpoint of the Analysis phase."""
    while True:
        valid = committed - failed
        live = _compute_live(snapshot_tables, records, valid)
        newly: set[int] = set()
        for (table, key), (txn_id, value) in live.items():
            if txn_id in failed or txn_id in newly:
                continue
            if not isinstance(value, BlobState):
                continue
            mark = (table, key, txn_id)
            if mark in verified or (table, key) in quarantined:
                continue
            if _content_valid(device, model, tiers, config.page_size, value,
                              retry=retry):
                verified.add(mark)
                continue
            if mark not in repaired:
                repaired.add(mark)
                overlay = _repair_key(device, records, valid, tiers,
                                      table, key, value, retry)
                if overlay and _content_valid(device, model, tiers,
                                              config.page_size, value,
                                              overlay=overlay, retry=retry):
                    verified.add(mark)
                    overlays[(table, key)] = (txn_id, overlay)
                    continue
            if txn_id is None:
                # Durable-before-checkpoint value rotted at rest and the
                # WAL holds nothing to rebuild it from: quarantine.
                quarantined.add((table, key))
                state.extents_quarantined += value.num_extents + \
                    (1 if value.tail_extent is not None else 0)
            else:
                newly.add(txn_id)
        if not newly:
            break
        failed |= newly


def _load_snapshot(device: SimulatedNVMe, config: EngineConfig,
                   retry=None) -> CatalogSnapshot | None:
    try:
        super_block = Superblock.deserialize(
            _io(retry, lambda: device.read(0, 1)))
    except ValueError:
        return None
    if super_block.active_slot < 0:
        return None
    slot_pid = (config.catalog_a_pid if super_block.active_slot == 0
                else config.catalog_b_pid)
    ps = device.page_size
    npages = (super_block.catalog_len + ps - 1) // ps
    raw = _io(retry, lambda: device.read(slot_pid, npages))
    return CatalogSnapshot.deserialize(raw[:super_block.catalog_len])


def _read_wal(device: SimulatedNVMe, config: EngineConfig,
              model: CostModel, state: RecoveredState, retry=None) -> list:
    """Scan the WAL region, hardening against device-level damage.

    The region is read unverified (recovery owns corruption handling
    here), then audited: page-level CRC failures are counted, and the
    frame scan decides what a damaged frame means.  Damage at the *tail*
    is the expected shape of a torn final flush — the log is truncated at
    the first bad record and the loss is counted.  Damage with valid
    same-pass frames *beyond* it (found by a bounded resync probe) means
    committed work would be silently dropped by truncation, so recovery
    refuses with :class:`WalCorruptionError` instead.
    """
    # The whole region is scanned as a chunked deep-queue sequential
    # batch: chunk latencies overlap up to the scan queue depth instead
    # of serializing behind one giant read command.
    raw = _io(retry, lambda: scan_region(
        device, model, config.wal_region_pid, config.wal_pages))
    state.wal_corrupt_pages = len(
        device.verify_range(config.wal_region_pid, config.wal_pages))
    scan = scan_records(raw)
    state.wal_max_seq = max(scan.max_seq, 0)
    if scan.stop_reason == "bad_frame":
        beyond = find_frame_beyond(raw, scan.valid_bytes + 1, scan.max_seq)
        if beyond is not None:
            raise WalCorruptionError(
                f"WAL damaged at byte {scan.valid_bytes} but a valid "
                f"record (same pass) survives at byte {beyond}: "
                f"truncation would drop committed work")
        state.wal_records_truncated += 1
    return [record for _, record in scan.records]


def _compute_live(snapshot_tables: dict[str, dict[bytes, object]], records,
                  valid: set[int]) -> dict:
    """Final value per key after replaying ``valid`` txns onto the
    snapshot; values are ``(writing_txn_id, value)`` with ``None`` for
    snapshot-provided values (already durable before the checkpoint)."""
    live: dict[tuple[str, bytes], tuple[int | None, object]] = {}
    for name, rows in snapshot_tables.items():
        for key, value in rows.items():
            live[(name, key)] = (None, value)
    for record in records:
        txn_id = getattr(record, "txn_id", None)
        if txn_id not in valid:
            continue
        if isinstance(record, InsertRecord):
            live[(record.table, record.key)] = \
                (txn_id, decode_value(record.value))
        elif isinstance(record, UpdateRecord):
            live[(record.table, record.key)] = \
                (txn_id, decode_value(record.new_value))
        elif isinstance(record, DeleteRecord):
            live.pop((record.table, record.key), None)
    return live


def _analyze_outcomes(records) -> tuple[set[int], set[int], set[int]]:
    committed: set[int] = set()
    aborted: set[int] = set()
    seen: set[int] = set()
    for record in records:
        txn_id = getattr(record, "txn_id", None)
        if txn_id is not None:
            seen.add(txn_id)
        if isinstance(record, TxnCommitRecord):
            committed.add(record.txn_id)
        elif isinstance(record, TxnAbortRecord):
            aborted.add(record.txn_id)
    return committed - aborted, aborted, seen


def _repair_key(device: SimulatedNVMe, records, valid: set[int],
                tiers: TierTable, table: str, key: bytes,
                live_state: BlobState, retry=None) -> dict[int, bytearray]:
    """Replay one key's physical WAL records into an overlay.

    Applies, in log order, every chunk (physlog content) and in-place
    delta that a still-valid committed transaction logged for this key.
    Only pages addressed by those records are touched, so BLOBs that
    later reused unrelated freed extents are unaffected.  The overlay is
    returned — the caller validates through it and writes it to the
    device only if the digest checks out (repairs never corrupt).
    """
    ps = device.page_size
    page_images: dict[int, bytearray] = {}

    def page(pid: int) -> bytearray:
        if pid not in page_images:
            page_images[pid] = bytearray(_io(
                retry, lambda: device.read(pid, 1, verify=False)))
        return page_images[pid]

    live_heads = {pid for pid, _ in live_state.page_ranges(tiers)}
    for record in records:
        if getattr(record, "txn_id", None) not in valid:
            continue
        if isinstance(record, BlobDeltaRecord) and \
                record.table == table and record.key == key:
            # A delta from an older incarnation of this key may address
            # pages that were freed and reused by *other* BLOBs since;
            # only deltas targeting the live extents are applicable.
            if record.pid in live_heads:
                _apply_span(page, ps, record.pid, record.offset, record.data)
        elif isinstance(record, BlobChunkRecord) and \
                record.table == table and record.key == key:
            _apply_logical(page, ps, tiers, live_state, record.offset,
                           record.data)
    return page_images


def _apply_span(page, page_size: int, pid: int, offset: int,
                data: bytes) -> None:
    """Write ``data`` starting at byte ``offset`` of page ``pid``."""
    pos = 0
    while pos < len(data):
        pid_off, byte_off = divmod(offset + pos, page_size)
        take = min(page_size - byte_off, len(data) - pos)
        page(pid + pid_off)[byte_off:byte_off + take] = data[pos:pos + take]
        pos += take


def _apply_logical(page, page_size: int, tiers: TierTable, state: BlobState,
                   offset: int, data: bytes) -> None:
    """Write ``data`` at a logical BLOB offset through the extent map."""
    logical = 0
    for pid, npages in state.page_ranges(tiers):
        ext_bytes = npages * page_size
        lo = max(logical, offset)
        hi = min(logical + ext_bytes, offset + len(data))
        if lo < hi:
            _apply_span(page, page_size, pid, lo - logical,
                        data[lo - offset:hi - offset])
        logical += ext_bytes


def _content_valid(device, model, tiers, page_size, state: BlobState,
                   overlay: dict[int, bytearray] | None = None,
                   retry=None) -> bool:
    """Digest-check a state's content, optionally through a repair
    overlay of not-yet-committed page images."""
    hasher = new_hasher("fast")
    remaining = state.size
    for pid, npages in state.page_ranges(tiers):
        if remaining <= 0:
            break
        raw = _io(retry, lambda p=pid, n=npages: device.read(
            p, n, verify=False))
        if overlay:
            patched = bytearray(raw)
            for i in range(npages):
                image = overlay.get(pid + i)
                if image is not None:
                    patched[i * page_size:(i + 1) * page_size] = image
            raw = bytes(patched)
        take = min(remaining, npages * page_size)
        hasher.update(raw[:take])
        remaining -= take
    model.hash_bytes(state.size)
    return hasher.digest() == state.sha256


def _redo_logical(state: RecoveredState, records, valid: set[int],
                  tiers: TierTable, config: EngineConfig) -> None:
    free_sets: dict[int, set[int]] = {t: set(p)
                                      for t, p in state.free_extents.items()}
    tail_sets: dict[int, set[int]] = {n: set(p)
                                      for n, p in state.free_tails.items()}
    next_pid = state.allocator_next_pid

    def mark_allocated(blob: BlobState) -> None:
        nonlocal next_pid
        for i, pid in enumerate(blob.extent_pids):
            npages = tiers.size(i)
            free_sets.get(i, set()).discard(pid)
            next_pid = max(next_pid, pid + npages)
        if blob.tail_extent is not None:
            tail = blob.tail_extent
            tail_sets.get(tail.npages, set()).discard(tail.pid)
            next_pid = max(next_pid, tail.pid + tail.npages)

    def mark_freed(blob: BlobState) -> None:
        nonlocal next_pid
        for i, pid in enumerate(blob.extent_pids):
            free_sets.setdefault(i, set()).add(pid)
            next_pid = max(next_pid, pid + tiers.size(i))
        if blob.tail_extent is not None:
            tail = blob.tail_extent
            tail_sets.setdefault(tail.npages, set()).add(tail.pid)
            next_pid = max(next_pid, tail.pid + tail.npages)

    for record in records:
        if isinstance(record, TxnBeginRecord):
            continue
        txn_id = getattr(record, "txn_id", None)
        if txn_id is not None and txn_id not in valid:
            continue
        if isinstance(record, InsertRecord):
            value = decode_value(record.value)
            if record.table == "\x00tables":
                state.tables.setdefault(record.key.decode(), {})
            state.tables.setdefault(record.table, {})[record.key] = value
            if isinstance(value, BlobState):
                mark_allocated(value)
        elif isinstance(record, UpdateRecord):
            old = decode_value(record.old_value)
            new = decode_value(record.new_value)
            state.tables.setdefault(record.table, {})[record.key] = new
            if isinstance(new, BlobState):
                mark_allocated(new)
            if isinstance(old, BlobState) and isinstance(new, BlobState):
                # Extents present in the old state but not the new one
                # were released by the update (clone scheme, tail clone).
                old_pids = set(old.extent_pids)
                new_pids = set(new.extent_pids)
                for i, pid in enumerate(old.extent_pids):
                    if pid not in new_pids:
                        free_sets.setdefault(i, set()).add(pid)
                if old.tail_extent is not None and \
                        old.tail_extent != new.tail_extent:
                    tail_sets.setdefault(old.tail_extent.npages,
                                         set()).add(old.tail_extent.pid)
        elif isinstance(record, DeleteRecord):
            old = decode_value(record.old_value)
            state.tables.setdefault(record.table, {}).pop(record.key, None)
            if isinstance(old, BlobState):
                mark_freed(old)

    state.tables.setdefault("\x00tables", {})
    for name in list(state.tables["\x00tables"]):
        state.tables.setdefault(name.decode(), {})
    state.free_extents = {t: sorted(p) for t, p in free_sets.items() if p}
    state.free_tails = {n: sorted(p) for n, p in tail_sets.items() if p}
    state.allocator_next_pid = min(next_pid, config.device_pages)
