"""A small SQL front end for the statement forms the paper uses.

The paper's listings interact with the engine through SQL:

* ``CREATE TABLE image (filename VARCHAR PRIMARY KEY, content BLOB)``
  (Section III-E, "Relation as a directory");
* ``CREATE UDF classify(blob) -> TEXT`` and
  ``CREATE INDEX foo ON image (classify(content))`` (Section III-F,
  semantic indexes);
* ``SELECT * FROM image WHERE classify(content) = 'cat'``.

:class:`SqlSession` parses and executes exactly this dialect — plus the
obvious companions (INSERT, SELECT by key/content, DELETE, UPDATE of the
BLOB column) — against a :class:`~repro.db.database.BlobDB`, routing
content predicates through the Blob State index and UDF predicates
through semantic indexes.  It is intentionally small: a front end for
the storage engine, not a query optimizer.
"""

from repro.sql.session import SqlError, SqlSession

__all__ = ["SqlSession", "SqlError"]
