"""Tokenizer, parser, and executor for the paper's SQL dialect."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.db.database import BlobDB
from repro.db.errors import DatabaseError, KeyNotFoundError
from repro.db.index import BlobStateIndex, PrefixIndex, SemanticIndex


class SqlError(DatabaseError):
    """Syntax or semantic error in a SQL statement."""


# -- tokenizer ---------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<hex>[Xx]'(?:[0-9a-fA-F]{2})*')  |
        (?P<string>'(?:[^']|'')*')          |
        (?P<name>[A-Za-z_][A-Za-z_0-9]*)    |
        (?P<arrow>->)                       |
        (?P<punct>[(),=*;])
    )
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str   # "hex" | "string" | "name" | "punct" | "arrow"
    text: str


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(sql):
        if sql[pos:].strip() == "":
            break
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SqlError(f"cannot tokenize near: {sql[pos:pos + 20]!r}")
        pos = match.end()
        for kind in ("hex", "string", "name", "arrow", "punct"):
            text = match.group(kind)
            if text is not None:
                tokens.append(Token(kind=kind, text=text))
                break
    return tokens


class _Cursor:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of statement")
        self.pos += 1
        return token

    def expect_keyword(self, *words: str) -> str:
        token = self.next()
        if token.kind != "name" or token.text.upper() not in words:
            raise SqlError(f"expected {'/'.join(words)}, got {token.text!r}")
        return token.text.upper()

    def expect_punct(self, char: str) -> None:
        token = self.next()
        if token.kind != "punct" or token.text != char:
            raise SqlError(f"expected {char!r}, got {token.text!r}")

    def try_punct(self, char: str) -> bool:
        token = self.peek()
        if token and token.kind == "punct" and token.text == char:
            self.pos += 1
            return True
        return False

    def name(self) -> str:
        token = self.next()
        if token.kind != "name":
            raise SqlError(f"expected identifier, got {token.text!r}")
        return token.text

    def literal(self) -> bytes:
        token = self.next()
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'").encode()
        if token.kind == "hex":
            return bytes.fromhex(token.text[2:-1])
        raise SqlError(f"expected a literal, got {token.text!r}")


# -- schema bookkeeping ---------------------------------------------------------

@dataclass
class TableSchema:
    name: str
    key_column: str
    blob_column: str
    #: index name -> index object (content, prefix, or semantic)
    indexes: dict[str, Any] = field(default_factory=dict)


class SqlSession:
    """Parses and executes statements against one engine."""

    def __init__(self, db: BlobDB | None = None) -> None:
        self.db = db or BlobDB()
        self._schemas: dict[str, TableSchema] = {}
        self._udfs: dict[str, Callable[[bytes], str | bytes]] = {}
        self._declared_udfs: dict[str, str] = {}

    # -- UDF registry -------------------------------------------------------

    def register_udf(self, name: str,
                     fn: Callable[[bytes], str | bytes]) -> None:
        """Bind the Python implementation of a ``CREATE UDF`` function."""
        self._udfs[name.lower()] = fn

    # -- entry point -----------------------------------------------------------

    def execute(self, sql: str) -> list[tuple]:
        """Execute one statement; SELECTs return rows, DML returns []."""
        cursor = _Cursor(tokenize(sql))
        token = cursor.peek()
        if token is None:
            raise SqlError("empty statement")
        head = token.text.upper()
        dispatch = {
            "CREATE": self._execute_create,
            "INSERT": self._execute_insert,
            "SELECT": self._execute_select,
            "DELETE": self._execute_delete,
            "UPDATE": self._execute_update,
        }
        if head not in dispatch:
            raise SqlError(f"unsupported statement {head!r}")
        result = dispatch[head](cursor)
        if cursor.try_punct(";"):
            pass
        if cursor.peek() is not None:
            raise SqlError(f"trailing tokens after statement: "
                           f"{cursor.peek().text!r}")
        return result

    # -- CREATE -------------------------------------------------------------------

    def _execute_create(self, cursor: _Cursor) -> list[tuple]:
        cursor.expect_keyword("CREATE")
        what = cursor.expect_keyword("TABLE", "INDEX", "UDF")
        if what == "TABLE":
            return self._create_table(cursor)
        if what == "UDF":
            return self._create_udf(cursor)
        return self._create_index(cursor)

    def _create_table(self, cursor: _Cursor) -> list[tuple]:
        table = cursor.name()
        cursor.expect_punct("(")
        key_column = cursor.name()
        cursor.expect_keyword("VARCHAR", "TEXT")
        cursor.expect_keyword("PRIMARY")
        cursor.expect_keyword("KEY")
        cursor.expect_punct(",")
        blob_column = cursor.name()
        cursor.expect_keyword("BLOB")
        cursor.expect_punct(")")
        self.db.create_table(table)
        self._schemas[table] = TableSchema(name=table, key_column=key_column,
                                           blob_column=blob_column)
        return []

    def _create_udf(self, cursor: _Cursor) -> list[tuple]:
        name = cursor.name()
        cursor.expect_punct("(")
        cursor.expect_keyword("BLOB")
        cursor.expect_punct(")")
        token = cursor.next()
        if token.kind != "arrow":
            raise SqlError("expected -> in CREATE UDF")
        cursor.expect_keyword("TEXT")
        if name.lower() not in self._udfs:
            raise SqlError(
                f"UDF {name!r} has no registered implementation; call "
                f"session.register_udf({name!r}, fn) first")
        self._declared_udfs[name.lower()] = "TEXT"
        return []

    def _create_index(self, cursor: _Cursor) -> list[tuple]:
        index_name = cursor.name()
        cursor.expect_keyword("ON")
        schema = self._schema(cursor.name())
        cursor.expect_punct("(")
        first = cursor.name()
        if cursor.try_punct("("):
            # column(N): a prefix index, or udf(column): semantic.
            inner = cursor.next()
            if inner.kind == "name" and inner.text == schema.blob_column:
                cursor.expect_punct(")")
                index = self._semantic_index(schema, first)
            elif inner.kind == "string" or inner.text.isdigit():
                prefix_bytes = int(inner.text)
                cursor.expect_punct(")")
                index = PrefixIndex(self.db, schema.name,
                                    prefix_bytes=prefix_bytes)
            else:
                raise SqlError(f"unexpected {inner.text!r} in index spec")
        elif first == schema.blob_column:
            index = BlobStateIndex(self.db, schema.name)
        else:
            raise SqlError(f"cannot index column {first!r}")
        cursor.expect_punct(")")
        index.build()
        schema.indexes[index_name] = index
        return []

    def _semantic_index(self, schema: TableSchema, udf: str) -> SemanticIndex:
        if udf.lower() not in self._declared_udfs:
            raise SqlError(f"unknown UDF {udf!r}; CREATE UDF first")
        return SemanticIndex(self.db, schema.name, self._udfs[udf.lower()])

    # -- INSERT ---------------------------------------------------------------------

    def _execute_insert(self, cursor: _Cursor) -> list[tuple]:
        cursor.expect_keyword("INSERT")
        cursor.expect_keyword("INTO")
        schema = self._schema(cursor.name())
        cursor.expect_keyword("VALUES")
        cursor.expect_punct("(")
        key = cursor.literal()
        cursor.expect_punct(",")
        content = cursor.literal()
        cursor.expect_punct(")")
        with self.db.transaction() as txn:
            state = self.db.put_blob(txn, schema.name, key, content)
        for index in schema.indexes.values():
            if isinstance(index, BlobStateIndex):
                index.insert(state, key)
            elif isinstance(index, SemanticIndex):
                index.insert(state, key)
            elif isinstance(index, PrefixIndex):
                index.insert_content(content, key)
        return []

    # -- SELECT ---------------------------------------------------------------------

    def _execute_select(self, cursor: _Cursor) -> list[tuple]:
        cursor.expect_keyword("SELECT")
        projection = self._parse_projection(cursor)
        cursor.expect_keyword("FROM")
        schema = self._schema(cursor.name())
        keys = self._matching_keys(schema, cursor)
        rows = []
        for key in keys:
            rows.append(self._project(schema, key, projection))
        return rows

    def _parse_projection(self, cursor: _Cursor):
        if cursor.try_punct("*"):
            return ("*",)
        names = [cursor.name()]
        while cursor.try_punct(","):
            names.append(cursor.name())
        return tuple(names)

    def _matching_keys(self, schema: TableSchema,
                       cursor: _Cursor) -> list[bytes]:
        token = cursor.peek()
        if token is None or token.text.upper() != "WHERE":
            return [key for key, _ in self.db.scan(schema.name)]
        cursor.expect_keyword("WHERE")
        column = cursor.name()
        if cursor.try_punct("("):
            # udf(content) = 'label'
            arg = cursor.name()
            cursor.expect_punct(")")
            if arg != schema.blob_column:
                raise SqlError(f"UDF predicates apply to "
                               f"{schema.blob_column!r}")
            cursor.expect_punct("=")
            label = cursor.literal()
            index = self._find_semantic_index(schema, column)
            return sorted(index.lookup(label))
        cursor.expect_punct("=")
        value = cursor.literal()
        if column == schema.key_column:
            return [value] if self.db.exists(schema.name, value) else []
        if column == schema.blob_column:
            index = self._find_content_index(schema)
            if index is not None:
                return sorted(index.lookup_content(value))
            # Fall back to a scan with digest comparisons.
            from repro.db.index import make_probe
            probe = make_probe(value, self.db.config.hasher)
            return [key for key, state in self.db.scan(schema.name)
                    if state.sha256 == probe.sha256]
        raise SqlError(f"unknown column {column!r}")

    def _find_semantic_index(self, schema: TableSchema,
                             udf: str) -> SemanticIndex:
        for index in schema.indexes.values():
            if isinstance(index, SemanticIndex) and \
                    index.udf is self._udfs.get(udf.lower()):
                return index
        raise SqlError(f"no semantic index on {udf!r}; CREATE INDEX first")

    def _find_content_index(self, schema: TableSchema):
        for index in schema.indexes.values():
            if isinstance(index, BlobStateIndex):
                return index
        return None

    def _project(self, schema: TableSchema, key: bytes, projection) -> tuple:
        out = []
        for item in projection:
            if item == "*":
                out.append(key)
                out.append(self.db.read_blob(schema.name, key))
            elif item == schema.key_column:
                out.append(key)
            elif item == schema.blob_column:
                out.append(self.db.read_blob(schema.name, key))
            elif item.lower() in self._udfs:
                content = self.db.read_blob(schema.name, key)
                derived = self._udfs[item.lower()](content)
                out.append(derived if isinstance(derived, str)
                           else derived.decode())
            else:
                raise SqlError(f"unknown projection {item!r}")
        return tuple(out)

    # -- DELETE / UPDATE ----------------------------------------------------------------

    def _execute_delete(self, cursor: _Cursor) -> list[tuple]:
        cursor.expect_keyword("DELETE")
        cursor.expect_keyword("FROM")
        schema = self._schema(cursor.name())
        cursor.expect_keyword("WHERE")
        column = cursor.name()
        if column != schema.key_column:
            raise SqlError("DELETE supports key-column predicates only")
        cursor.expect_punct("=")
        key = cursor.literal()
        try:
            state = self.db.get_state(schema.name, key)
        except KeyNotFoundError:
            return []
        with self.db.transaction() as txn:
            self.db.delete_blob(txn, schema.name, key)
        for index in schema.indexes.values():
            if isinstance(index, BlobStateIndex):
                index.remove(state, key)
        return []

    def _execute_update(self, cursor: _Cursor) -> list[tuple]:
        cursor.expect_keyword("UPDATE")
        schema = self._schema(cursor.name())
        cursor.expect_keyword("SET")
        column = cursor.name()
        if column != schema.blob_column:
            raise SqlError("UPDATE supports the BLOB column only")
        cursor.expect_punct("=")
        content = cursor.literal()
        cursor.expect_keyword("WHERE")
        key_column = cursor.name()
        if key_column != schema.key_column:
            raise SqlError("UPDATE needs a key-column predicate")
        cursor.expect_punct("=")
        key = cursor.literal()
        with self.db.transaction() as txn:
            if self.db.exists(schema.name, key):
                self.db.delete_blob(txn, schema.name, key)
            self.db.put_blob(txn, schema.name, key, content)
        return []

    # -- helpers ----------------------------------------------------------------------------

    def _schema(self, table: str) -> TableSchema:
        try:
            return self._schemas[table]
        except KeyError:
            raise SqlError(f"unknown table {table!r}") from None
