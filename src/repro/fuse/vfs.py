"""The FUSE operation set over a :class:`~repro.db.database.BlobDB`.

Paths follow the paper's "relation as a directory" scheme: with a mount
point ``/foo/bar``, the BLOB stored in relation ``image`` under key
``cat.jpg`` appears as ``/foo/bar/image/cat.jpg``.
"""

from __future__ import annotations

import errno
import stat as stat_module
from dataclasses import dataclass

from repro.core.blob_state import BlobState
from repro.db.database import BlobDB
from repro.db.errors import KeyNotFoundError, TableNotFoundError
from repro.db.transaction import Transaction


class FuseError(OSError):
    """Raised by FUSE operations; carries the errno (like fusepy)."""

    def __init__(self, errno_code: int) -> None:
        super().__init__(errno_code, errno.errorcode.get(errno_code, "?"))
        self.errno = errno_code


@dataclass(frozen=True)
class FileAttr:
    """Subset of ``struct stat`` that ``getattr`` fills."""

    st_mode: int
    st_size: int
    st_nlink: int = 1

    @property
    def is_dir(self) -> bool:
        return stat_module.S_ISDIR(self.st_mode)


_DIR_MODE = stat_module.S_IFDIR | 0o555
#: BLOBs are exposed strictly read-only (Section III-E).
_FILE_MODE = stat_module.S_IFREG | 0o444


class BlobFuse:
    """In-process implementation of the FUSE operations."""

    def __init__(self, db: BlobDB) -> None:
        self.db = db
        self._handles: dict[int, tuple[Transaction, str, bytes]] = {}
        self._next_fh = 1

    # -- path handling -----------------------------------------------------

    @staticmethod
    def _split(path: str) -> tuple[str, bytes | None]:
        """``/image/cat.jpg`` -> ``("image", b"cat.jpg")``.

        The paper's ``ExtractRelationAndFileName``.
        """
        parts = [p for p in path.split("/") if p]
        if not parts:
            return "", None
        if len(parts) == 1:
            return parts[0], None
        if len(parts) != 2:
            raise FuseError(errno.ENOENT)
        return parts[0], parts[1].encode()

    def _state(self, table: str, key: bytes,
               txn: Transaction | None = None) -> BlobState:
        try:
            return self.db.get_state(table, key, txn)
        except (KeyNotFoundError, TableNotFoundError):
            raise FuseError(errno.ENOENT) from None
        except TypeError:
            raise FuseError(errno.EINVAL) from None

    # -- FUSE operations ------------------------------------------------------

    def getattr(self, path: str) -> FileAttr:
        """Point query for the Blob State; size comes from the metadata."""
        self.db.model.syscall("generic")  # FUSE upcall dispatch
        table, key = self._split(path)
        if not table:
            return FileAttr(st_mode=_DIR_MODE, st_size=0, st_nlink=2)
        if key is None:
            if table in self.db.list_tables():
                return FileAttr(st_mode=_DIR_MODE, st_size=0, st_nlink=2)
            raise FuseError(errno.ENOENT)
        state = self._state(table, key)
        return FileAttr(st_mode=_FILE_MODE, st_size=state.size)

    def readdir(self, path: str) -> list[str]:
        self.db.model.syscall("readdir")
        table, key = self._split(path)
        if key is not None:
            raise FuseError(errno.ENOTDIR)
        if not table:
            return [".", ".."] + self.db.list_tables()
        if table not in self.db.list_tables():
            raise FuseError(errno.ENOENT)
        names = [k.decode(errors="replace")
                 for k, _ in self.db.scan(table)]
        return [".", ".."] + names

    def open(self, path: str, write: bool = False) -> int:
        """``open()``: starts the wrapping transaction (Listing 1)."""
        self.db.model.syscall("open")
        if write:
            raise FuseError(errno.EROFS)
        table, key = self._split(path)
        if key is None:
            raise FuseError(errno.EISDIR)
        txn = self.db.begin()
        try:
            self._state(table, key, txn)
        except FuseError:
            self.db.abort(txn)
            raise
        fh = self._next_fh
        self._next_fh += 1
        self._handles[fh] = (txn, table, key)
        return fh

    def read(self, fh: int, size: int, offset: int) -> bytes:
        """``pread()``: Blob State lookup, then a bounded copy-out.

        Only the extents overlapping ``[offset, offset+size)`` are
        loaded — a small read from a huge file stays cheap (Listing 1's
        size clamp, taken to the buffer manager).
        """
        self.db.model.syscall("pread")
        txn, table, key = self._resolve(fh)
        state = self._state(table, key, txn)
        if offset >= state.size:
            return b""
        size = min(size, state.size - offset)
        return self.db.blobs.read_range(state, offset, size)

    def flush(self, fh: int) -> None:
        """``close()`` triggers flush: commit the wrapping transaction."""
        txn, _, _ = self._resolve(fh)
        from repro.db.transaction import TxnStatus
        if txn.status is TxnStatus.ACTIVE:
            self.db.commit(txn)

    def release(self, fh: int) -> None:
        self.db.model.syscall("close")
        txn, _, _ = self._handles.pop(fh, (None, None, None))
        if txn is not None:
            from repro.db.transaction import TxnStatus
            if txn.status is TxnStatus.ACTIVE:
                self.db.commit(txn)

    def _resolve(self, fh: int) -> tuple[Transaction, str, bytes]:
        try:
            return self._handles[fh]
        except KeyError:
            raise FuseError(errno.EBADF) from None

    # -- extended attributes / filesystem stats ---------------------------------

    #: xattr names exposed per file (all served from the Blob State).
    XATTRS = ("user.sha256", "user.size", "user.extents")

    def getxattr(self, path: str, name: str) -> bytes:
        """Expose Blob State metadata as extended attributes.

        ``user.sha256`` gives external tools a free content digest —
        e.g. a backup program can skip unchanged files without reading
        them.
        """
        self.db.model.syscall("generic")
        table, key = self._split(path)
        if key is None:
            raise FuseError(errno.ENODATA)
        state = self._state(table, key)
        if name == "user.sha256":
            return state.sha256.hex().encode()
        if name == "user.size":
            return str(state.size).encode()
        if name == "user.extents":
            return str(state.num_extents
                       + (1 if state.tail_extent else 0)).encode()
        raise FuseError(errno.ENODATA)

    def listxattr(self, path: str) -> list[str]:
        self.db.model.syscall("generic")
        table, key = self._split(path)
        if key is None:
            return []
        self._state(table, key)
        return list(self.XATTRS)

    def statfs(self, path: str = "/") -> dict:
        """``statvfs``: capacity figures from the extent allocator."""
        self.db.model.syscall("generic")
        alloc = self.db.allocator
        bsize = self.db.config.page_size
        total = alloc.capacity_pages
        used = alloc.allocated_pages
        return {
            "f_bsize": bsize,
            "f_blocks": total,
            "f_bfree": total - used,
            "f_bavail": total - used,
            "f_files": sum(self.db.table_size(t)
                           for t in self.db.list_tables()),
        }

    # -- write-path operations all refuse (read-only exposure) -----------------

    def write(self, fh: int, data: bytes, offset: int) -> int:
        raise FuseError(errno.EROFS)

    def truncate(self, path: str, length: int) -> None:
        raise FuseError(errno.EROFS)

    def unlink(self, path: str) -> None:
        raise FuseError(errno.EROFS)

    def mkdir(self, path: str) -> None:
        raise FuseError(errno.EROFS)
