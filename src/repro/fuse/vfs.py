"""The FUSE operation set over a :class:`~repro.db.database.BlobDB`.

Paths follow the paper's "relation as a directory" scheme: with a mount
point ``/foo/bar``, the BLOB stored in relation ``image`` under key
``cat.jpg`` appears as ``/foo/bar/image/cat.jpg``.
"""

from __future__ import annotations

import errno
import stat as stat_module
from dataclasses import dataclass

from repro.core.blob_state import BlobState
from repro.db.database import BlobDB
from repro.db.errors import KeyNotFoundError, TableNotFoundError
from repro.db.transaction import Transaction


class FuseError(OSError):
    """Raised by FUSE operations; carries the errno (like fusepy)."""

    def __init__(self, errno_code: int) -> None:
        super().__init__(errno_code, errno.errorcode.get(errno_code, "?"))
        self.errno = errno_code


@dataclass(frozen=True)
class FileAttr:
    """Subset of ``struct stat`` that ``getattr`` fills."""

    st_mode: int
    st_size: int
    st_nlink: int = 1

    @property
    def is_dir(self) -> bool:
        return stat_module.S_ISDIR(self.st_mode)


_DIR_MODE = stat_module.S_IFDIR | 0o555
#: BLOBs are exposed strictly read-only (Section III-E).
_FILE_MODE = stat_module.S_IFREG | 0o444


def _prefix_end(prefix: bytes) -> bytes | None:
    """Smallest key greater than every key starting with ``prefix``."""
    for i in range(len(prefix) - 1, -1, -1):
        if prefix[i] != 0xFF:
            return prefix[:i] + bytes([prefix[i] + 1])
    return None


class BlobFuse:
    """In-process implementation of the FUSE operations.

    Keys containing ``/`` appear as nested directories, so the mount
    shows arbitrarily deep trees.  Recursive operations
    (:meth:`readdir_recursive`, :meth:`subtree_statfs`) run as **one**
    interval range scan when a namespace accelerator is attached
    (:meth:`attach_namespace`), and as classic per-level
    ``readdir``+``getattr`` walks otherwise.
    """

    def __init__(self, db: BlobDB) -> None:
        self.db = db
        self._handles: dict[int, tuple[Transaction, str, bytes]] = {}
        self._next_fh = 1

    @property
    def ns(self):
        return self.db.ns

    def attach_namespace(self):
        """Build (or reuse) the interval-numbered namespace accelerator."""
        if self.db.ns is None:
            from repro.namespace import NamespaceIndex
            NamespaceIndex.build(self.db)
        return self.db.ns

    # -- path handling -----------------------------------------------------

    @staticmethod
    def _split(path: str) -> tuple[str, bytes | None]:
        """``/image/cat.jpg`` -> ``("image", b"cat.jpg")``.

        The paper's ``ExtractRelationAndFileName``; deeper paths map
        their remaining components into the ``/``-separated key.
        """
        parts = [p for p in path.split("/") if p]
        if not parts:
            return "", None
        if len(parts) == 1:
            return parts[0], None
        return parts[0], "/".join(parts[1:]).encode()

    def _state(self, table: str, key: bytes,
               txn: Transaction | None = None) -> BlobState:
        try:
            return self.db.get_state(table, key, txn)
        except (KeyNotFoundError, TableNotFoundError):
            raise FuseError(errno.ENOENT) from None
        except TypeError:
            raise FuseError(errno.EINVAL) from None

    # -- FUSE operations ------------------------------------------------------

    def getattr(self, path: str) -> FileAttr:
        """Point query for the Blob State; size comes from the metadata."""
        self.db.model.syscall("generic")  # FUSE upcall dispatch
        table, key = self._split(path)
        if not table:
            return FileAttr(st_mode=_DIR_MODE, st_size=0, st_nlink=2)
        if key is None:
            if table in self.db.list_tables():
                return FileAttr(st_mode=_DIR_MODE, st_size=0, st_nlink=2)
            raise FuseError(errno.ENOENT)
        if table not in self.db.list_tables():
            raise FuseError(errno.ENOENT)
        value = self.db._table(table).lookup(key)
        if value is not None:
            size = value.size if isinstance(value, BlobState) else len(value)
            return FileAttr(st_mode=_FILE_MODE, st_size=size)
        if self._is_dir(table, key):
            return FileAttr(st_mode=_DIR_MODE, st_size=0, st_nlink=2)
        raise FuseError(errno.ENOENT)

    def _is_dir(self, table: str, key: bytes) -> bool:
        """Is ``key`` an implicit directory (some key nests below it)?"""
        if self.ns is not None:
            node = self.ns.resolve(table, key)
            return node is not None and node.is_dir
        prefix = key + b"/"
        for _ in self.db.scan(table, start=prefix, end=_prefix_end(prefix)):
            return True
        return False

    def readdir(self, path: str) -> list[str]:
        self.db.model.syscall("readdir")
        table, key = self._split(path)
        if not table:
            return [".", ".."] + self.db.list_tables()
        if table not in self.db.list_tables():
            raise FuseError(errno.ENOENT)
        if key is not None:
            if self.db.exists(table, key):
                raise FuseError(errno.ENOTDIR)
            if not self._is_dir(table, key):
                raise FuseError(errno.ENOENT)
        return [".", ".."] + self._child_names(table, key)

    def _child_names(self, table: str, key: bytes | None) -> list[str]:
        """Immediate children of a directory, sorted."""
        if self.ns is not None:
            node = self.ns.resolve(table, key or b"")
            return sorted(node.children) if node is not None else []
        prefix = b"" if key is None else key + b"/"
        names: set[str] = set()
        for k, _ in self.db.scan(table, start=prefix or None,
                                 end=_prefix_end(prefix)):
            if k.startswith(b"\x00"):
                continue
            head = k[len(prefix):].split(b"/", 1)[0]
            names.add(head.decode("utf-8", "surrogateescape"))
        return sorted(names)

    def readdir_recursive(self, path: str) -> list[tuple[str, bool, int]]:
        """``readdir -R``: every entry under ``path`` as
        ``(relative_path, is_dir, size)``, sorted by path.

        With the namespace accelerator this is **one** range scan over
        the interval index; without it, the classic decomposition — one
        ``readdir`` per directory plus one ``getattr`` per entry.
        """
        self.db.model.syscall("readdir")
        table, key = self._split(path)
        if table and table not in self.db.list_tables():
            raise FuseError(errno.ENOENT)
        if table and key is not None and self.db.exists(table, key):
            raise FuseError(errno.ENOTDIR)
        if self.ns is not None:
            root = self.ns._root if not table \
                else self.ns.resolve(table, key or b"")
            if root is None:
                if key is None:  # existing but empty table
                    return []
                raise FuseError(errno.ENOENT)
            entries = [(n.rel_path(root), not n.is_file, n.size)
                       for n in self.ns.iter_subtree(root)]
            return sorted(entries)
        out: list[tuple[str, bool, int]] = []
        base = "/" + path.strip("/") if path.strip("/") else ""
        stack = [""]
        while stack:
            rel = stack.pop()
            dpath = (base + "/" + rel).rstrip("/") or "/"
            for name in self.readdir(dpath)[2:]:
                crel = f"{rel}/{name}" if rel else name
                attr = self.getattr(f"{dpath.rstrip('/')}/{name}")
                if attr.is_dir:
                    out.append((crel, True, 0))
                    stack.append(crel)
                else:
                    out.append((crel, False, attr.st_size))
        return sorted(out)

    def subtree_statfs(self, path: str) -> dict[str, int]:
        """File/directory/byte totals under ``path``.

        One interval range scan with the accelerator; a full per-level
        walk without it.
        """
        self.db.model.syscall("generic")
        table, key = self._split(path)
        if self.ns is not None:
            root = self.ns._root if not table \
                else self.ns.resolve(table, key or b"")
            if root is None:
                if table and table in self.db.list_tables() and key is None:
                    return {"files": 0, "dirs": 0, "bytes": 0}
                raise FuseError(errno.ENOENT)
            return self.ns.subtree_stats(root)
        files = dirs = total = 0
        for _, is_dir, size in self.readdir_recursive(path):
            if is_dir:
                dirs += 1
            else:
                files += 1
                total += size
        return {"files": files, "dirs": dirs, "bytes": total}

    def open(self, path: str, write: bool = False) -> int:
        """``open()``: starts the wrapping transaction (Listing 1)."""
        self.db.model.syscall("open")
        if write:
            raise FuseError(errno.EROFS)
        table, key = self._split(path)
        if key is None:
            raise FuseError(errno.EISDIR)
        txn = self.db.begin()
        try:
            self._state(table, key, txn)
        except FuseError:
            self.db.abort(txn)
            raise
        fh = self._next_fh
        self._next_fh += 1
        self._handles[fh] = (txn, table, key)
        return fh

    def read(self, fh: int, size: int, offset: int) -> bytes:
        """``pread()``: Blob State lookup, then a bounded copy-out.

        Only the extents overlapping ``[offset, offset+size)`` are
        loaded — a small read from a huge file stays cheap (Listing 1's
        size clamp, taken to the buffer manager).
        """
        self.db.model.syscall("pread")
        txn, table, key = self._resolve(fh)
        state = self._state(table, key, txn)
        if offset >= state.size:
            return b""
        size = min(size, state.size - offset)
        return self.db.blobs.read_range(state, offset, size)

    def flush(self, fh: int) -> None:
        """``close()`` triggers flush: commit the wrapping transaction."""
        txn, _, _ = self._resolve(fh)
        from repro.db.transaction import TxnStatus
        if txn.status is TxnStatus.ACTIVE:
            self.db.commit(txn)

    def release(self, fh: int) -> None:
        self.db.model.syscall("close")
        txn, _, _ = self._handles.pop(fh, (None, None, None))
        if txn is not None:
            from repro.db.transaction import TxnStatus
            if txn.status is TxnStatus.ACTIVE:
                self.db.commit(txn)

    def _resolve(self, fh: int) -> tuple[Transaction, str, bytes]:
        try:
            return self._handles[fh]
        except KeyError:
            raise FuseError(errno.EBADF) from None

    # -- extended attributes / filesystem stats ---------------------------------

    #: xattr names exposed per file (all served from the Blob State).
    XATTRS = ("user.sha256", "user.size", "user.extents")

    def getxattr(self, path: str, name: str) -> bytes:
        """Expose Blob State metadata as extended attributes.

        ``user.sha256`` gives external tools a free content digest —
        e.g. a backup program can skip unchanged files without reading
        them.
        """
        self.db.model.syscall("generic")
        table, key = self._split(path)
        if key is None:
            raise FuseError(errno.ENODATA)
        state = self._state(table, key)
        if name == "user.sha256":
            return state.sha256.hex().encode()
        if name == "user.size":
            return str(state.size).encode()
        if name == "user.extents":
            return str(state.num_extents
                       + (1 if state.tail_extent else 0)).encode()
        raise FuseError(errno.ENODATA)

    def listxattr(self, path: str) -> list[str]:
        self.db.model.syscall("generic")
        table, key = self._split(path)
        if key is None:
            return []
        self._state(table, key)
        return list(self.XATTRS)

    def statfs(self, path: str = "/") -> dict:
        """``statvfs``: capacity figures from the extent allocator."""
        self.db.model.syscall("generic")
        alloc = self.db.allocator
        bsize = self.db.config.page_size
        total = alloc.capacity_pages
        used = alloc.allocated_pages
        return {
            "f_bsize": bsize,
            "f_blocks": total,
            "f_bfree": total - used,
            "f_bavail": total - used,
            "f_files": sum(self.db.table_size(t)
                           for t in self.db.list_tables()),
        }

    # -- write-path operations all refuse (read-only exposure) -----------------

    def write(self, fh: int, data: bytes, offset: int) -> int:
        raise FuseError(errno.EROFS)

    def truncate(self, path: str, length: int) -> None:
        raise FuseError(errno.EROFS)

    def unlink(self, path: str) -> None:
        raise FuseError(errno.EROFS)

    def mkdir(self, path: str) -> None:
        raise FuseError(errno.EROFS)
