"""POSIX-style facade over the FUSE VFS.

External programs expect *files*; this facade gives unmodified Python
code the file API it expects — ``mount.open(path)`` returns an object
supporting ``read``/``seek``/``tell``/``close`` and the context-manager
protocol, plus ``listdir``/``stat``/``exists`` directory helpers — while
every byte is served from database BLOBs through the FUSE operations.
"""

from __future__ import annotations

import errno
import io

from repro.db.database import BlobDB
from repro.fuse.vfs import BlobFuse, FileAttr, FuseError


class DbFile(io.RawIOBase):
    """A read-only file handle backed by a BLOB (one transaction)."""

    def __init__(self, fuse: BlobFuse, path: str) -> None:
        super().__init__()
        self._fuse = fuse
        self._path = path
        self._fh = fuse.open(path)
        self._pos = 0
        self._size = fuse.getattr(path).st_size

    # -- io.RawIOBase interface ------------------------------------------

    def readable(self) -> bool:
        return True

    def writable(self) -> bool:
        return False

    def seekable(self) -> bool:
        return True

    def read(self, size: int = -1) -> bytes:
        self._check_open()
        if size is None or size < 0:
            size = self._size - self._pos
        data = self._fuse.read(self._fh, size, self._pos)
        self._pos += len(data)
        return data

    def readall(self) -> bytes:
        return self.read(-1)

    def readinto(self, buffer) -> int:
        """Required by ``io.BufferedReader`` wrapping this raw file."""
        data = self.read(len(buffer))
        buffer[:len(data)] = data
        return len(data)

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        self._check_open()
        if whence == io.SEEK_SET:
            new = offset
        elif whence == io.SEEK_CUR:
            new = self._pos + offset
        elif whence == io.SEEK_END:
            new = self._size + offset
        else:
            raise ValueError(f"invalid whence {whence}")
        if new < 0:
            raise ValueError("negative seek position")
        self._pos = new
        return self._pos

    def tell(self) -> int:
        return self._pos

    def write(self, data) -> int:
        raise OSError(errno.EROFS, "BLOB files are read-only")

    def close(self) -> None:
        if not self.closed:
            self._fuse.release(self._fh)
        super().close()

    @property
    def name(self) -> str:
        return self._path

    def _check_open(self) -> None:
        if self.closed:
            raise ValueError("I/O operation on closed file")


class FuseMount:
    """The mount point: path-based access to every BLOB in the database."""

    def __init__(self, db: BlobDB, mountpoint: str = "/mnt/blobdb") -> None:
        self.db = db
        self.mountpoint = mountpoint.rstrip("/")
        self.fuse = BlobFuse(db)

    def _relative(self, path: str) -> str:
        if path.startswith(self.mountpoint):
            path = path[len(self.mountpoint):]
        return path if path.startswith("/") else "/" + path

    def open(self, path: str, mode: str = "rb") -> DbFile:
        """Open a BLOB as a file object; only read modes are allowed."""
        if any(c in mode for c in "wa+x"):
            raise OSError(errno.EROFS, "read-only file system")
        return DbFile(self.fuse, self._relative(path))

    def read_bytes(self, path: str) -> bytes:
        with self.open(path) as handle:
            return handle.read()

    def listdir(self, path: str = "/") -> list[str]:
        entries = self.fuse.readdir(self._relative(path))
        return [e for e in entries if e not in (".", "..")]

    def stat(self, path: str) -> FileAttr:
        return self.fuse.getattr(self._relative(path))

    def exists(self, path: str) -> bool:
        try:
            self.fuse.getattr(self._relative(path))
            return True
        except FuseError as exc:
            if exc.errno == errno.ENOENT:
                return False
            raise

    def walk(self):
        """Yield ``(table, [file names])`` like a one-level ``os.walk``."""
        for table in self.listdir("/"):
            yield table, self.listdir("/" + table)
