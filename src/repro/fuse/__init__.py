"""FUSE exposure of BLOBs as read-only files (Section III-E).

The real system registers with the kernel through libfuse; here the same
operation set — ``getattr``, ``readdir``, ``open``, ``read``, ``flush``,
``release`` — is dispatched in-process (the calibration note for this
reproduction: *"fusepy exists but cannot show write-amplification
performance claims"*, so kernel dispatch is replaced, not the translation
logic).  Exactly as in the paper's Listing 1:

* ``open``/``close`` map to transaction begin/commit, making repeated
  reads of one file consistent;
* each relation appears as a directory, each row's key as a file name;
* every operation resolves through one Blob State point query;
* all files are read-only — writes return ``EROFS``.

:class:`FuseMount` adds a Python file-object facade so unmodified code
written against ``open()/read()/seek()/close()`` works on DB-backed
paths.
"""

from repro.fuse.vfs import BlobFuse, FileAttr, FuseError
from repro.fuse.posix import DbFile, FuseMount

__all__ = ["BlobFuse", "FileAttr", "FuseError", "FuseMount", "DbFile"]
