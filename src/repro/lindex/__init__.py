"""Disk-resident updatable learned index (``index_structure="learned"``)."""

from repro.lindex.learned import LearnedIndex, LearnedIndexStats

__all__ = ["LearnedIndex", "LearnedIndexStats"]
