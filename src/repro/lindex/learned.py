"""Disk-resident updatable learned index (third relation-index engine).

PGM/FITing-tree style: the sorted key space is covered by piecewise-
linear *segments*.  Each segment stores an immutable sorted base run
plus a linear model ``pos ~ slope * (x - x0)`` whose maximum prediction
error over the base run is bounded by ``eps``; a probe binary-searches
the compact segment directory, evaluates the model once, and finishes
with a bounded last-mile search inside the ``+-eps`` window.  Updates
are buffered in a per-segment *delta* (with tombstones for deletes);
when a segment's delta exceeds its threshold the segment is
deterministically *retrained*: base and delta are merged, the cone
refitted (splitting where the fit or the segment-size cap demands it),
and the rebuilt run priced as streaming I/O through the ``CostModel``.

Keys are byte strings (same restriction as :class:`repro.art.ArtTree`);
the numeric domain for the models is the first 16 key bytes read as a
big-endian integer, which is monotone in the key order.  Every probe,
last-mile step, delta probe, and retrain is priced through the cost
model's ``lindex_*`` entries — there is no un-charged fast path.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Any, Iterator

#: Modelled on-disk footprint of one entry's record pointer + length.
_VALUE_BYTES = 16
#: Modelled per-segment header (model, fences, page map).
_SEGMENT_BYTES = 64
#: Width of the numeric key domain: first 16 key bytes, big-endian.
_X_BYTES = 16

#: Delta tombstone marker (distinct from any stored value).
_TOMBSTONE = object()


def _key_x(key: bytes) -> int:
    """Map a byte key to the model domain (monotone in key order)."""
    return int.from_bytes(key[:_X_BYTES].ljust(_X_BYTES, b"\x00"), "big")


def _entry_bytes(key: bytes) -> int:
    return len(key) + _VALUE_BYTES


class _Segment:
    """One piecewise-linear segment: immutable base run + delta buffer."""

    __slots__ = ("keys", "vals", "first_key", "x0", "slope", "eps", "delta")

    def __init__(self, keys: list[bytes], vals: list[Any],
                 slope: float, eps: int) -> None:
        self.keys = keys
        self.vals = vals
        self.first_key = keys[0] if keys else b""
        self.x0 = _key_x(keys[0]) if keys else 0
        self.slope = slope
        self.eps = eps
        #: Buffered updates: key -> value (or ``_TOMBSTONE``), plus a
        #: sorted view for ordered scans.
        self.delta: dict[bytes, Any] = {}

    def base_bytes(self) -> int:
        return sum(_entry_bytes(k) for k in self.keys) + _SEGMENT_BYTES

    def predict(self, key: bytes) -> int:
        pos = int(round(self.slope * (_key_x(key) - self.x0)))
        return min(max(pos, 0), len(self.keys) - 1) if self.keys else 0


@dataclass(frozen=True)
class LearnedIndexStats:
    entry_count: int
    segment_count: int
    delta_entries: int
    retrain_count: int
    probe_count: int
    delta_hit_count: int
    epsilon: int
    max_segment_error: int
    height: int
    size_bytes: int


class LearnedIndex:
    """Updatable learned index with the B-Tree/ART engine interface."""

    def __init__(self, *, model: Any = None, epsilon: int = 64,
                 delta_max: int = 32, max_segment_entries: int = 512) -> None:
        if epsilon < 1:
            raise ValueError("epsilon must be >= 1")
        if delta_max < 1:
            raise ValueError("delta_max must be >= 1")
        self._model = model
        self.epsilon = epsilon
        self.delta_max = delta_max
        self.max_segment_entries = max(8, max_segment_entries)
        self._segs: list[_Segment] = []
        self._firsts: list[bytes] = []
        self._count = 0
        #: Instance counters (independent of the obs tracer so reports
        #: work without one attached).
        self.probes = 0
        self.delta_hits = 0
        self.retrains = 0

    # -- cost/obs helpers --------------------------------------------------

    def _obs(self, name: str) -> None:
        if self._model is not None and getattr(self._model, "obs", None) is not None:
            self._model.obs.count(name)

    def _charge_directory_search(self) -> None:
        if self._model is not None:
            self._model.lindex_segment_search(max(1, len(self._segs).bit_length()))

    # -- fitting -----------------------------------------------------------

    def _cone_end(self, keys: list[bytes], i: int, limit: int) -> int:
        """Longest prefix ``keys[i:j]`` admitting a slope with error <= eps."""
        x0 = _key_x(keys[i])
        lo, hi = 0.0, math.inf
        j = i + 1
        while j < limit:
            dx = _key_x(keys[j]) - x0
            r = j - i
            if dx == 0:
                if r > self.epsilon:
                    break
            else:
                lo = max(lo, (r - self.epsilon) / dx)
                hi = min(hi, (r + self.epsilon) / dx)
                if lo > hi:
                    break
            j += 1
        return j

    def _make_segment(self, keys: list[bytes], vals: list[Any]) -> _Segment:
        x0 = _key_x(keys[0])
        lo, hi = 0.0, math.inf
        for r in range(1, len(keys)):
            dx = _key_x(keys[r]) - x0
            if dx > 0:
                lo = max(lo, (r - self.epsilon) / dx)
                hi = min(hi, (r + self.epsilon) / dx)
        slope = lo if math.isinf(hi) else (lo + hi) / 2.0
        err = 0.0
        for r in range(len(keys)):
            dx = _key_x(keys[r]) - x0
            err = max(err, abs(slope * dx - r))
        return _Segment(keys, vals, slope, int(math.ceil(err)))

    def _fit(self, keys: list[bytes], vals: list[Any]) -> list[_Segment]:
        out: list[_Segment] = []
        i, n = 0, len(keys)
        while i < n:
            j = self._cone_end(keys, i, min(n, i + self.max_segment_entries))
            # Splitting at the cap: aim below it so the fresh segment has
            # update headroom before the next forced split.
            if j - i >= self.max_segment_entries:
                j = i + self.max_segment_entries // 2
            out.append(self._make_segment(keys[i:j], vals[i:j]))
            i = j
        return out

    # -- segment lookup ----------------------------------------------------

    def _seg_index(self, key: bytes) -> int:
        return max(0, bisect_right(self._firsts, key) - 1)

    def _base_find(self, seg: _Segment, key: bytes) -> int:
        """Position of ``key`` in the base run, or -1.  Charges the model
        predict plus the bounded last-mile comparisons."""
        if self._model is not None:
            self._model.lindex_predict()
        if not seg.keys:
            return -1
        pred = seg.predict(key)
        lo = max(0, pred - seg.eps)
        hi = min(len(seg.keys), pred + seg.eps + 1)
        if self._model is not None:
            self._model.lindex_last_mile(max(1, (hi - lo).bit_length()))
        pos = bisect_left(seg.keys, key, lo, hi)
        if pos < hi and pos < len(seg.keys) and seg.keys[pos] == key:
            return pos
        return -1

    def _delta_probe(self, seg: _Segment, key: bytes) -> Any:
        """Probe the delta buffer; returns the delta slot or ``None``."""
        if self._model is not None:
            self._model.lindex_last_mile(1)
        return seg.delta.get(key)

    # -- public interface --------------------------------------------------

    def insert(self, key: bytes, value: Any) -> None:
        """Insert ``key``/``value``; replaces the value on duplicate key."""
        if not isinstance(key, bytes):
            raise TypeError("LearnedIndex keys must be bytes")
        if not self._segs:
            self._segs = [self._make_segment([key], [value])]
            self._firsts = [key]
            self._count = 1
            if self._model is not None:
                self._model.lindex_predict()
            return
        self._charge_directory_search()
        i = self._seg_index(key)
        seg = self._segs[i]
        slot = self._delta_probe(seg, key)
        if slot is not None:
            present = slot is not _TOMBSTONE
        else:
            present = self._base_find(seg, key) >= 0
        seg.delta[key] = value
        if not present:
            self._count += 1
        self._maybe_retrain(i)

    def lookup(self, key: bytes) -> Any:
        self.probes += 1
        self._obs("index.probes")
        if not self._segs:
            return None
        self._charge_directory_search()
        seg = self._segs[self._seg_index(key)]
        slot = self._delta_probe(seg, key)
        if slot is not None:
            self.delta_hits += 1
            self._obs("index.delta_hits")
            return None if slot is _TOMBSTONE else slot
        pos = self._base_find(seg, key)
        return seg.vals[pos] if pos >= 0 else None

    def delete(self, key: bytes) -> bool:
        if not self._segs:
            return False
        self._charge_directory_search()
        i = self._seg_index(key)
        seg = self._segs[i]
        slot = self._delta_probe(seg, key)
        if slot is not None:
            if slot is _TOMBSTONE:
                return False
        elif self._base_find(seg, key) < 0:
            return False
        seg.delta[key] = _TOMBSTONE
        self._count -= 1
        self._maybe_retrain(i)
        return True

    def scan(self, start: bytes | None = None,
             end: bytes | None = None) -> Iterator[tuple[bytes, Any]]:
        """Yield ``(key, value)`` with ``start <= key < end`` in order."""
        if not self._segs:
            return
        self._charge_directory_search()
        i = 0 if start is None else self._seg_index(start)
        for seg in self._segs[i:]:
            if end is not None and seg.first_key and seg.first_key >= end \
                    and seg is not self._segs[0]:
                break
            yield from self._scan_segment(seg, start, end)

    def _scan_segment(self, seg: _Segment, start: bytes | None,
                      end: bytes | None) -> Iterator[tuple[bytes, Any]]:
        deltas = sorted(seg.delta.items())
        bi, di = 0, 0
        while bi < len(seg.keys) or di < len(deltas):
            if di >= len(deltas):
                k, v, shadowed = seg.keys[bi], seg.vals[bi], False
                bi += 1
            elif bi >= len(seg.keys) or deltas[di][0] < seg.keys[bi]:
                k, v = deltas[di]
                shadowed = v is _TOMBSTONE
                di += 1
            elif deltas[di][0] == seg.keys[bi]:
                k, v = deltas[di]
                shadowed = v is _TOMBSTONE
                bi += 1
                di += 1
            else:
                k, v, shadowed = seg.keys[bi], seg.vals[bi], False
                bi += 1
            if shadowed or (start is not None and k < start):
                continue
            if end is not None and k >= end:
                return
            if self._model is not None:
                self._model.lindex_last_mile(1)
            yield k, v

    def first(self) -> tuple[bytes, Any] | None:
        for pair in self.scan():
            return pair
        return None

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: bytes) -> bool:
        return self.lookup(key) is not None

    # -- retraining --------------------------------------------------------

    def _threshold(self, seg: _Segment) -> int:
        # Adaptive: small segments retrain after ``delta_max`` buffered
        # updates; larger ones tolerate proportionally more so bulk
        # sorted loads don't degenerate into O(n^2) rebuilds.
        return max(self.delta_max, len(seg.keys) // 8)

    def _maybe_retrain(self, i: int) -> None:
        if len(self._segs[i].delta) > self._threshold(self._segs[i]):
            self._retrain(i)

    def _retrain(self, i: int) -> None:
        seg = self._segs[i]
        self.retrains += 1
        self._obs("index.segment_retrains")
        merged_keys: list[bytes] = []
        merged_vals: list[Any] = []
        deltas = sorted(seg.delta.items())
        bi, di = 0, 0
        while bi < len(seg.keys) or di < len(deltas):
            if di >= len(deltas):
                merged_keys.append(seg.keys[bi])
                merged_vals.append(seg.vals[bi])
                bi += 1
                continue
            if bi >= len(seg.keys) or deltas[di][0] < seg.keys[bi]:
                k, v = deltas[di]
                di += 1
            elif deltas[di][0] == seg.keys[bi]:
                k, v = deltas[di]
                bi += 1
                di += 1
            else:
                merged_keys.append(seg.keys[bi])
                merged_vals.append(seg.vals[bi])
                bi += 1
                continue
            if v is not _TOMBSTONE:
                merged_keys.append(k)
                merged_vals.append(v)
        moved = seg.base_bytes() \
            + sum(_entry_bytes(k) for k in merged_keys) + _SEGMENT_BYTES
        if self._model is not None:
            self._model.lindex_retrain(moved)
        if merged_keys:
            fresh = self._fit(merged_keys, merged_vals)
        elif len(self._segs) == 1:
            self._segs = []
            self._firsts = []
            return
        else:
            fresh = []
        self._segs[i:i + 1] = fresh
        self._firsts[i:i + 1] = [s.first_key for s in fresh]

    # -- introspection -----------------------------------------------------

    def stats(self) -> LearnedIndexStats:
        delta_entries = sum(len(s.delta) for s in self._segs)
        size = sum(s.base_bytes() for s in self._segs) \
            + sum(sum(_entry_bytes(k) for k in s.delta) for s in self._segs) \
            + _X_BYTES * len(self._segs)
        max_err = max((s.eps for s in self._segs), default=0)
        return LearnedIndexStats(
            entry_count=self._count,
            segment_count=len(self._segs),
            delta_entries=delta_entries,
            retrain_count=self.retrains,
            probe_count=self.probes,
            delta_hit_count=self.delta_hits,
            epsilon=self.epsilon,
            max_segment_error=max_err,
            height=2 if self._segs else 0,
            size_bytes=size,
        )

    def check_invariants(self) -> list[str]:
        """Structural self-check used by tests; returns failure strings."""
        failures: list[str] = []
        prev: bytes | None = None
        for i, seg in enumerate(self._segs):
            if self._firsts[i] != seg.first_key:
                failures.append(f"segment {i}: directory key mismatch")
            if seg.keys and seg.eps > self.epsilon:
                failures.append(
                    f"segment {i}: eps {seg.eps} > bound {self.epsilon}")
            for r, key in enumerate(seg.keys):
                if prev is not None and key <= prev:
                    failures.append(f"segment {i}: key order broken at {r}")
                prev = key
                if abs(seg.predict(key) - r) > seg.eps:
                    failures.append(
                        f"segment {i}: prediction error beyond eps at {r}")
        return failures
