"""The object-store facade: buckets, objects, multipart uploads."""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.db.database import BlobDB
from repro.db.errors import (
    DatabaseError,
    DuplicateKeyError,
    KeyNotFoundError,
    TableNotFoundError,
)


class BucketNotFound(DatabaseError):
    """The bucket does not exist."""


class ObjectNotFound(DatabaseError):
    """The object key does not exist in the bucket."""


class PreconditionFailed(DatabaseError):
    """A conditional request's ETag precondition did not hold."""


@dataclass(frozen=True)
class ObjectInfo:
    """HEAD-style metadata: everything comes from the Blob State."""

    bucket: str
    key: bytes
    size: int
    etag: str


class MultipartUpload:
    """An in-progress multipart upload.

    Parts append to a hidden staging object; ``complete`` renames it to
    the target key in one transaction.  Thanks to the resumable SHA-256
    in the Blob State, uploading part N never re-reads parts 1..N-1.
    """

    def __init__(self, store: "ObjectStore", bucket: str, key: bytes,
                 upload_id: int) -> None:
        self._store = store
        self.bucket = bucket
        self.key = key
        self.upload_id = upload_id
        self._staging_key = b"\x00mpu-%d" % upload_id
        self.parts = 0
        self._open = True

    def upload_part(self, data: bytes) -> int:
        """Append one part; returns the part number."""
        self._ensure_open()
        db = self._store.db
        with db.transaction() as txn:
            if self.parts == 0:
                db.put_blob(txn, self.bucket, self._staging_key, data)
            else:
                db.append_blob(txn, self.bucket, self._staging_key, data)
        self.parts += 1
        return self.parts

    def complete(self) -> ObjectInfo:
        """Atomically publish the assembled object under the target key."""
        self._ensure_open()
        if self.parts == 0:
            raise DatabaseError("multipart upload has no parts")
        db = self._store.db
        with db.transaction() as txn:
            state = db.get_state(self.bucket, self._staging_key, txn)
            if db.exists(self.bucket, self.key):
                db.delete_blob(txn, self.bucket, self.key)
            # Rename: re-point the target key at the staged Blob State.
            db._insert(txn, self.bucket, self.key, state)
            # Remove the staging row without freeing the extents the
            # target row now owns.
            db.locks.acquire(txn.txn_id, self.bucket, self._staging_key,
                             _exclusive())
            from repro.wal.records import DeleteRecord
            from repro.db.catalog import encode_value
            db.wal.append(DeleteRecord(
                txn_id=txn.txn_id, table=self.bucket,
                key=self._staging_key, old_value=encode_value(b"")))
            txn.remember_undo(self.bucket, self._staging_key, state)
            db._table(self.bucket).delete(self._staging_key)
        self._open = False
        self._store._uploads.pop(self.upload_id, None)
        return self._store.head_object(self.bucket, self.key)

    def abort(self) -> None:
        """Discard the staged parts."""
        self._ensure_open()
        db = self._store.db
        if db.exists(self.bucket, self._staging_key):
            with db.transaction() as txn:
                db.delete_blob(txn, self.bucket, self._staging_key)
        self._open = False
        self._store._uploads.pop(self.upload_id, None)

    def _ensure_open(self) -> None:
        if not self._open:
            raise DatabaseError(f"upload {self.upload_id} is finished")


class ObjectStore:
    """Buckets and whole-object operations over a :class:`BlobDB`."""

    def __init__(self, db: BlobDB | None = None) -> None:
        self.db = db or BlobDB()
        self._upload_ids = itertools.count(1)
        self._uploads: dict[int, MultipartUpload] = {}

    @property
    def ns(self):
        return self.db.ns

    def attach_namespace(self):
        """Build (or reuse) the interval-numbered namespace accelerator.

        Once attached, directory-aligned :meth:`list_objects` calls
        (empty prefix or a prefix ending in ``/``) run as one range scan
        over the interval index instead of a key-space scan plus
        per-object metadata decoding.
        """
        if self.db.ns is None:
            from repro.namespace import NamespaceIndex
            NamespaceIndex.build(self.db)
        return self.db.ns

    # -- buckets -----------------------------------------------------------

    def create_bucket(self, name: str) -> None:
        try:
            self.db.create_table(name)
        except DuplicateKeyError:
            raise DuplicateKeyError(f"bucket {name!r} exists") from None

    def list_buckets(self) -> list[str]:
        return self.db.list_tables()

    def delete_bucket(self, name: str) -> None:
        """Drop an empty bucket (S3 refuses to delete non-empty ones)."""
        if name not in self.db.list_tables():
            raise BucketNotFound(name)
        if any(True for _ in self.list_objects(name)):
            raise DatabaseError(f"bucket {name!r} is not empty")
        self.db.drop_table(name)

    # -- objects -------------------------------------------------------------

    def put_object(self, bucket: str, key: bytes, data: bytes) -> ObjectInfo:
        """Create or replace an object (whole-BLOB semantics, as S3)."""
        try:
            with self.db.transaction() as txn:
                if self.db.exists(bucket, key):
                    self.db.delete_blob(txn, bucket, key)
                self.db.put_blob(txn, bucket, key, data)
        except TableNotFoundError:
            raise BucketNotFound(bucket) from None
        return self.head_object(bucket, key)

    def get_object(self, bucket: str, key: bytes,
                   if_none_match: str | None = None) -> bytes:
        """Read an object; the conditional variant compares ETags only."""
        info = self.head_object(bucket, key)
        if if_none_match is not None and info.etag == if_none_match:
            raise PreconditionFailed(
                f"{bucket}/{key!r} still has ETag {if_none_match}")
        return self.db.read_blob(bucket, key)

    def head_object(self, bucket: str, key: bytes) -> ObjectInfo:
        """Metadata without content access — one Blob State lookup."""
        try:
            state = self.db.get_state(bucket, key)
        except TableNotFoundError:
            raise BucketNotFound(bucket) from None
        except KeyNotFoundError:
            raise ObjectNotFound(f"{bucket}/{key!r}") from None
        return ObjectInfo(bucket=bucket, key=key, size=state.size,
                          etag=state.sha256.hex())

    def delete_object(self, bucket: str, key: bytes) -> None:
        try:
            with self.db.transaction() as txn:
                self.db.delete_blob(txn, bucket, key)
        except TableNotFoundError:
            raise BucketNotFound(bucket) from None
        except KeyNotFoundError:
            raise ObjectNotFound(f"{bucket}/{key!r}") from None

    def list_objects(self, bucket: str, prefix: bytes = b""):
        """Yield :class:`ObjectInfo` for keys with the given prefix.

        Directory-aligned prefixes (empty, or ending in ``/``) use the
        namespace accelerator when attached: one interval range scan
        yields the whole subtree with sizes and ETags already resolved.
        """
        if bucket not in self.db.list_tables():
            raise BucketNotFound(bucket)
        if self.ns is not None and (not prefix or prefix.endswith(b"/")):
            yield from self._list_objects_interval(bucket, prefix)
            return
        end = _prefix_end(prefix)
        for key, value in self.db.scan(bucket, start=prefix or None,
                                       end=end):
            if key.startswith(b"\x00"):
                continue  # multipart staging objects are hidden
            if not key.startswith(prefix):
                continue
            yield ObjectInfo(bucket=bucket, key=key, size=value.size,
                             etag=value.sha256.hex())

    def _list_objects_interval(self, bucket: str, prefix: bytes):
        """One range scan over the interval numbering (sorted by key)."""
        node = self.ns.resolve(bucket, prefix.rstrip(b"/"))
        if node is None:  # empty bucket or no keys under the prefix
            return
        infos = [ObjectInfo(bucket=bucket, key=found.key, size=found.size,
                            etag=found.etag)
                 for found in self.ns.iter_subtree(node) if found.is_file]
        infos.sort(key=lambda info: info.key)
        yield from infos

    # -- multipart ---------------------------------------------------------------

    def create_multipart_upload(self, bucket: str,
                                key: bytes) -> MultipartUpload:
        if bucket not in self.db.list_tables():
            raise BucketNotFound(bucket)
        upload = MultipartUpload(self, bucket, key, next(self._upload_ids))
        self._uploads[upload.upload_id] = upload
        return upload


def _prefix_end(prefix: bytes) -> bytes | None:
    """Smallest key greater than every key with ``prefix``."""
    if not prefix:
        return None
    as_int = int.from_bytes(prefix, "big") + 1
    length = len(prefix)
    if as_int >= 1 << (8 * length):
        return None
    return as_int.to_bytes(length, "big")


def _exclusive():
    from repro.db.transaction import LockMode
    return LockMode.EXCLUSIVE
