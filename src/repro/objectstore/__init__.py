"""S3-style object store over the BLOB engine.

Section III-A justifies the extent-sequence design by S3's semantics:
"Amazon S3 ... restricts user interactions to entire BLOBs, disallowing
partial updates and removals."  This facade shows the engine is a
natural substrate for exactly that interface:

* buckets are relations, objects are BLOBs;
* ``ETag`` is free — it *is* the Blob State's SHA-256;
* multipart upload maps onto BLOB growth: each part appends, resuming
  the stored intermediate hash, so assembling a multi-gigabyte object
  never re-reads earlier parts;
* conditional gets (``if_none_match``) compare digests without touching
  content.
"""

from repro.objectstore.store import (
    BucketNotFound,
    MultipartUpload,
    ObjectInfo,
    ObjectNotFound,
    ObjectStore,
    PreconditionFailed,
)

__all__ = [
    "ObjectStore",
    "ObjectInfo",
    "MultipartUpload",
    "BucketNotFound",
    "ObjectNotFound",
    "PreconditionFailed",
]
