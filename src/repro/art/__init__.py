"""Adaptive Radix Tree (Leis et al., ICDE 2013 — the paper's ref [42]).

Section III-F: "the indexing structure is untouched, and DBMSs can use
any data structure like B-Tree or ART."  This package provides that
second structure: a byte-keyed ART with adaptive node sizes (4/16/48/256
children), path compression, and ordered iteration, exposing the same
interface as :class:`repro.btree.BTree` so relations and indexes can be
backed by either (``EngineConfig(index_structure="art")``).
"""

from repro.art.art import ArtStats, ArtTree

__all__ = ["ArtTree", "ArtStats"]
