"""Adaptive Radix Tree over byte keys.

Nodes grow through the classic ART ladder — Node4 → Node16 → Node48 →
Node256 — and shrink back on deletion; chains of single-child nodes are
collapsed by path compression.  Any node may terminate a key (so a key
may be a prefix of another), which makes arbitrary byte strings valid
keys without terminator tricks.

The implementation favours clarity over SIMD tricks, but keeps ART's
asymptotics: lookups touch one node per key byte (minus compressed
spans), and space adapts to the actual fanout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.sim.cost import CostModel

#: Sentinel distinguishing "no value" from a stored ``None``.
_ABSENT = object()

#: Growth ladder: max children per node type.
_NODE4, _NODE16, _NODE48, _NODE256 = 4, 16, 48, 256


class _Node:
    """One ART node: compressed prefix, adaptive child map, optional
    terminal value."""

    __slots__ = ("prefix", "capacity", "keys", "children", "value")

    def __init__(self, prefix: bytes = b"") -> None:
        self.prefix = prefix
        self.capacity = _NODE4
        #: Sorted byte keys; parallel to ``children``.  (Node48/256 in
        #: the original use direct indexing; the adaptive *capacity* is
        #: what drives ART's space behaviour and is modelled exactly.)
        self.keys: list[int] = []
        self.children: list["_Node"] = []
        self.value: Any = _ABSENT

    # -- child map ---------------------------------------------------------

    def find_child(self, byte: int) -> "_Node | None":
        idx = self._index_of(byte)
        return self.children[idx] if idx is not None else None

    def _index_of(self, byte: int) -> int | None:
        lo, hi = 0, len(self.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.keys[mid] < byte:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.keys) and self.keys[lo] == byte:
            return lo
        return None

    def add_child(self, byte: int, child: "_Node") -> None:
        if len(self.keys) >= self.capacity:
            self._grow()
        lo, hi = 0, len(self.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.keys[mid] < byte:
                lo = mid + 1
            else:
                hi = mid
        self.keys.insert(lo, byte)
        self.children.insert(lo, child)

    def remove_child(self, byte: int) -> None:
        idx = self._index_of(byte)
        if idx is not None:
            self.keys.pop(idx)
            self.children.pop(idx)
            self._maybe_shrink()

    def _grow(self) -> None:
        ladder = {_NODE4: _NODE16, _NODE16: _NODE48, _NODE48: _NODE256}
        if self.capacity not in ladder:
            raise RuntimeError("Node256 cannot grow")
        self.capacity = ladder[self.capacity]

    def _maybe_shrink(self) -> None:
        ladder = {_NODE16: _NODE4, _NODE48: _NODE16, _NODE256: _NODE48}
        lower = ladder.get(self.capacity)
        if lower is not None and len(self.keys) <= lower // 2:
            self.capacity = lower

    @property
    def node_type(self) -> str:
        return f"Node{self.capacity}"

    @property
    def has_value(self) -> bool:
        return self.value is not _ABSENT


@dataclass
class ArtStats:
    """Structural statistics (node-type histogram, memory estimate)."""

    entry_count: int
    node_count: int
    node_types: dict[str, int]
    height: int
    size_bytes: int


class ArtTree:
    """Byte-keyed ART with the :class:`~repro.btree.BTree` interface."""

    #: Per-node header + prefix pointer estimate for size accounting.
    _HEADER_BYTES = 16
    _SLOT_BYTES = 9  # key byte + child pointer

    def __init__(self, model: CostModel | None = None) -> None:
        self._root = _Node()
        self._count = 0
        self._model = model

    def __len__(self) -> int:
        return self._count

    def _visit(self) -> None:
        if self._model is not None:
            self._model.cpu(25.0)

    # -- insert ------------------------------------------------------------

    def insert(self, key: bytes, value: Any) -> None:
        """Insert or replace ``key`` (bytes)."""
        key = bytes(key)
        node = self._root
        depth = 0
        while True:
            self._visit()
            common = _common_len(node.prefix, key[depth:])
            if common < len(node.prefix):
                self._split_prefix(node, common)
            depth += common
            if depth == len(key):
                if not node.has_value:
                    self._count += 1
                node.value = value
                return
            byte = key[depth]
            child = node.find_child(byte)
            if child is None:
                leaf = _Node(prefix=key[depth + 1:])
                leaf.value = value
                node.add_child(byte, leaf)
                self._count += 1
                return
            node = child
            depth += 1

    def _split_prefix(self, node: _Node, common: int) -> None:
        """Path-compression split: keep ``common`` bytes in ``node``,
        push the remainder into a new child."""
        rest = node.prefix[common:]
        child = _Node(prefix=rest[1:])
        child.capacity = node.capacity
        child.keys, node.keys = node.keys, []
        child.children, node.children = node.children, []
        child.value, node.value = node.value, _ABSENT
        node.prefix = node.prefix[:common]
        node.capacity = _NODE4
        node.add_child(rest[0], child)

    # -- lookup --------------------------------------------------------------

    def lookup(self, key: bytes) -> Any | None:
        key = bytes(key)
        node = self._root
        depth = 0
        while True:
            self._visit()
            if key[depth:depth + len(node.prefix)] != node.prefix:
                return None
            depth += len(node.prefix)
            if depth == len(key):
                return node.value if node.has_value else None
            child = node.find_child(key[depth])
            if child is None:
                return None
            node = child
            depth += 1

    def __contains__(self, key: bytes) -> bool:
        return self.lookup(key) is not None

    # -- delete ----------------------------------------------------------------

    def delete(self, key: bytes) -> bool:
        key = bytes(key)
        removed = self._delete(self._root, key, 0)
        if removed:
            self._count -= 1
        return removed

    def _delete(self, node: _Node, key: bytes, depth: int) -> bool:
        self._visit()
        if key[depth:depth + len(node.prefix)] != node.prefix:
            return False
        depth += len(node.prefix)
        if depth == len(key):
            if not node.has_value:
                return False
            node.value = _ABSENT
            return True
        byte = key[depth]
        child = node.find_child(byte)
        if child is None:
            return False
        removed = self._delete(child, key, depth + 1)
        if removed and not child.has_value:
            if not child.children:
                node.remove_child(byte)
            elif len(child.children) == 1:
                # Re-compress: merge the single grandchild upward.
                grand = child.children[0]
                grand.prefix = (child.prefix + bytes([child.keys[0]])
                                + grand.prefix)
                idx = node._index_of(byte)
                node.children[idx] = grand
        return removed

    # -- iteration -----------------------------------------------------------------

    def scan(self, start: bytes | None = None,
             end: bytes | None = None) -> Iterator[tuple[bytes, Any]]:
        """Yield ``(key, value)`` in byte order for ``start <= key < end``."""
        for key, value in self._walk(self._root, b""):
            if start is not None and key < start:
                continue
            if end is not None and key >= end:
                return
            yield key, value

    def _walk(self, node: _Node, built: bytes):
        self._visit()
        built = built + node.prefix
        if node.has_value:
            yield built, node.value
        for byte, child in zip(node.keys, node.children):
            yield from self._walk(child, built + bytes([byte]))

    def first(self) -> tuple[bytes, Any] | None:
        return next(self._walk(self._root, b""), None)

    # -- statistics --------------------------------------------------------------------

    def stats(self) -> ArtStats:
        node_types: dict[str, int] = {}
        size = 0
        height = 0

        def walk(node: _Node, depth: int) -> None:
            nonlocal size, height
            height = max(height, depth + 1)
            node_types[node.node_type] = node_types.get(node.node_type, 0) + 1
            size += (self._HEADER_BYTES + len(node.prefix)
                     + node.capacity * self._SLOT_BYTES)
            for child in node.children:
                walk(child, depth + 1)

        walk(self._root, 0)
        return ArtStats(entry_count=self._count,
                        node_count=sum(node_types.values()),
                        node_types=node_types, height=height,
                        size_bytes=size)


def _common_len(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n
