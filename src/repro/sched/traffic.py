"""The traffic simulator: open-loop arrivals over the real engine.

:class:`TrafficSim` is the seam the ROADMAP names: instead of scaling
one worker's trace by ``n_workers / n_shards``
(:class:`~repro.sim.workers.WorkerSim`), it runs a pool of
:data:`~repro.sched.loop.SimWorker` coroutines on a discrete
:class:`~repro.sched.loop.EventLoop`.  Every operation is executed *for
real* against a :class:`~repro.db.BlobDB` shard — real bytes, real WAL,
real buffer pool, priced by the shard's own
:class:`~repro.sim.cost.CostModel` — and the measured demand is then
*scheduled*: the I/O-bound portion joins the shard device's FIFO
submission queue (an :class:`~repro.sched.loop.Io` command, the
event-loop analogue of an :class:`~repro.io.IoScheduler` ticket), while
the CPU/memory remainder overlaps freely across workers
(:class:`~repro.sched.loop.Delay`).

Two drive modes:

* :meth:`run` — **open loop**: a pre-generated arrival schedule
  (:func:`repro.sched.arrivals.generate_jobs`) fires on the loop
  timeline regardless of backend progress, optionally through an
  :class:`~repro.sched.admission.AdmissionController`.  This is the
  mode that can show saturation knees, queue growth, and shed counts.
* :meth:`run_closed` — **closed loop**: each worker issues its next op
  the moment the previous completes.  At one worker this degenerates to
  the engine's own serial timeline, which is the cross-check anchor
  against ``WorkerSim`` (see ``tests/test_sched_traffic.py``).

Latency, wait, and service times land in ``repro.obs`` histograms
(``sched.latency_ns``/``sched.wait_ns``/``sched.service_ns``, p999
included), with exact ``sched.offered``/``admitted``/``shed``/
``completed`` counters per tenant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hashing import new_hasher
from repro.obs.metrics import MetricsRegistry
from repro.sched.admission import ADMIT, QUEUE, AdmissionController
from repro.sched.arrivals import Job, op_for
from repro.sched.loop import (Acquire, Delay, EventLoop, Io, JobQueue,
                              Release, Resource, Take, TieBreak)


@dataclass
class TrafficConfig:
    """Shape of the simulated serving fleet and its keyspace."""

    n_workers: int = 4
    n_shards: int = 1
    n_keys: int = 48          # per tenant
    payload_bytes: int = 4096
    read_ratio: float = 0.5
    seed: int = 0
    device_bytes: int = 1 << 30
    buffer_bytes: int = 64 << 20

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("need at least one worker")
        if self.n_shards < 1:
            raise ValueError("need at least one shard")
        if self.n_keys < 1:
            raise ValueError("need at least one key per tenant")


@dataclass
class TrafficResult:
    """Everything one traffic run is judged by — all virtual-time exact."""

    offered: int
    admitted: int
    shed: int
    completed: int
    elapsed_ns: int
    throughput_ops_s: float
    latency: dict[str, float]
    wait: dict[str, float]
    service: dict[str, float]
    shed_by_tenant: dict[int, int]
    queued_ops: int
    max_dispatch_depth: int
    payload_bytes: int
    bytes_written: int
    metrics: MetricsRegistry = field(repr=False, default=None)

    @property
    def write_amplification(self) -> float:
        if not self.payload_bytes:
            return 0.0
        return self.bytes_written / self.payload_bytes

    def as_dict(self) -> dict:
        """Canonical plain-data form (JSON-ready, stable key order)."""
        return {
            "ops": self.completed,
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "elapsed_virtual_ms": round(self.elapsed_ns / 1e6, 3),
            "throughput_ops_s": round(self.throughput_ops_s, 1),
            "latency_us": {
                "mean": round(self.latency["mean"] / 1000, 2),
                "p50": round(self.latency["p50"] / 1000, 2),
                "p95": round(self.latency["p95"] / 1000, 2),
                "p99": round(self.latency["p99"] / 1000, 2),
                "p999": round(self.latency["p999"] / 1000, 2),
                "max": round(self.latency["max"] / 1000, 2),
            },
            "wait_us": {
                "mean": round(self.wait["mean"] / 1000, 2),
                "p99": round(self.wait["p99"] / 1000, 2),
                "p999": round(self.wait["p999"] / 1000, 2),
            },
            "service_us": {
                "mean": round(self.service["mean"] / 1000, 2),
                "p99": round(self.service["p99"] / 1000, 2),
            },
            "shed_by_tenant": {str(k): v for k, v in
                               sorted(self.shed_by_tenant.items())},
            "queued_ops": self.queued_ops,
            "max_dispatch_depth": self.max_dispatch_depth,
            "payload_bytes": self.payload_bytes,
            "write_amplification": round(self.write_amplification, 4),
        }


class TrafficSim:
    """Drives real engine ops under a discrete-event worker pool."""

    def __init__(self, config: TrafficConfig | None = None,
                 admission: AdmissionController | None = None,
                 tiebreak: TieBreak | None = None) -> None:
        from repro.bench.adapters import make_store

        self.config = config or TrafficConfig()
        self.admission = admission
        self.loop = EventLoop(tiebreak=tiebreak)
        self.metrics = MetricsRegistry()
        self._stores = [
            make_store("our", capacity_bytes=self.config.device_bytes,
                       buffer_bytes=self.config.buffer_bytes)
            for _ in range(self.config.n_shards)]
        self._shard_res = [Resource(f"shard{i}.device")
                           for i in range(self.config.n_shards)]
        #: One mutex per shard engine: a worker holds it across its
        #: synchronous engine call (`_execute`), because BlobDB mutates
        #: shared frames/WAL state non-reentrantly.  Acquire/Release
        #: cost zero virtual time, so an uncontended lock (or a
        #: single-worker run) is byte-identical to the unlocked engine.
        self._shard_lock = [Resource(f"shard{i}.engine")
                            for i in range(self.config.n_shards)]
        self._dispatch = JobQueue()
        self._preloaded: set[int] = set()
        self._written_base = 0
        self._completed: list[tuple[Job, int, int, int]] = []
        self._first_arrival_ns: int | None = None
        self.max_dispatch_depth = 0
        self.payload_bytes = 0

    # -- instrumentation -----------------------------------------------------

    def attach_race(self, mode: str = "collect"):
        """Attach a happens-before detector to every shared surface.

        Binds one :class:`~repro.analysis.race.RaceDetector` to the
        loop, a per-shard :class:`~repro.analysis.race.RaceScope` to
        each engine's cost model (frames + WAL append), and an
        ``admission`` scope to the token buckets.  Returns the detector.
        """
        from repro.analysis.race import attach_race_detector

        detector = attach_race_detector(self.loop, mode=mode)
        for i, store in enumerate(self._stores):
            store.model.race = detector.scope(f"shard{i}")
        if self.admission is not None:
            self.admission.race = detector.scope("admission")
        return detector

    # -- keyspace ------------------------------------------------------------

    def shard_of(self, key: bytes) -> int:
        """Pure function of the key bytes (same scheme as ShardRouter)."""
        digest = new_hasher("fast", key).digest()
        return int.from_bytes(digest[:8], "big") % self.config.n_shards

    def preload(self, tenants: int) -> None:
        """Populate every tenant's keyspace once, off the traffic clock."""
        import random

        cfg = self.config
        for tenant in range(tenants):
            if tenant in self._preloaded:
                continue
            self._preloaded.add(tenant)
            for idx in range(cfg.n_keys):
                key = b"t%02d-key%08d" % (tenant, idx)
                data = random.Random(
                    cfg.seed * 31 + tenant * cfg.n_keys + idx).randbytes(
                        cfg.payload_bytes)
                self._stores[self.shard_of(key)].put(key, data)
        # Preload writes are setup, not traffic: write amplification is
        # measured over the bytes the op stream itself pushed.
        self._written_base = sum(store.device.stats.bytes_written
                                 for store in self._stores)

    # -- execution -----------------------------------------------------------

    def _execute(self, job: Job) -> tuple[int, int]:
        """Run ``job`` on its shard's engine; return (demand, io) ns.

        The shard's virtual clock advances by the op's full isolated
        cost; the *traffic* timeline replays that demand through the
        event loop, serializing only the I/O-bound portion on the shard
        device.
        """
        store = self._stores[self.shard_of(job.key)]
        model = store.model
        start_ns = model.clock.now_ns
        io_start = model.io_time_ns
        if job.kind == "read":
            data = store.get(job.key)
            if len(data) == 0:
                raise AssertionError(f"empty read for {job.key!r}")
        else:
            store.replace(job.key, job.payload)
            self.payload_bytes += len(job.payload)
        demand_ns = model.clock.now_ns - start_ns
        io_ns = min(int(model.io_time_ns - io_start), demand_ns)
        return demand_ns, io_ns

    def _worker(self, wid: int):
        """One pool worker: take a job, execute, schedule its demand."""
        while True:
            job = yield Take(self._dispatch)
            start_ns = self.loop.now_ns
            shard = self.shard_of(job.key)
            yield Acquire(self._shard_lock[shard])
            demand_ns, io_ns = self._execute(job)
            yield Release(self._shard_lock[shard])
            if io_ns > 0:
                yield Io(self._shard_res[shard], io_ns)
            rest_ns = demand_ns - io_ns
            if rest_ns > 0:
                yield Delay(rest_ns)
            self._record(job, start_ns, demand_ns)

    def _record(self, job: Job, start_ns: int, demand_ns: int) -> None:
        done_ns = self.loop.now_ns
        latency_ns = done_ns - job.arrive_ns
        wait_ns = start_ns - job.arrive_ns
        self._completed.append((job, start_ns, done_ns, demand_ns))
        self.metrics.histogram("sched.latency_ns").observe(latency_ns)
        self.metrics.histogram("sched.wait_ns").observe(wait_ns)
        self.metrics.histogram("sched.service_ns").observe(demand_ns)
        self.metrics.counter("sched.completed").add(
            1, tenant=str(job.tenant))

    # -- open loop -----------------------------------------------------------

    def _arrive(self, job: Job) -> None:
        counters = self.metrics
        counters.counter("sched.offered").add(1, tenant=str(job.tenant))
        depth = len(self._dispatch)
        self.max_dispatch_depth = max(self.max_dispatch_depth, depth)
        counters.histogram("sched.queue_depth").observe(depth)
        if self.admission is None:
            self.loop.put(self._dispatch, job)
            return
        decision, dispatch_ns = self.admission.decide(
            job.tenant, self.loop.now_ns)
        if decision == ADMIT:
            self.loop.put(self._dispatch, job)
        elif decision == QUEUE:
            self.loop.call_at(
                dispatch_ns, lambda j=job: self.loop.put(self._dispatch, j))
        else:
            counters.counter("sched.shed").add(1, tenant=str(job.tenant))

    def run(self, jobs: list[Job]) -> TrafficResult:
        """Open loop: fire ``jobs`` at their arrival times and drain."""
        self.preload(max((job.tenant for job in jobs), default=-1) + 1)
        if jobs:
            self._first_arrival_ns = min(j.arrive_ns for j in jobs)
        workers = [self._worker(i) for i in range(self.config.n_workers)]
        for i, worker in enumerate(workers):
            if self.loop.race is not None:
                self.loop.race.register(worker, f"worker{i}")
            self.loop.spawn(worker)
        for job in jobs:
            self.loop.call_at(job.arrive_ns,
                              lambda j=job: self._arrive(j))
        self.loop.run()
        self.loop.drain_workers(workers)
        return self._result(len(jobs))

    # -- closed loop ---------------------------------------------------------

    def _closed_worker(self, pending: list[Job]):
        """Pull-driven worker: next op starts when the previous ends."""
        while pending:
            job = pending.pop(0)
            arrive_ns = self.loop.now_ns
            job = Job(tenant=job.tenant, index=job.index,
                      arrive_ns=arrive_ns, kind=job.kind, key=job.key,
                      payload=job.payload)
            self.metrics.counter("sched.offered").add(
                1, tenant=str(job.tenant))
            shard = self.shard_of(job.key)
            yield Acquire(self._shard_lock[shard])
            demand_ns, io_ns = self._execute(job)
            yield Release(self._shard_lock[shard])
            if io_ns > 0:
                yield Io(self._shard_res[shard], io_ns)
            rest_ns = demand_ns - io_ns
            if rest_ns > 0:
                yield Delay(rest_ns)
            self._record(job, arrive_ns, demand_ns)

    def run_closed(self, n_ops: int, tenants: int = 1) -> TrafficResult:
        """Closed loop: ``n_ops`` total ops, issued as workers free up.

        This is the mode comparable to ``WorkerSim``: offered load
        equals capacity by construction, so its throughput *is* the
        fleet's service capacity — the calibration point the open-loop
        sweeps express their arrival rates against.
        """
        cfg = self.config
        self.preload(tenants)
        pending = []
        for i in range(n_ops):
            tenant = i % tenants
            kind, key, payload = op_for(
                tenant, i, seed=cfg.seed, n_keys=cfg.n_keys,
                payload_bytes=cfg.payload_bytes,
                read_ratio=cfg.read_ratio)
            pending.append(Job(tenant=tenant, index=i, arrive_ns=0,
                               kind=kind, key=key, payload=payload))
        self._first_arrival_ns = 0
        workers = [self._closed_worker(pending)
                   for _ in range(cfg.n_workers)]
        for i, worker in enumerate(workers):
            if self.loop.race is not None:
                self.loop.race.register(worker, f"worker{i}")
            self.loop.spawn(worker)
        self.loop.run()
        self.loop.drain_workers(workers)
        return self._result(n_ops)

    # -- results -------------------------------------------------------------

    def _result(self, offered: int) -> TrafficResult:
        shed_counter = self.metrics.counters.get("sched.shed")
        shed_by_tenant = {}
        shed = 0
        if shed_counter is not None:
            for key, value in sorted(shed_counter.values.items()):
                tenant = int(dict(key)["tenant"])
                shed_by_tenant[tenant] = value
                shed += value
        completed = len(self._completed)
        start_ns = self._first_arrival_ns or 0
        elapsed_ns = max(0, self.loop.now_ns - start_ns)
        bytes_written = sum(store.device.stats.bytes_written
                            for store in self._stores) - self._written_base
        latency = self.metrics.histogram("sched.latency_ns").summary()
        wait = self.metrics.histogram("sched.wait_ns").summary()
        service = self.metrics.histogram("sched.service_ns").summary()
        queued = 0
        if self.admission is not None:
            queued = self.admission.stats.total(
                self.admission.stats.queued)
        return TrafficResult(
            offered=offered,
            admitted=offered - shed,
            shed=shed,
            completed=completed,
            elapsed_ns=elapsed_ns,
            throughput_ops_s=completed * 1e9 / elapsed_ns
            if elapsed_ns else 0.0,
            latency=latency,
            wait=wait,
            service=service,
            shed_by_tenant=shed_by_tenant,
            queued_ops=queued,
            max_dispatch_depth=self.max_dispatch_depth,
            payload_bytes=self.payload_bytes,
            bytes_written=bytes_written,
            metrics=self.metrics,
        )
