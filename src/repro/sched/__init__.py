"""Discrete-event scheduling: event loop, open-loop traffic, admission.

The package that replaces analytic concurrency stretch
(:class:`~repro.sim.workers.WorkerSim`) with an honest discrete-event
model:

* :mod:`repro.sched.loop` — the deterministic event loop and the
  :data:`SimWorker` coroutine protocol (``Delay``/``Io``/``Take``/
  ``Acquire``/``Release``) with pluggable seeded tie-breaking;
* :mod:`repro.sched.arrivals` — seeded open-loop arrival generators
  (Poisson, diurnal-curve thinning) and pure-indexed op content;
* :mod:`repro.sched.admission` — per-tenant token buckets with
  shed/queue policies;
* :mod:`repro.sched.traffic` — :class:`TrafficSim`, wiring real engine
  ops through the loop, with p999-tracked latency histograms.

See ``docs/scheduling.md`` for the model and ``repro bench traffic``
for the gated sweep.
"""

from repro.sched.admission import (
    ADMIT,
    QUEUE,
    SHED,
    AdmissionController,
    AdmissionStats,
    TokenBucket,
)
from repro.sched.arrivals import (
    DiurnalCurve,
    Job,
    diurnal_arrivals,
    generate_jobs,
    op_for,
    poisson_arrivals,
)
from repro.sched.loop import (
    Acquire,
    Delay,
    EventLoop,
    Io,
    JobQueue,
    Release,
    Resource,
    SeededTieBreak,
    SimWorker,
    Take,
    TieBreak,
)
from repro.sched.traffic import TrafficConfig, TrafficResult, TrafficSim

__all__ = [
    "ADMIT",
    "QUEUE",
    "SHED",
    "Acquire",
    "AdmissionController",
    "AdmissionStats",
    "Delay",
    "DiurnalCurve",
    "EventLoop",
    "Io",
    "Job",
    "JobQueue",
    "Release",
    "Resource",
    "SeededTieBreak",
    "SimWorker",
    "Take",
    "TieBreak",
    "TokenBucket",
    "TrafficConfig",
    "TrafficResult",
    "TrafficSim",
    "diurnal_arrivals",
    "generate_jobs",
    "op_for",
    "poisson_arrivals",
]
