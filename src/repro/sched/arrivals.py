"""Open-loop arrival generators: seeded Poisson and a diurnal curve.

A *closed-loop* benchmark (every workload in :mod:`repro.bench` so far)
issues the next operation only when the previous one completes — offered
load implicitly tracks capacity and overload is unobservable.  An
*open-loop* benchmark fixes the arrival process independently of service
progress, which is how production traffic behaves: requests keep landing
whether or not the backend keeps up, queues grow, and the tail explodes
past the saturation knee.

Both generators draw inter-arrival gaps from an explicitly seeded
``random.Random`` (``rng.expovariate`` — the method on a seeded
instance, never the module-level function, which lint rule RPR002
flags), so an arrival schedule is a pure function of its parameters and
seed.  The diurnal generator modulates a Poisson process by thinning
(Lewis & Shedler): candidates are drawn at the peak rate and accepted
with probability ``rate(t) / peak_rate``, giving an exact nonhomogeneous
Poisson process without approximating the curve.

Op *content* (key, kind, payload) is deliberately a pure function of the
``(tenant, index)`` pair — see :func:`op_for` — so an admission policy
that sheds op *k* cannot perturb the bytes of op *k + 1*.  That property
is what makes shed-vs-queue policy comparisons byte-exact.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

#: Payload body shared by every generated op (content is stamped per
#: op); one module-level constant keeps generation cheap and pure.
_BASE_SEED = 0x7AFF1C


@dataclass(frozen=True)
class Job:
    """One arriving operation, fully determined at generation time."""

    tenant: int
    index: int
    arrive_ns: int
    kind: str          # "read" | "write"
    key: bytes
    payload: bytes | None = field(repr=False, default=None)


def poisson_arrivals(rate_ops_s: float, n: int, rng: random.Random,
                     start_ns: int = 0) -> list[int]:
    """``n`` arrival times of a homogeneous Poisson process.

    Inter-arrival gaps are exponential with mean ``1e9 / rate_ops_s``
    simulated nanoseconds; the schedule is deterministic per ``rng``
    state and independent of anything the backend does with it.
    """
    if rate_ops_s <= 0:
        raise ValueError("arrival rate must be positive")
    if n < 0:
        raise ValueError("cannot generate a negative number of arrivals")
    mean_gap_ns = 1e9 / rate_ops_s
    t = float(start_ns)
    out: list[int] = []
    for _ in range(n):
        t += rng.expovariate(1.0) * mean_gap_ns
        out.append(int(t))
    return out


@dataclass(frozen=True)
class DiurnalCurve:
    """A day-shaped rate curve: ``base * (1 + amp * sin(2π t/period))``.

    ``amplitude`` in [0, 1); the peak rate is ``base * (1 + amplitude)``
    and the trough ``base * (1 - amplitude)``, so the curve never goes
    negative and the thinning acceptance ratio stays well-defined.
    """

    base_ops_s: float
    amplitude: float = 0.5
    period_ns: int = 1_000_000_000  # one simulated "day" per second

    def __post_init__(self) -> None:
        if self.base_ops_s <= 0:
            raise ValueError("base rate must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.period_ns <= 0:
            raise ValueError("period must be positive")

    @property
    def peak_ops_s(self) -> float:
        return self.base_ops_s * (1.0 + self.amplitude)

    def rate_at(self, t_ns: int) -> float:
        phase = 2.0 * math.pi * (t_ns % self.period_ns) / self.period_ns
        return self.base_ops_s * (1.0 + self.amplitude * math.sin(phase))


def diurnal_arrivals(curve: DiurnalCurve, n: int, rng: random.Random,
                     start_ns: int = 0) -> list[int]:
    """``n`` arrivals of a nonhomogeneous Poisson process by thinning.

    Candidates are drawn at ``curve.peak_ops_s`` and kept with
    probability ``rate(t) / peak``; the rejection draw comes from the
    same seeded ``rng``, so the thinned schedule is exactly reproducible.
    """
    if n < 0:
        raise ValueError("cannot generate a negative number of arrivals")
    peak = curve.peak_ops_s
    mean_gap_ns = 1e9 / peak
    t = float(start_ns)
    out: list[int] = []
    while len(out) < n:
        t += rng.expovariate(1.0) * mean_gap_ns
        if rng.random() * peak <= curve.rate_at(int(t)):
            out.append(int(t))
    return out


def op_for(tenant: int, index: int, *, seed: int, n_keys: int,
           payload_bytes: int, read_ratio: float) -> tuple[str, bytes, bytes | None]:
    """Deterministic op content for one ``(tenant, index)`` pair.

    A fresh generator is seeded from the pair, so the result never
    depends on how many earlier ops were generated, admitted, or shed —
    the indexed analogue of :class:`~repro.workloads.ycsb.YcsbWorkload`
    whose stream state would otherwise couple ops together.
    """
    rng = random.Random(seed * 1_000_003 + tenant * 10_007 + index)
    key_idx = rng.randrange(n_keys)
    key = b"t%02d-key%08d" % (tenant, key_idx)
    if rng.random() < read_ratio:
        return "read", key, None
    stamp = b"t%02d/%08d/" % (tenant, index)
    body = random.Random(_BASE_SEED ^ key_idx).randbytes(
        max(0, payload_bytes - len(stamp)))
    return "write", key, (stamp + body)[:payload_bytes]


def generate_jobs(*, tenants: int, per_tenant: int, rate_ops_s: float,
                  seed: int, n_keys: int, payload_bytes: int,
                  read_ratio: float,
                  curve: DiurnalCurve | None = None) -> list[Job]:
    """The merged open-loop schedule of every tenant's arrival stream.

    Each tenant gets its own seeded Poisson (or diurnal) process at
    ``rate_ops_s``; streams are merged by ``(arrive_ns, tenant, index)``
    so simultaneous arrivals have one defined global order.
    """
    jobs: list[Job] = []
    for tenant in range(tenants):
        rng = random.Random(seed * 7_919 + tenant)
        if curve is not None:
            times = diurnal_arrivals(curve, per_tenant, rng)
        else:
            times = poisson_arrivals(rate_ops_s, per_tenant, rng)
        for index, arrive_ns in enumerate(times):
            kind, key, payload = op_for(
                tenant, index, seed=seed, n_keys=n_keys,
                payload_bytes=payload_bytes, read_ratio=read_ratio)
            jobs.append(Job(tenant=tenant, index=index,
                            arrive_ns=arrive_ns, kind=kind, key=key,
                            payload=payload))
    jobs.sort(key=lambda j: (j.arrive_ns, j.tenant, j.index))
    return jobs
