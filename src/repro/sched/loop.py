"""Deterministic discrete-event loop with coroutine workers.

The analytic :class:`~repro.sim.workers.WorkerSim` scales one worker's
trace by closed-form stretch factors — it cannot express queueing, tail
latency, or overload.  This module replaces that with the standard
discrete-event structure real NVMe stacks have (submit, wait, complete):

* :class:`EventLoop` — a heap of ``(time_ns, seq, ...)`` entries on its
  own virtual timeline.  ``seq`` is a monotone sequence number assigned
  at scheduling time, so simultaneous events fire in a defined order and
  two runs of the same seed replay the exact same interleaving.
* :class:`SimWorker` protocol — a worker is a plain generator that
  yields *commands* instead of blocking:

  - :class:`Delay` — resume after a fixed number of simulated ns
    (CPU/memory work that runs in parallel with other workers);
  - :class:`Io` — occupy a :class:`Resource` (a device submission
    queue) for a service demand; the loop enqueues the request FIFO and
    resumes the worker at its *completion* time, exactly like an
    ``io_submit``/``io_getevents`` ticket pair on the
    :class:`~repro.io.IoScheduler`;
  - :class:`Take` — wait for the next item of a :class:`JobQueue`
    (dispatch); the yield expression evaluates to the item.

Nothing here reads a wall clock or draws randomness: the loop's time is
advanced only by scheduled events, and every queue is FIFO, so the whole
simulation is a pure function of (code, arrival schedule, seeds).
"""

from __future__ import annotations

import heapq
from typing import Generator, Iterable

#: A worker coroutine: yields Delay/Io/Take commands, receives the
#: Take'd item (or None) back from the loop at each resumption.
SimWorker = Generator[object, object, None]


class Delay:
    """Resume the yielding worker after ``ns`` simulated nanoseconds."""

    __slots__ = ("ns",)

    def __init__(self, ns: float) -> None:
        if ns < 0:
            raise ValueError(f"cannot delay a negative time ({ns} ns)")
        self.ns = ns


class Io:
    """Occupy ``resource`` for ``demand_ns`` of FIFO-serialized service.

    The request joins the resource's submission queue at yield time and
    the worker resumes when its service completes — queueing wait is
    whatever the backlog ahead of it implies, never an analytic factor.
    """

    __slots__ = ("resource", "demand_ns")

    def __init__(self, resource: "Resource", demand_ns: float) -> None:
        if demand_ns < 0:
            raise ValueError(f"negative service demand ({demand_ns} ns)")
        self.resource = resource
        self.demand_ns = demand_ns


class Take:
    """Wait for (and consume) the next item of a :class:`JobQueue`."""

    __slots__ = ("queue",)

    def __init__(self, queue: "JobQueue") -> None:
        self.queue = queue


class Resource:
    """A FIFO server (one device submission queue) on the loop timeline.

    ``busy_until_ns`` is when the last queued request completes; a new
    request starts at ``max(now, busy_until_ns)`` — the discrete-event
    equivalent of queue depth.  ``waited_ns``/``served`` feed the
    wait-time observability the analytic model could not produce.
    """

    __slots__ = ("name", "busy_until_ns", "served", "busy_ns", "waited_ns")

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy_until_ns = 0
        self.served = 0
        self.busy_ns = 0.0
        self.waited_ns = 0.0

    def admit(self, now_ns: int, demand_ns: float) -> int:
        """Queue one request; returns its completion time."""
        start_ns = max(now_ns, self.busy_until_ns)
        self.waited_ns += start_ns - now_ns
        self.busy_until_ns = start_ns + int(demand_ns)
        self.busy_ns += demand_ns
        self.served += 1
        return self.busy_until_ns

    def depth_at(self, now_ns: int) -> float:
        """Outstanding service time ahead of a request arriving now."""
        return max(0, self.busy_until_ns - now_ns)


class JobQueue:
    """FIFO hand-off between producers (arrivals) and worker coroutines."""

    __slots__ = ("_items", "_waiters")

    def __init__(self) -> None:
        self._items: list = []
        self._waiters: list[SimWorker] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def idle_workers(self) -> int:
        return len(self._waiters)


class EventLoop:
    """Heap-ordered virtual timeline driving :data:`SimWorker` coroutines."""

    def __init__(self) -> None:
        self.now_ns = 0
        self._seq = 0
        #: Heap entries: (time_ns, seq, kind, payload).  ``kind`` is
        #: "resume" (payload: worker, value) or "call" (payload: fn).
        self._heap: list[tuple] = []
        self.events_fired = 0

    # -- scheduling ----------------------------------------------------------

    def _push(self, t_ns: int, kind: str, payload) -> None:
        if t_ns < self.now_ns:
            raise ValueError(
                f"cannot schedule into the past ({t_ns} < {self.now_ns})")
        self._seq += 1
        heapq.heappush(self._heap, (t_ns, self._seq, kind, payload))

    def call_at(self, t_ns: int, fn) -> None:
        """Run ``fn()`` at absolute virtual time ``t_ns``."""
        self._push(t_ns, "call", fn)

    def spawn(self, worker: SimWorker) -> None:
        """Start a worker coroutine at the current virtual time."""
        self._push(self.now_ns, "resume", (worker, None))

    # -- queue plumbing ------------------------------------------------------

    def put(self, queue: JobQueue, item) -> None:
        """Deliver ``item``: wake the longest-idle worker, else buffer."""
        if queue._waiters:
            worker = queue._waiters.pop(0)
            self._push(self.now_ns, "resume", (worker, item))
        else:
            queue._items.append(item)

    # -- execution -----------------------------------------------------------

    def _step(self, worker: SimWorker, value) -> None:
        """Resume ``worker`` with ``value`` and act on its next command."""
        try:
            command = worker.send(value)
        except StopIteration:
            return
        if isinstance(command, Delay):
            self._push(self.now_ns + int(command.ns), "resume",
                       (worker, None))
        elif isinstance(command, Io):
            done_ns = command.resource.admit(self.now_ns, command.demand_ns)
            self._push(done_ns, "resume", (worker, None))
        elif isinstance(command, Take):
            queue = command.queue
            if queue._items:
                item = queue._items.pop(0)
                self._push(self.now_ns, "resume", (worker, item))
            else:
                queue._waiters.append(worker)
        else:
            raise TypeError(f"worker yielded {command!r}; expected "
                            f"Delay, Io, or Take")

    def run(self, until_ns: int | None = None,
            max_events: int = 10_000_000) -> None:
        """Fire events in (time, seq) order until the heap drains.

        ``until_ns`` stops the loop (inclusive) once every event at or
        before that time has fired; later events stay queued.
        ``max_events`` bounds runaway workloads deterministically.
        """
        while self._heap:
            t_ns = self._heap[0][0]
            if until_ns is not None and t_ns > until_ns:
                break
            t_ns, _, kind, payload = heapq.heappop(self._heap)
            self.now_ns = t_ns
            self.events_fired += 1
            if self.events_fired > max_events:
                raise RuntimeError(
                    f"event budget exhausted ({max_events} events)")
            if kind == "call":
                payload()
            else:
                worker, value = payload
                self._step(worker, value)

    def drain_workers(self, workers: Iterable[SimWorker]) -> None:
        """Close still-parked workers (loop shutdown) without firing them."""
        for worker in workers:
            worker.close()
