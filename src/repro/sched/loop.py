"""Deterministic discrete-event loop with coroutine workers.

The analytic :class:`~repro.sim.workers.WorkerSim` scales one worker's
trace by closed-form stretch factors — it cannot express queueing, tail
latency, or overload.  This module replaces that with the standard
discrete-event structure real NVMe stacks have (submit, wait, complete):

* :class:`EventLoop` — a heap of ``(time_ns, prio, seq, ...)`` entries
  on its own virtual timeline.  ``seq`` is a monotone sequence number
  assigned at scheduling time, so simultaneous events fire in a defined
  order and two runs of the same seed replay the exact same
  interleaving.  The tie-break among *simultaneous* events is a
  pluggable policy (:class:`TieBreak`): the default keeps the monotone
  ``prio = 0`` (pure scheduling order), while :class:`SeededTieBreak`
  draws deterministic priorities from a seeded generator — the knob the
  schedule-space explorer (``python -m repro race``) turns to visit
  alternative interleavings without losing replayability.
* :class:`SimWorker` protocol — a worker is a plain generator that
  yields *commands* instead of blocking:

  - :class:`Delay` — resume after a fixed number of simulated ns
    (CPU/memory work that runs in parallel with other workers);
  - :class:`Io` — occupy a :class:`Resource` (a device submission
    queue) for a service demand; the loop enqueues the request FIFO and
    resumes the worker at its *completion* time, exactly like an
    ``io_submit``/``io_getevents`` ticket pair on the
    :class:`~repro.io.IoScheduler`;
  - :class:`Take` — wait for the next item of a :class:`JobQueue`
    (dispatch); the yield expression evaluates to the item;
  - :class:`Acquire` / :class:`Release` — hold a :class:`Resource` as a
    mutual-exclusion lock (FIFO waiters).  Both resume at the current
    virtual time, so an uncontended critical section costs no simulated
    time — it exists to *order* accesses to shared state, and to give
    the happens-before race detector (:mod:`repro.analysis.race`) its
    release/acquire edges.

Nothing here reads a wall clock or draws randomness the caller did not
seed: the loop's time is advanced only by scheduled events, and every
queue is FIFO, so the whole simulation is a pure function of
(code, arrival schedule, seeds, tie-break policy).

Happens-before instrumentation follows the nullable-hook pattern of
``model.obs`` / ``model.san``: when ``loop.race`` is ``None`` — the
default — every hook site pays one attribute check and nothing else.
When a :class:`~repro.analysis.race.RaceDetector` is attached, each
scheduled event carries a vector-clock snapshot of its scheduling
context (event dispatch is an HB edge), and queue hand-offs, lock
transfers, and resource admissions report their edges.
"""

from __future__ import annotations

import heapq
import random
from typing import Generator, Iterable

#: A worker coroutine: yields Delay/Io/Take commands, receives the
#: Take'd item (or None) back from the loop at each resumption.
SimWorker = Generator[object, object, None]


class Delay:
    """Resume the yielding worker after ``ns`` simulated nanoseconds."""

    __slots__ = ("ns",)

    def __init__(self, ns: float) -> None:
        if ns < 0:
            raise ValueError(f"cannot delay a negative time ({ns} ns)")
        self.ns = ns


class Io:
    """Occupy ``resource`` for ``demand_ns`` of FIFO-serialized service.

    The request joins the resource's submission queue at yield time and
    the worker resumes when its service completes — queueing wait is
    whatever the backlog ahead of it implies, never an analytic factor.
    """

    __slots__ = ("resource", "demand_ns")

    def __init__(self, resource: "Resource", demand_ns: float) -> None:
        if demand_ns < 0:
            raise ValueError(f"negative service demand ({demand_ns} ns)")
        self.resource = resource
        self.demand_ns = demand_ns


class Take:
    """Wait for (and consume) the next item of a :class:`JobQueue`."""

    __slots__ = ("queue",)

    def __init__(self, queue: "JobQueue") -> None:
        self.queue = queue


class Acquire:
    """Hold ``resource`` as a lock; blocks (FIFO) while someone holds it.

    Granting costs no simulated time: the command resumes at the current
    virtual timestamp.  Its purpose is ordering — engine state mutated
    between ``Acquire`` and ``Release`` is serialized across workers,
    which is exactly the happens-before edge the race detector checks
    for.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        self.resource = resource


class Release:
    """Release a lock taken with :class:`Acquire`; wakes waiters FIFO."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        self.resource = resource


class TieBreak:
    """Tie-break policy for simultaneous events: monotone schedule order.

    ``priority`` is consulted once per scheduled event; the heap orders
    by ``(time, priority, seq)``, so returning a constant preserves the
    loop's classic FIFO tie-break.
    """

    name = "fifo"

    def priority(self, t_ns: int, seq: int) -> int:
        return 0


class SeededTieBreak(TieBreak):
    """Deterministic perturbation of same-time event order.

    Priorities are drawn from a seeded generator in scheduling order, so
    one seed always replays one interleaving — the schedule-space
    explorer sweeps seeds to visit many.  Events at *different* times
    are never reordered; only heap ties move.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"seeded[{self.seed}]"

    def priority(self, t_ns: int, seq: int) -> int:
        return self._rng.randrange(1 << 30)


class Resource:
    """A FIFO server (one device submission queue) on the loop timeline.

    ``busy_until_ns`` is when the last queued request completes; a new
    request starts at ``max(now, busy_until_ns)`` — the discrete-event
    equivalent of queue depth.  ``waited_ns``/``served`` feed the
    wait-time observability the analytic model could not produce.

    A resource doubles as a mutual-exclusion lock for
    :class:`Acquire`/:class:`Release`: ``holder`` is the worker inside
    the critical section and ``lock_waiters`` park FIFO.  ``hb_clock``
    is the race detector's release clock (``None`` until one attaches).
    """

    __slots__ = ("name", "busy_until_ns", "served", "busy_ns", "waited_ns",
                 "holder", "lock_waiters", "lock_grants", "hb_clock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy_until_ns = 0
        self.served = 0
        self.busy_ns = 0.0
        self.waited_ns = 0.0
        self.holder: SimWorker | None = None
        self.lock_waiters: list[SimWorker] = []
        self.lock_grants = 0
        self.hb_clock: dict | None = None

    def admit(self, now_ns: int, demand_ns: float) -> int:
        """Queue one request; returns its completion time."""
        start_ns = max(now_ns, self.busy_until_ns)
        self.waited_ns += start_ns - now_ns
        self.busy_until_ns = start_ns + int(demand_ns)
        self.busy_ns += demand_ns
        self.served += 1
        return self.busy_until_ns

    def depth_at(self, now_ns: int) -> float:
        """Outstanding service time ahead of a request arriving now."""
        return max(0, self.busy_until_ns - now_ns)


class JobQueue:
    """FIFO hand-off between producers (arrivals) and worker coroutines."""

    __slots__ = ("_items", "_waiters", "_hb_items")

    def __init__(self) -> None:
        self._items: list = []
        self._waiters: list[SimWorker] = []
        #: Race-detector clocks parallel to ``_items`` (empty when no
        #: detector is attached): a buffered item carries its producer's
        #: vector clock until a worker takes it.
        self._hb_items: list = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def idle_workers(self) -> int:
        return len(self._waiters)


class EventLoop:
    """Heap-ordered virtual timeline driving :data:`SimWorker` coroutines."""

    def __init__(self, tiebreak: TieBreak | None = None) -> None:
        self.now_ns = 0
        self._seq = 0
        #: Heap entries: (time_ns, prio, seq, kind, payload, hb).
        #: ``kind`` is "resume" (payload: worker, value) or "call"
        #: (payload: fn); ``hb`` is the scheduling context's vector
        #: clock when a race detector is attached, else ``None``.
        self._heap: list[tuple] = []
        self.events_fired = 0
        #: Tie-break policy for simultaneous events (default: FIFO).
        self.tiebreak = tiebreak or TieBreak()
        #: Optional :class:`~repro.analysis.race.RaceDetector` (same
        #: nullable-hook pattern as ``model.obs``/``model.san``): when
        #: set, every scheduled event carries a happens-before snapshot
        #: and queue/lock hand-offs report synchronization edges.
        #: Attach with :func:`repro.analysis.attach_race_detector`.
        self.race = None

    # -- scheduling ----------------------------------------------------------

    def _push(self, t_ns: int, kind: str, payload) -> None:
        if t_ns < self.now_ns:
            raise ValueError(
                f"cannot schedule into the past ({t_ns} < {self.now_ns})")
        self._seq += 1
        hb = None if self.race is None else self.race.snapshot()
        heapq.heappush(self._heap, (
            t_ns, self.tiebreak.priority(t_ns, self._seq), self._seq,
            kind, payload, hb))

    def call_at(self, t_ns: int, fn) -> None:
        """Run ``fn()`` at absolute virtual time ``t_ns``."""
        self._push(t_ns, "call", fn)

    def spawn(self, worker: SimWorker) -> None:
        """Start a worker coroutine at the current virtual time."""
        self._push(self.now_ns, "resume", (worker, None))

    # -- queue plumbing ------------------------------------------------------

    def put(self, queue: JobQueue, item) -> None:
        """Deliver ``item``: wake the longest-idle worker, else buffer.

        Both paths are happens-before edges from the producer to the
        consumer: the direct hand-off rides the resume event's snapshot,
        a buffered item parks the producer's clock alongside it.
        """
        if queue._waiters:
            worker = queue._waiters.pop(0)
            self._push(self.now_ns, "resume", (worker, item))
        else:
            if self.race is not None:
                queue._hb_items.append(self.race.snapshot())
            queue._items.append(item)

    # -- execution -----------------------------------------------------------

    def _step(self, worker: SimWorker, value) -> None:
        """Resume ``worker`` with ``value`` and act on its next command."""
        try:
            command = worker.send(value)
        except StopIteration:
            return
        if isinstance(command, Delay):
            self._push(self.now_ns + int(command.ns), "resume",
                       (worker, None))
        elif isinstance(command, Io):
            if self.race is not None:
                # FIFO service chains submissions: this completion will
                # observe every earlier submitter's state at submit time.
                self.race.on_resource_admit(command.resource)
            done_ns = command.resource.admit(self.now_ns, command.demand_ns)
            self._push(done_ns, "resume", (worker, None))
        elif isinstance(command, Take):
            queue = command.queue
            if queue._items:
                item = queue._items.pop(0)
                if self.race is not None and queue._hb_items:
                    self.race.on_queue_take(queue._hb_items.pop(0))
                self._push(self.now_ns, "resume", (worker, item))
            else:
                queue._waiters.append(worker)
        elif isinstance(command, Acquire):
            resource = command.resource
            if resource.holder is None:
                resource.holder = worker
                resource.lock_grants += 1
                if self.race is not None:
                    self.race.on_lock_acquire(resource)
                self._push(self.now_ns, "resume", (worker, None))
            else:
                resource.lock_waiters.append(worker)
        elif isinstance(command, Release):
            resource = command.resource
            if resource.holder is not worker:
                raise RuntimeError(
                    f"release of {resource.name} by a worker that does "
                    f"not hold it")
            if self.race is not None:
                self.race.on_lock_release(resource)
            if resource.lock_waiters:
                next_holder = resource.lock_waiters.pop(0)
                resource.holder = next_holder
                resource.lock_grants += 1
                if self.race is not None:
                    self.race.on_lock_acquire(resource, next_holder)
                self._push(self.now_ns, "resume", (next_holder, None))
            else:
                resource.holder = None
            self._push(self.now_ns, "resume", (worker, None))
        else:
            raise TypeError(f"worker yielded {command!r}; expected "
                            f"Delay, Io, Take, Acquire, or Release")

    def run(self, until_ns: int | None = None,
            max_events: int = 10_000_000) -> None:
        """Fire events in (time, seq) order until the heap drains.

        ``until_ns`` stops the loop (inclusive) once every event at or
        before that time has fired; later events stay queued.
        ``max_events`` bounds runaway workloads deterministically.
        """
        while self._heap:
            t_ns = self._heap[0][0]
            if until_ns is not None and t_ns > until_ns:
                break
            t_ns, _, _, kind, payload, hb = heapq.heappop(self._heap)
            self.now_ns = t_ns
            self.events_fired += 1
            if self.events_fired > max_events:
                raise RuntimeError(
                    f"event budget exhausted ({max_events} events)")
            if self.race is not None:
                self.race.on_fire(hb, kind, payload)
            if kind == "call":
                payload()
            else:
                worker, value = payload
                self._step(worker, value)
        if self.race is not None and not self._heap:
            # The fully drained loop is a synchronization point:
            # everything that ran happens-before whatever the caller
            # does next (e.g. the explorer's post-run digest reads).
            self.race.on_quiesce()

    def drain_workers(self, workers: Iterable[SimWorker]) -> None:
        """Close still-parked workers (loop shutdown) without firing them."""
        for worker in workers:
            worker.close()
