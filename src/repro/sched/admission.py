"""Per-tenant admission control: token buckets with shed/queue policies.

Without admission control an open-loop overload grows the dispatch queue
without bound and every op's latency with it — throughput saturates at
capacity while p999 diverges.  A token bucket per tenant turns that
fiction into a *policy decision*:

* ``shed`` — an op arriving to an empty bucket is rejected on the spot
  (counted, never executed).  Admitted ops see a bounded queue, so the
  tail stays bounded; the price is an exact, observable shed count
  instead of silently impossible latency.
* ``queue`` — an op arriving to an empty bucket is *held* until its
  token accrues, then dispatched in arrival order.  Nothing is lost,
  but the op pays the wait: same bytes, different latency.

Both policies consume tokens identically, and op content is a pure
function of ``(tenant, index)`` (:func:`repro.sched.arrivals.op_for`),
so the two runs of the same schedule are byte-comparable: every op
admitted under both policies produces identical outcomes.

Token state advances on the *event-loop* virtual clock — no wall time —
and all arithmetic is plain float accumulation in arrival order, so
admission decisions are deterministic per (schedule, quota config).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Admission outcomes.
ADMIT = "admit"
SHED = "shed"
QUEUE = "queue"

#: Supported policies.
POLICIES = ("shed", "queue")


class TokenBucket:
    """A classic token bucket on virtual time.

    ``rate_tokens_s`` tokens accrue per simulated second up to
    ``burst`` capacity; one op costs one token.  A zero-rate,
    zero-burst bucket is a valid configuration meaning "no quota": it
    never grants and :meth:`next_grant_ns` is ``inf``.
    """

    __slots__ = ("rate_tokens_s", "burst", "tokens", "_last_ns")

    def __init__(self, rate_tokens_s: float, burst: float,
                 *, start_full: bool = True) -> None:
        if rate_tokens_s < 0 or burst < 0:
            raise ValueError("rate and burst must be non-negative")
        self.rate_tokens_s = rate_tokens_s
        self.burst = burst
        self.tokens = burst if start_full else 0.0
        self._last_ns = 0

    def _refill(self, now_ns: int) -> None:
        if now_ns > self._last_ns:
            self.tokens = min(
                self.burst,
                self.tokens + self.rate_tokens_s
                * (now_ns - self._last_ns) / 1e9)
            self._last_ns = now_ns

    def try_take(self, now_ns: int) -> bool:
        """Consume one token if available at ``now_ns``."""
        self._refill(now_ns)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def next_grant_ns(self, now_ns: int) -> float:
        """Earliest virtual time one token will be available.

        ``inf`` for a zero-rate bucket — the caller must shed, not wait
        forever.  Does not consume the token.  Accrual is measured from
        the refill frontier ``_last_ns``, which a prior reservation may
        have advanced past ``now_ns`` — two queued ops of one tenant
        must not double-spend the same future token.
        """
        self._refill(now_ns)
        if self.tokens >= 1.0:
            return float(now_ns)
        if self.rate_tokens_s <= 0:
            return math.inf
        deficit = 1.0 - self.tokens
        return self._last_ns + deficit * 1e9 / self.rate_tokens_s

    def take_at(self, grant_ns: int) -> None:
        """Consume the token a queued op reserved for ``grant_ns``."""
        self._refill(grant_ns)
        # Refill floors at the reserved grant instant; guard rounding.
        self.tokens = max(0.0, self.tokens - 1.0)


@dataclass
class AdmissionStats:
    """Exact per-tenant accounting of every admission decision."""

    offered: dict[int, int] = field(default_factory=dict)
    admitted: dict[int, int] = field(default_factory=dict)
    shed: dict[int, int] = field(default_factory=dict)
    queued: dict[int, int] = field(default_factory=dict)
    queued_wait_ns: float = 0.0

    def _bump(self, table: dict[int, int], tenant: int) -> None:
        table[tenant] = table.get(tenant, 0) + 1

    def total(self, table: dict[int, int]) -> int:
        return sum(table.values())


class AdmissionController:
    """Routes each arrival to admit / shed / queue-until-token.

    ``quotas`` maps tenant id to a :class:`TokenBucket`; tenants without
    an entry share ``default_quota`` parameters (each tenant still gets
    its *own* bucket, lazily).  ``policy`` is ``"shed"`` or ``"queue"``.
    """

    def __init__(self, *, policy: str = "shed",
                 rate_tokens_s: float = 0.0, burst: float = 0.0,
                 quotas: dict[int, TokenBucket] | None = None) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown admission policy {policy!r}")
        self.policy = policy
        self._default = (rate_tokens_s, burst)
        self.buckets: dict[int, TokenBucket] = dict(quotas or {})
        self.stats = AdmissionStats()
        #: Happens-before detector hook (nullable, same pattern as
        #: ``model.san``).  Token state is mutated by arrival callbacks;
        #: any caller outside the loop's dispatcher serialization would
        #: show up as a race on the tenant's bucket.
        self.race = None

    def bucket_for(self, tenant: int) -> TokenBucket:
        bucket = self.buckets.get(tenant)
        if bucket is None:
            rate, burst = self._default
            bucket = self.buckets[tenant] = TokenBucket(rate, burst)
        return bucket

    def decide(self, tenant: int, now_ns: int) -> tuple[str, int]:
        """One arrival's fate: ``(ADMIT|SHED|QUEUE, dispatch_ns)``.

        ``dispatch_ns`` is ``now_ns`` for admit/shed and the reserved
        token-grant time for queue.  A queue decision consumes the
        future token immediately (reservations are arrival-ordered), so
        two queued ops of one tenant never race for the same token.
        """
        stats = self.stats
        stats._bump(stats.offered, tenant)
        if self.race is not None:
            self.race.on_write(("bucket", tenant))
        bucket = self.bucket_for(tenant)
        if bucket.try_take(now_ns):
            stats._bump(stats.admitted, tenant)
            return ADMIT, now_ns
        if self.policy == "queue":
            grant_ns = bucket.next_grant_ns(now_ns)
            if not math.isinf(grant_ns):
                grant = int(math.ceil(grant_ns))
                bucket.take_at(grant)
                stats._bump(stats.admitted, tenant)
                stats._bump(stats.queued, tenant)
                stats.queued_wait_ns += grant - now_ns
                return QUEUE, grant
        stats._bump(stats.shed, tenant)
        return SHED, now_ns
