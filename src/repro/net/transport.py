"""Transport cost profiles.

Round-trip latencies and per-byte costs follow published measurements
for the four transports the paper's Related Work discusses (Fent et al.
[89] compare exactly these):

* **TCP over Ethernet** — kernel stack both sides, interrupt + copy:
  ~30 µs round trip, ~10 GbE wire (0.8 ns/B effective).
* **Unix-domain socket** — same-machine kernel path: ~24 µs round trip
  (the figure the DBMS baselines pay in Fig. 5/6), memory-speed payload.
* **RDMA** — kernel bypass, one-sided verbs: ~3 µs round trip,
  ~100 Gb/s (0.08 ns/B), no CPU serialization on the passive side.
* **Shared memory** — a cache-coherent mailbox: ~0.6 µs round trip,
  payloads move at memcpy speed, and responses can be *views* (no wire
  copy at all — the network analogue of virtual-memory aliasing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cost import CostModel


@dataclass(frozen=True)
class TransportProfile:
    """Prices one request/response exchange."""

    name: str
    #: Fixed round-trip latency (request + response headers).
    roundtrip_ns: float
    #: Per-byte wire cost for payload movement.
    wire_ns_per_byte: float
    #: Per-byte CPU cost of (de)serializing payloads for the wire;
    #: zero-copy transports skip it.
    serialize_ns_per_byte: float
    #: Whether responses can reference shared memory instead of copying.
    zero_copy_responses: bool = False

    def charge_exchange(self, model: CostModel, request_bytes: int,
                        response_bytes: int) -> None:
        """Charge one full request/response on the caller's model."""
        model.cpu(self.roundtrip_ns)
        payload = request_bytes + response_bytes
        if payload:
            model.cpu(payload * self.wire_ns_per_byte)
            if self.serialize_ns_per_byte:
                model.memcpy(payload)  # staging copies into wire buffers
                model.cpu(payload * self.serialize_ns_per_byte)


TCP_ETHERNET = TransportProfile(
    name="tcp", roundtrip_ns=30_000.0, wire_ns_per_byte=0.8,
    serialize_ns_per_byte=0.45)

UNIX_SOCKET = TransportProfile(
    name="unix", roundtrip_ns=24_000.0, wire_ns_per_byte=0.10,
    serialize_ns_per_byte=0.45)

RDMA = TransportProfile(
    name="rdma", roundtrip_ns=3_000.0, wire_ns_per_byte=0.08,
    serialize_ns_per_byte=0.0, zero_copy_responses=True)

SHARED_MEMORY = TransportProfile(
    name="shm", roundtrip_ns=600.0, wire_ns_per_byte=0.0625,
    serialize_ns_per_byte=0.0, zero_copy_responses=True)
