"""Remote BLOB access over pluggable transports (Section VI, "Networks").

The paper identifies networking as the primary overhead of client/server
DBMSs (Section V-B) and names the remedies it plans to explore: avoiding
serialization work, RDMA, and shared memory, citing Fent et al.'s
unified-transport design [89].  This package implements that layer for
the engine:

* :class:`TransportProfile` — cost profiles for TCP/Ethernet,
  Unix-domain sockets, one-sided RDMA, and shared memory;
* :class:`BlobServer` / :class:`RemoteBlobStore` — a request/response
  protocol over any profile, with wire (de)serialization priced per
  byte;
* zero-serialization reads on shared-memory transports: like the
  engine's local aliasing path, the response hands the client a view
  instead of a wire copy;
* :class:`ShardedBlobServer` — scatter-gather front end fanning one
  request out to per-shard backends over per-shard transports, with
  per-shard partial-failure retry and makespan-priced latency;
* :class:`ReplicatedBlobServer` — the same front end over *replica
  groups*: each sub-batch quorum-commits inside its group (WAL
  shipping, failover and all), lost client sub-exchanges are retried
  per group, and ``any_replica`` reads rotate over group members with
  staleness accounting.

The ablation bench (``benchmarks/test_ablation_network.py``) shows the
paper's narrative end to end: TCP costs client/server engines their
standing; RDMA and shared memory recover most of the embedded
performance.
"""

from repro.net.transport import (
    RDMA,
    SHARED_MEMORY,
    TCP_ETHERNET,
    UNIX_SOCKET,
    TransportProfile,
)
from repro.net.remote import (
    BlobServer,
    RemoteBlobStore,
    ReplicatedBlobServer,
    ShardedBlobServer,
)

__all__ = [
    "TransportProfile",
    "TCP_ETHERNET",
    "UNIX_SOCKET",
    "RDMA",
    "SHARED_MEMORY",
    "BlobServer",
    "RemoteBlobStore",
    "ReplicatedBlobServer",
    "ShardedBlobServer",
]
