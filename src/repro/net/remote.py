"""Request/response BLOB protocol over a transport profile."""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import BlobDB
from repro.db.errors import (
    DatabaseError,
    KeyNotFoundError,
    RemoteProtocolError,
    TransientNetworkError,
)
from repro.net.transport import TransportProfile


@dataclass
class ServerStats:
    requests: int = 0
    bytes_in: int = 0
    bytes_out: int = 0


class BlobServer:
    """Executes protocol requests against an engine.

    Server-side work (statement handling, the engine operation itself)
    is charged on the engine's cost model; the synchronous RPC means
    client-observed latency = transport + server work, which the shared
    virtual clock captures naturally.
    """

    #: Fixed request dispatch cost (parsing the header, finding the op).
    _DISPATCH_NS = 900.0

    def __init__(self, db: BlobDB, table: str = "blobs") -> None:
        self.db = db
        self.table = table
        if table not in db.list_tables():
            db.create_table(table)
        self.stats = ServerStats()

    # Each handler returns the response payload size it ships back.
    # Malformed requests (wrong value kinds, non-byte keys) surface as
    # typed RemoteProtocolError, never a bare Python exception a client
    # cannot distinguish from a server bug.

    @staticmethod
    def _guard(op):
        try:
            return op()
        except DatabaseError:
            raise
        except (TypeError, ValueError, KeyError, AttributeError) as exc:
            raise RemoteProtocolError(f"malformed request: {exc}") from exc

    def handle_put(self, key: bytes, data: bytes) -> int:
        self._enter(self._guard(lambda: len(key) + len(data)))

        def run() -> None:
            with self.db.transaction() as txn:
                if self.db.exists(self.table, key):
                    self.db.delete_blob(txn, self.table, key)
                self.db.put_blob(txn, self.table, key, data)
        self._guard(run)
        return self._exit(16)

    def handle_get(self, key: bytes, zero_copy: bool = False) -> bytes:
        """Read a BLOB; ``zero_copy`` serves it from a shared view.

        On a zero-copy transport the server never copies the payload —
        it exposes the aliasing view's region and the *client* performs
        the single materializing copy, like the local read path.
        """
        self._enter(self._guard(lambda: len(key)))

        def run() -> bytes:
            if zero_copy:
                with self.db.read_blob_view(self.table, key) as view:
                    return view.contiguous()
            return self.db.read_blob(self.table, key)
        data = self._guard(run)
        self._exit(len(data))
        return data

    def handle_stat(self, key: bytes) -> int:
        self._enter(self._guard(lambda: len(key)))
        size = self._guard(
            lambda: self.db.get_state(self.table, key).size)
        self._exit(16)
        return size

    def handle_delete(self, key: bytes) -> None:
        self._enter(self._guard(lambda: len(key)))

        def run() -> None:
            with self.db.transaction() as txn:
                self.db.delete_blob(txn, self.table, key)
        self._guard(run)
        self._exit(16)

    def _enter(self, nbytes: int) -> None:
        self.db.model.cpu(self._DISPATCH_NS)
        self.stats.requests += 1
        self.stats.bytes_in += nbytes

    def _exit(self, nbytes: int) -> int:
        self.stats.bytes_out += nbytes
        return nbytes


class RemoteBlobStore:
    """Client stub: the engine's operations across a transport.

    With a zero-copy transport (RDMA, shared memory), GET responses are
    *views* — the payload is not serialized onto a wire, mirroring how
    the local engine avoids copies via aliasing.
    """

    def __init__(self, server: BlobServer, transport: TransportProfile,
                 fault_plan=None, retry=None) -> None:
        self.server = server
        self.transport = transport
        self.model = server.db.model  # shared clock: synchronous RPC
        #: Optional FaultPlan: each exchange may lose its request in
        #: flight (TransientNetworkError before the server sees it).
        self.fault_plan = fault_plan
        #: Optional RetryPolicy re-issuing lost exchanges with backoff.
        self.retry = retry

    @property
    def name(self) -> str:
        return f"our.{self.transport.name}"

    def _exchange(self, op, name: str = "rpc"):
        """One request/response exchange, with fault drawing and retry.

        A drawn network fault loses the request *in flight*: the server
        never executes the operation, so re-issuing it is always safe.
        Each attempt (including lost/retried ones) is one traced
        ``net.rpc`` round trip.
        """
        def attempt():
            obs = self.model.obs
            if obs is None:
                return self._attempt_body(op)
            obs.begin("net.rpc")
            try:
                return self._attempt_body(op)
            finally:
                obs.end(op=name, transport=self.transport.name)
                obs.count("net.roundtrips", op=name)
        if self.retry is not None:
            return self.retry.run(attempt)
        return attempt()

    def _attempt_body(self, op):
        if self.fault_plan is not None and \
                self.fault_plan.draw_network_fault():
            raise TransientNetworkError("request lost in flight")
        return op()

    def put(self, key: bytes, data: bytes) -> None:
        def op() -> None:
            self.server.handle_put(key, data)
            self.transport.charge_exchange(self.model,
                                           len(key) + len(data), 16)
        self._exchange(op, "put")

    def get(self, key: bytes) -> bytes:
        def op() -> bytes:
            zero_copy = self.transport.zero_copy_responses
            data = self.server.handle_get(key, zero_copy=zero_copy)
            wire_bytes = 0 if zero_copy else len(data)
            self.transport.charge_exchange(self.model, len(key), wire_bytes)
            if zero_copy:
                # The client materializes its own copy from the shared
                # region — exactly one memcpy, like the local path.
                self.model.memcpy(len(data))
            return data
        return self._exchange(op, "get")

    def stat(self, key: bytes) -> int:
        def op() -> int:
            size = self.server.handle_stat(key)
            self.transport.charge_exchange(self.model, len(key), 16)
            return size
        return self._exchange(op, "stat")

    def delete(self, key: bytes) -> None:
        def op() -> None:
            self.server.handle_delete(key)
            self.transport.charge_exchange(self.model, len(key), 16)
        self._exchange(op, "delete")

    def exists(self, key: bytes) -> bool:
        try:
            self.stat(key)
            return True
        except (KeyNotFoundError, DatabaseError):
            return False
