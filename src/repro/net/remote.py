"""Request/response BLOB protocol over a transport profile."""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import BlobDB
from repro.db.errors import (
    DatabaseError,
    KeyNotFoundError,
    RemoteProtocolError,
    TransientNetworkError,
)
from repro.net.transport import TransportProfile


@dataclass
class ServerStats:
    requests: int = 0
    bytes_in: int = 0
    bytes_out: int = 0


class BlobServer:
    """Executes protocol requests against an engine.

    Server-side work (statement handling, the engine operation itself)
    is charged on the engine's cost model; the synchronous RPC means
    client-observed latency = transport + server work, which the shared
    virtual clock captures naturally.
    """

    def __init__(self, db: BlobDB, table: str = "blobs") -> None:
        self.db = db
        self.table = table
        if table not in db.list_tables():
            db.create_table(table)
        self.stats = ServerStats()

    # Each handler returns the response payload size it ships back.
    # Malformed requests (wrong value kinds, non-byte keys) surface as
    # typed RemoteProtocolError, never a bare Python exception a client
    # cannot distinguish from a server bug.

    @staticmethod
    def _guard(op):
        try:
            return op()
        except DatabaseError:
            raise
        except (TypeError, ValueError, KeyError, AttributeError) as exc:
            raise RemoteProtocolError(f"malformed request: {exc}") from exc

    def handle_put(self, key: bytes, data: bytes) -> int:
        self._enter(self._guard(lambda: len(key) + len(data)))

        def run() -> None:
            with self.db.transaction() as txn:
                if self.db.exists(self.table, key):
                    self.db.delete_blob(txn, self.table, key)
                self.db.put_blob(txn, self.table, key, data)
        self._guard(run)
        return self._exit(16)

    def handle_get(self, key: bytes, zero_copy: bool = False) -> bytes:
        """Read a BLOB; ``zero_copy`` serves it from a shared view.

        On a zero-copy transport the server never copies the payload —
        it exposes the aliasing view's region and the *client* performs
        the single materializing copy, like the local read path.
        """
        self._enter(self._guard(lambda: len(key)))

        def run() -> bytes:
            if zero_copy:
                with self.db.read_blob_view(self.table, key) as view:
                    return view.contiguous()
            return self.db.read_blob(self.table, key)
        data = self._guard(run)
        self._exit(len(data))
        return data

    def handle_stat(self, key: bytes) -> int:
        self._enter(self._guard(lambda: len(key)))
        size = self._guard(
            lambda: self.db.get_state(self.table, key).size)
        self._exit(16)
        return size

    def handle_delete(self, key: bytes) -> None:
        self._enter(self._guard(lambda: len(key)))

        def run() -> None:
            with self.db.transaction() as txn:
                self.db.delete_blob(txn, self.table, key)
        self._guard(run)
        self._exit(16)

    def _enter(self, nbytes: int) -> None:
        # Request dispatch (header parse, op lookup) is priced by the
        # cost model like every other primitive (CostParams.rpc_dispatch_ns).
        self.db.model.rpc_dispatch()
        self.stats.requests += 1
        self.stats.bytes_in += nbytes

    def _exit(self, nbytes: int) -> int:
        self.stats.bytes_out += nbytes
        return nbytes


class RemoteBlobStore:
    """Client stub: the engine's operations across a transport.

    With a zero-copy transport (RDMA, shared memory), GET responses are
    *views* — the payload is not serialized onto a wire, mirroring how
    the local engine avoids copies via aliasing.
    """

    def __init__(self, server: BlobServer, transport: TransportProfile,
                 fault_plan=None, retry=None) -> None:
        self.server = server
        self.transport = transport
        self.model = server.db.model  # shared clock: synchronous RPC
        #: Optional FaultPlan: each exchange may lose its request in
        #: flight (TransientNetworkError before the server sees it).
        self.fault_plan = fault_plan
        #: Optional RetryPolicy re-issuing lost exchanges with backoff.
        self.retry = retry

    @property
    def name(self) -> str:
        return f"our.{self.transport.name}"

    def _exchange(self, op, name: str = "rpc"):
        """One request/response exchange, with fault drawing and retry.

        A drawn network fault loses the request *in flight*: the server
        never executes the operation, so re-issuing it is always safe.
        Each attempt (including lost/retried ones) is one traced
        ``net.rpc`` round trip.
        """
        def attempt():
            obs = self.model.obs
            if obs is None:
                return self._attempt_body(op)
            obs.begin("net.rpc")
            try:
                return self._attempt_body(op)
            finally:
                obs.end(op=name, transport=self.transport.name)
                obs.count("net.roundtrips", op=name)
        if self.retry is not None:
            return self.retry.run(attempt)
        return attempt()

    def _attempt_body(self, op):
        if self.fault_plan is not None and \
                self.fault_plan.draw_network_fault():
            raise TransientNetworkError("request lost in flight")
        return op()

    def put(self, key: bytes, data: bytes) -> None:
        def op() -> None:
            self.server.handle_put(key, data)
            self.transport.charge_exchange(self.model,
                                           len(key) + len(data), 16)
        self._exchange(op, "put")

    def get(self, key: bytes) -> bytes:
        def op() -> bytes:
            zero_copy = self.transport.zero_copy_responses
            data = self.server.handle_get(key, zero_copy=zero_copy)
            wire_bytes = 0 if zero_copy else len(data)
            self.transport.charge_exchange(self.model, len(key), wire_bytes)
            if zero_copy:
                # The client materializes its own copy from the shared
                # region — exactly one memcpy, like the local path.
                self.model.memcpy(len(data))
            return data
        return self._exchange(op, "get")

    def stat(self, key: bytes) -> int:
        def op() -> int:
            size = self.server.handle_stat(key)
            self.transport.charge_exchange(self.model, len(key), 16)
            return size
        return self._exchange(op, "stat")

    def delete(self, key: bytes) -> None:
        def op() -> None:
            self.server.handle_delete(key)
            self.transport.charge_exchange(self.model, len(key), 16)
        self._exchange(op, "delete")

    def exists(self, key: bytes) -> bool:
        try:
            self.stat(key)
            return True
        except (KeyNotFoundError, DatabaseError):
            return False


class ShardedBlobServer:
    """Scatter-gather protocol front end over per-shard backends.

    One client request fans out as one *batched* exchange per touched
    shard: each sub-batch rides its shard's
    :class:`~repro.net.transport.TransportProfile` and executes against
    that shard's :class:`BlobServer` on the shard's own clock.  The
    client-observed latency is the makespan over the shard exchanges
    plus the router's fan-out charge — network scatter-gather priced
    exactly like the local :class:`~repro.shard.sharded.ShardedBlobDB`.

    Partial failure is per shard: a drawn :class:`TransientNetworkError`
    loses one shard's sub-batch *in flight* (that backend never executes
    it) and the per-shard retry policy re-issues only that sub-batch —
    completed work on the other shards stands.  Re-issuing is safe
    because puts are upserts and a lost request was never executed.
    """

    def __init__(self, sdb, transports, fault_plan=None,
                 retry_attempts: int = 0,
                 retry_base_ns: float = 50_000.0) -> None:
        self.sdb = sdb
        self.router = sdb.router
        self.model = sdb.model  # router clock: what the client observes
        self.backends = [BlobServer(shard, table=sdb.table)
                         for shard in sdb.shards]
        if isinstance(transports, TransportProfile):
            transports = [transports] * len(self.backends)
        self.transports = list(transports)
        if len(self.transports) != len(self.backends):
            raise ValueError(
                f"need one transport per shard: got {len(self.transports)} "
                f"for {len(self.backends)} shards")
        #: Optional FaultPlan: each sub-batch exchange may lose its
        #: request in flight before the shard's backend sees it.
        self.fault_plan = fault_plan
        if retry_attempts > 0:
            from repro.storage.faults import RetryPolicy
            # One policy per shard, bound to that shard's model, so the
            # retry backoff is simulated inside the shard's sub-batch
            # time and therefore inside the makespan.
            self.retries = [RetryPolicy(b.db.model,
                                        attempts=retry_attempts,
                                        base_delay_ns=retry_base_ns)
                            for b in self.backends]
        else:
            self.retries = [None] * len(self.backends)

    @property
    def stats(self) -> ServerStats:
        """Aggregate request/byte accounting across every backend."""
        total = ServerStats()
        for backend in self.backends:
            total.requests += backend.stats.requests
            total.bytes_in += backend.stats.bytes_in
            total.bytes_out += backend.stats.bytes_out
        return total

    # -- scatter-gather plumbing ----------------------------------------

    def _attempt(self, shard_id: int, op):
        """One sub-batch exchange with loss drawing and per-shard retry."""
        def attempt():
            if self.fault_plan is not None and \
                    self.fault_plan.draw_network_fault():
                raise TransientNetworkError(
                    f"sub-batch to shard {shard_id} lost in flight")
            obs = self.backends[shard_id].db.model.obs
            if obs is None:
                return op()
            obs.begin("net.rpc")
            try:
                return op()
            finally:
                obs.end(op="shard_batch",
                        transport=self.transports[shard_id].name)
                obs.count("net.roundtrips", op="shard_batch")
        retry = self.retries[shard_id]
        if retry is not None:
            return retry.run(attempt)
        return attempt()

    def _gather(self, parts: dict, run_one) -> None:
        """Run one exchange per touched shard; advance by the makespan."""
        self.router.charge_fanout(len(parts))
        makespan = 0.0
        for shard_id in sorted(parts):
            model = self.backends[shard_id].db.model
            start_ns = model.clock.now_ns
            self._attempt(shard_id,
                          lambda: run_one(shard_id, parts[shard_id]))
            makespan = max(makespan, model.clock.now_ns - start_ns)
        self.model.clock.advance(makespan)

    # -- batched operations ----------------------------------------------

    def multiput(self, items: list[tuple[bytes, bytes]]) -> None:
        items = list(items)
        parts = self.router.partition([key for key, _ in items])

        def run(shard_id: int, sub) -> None:
            backend = self.backends[shard_id]
            request_bytes = 0
            for pos, key in sub:
                backend.handle_put(key, items[pos][1])
                request_bytes += len(key) + len(items[pos][1])
            self.transports[shard_id].charge_exchange(
                backend.db.model, request_bytes, 16 * len(sub))
        self._gather(parts, run)

    def multiget(self, keys: list[bytes]) -> list[bytes]:
        keys = list(keys)
        parts = self.router.partition(keys)
        results: list[bytes | None] = [None] * len(keys)

        def run(shard_id: int, sub) -> None:
            backend = self.backends[shard_id]
            transport = self.transports[shard_id]
            model = backend.db.model
            zero_copy = transport.zero_copy_responses
            wire_bytes = 0
            for pos, key in sub:
                data = backend.handle_get(key, zero_copy=zero_copy)
                results[pos] = data
                if zero_copy:
                    # Client materializes its copy from the shared view.
                    model.memcpy(len(data))
                else:
                    wire_bytes += len(data)
            transport.charge_exchange(
                model, sum(len(key) for _, key in sub), wire_bytes)
        self._gather(parts, run)
        return results  # type: ignore[return-value]

    # -- single-key operations (one-element sub-batches) -------------------

    def put(self, key: bytes, data: bytes) -> None:
        self.multiput([(key, data)])

    def get(self, key: bytes) -> bytes:
        return self.multiget([key])[0]

    def delete(self, key: bytes) -> None:
        parts = self.router.partition([key])

        def run(shard_id: int, sub) -> None:
            backend = self.backends[shard_id]
            for _, k in sub:
                backend.handle_delete(k)
            self.transports[shard_id].charge_exchange(
                backend.db.model, len(key), 16)
        self._gather(parts, run)

    def stat(self, key: bytes) -> int:
        parts = self.router.partition([key])
        out: list[int] = []

        def run(shard_id: int, sub) -> None:
            backend = self.backends[shard_id]
            for _, k in sub:
                out.append(backend.handle_stat(k))
            self.transports[shard_id].charge_exchange(
                backend.db.model, len(key), 16)
        self._gather(parts, run)
        return out[0]


class ReplicatedBlobServer:
    """Scatter-gather protocol front end over replica groups.

    The replicated sibling of :class:`ShardedBlobServer`: one client
    request fans out as one batched exchange per touched *group*, and
    each sub-batch executes against that group's primary — quorum
    commit, WAL shipping, and any failover included — on the group's
    own coordinator clock.  Client-observed latency is the makespan
    over the group exchanges plus the router's fan-out charge.

    Partial failure has two independent layers: a drawn
    :class:`TransientNetworkError` loses one group's *client*
    sub-exchange in flight (the group never executes it; the per-group
    retry re-issues only that sub-batch, completed groups stand), while
    lost WAL-ship exchanges *inside* a group are retried by that
    group's own per-link policies, invisibly to the client beyond the
    quorum makespan.  Re-issuing a lost client sub-batch is safe
    because puts are upserts and a lost request was never executed;
    a :class:`~repro.db.errors.QuorumLostError` is *not* retried here —
    it means the group accepted the request and could not acknowledge
    it, which the client must observe.
    """

    def __init__(self, rdb, transports, fault_plan=None,
                 retry_attempts: int = 0,
                 retry_base_ns: float = 50_000.0) -> None:
        self.rdb = rdb
        self.router = rdb.router
        self.model = rdb.model  # router clock: what the client observes
        self.groups = rdb.groups
        if isinstance(transports, TransportProfile):
            transports = [transports] * len(self.groups)
        self.transports = list(transports)
        if len(self.transports) != len(self.groups):
            raise ValueError(
                f"need one transport per group: got {len(self.transports)} "
                f"for {len(self.groups)} groups")
        self.fault_plan = fault_plan
        self.stats = ServerStats()
        if retry_attempts > 0:
            from repro.storage.faults import RetryPolicy
            # Bound to each group's coordinator model so retry backoff
            # lands inside that group's sub-batch time (the makespan).
            self.retries = [RetryPolicy(g.model, attempts=retry_attempts,
                                        base_delay_ns=retry_base_ns)
                            for g in self.groups]
        else:
            self.retries = [None] * len(self.groups)

    # -- scatter-gather plumbing ----------------------------------------

    def _attempt(self, group_id: int, op):
        """One sub-batch exchange with loss drawing and per-group retry."""
        def attempt():
            if self.fault_plan is not None and \
                    self.fault_plan.draw_network_fault():
                raise TransientNetworkError(
                    f"sub-batch to group {group_id} lost in flight")
            group = self.groups[group_id]
            group.model.rpc_dispatch()
            obs = group.model.obs
            if obs is None:
                return op()
            obs.begin("net.rpc")
            try:
                return op()
            finally:
                obs.end(op="group_batch",
                        transport=self.transports[group_id].name)
                obs.count("net.roundtrips", op="group_batch")
        retry = self.retries[group_id]
        if retry is not None:
            return retry.run(attempt)
        return attempt()

    def _gather(self, parts: dict, run_one) -> None:
        """Run one exchange per touched group; advance by the makespan."""
        self.router.charge_fanout(len(parts))
        makespan = 0.0
        for group_id in sorted(parts):
            model = self.groups[group_id].model
            start_ns = model.clock.now_ns
            self._attempt(group_id,
                          lambda: run_one(group_id, parts[group_id]))
            makespan = max(makespan, model.clock.now_ns - start_ns)
            self.stats.requests += 1
        self.model.clock.advance(makespan)

    # -- batched operations ----------------------------------------------

    def multiput(self, items: list[tuple[bytes, bytes]]) -> None:
        """Quorum-commit a batch: each group acks its own sub-batch."""
        items = list(items)
        parts = self.router.partition([key for key, _ in items])

        def run(group_id: int, sub) -> None:
            group = self.groups[group_id]
            request_bytes = 0
            for pos, key in sub:
                group.put(key, items[pos][1])
                request_bytes += len(key) + len(items[pos][1])
            self.transports[group_id].charge_exchange(
                group.model, request_bytes, 16 * len(sub))
            self.stats.bytes_in += request_bytes
            self.stats.bytes_out += 16 * len(sub)
        self._gather(parts, run)

    def multiget(self, keys: list[bytes],
                 any_replica: bool = False) -> list[bytes]:
        """Read a batch; ``any_replica`` rotates over each group's
        members (staleness-accounted) instead of pinning the primary."""
        keys = list(keys)
        parts = self.router.partition(keys)
        results: list[bytes | None] = [None] * len(keys)

        def run(group_id: int, sub) -> None:
            group = self.groups[group_id]
            wire_bytes = 0
            for pos, key in sub:
                data = group.read_any(key) if any_replica \
                    else group.get(key)
                results[pos] = data
                wire_bytes += len(data)
            self.transports[group_id].charge_exchange(
                group.model, sum(len(key) for _, key in sub), wire_bytes)
            self.stats.bytes_in += sum(len(key) for _, key in sub)
            self.stats.bytes_out += wire_bytes
        self._gather(parts, run)
        return results  # type: ignore[return-value]

    # -- single-key operations (one-element sub-batches) -------------------

    def put(self, key: bytes, data: bytes) -> None:
        self.multiput([(key, data)])

    def get(self, key: bytes) -> bytes:
        return self.multiget([key])[0]

    def read_any(self, key: bytes) -> bytes:
        return self.multiget([key], any_replica=True)[0]

    def delete(self, key: bytes) -> None:
        parts = self.router.partition([key])

        def run(group_id: int, sub) -> None:
            group = self.groups[group_id]
            for _, k in sub:
                group.delete(k)
            self.transports[group_id].charge_exchange(
                group.model, len(key), 16)
        self._gather(parts, run)
