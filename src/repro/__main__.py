"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo``     — a two-minute cross-system comparison (throughput and
  write amplification for a chosen payload size) on the simulated
  testbed;
* ``survey``   — the measured Table I design survey;
* ``figures``  — run the full paper-reproduction benchmark suite
  (delegates to pytest; needs the repository checkout);
* ``faultsweep`` — seeded fault-injection sweep: hundreds of
  crash/recover schedules under torn writes, bit flips, and transient
  I/O errors, with a reproducibility digest;
* ``info``     — version and default-configuration summary.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.bench.adapters import ALL_SYSTEMS, make_store
    from repro.bench.harness import human_throughput, print_table, run_ycsb
    from repro.workloads.ycsb import YcsbConfig

    payload = args.payload_kb * 1024
    config = YcsbConfig(n_records=max(4, args.records), payload=payload,
                        read_ratio=0.5)
    systems = ALL_SYSTEMS if args.all else (
        "our", "our.physlog", "ext4.ordered", "ext4.journal", "sqlite",
        "postgresql")
    rows = []
    for name in systems:
        store = make_store(name, capacity_bytes=1 << 30,
                           buffer_bytes=256 << 20)
        result = run_ycsb(store, config, n_ops=args.ops)
        written = store.device.stats.bytes_written
        rows.append([name, human_throughput(result.throughput_ops_s),
                     f"{result.per_op_us:.1f}",
                     f"{written / (config.n_records + args.ops / 2) / payload:.2f}x"])
    print_table(
        f"Demo: YCSB {args.payload_kb} KB payload, 50% reads "
        f"({args.ops} ops, simulated time)",
        ["system", "txn/s", "us/op", "~bytes written/payload"], rows)
    return 0


def _cmd_survey(args: argparse.Namespace) -> int:
    from repro.bench.adapters import make_store
    from repro.bench.harness import print_table

    payload = 256 * 1024
    rows = []
    for name in ("our", "ext4.ordered", "ext4.journal", "postgresql",
                 "sqlite", "mysql"):
        store = make_store(name, capacity_bytes=1 << 30)
        before = store.device.stats.snapshot()
        store.put(b"probe", b"\x6b" * payload)
        if hasattr(store, "db"):
            store.db.checkpoint()
        elif hasattr(store, "fs"):
            store.fs.writeback()
        elif hasattr(store, "store"):
            store.store.flush()
        delta = store.device.stats.delta_since(before)
        copies = sum(delta.bytes_written_by_category.get(c, 0)
                     for c in ("data", "wal", "journal", "dwb",
                               "index")) / payload
        rows.append([name, f"{copies:.2f}x"])
    print_table("Design survey: content copies per BLOB byte (measured)",
                ["system", "copies/byte"], rows)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import pathlib
    import subprocess

    bench_dir = pathlib.Path.cwd() / "benchmarks"
    if not bench_dir.is_dir():
        print("benchmarks/ not found — run from the repository checkout",
              file=sys.stderr)
        return 2
    return subprocess.call([sys.executable, "-m", "pytest",
                            str(bench_dir), "--benchmark-only", "-s"])


def _cmd_faultsweep(args: argparse.Namespace) -> int:
    from repro.bench.faultsweep import run_sweep

    report = run_sweep(n_schedules=args.schedules, seed=args.seed)
    print(f"Fault sweep: {args.schedules} seeded schedules "
          f"(base seed {args.seed})")
    print(report.format())
    if report.silent:
        print("FAILED: silent corruption detected", file=sys.stderr)
        return 1
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.db.config import EngineConfig

    config = EngineConfig()
    print(f"repro {repro.__version__} — reproduction of "
          f"'Why Files If You Have a DBMS?' (ICDE 2024)")
    print(f"default engine: pool={config.pool}, "
          f"log_policy={config.log_policy}, "
          f"concurrency={config.concurrency}, "
          f"index={config.index_structure}")
    print(f"device {config.device_pages * config.page_size >> 20} MiB, "
          f"buffer pool {config.buffer_pool_pages * config.page_size >> 20} "
          f"MiB, WAL {config.wal_pages * config.page_size >> 20} MiB")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Single-flush BLOB storage engine (paper reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="quick cross-system comparison")
    demo.add_argument("--payload-kb", type=int, default=100)
    demo.add_argument("--ops", type=int, default=200)
    demo.add_argument("--records", type=int, default=24)
    demo.add_argument("--all", action="store_true",
                      help="include every system (slower)")
    demo.set_defaults(func=_cmd_demo)

    survey = sub.add_parser("survey", help="measured Table I design survey")
    survey.set_defaults(func=_cmd_survey)

    figures = sub.add_parser("figures",
                             help="regenerate every paper figure/table")
    figures.set_defaults(func=_cmd_figures)

    sweep = sub.add_parser("faultsweep",
                           help="seeded fault-injection sweep")
    sweep.add_argument("--schedules", type=int, default=200)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.set_defaults(func=_cmd_faultsweep)

    info = sub.add_parser("info", help="version and configuration")
    info.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
