"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo``     — a two-minute cross-system comparison (throughput and
  write amplification for a chosen payload size) on the simulated
  testbed;
* ``survey``   — the measured Table I design survey;
* ``figures``  — run the full paper-reproduction benchmark suite
  (delegates to pytest; needs the repository checkout);
* ``faultsweep`` — seeded fault-injection sweep: hundreds of
  crash/recover schedules under torn writes, bit flips, and transient
  I/O errors, with a reproducibility digest;
* ``trace``    — run a pinned-seed workload with the tracer attached
  and emit a Chrome ``trace_event`` JSON (open in about:tracing or
  Perfetto); byte-identical across runs of the same seed;
* ``bench``    — run the deterministic benchmark baseline suite,
  write ``BENCH_<label>.json``, and optionally gate against a
  committed baseline (fails on >10 % regression);
* ``lint``     — AST determinism/invariant lint (``RPRxxx`` rules) over
  the source tree; exits 1 on findings, ``--json`` for a CI report;
* ``sanitize`` — run a pinned-seed workload with the runtime
  latch/WAL-ordering sanitizer attached; exits 1 on violations;
* ``race``     — seeded schedule-space exploration: re-run one traffic
  workload under N tie-break perturbations with the happens-before
  race detector, latch/WAL sanitizer, and replication invariants
  checked on every schedule; exits 1 on any race, violation, or
  digest divergence;
* ``info``     — version and default-configuration summary.

``demo``, ``survey``, and ``faultsweep`` accept ``--json`` for
machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import sys


def _emit_json(doc) -> None:
    print(json.dumps(doc, indent=2, sort_keys=True))


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.bench.adapters import ALL_SYSTEMS, make_store
    from repro.bench.harness import human_throughput, print_table, run_ycsb
    from repro.workloads.ycsb import YcsbConfig

    payload = args.payload_kb * 1024
    config = YcsbConfig(n_records=max(4, args.records), payload=payload,
                        read_ratio=0.5)
    systems = ALL_SYSTEMS if args.all else (
        "our", "our.physlog", "ext4.ordered", "ext4.journal", "sqlite",
        "postgresql")
    rows = []
    records = []
    for name in systems:
        store = make_store(name, capacity_bytes=1 << 30,
                           buffer_bytes=256 << 20)
        result = run_ycsb(store, config, n_ops=args.ops)
        written = store.device.stats.bytes_written
        amplification = written / (config.n_records + args.ops / 2) / payload
        rows.append([name, human_throughput(result.throughput_ops_s),
                     f"{result.per_op_us:.1f}", f"{amplification:.2f}x"])
        records.append({
            "system": name,
            "throughput_ops_s": round(result.throughput_ops_s, 1),
            "per_op_us": round(result.per_op_us, 2),
            "bytes_written_per_payload": round(amplification, 3),
        })
    if args.json:
        _emit_json({"payload_kb": args.payload_kb, "ops": args.ops,
                    "systems": records})
        return 0
    print_table(
        f"Demo: YCSB {args.payload_kb} KB payload, 50% reads "
        f"({args.ops} ops, simulated time)",
        ["system", "txn/s", "us/op", "~bytes written/payload"], rows)
    return 0


def _cmd_survey(args: argparse.Namespace) -> int:
    from repro.bench.adapters import make_store
    from repro.bench.harness import print_table

    payload = 256 * 1024
    rows = []
    for name in ("our", "ext4.ordered", "ext4.journal", "postgresql",
                 "sqlite", "mysql"):
        store = make_store(name, capacity_bytes=1 << 30)
        before = store.device.stats.snapshot()
        store.put(b"probe", b"\x6b" * payload)
        if hasattr(store, "db"):
            store.db.checkpoint()
        elif hasattr(store, "fs"):
            store.fs.writeback()
        elif hasattr(store, "store"):
            store.store.flush()
        delta = store.device.stats.delta_since(before)
        copies = sum(delta.bytes_written_by_category.get(c, 0)
                     for c in ("data", "wal", "journal", "dwb",
                               "index")) / payload
        rows.append([name, f"{copies:.2f}x"])
    if args.json:
        _emit_json({"payload_bytes": payload,
                    "copies_per_byte": {name: float(c[:-1])
                                        for name, c in rows}})
        return 0
    print_table("Design survey: content copies per BLOB byte (measured)",
                ["system", "copies/byte"], rows)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import pathlib
    import subprocess  # repro: allow[RPR005] CLI delegates to pytest on the host

    bench_dir = pathlib.Path.cwd() / "benchmarks"
    if not bench_dir.is_dir():
        print("benchmarks/ not found — run from the repository checkout",
              file=sys.stderr)
        return 2
    return subprocess.call(  # repro: allow[RPR005] CLI delegates to pytest on the host
        [sys.executable, "-m", "pytest",
         str(bench_dir), "--benchmark-only", "-s"])


def _cmd_faultsweep(args: argparse.Namespace) -> int:
    from repro.bench.faultsweep import run_sweep

    report = run_sweep(n_schedules=args.schedules, seed=args.seed)
    if args.json:
        _emit_json({
            "n_schedules": report.n_schedules,
            "seed": args.seed,
            "clean": report.clean,
            "reported": report.reported,
            "silent": report.silent,
            "faults": report.faults,
            "io_retries": report.io_retries,
            "wal_records_truncated": report.wal_records_truncated,
            "keys_quarantined": report.keys_quarantined,
            "digest": report.digest,
        })
    else:
        print(f"Fault sweep: {args.schedules} seeded schedules "
              f"(base seed {args.seed})")
        print(report.format())
    if report.silent:
        print("FAILED: silent corruption detected", file=sys.stderr)
        return 1
    return 0


#: Workloads the ``trace`` subcommand can drive (pinned-seed, engine
#: ``our``): 4 KB YCSB rows, 100 KB YCSB BLOBs, the Wikipedia corpus.
TRACE_WORKLOADS = ("ycsb", "ycsb-blob", "wikipedia")


def _drive_traced_workload(store, workload: str, seed: int,
                           n_ops: int) -> int:
    """Run one pinned-seed workload against ``store``; returns op count."""
    if workload == "wikipedia":
        from repro.workloads.wikipedia import WikipediaCorpus

        corpus = WikipediaCorpus(n_articles=40, seed=seed)
        for article in corpus.articles:
            store.put(article.title, corpus.content(article))
        sample = corpus.view_sampler(seed=seed + 1)
        for i in range(n_ops):
            article = sample()
            if i % 10 == 9:
                store.replace(article.title, corpus.content(article))
            else:
                store.get(article.title)
        return n_ops
    from repro.workloads.ycsb import YcsbConfig, YcsbWorkload

    payload = 100 * 1024 if workload == "ycsb-blob" else 4096
    generator = YcsbWorkload(YcsbConfig(
        n_records=16, payload=payload, read_ratio=0.5, seed=seed))
    for key, data in generator.load_phase():
        store.put(key, data)
    for op, key, data in generator.operations(n_ops):
        if op == "read":
            store.get(key)
        else:
            store.replace(key, data)
    return n_ops


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.bench.adapters import make_store

    store = make_store("our", capacity_bytes=1 << 30,
                       buffer_bytes=256 << 20)
    tracer = obs.attach(store.model, max_events=args.max_events)
    _drive_traced_workload(store, args.workload, args.seed, args.ops)
    trace_json = obs.to_chrome_trace(
        tracer, label=f"{args.workload}-seed{args.seed}")
    if args.out == "-":
        print(trace_json)
    else:
        # Finished trace artifacts are host files by design.
        with open(args.out, "w", encoding="utf-8") as fh:  # repro: allow[RPR004] host trace artifact
            fh.write(trace_json)
            fh.write("\n")
        print(f"wrote {args.out} ({len(tracer.events)} events, "
              f"{tracer.dropped_events} dropped)", file=sys.stderr)
    if args.flamegraph:
        with open(args.flamegraph, "w", encoding="utf-8") as fh:  # repro: allow[RPR004] host flamegraph artifact
            fh.write(obs.to_collapsed_stacks(tracer))
        print(f"wrote {args.flamegraph}", file=sys.stderr)
    if args.summary:
        print(obs.format_span_summary(tracer), file=sys.stderr)
    return 0


def _cmd_bench_iodepth(args: argparse.Namespace) -> int:
    """Queue-depth sweep: print the table, then self-check that the
    sweep is deterministic (two runs, byte-identical) and that
    throughput rises monotonically with diminishing returns."""
    from repro.bench import baseline

    first = baseline.run_iodepth_sweep()
    second = baseline.run_iodepth_sweep()
    rows = first["sweep"]
    print("iodepth sweep (pinned seed, simulated time)")
    print(f"  {'qd':>4} {'ops':>6} {'op/s':>14} {'p99 us':>10} "
          f"{'WA':>6} {'coalesce':>9}")
    for wl in rows:
        print(f"  {wl['queue_depth']:>4} {wl['ops']:>6} "
              f"{wl['throughput_ops_s']:>14.1f} "
              f"{wl['latency_us']['p99']:>10.1f} "
              f"{wl['write_amplification']:>6.2f} "
              f"{wl['io']['coalesce_ratio']:>9.4f}")
    failures = []
    if baseline.render(first) != baseline.render(second):
        failures.append("sweep not deterministic: two runs differ")
    tp = [wl["throughput_ops_s"] for wl in rows]
    for a, b in zip(tp, tp[1:]):
        if b < a:
            failures.append(
                f"throughput not monotone in queue depth: {a} -> {b}")
    if len(tp) >= 3 and (tp[-1] - tp[-2]) > (tp[-2] - tp[-3]):
        failures.append(
            "no diminishing returns at the deepest queue: gain "
            f"{tp[-2] - tp[-3]:.1f} then {tp[-1] - tp[-2]:.1f}")
    if args.out:
        baseline.write_baseline(args.out, first)
        print(f"wrote {args.out}")
    if failures:
        for line in failures:
            print("FAILED: " + line, file=sys.stderr)
        return 1
    print("iodepth sweep OK: deterministic, monotone, diminishing returns")
    return 0


def _write_shard_traces(trace_dir: str) -> int:
    """Per-shard Chrome traces of a short 4-shard scatter-gather run.

    Every shard runs on its own virtual clock, so each shard gets its
    own trace file (plus one for the router); open them side by side in
    Perfetto to see the sub-batches whose maximum is the makespan.
    """
    import os
    import random

    from repro import obs
    from repro.db.config import EngineConfig
    from repro.shard import ShardedBlobDB

    config = EngineConfig(device_pages=16384, wal_pages=512,
                          catalog_pages=128, buffer_pool_pages=4096)
    sdb = ShardedBlobDB(n_shards=4, config=config)
    tracers = {"router": obs.attach(sdb.model)}
    for i, shard in enumerate(sdb.shards):
        tracers[f"shard{i}"] = obs.attach(shard.model)
    rng = random.Random(5)
    keys = [b"user%010d" % i for i in range(64)]
    for lo in range(0, len(keys), 16):
        sdb.multiput([(key, rng.randbytes(4096))
                      for key in keys[lo:lo + 16]])
    for _ in range(8):
        sdb.multiget([keys[rng.randrange(len(keys))] for _ in range(32)])
    sdb.drain_commit_window()
    os.makedirs(trace_dir, exist_ok=True)  # repro: allow[RPR004] host trace artifact dir
    written = 0
    for name, tracer in sorted(tracers.items()):
        path = os.path.join(trace_dir, f"{name}.json")
        with open(path, "w", encoding="utf-8") as fh:  # repro: allow[RPR004] host trace artifact
            fh.write(obs.to_chrome_trace(tracer, label=f"shards-{name}"))
            fh.write("\n")
        written += 1
    print(f"wrote {written} trace(s) to {trace_dir}/", file=sys.stderr)
    return written


def _cmd_bench_shards(args: argparse.Namespace) -> int:
    """Shard sweep: print the table, then self-check determinism (two
    runs byte-identical), monotone uniform-key speedup with >=3x at the
    widest point, and measurable degradation under Zipf skew."""
    from repro.bench import baseline

    first = baseline.run_shard_sweep()
    second = baseline.run_shard_sweep()
    rows = first["sweep"]
    print("shard sweep (scatter-gather makespan, pinned seed)")
    print(f"  {'shards':>6} {'zipf':>5} {'ops':>6} {'op/s':>14} "
          f"{'p99 us':>10} {'WA':>6} {'imbalance':>10}")
    for wl in rows:
        print(f"  {wl['n_shards']:>6} {wl['zipf_theta']:>5.2f} "
              f"{wl['ops']:>6} {wl['throughput_ops_s']:>14.1f} "
              f"{wl['latency_us']['p99']:>10.1f} "
              f"{wl['write_amplification']:>6.2f} "
              f"{wl['shard']['imbalance']:>10.4f}")
    failures = baseline.shard_sweep_self_check(first, second)
    if args.out:
        baseline.write_baseline(args.out, first)
        print(f"wrote {args.out}")
    if args.traces:
        _write_shard_traces(args.traces)
    if failures:
        for line in failures:
            print("FAILED: " + line, file=sys.stderr)
        return 1
    print("shard sweep OK: deterministic, monotone speedup, "
          "skew degrades as modelled")
    return 0


def _cmd_bench_replication(args: argparse.Namespace) -> int:
    """Replication sweep: quorum commit-latency points plus the
    availability-under-storm digest.  Self-checks determinism (two
    runs byte-identical, digest included), strictly increasing commit
    latency in quorum size, zero lost acknowledged writes, no torn
    records, and bounded failover makespans."""
    from repro.bench import baseline

    first = baseline.run_replication_sweep()
    second = baseline.run_replication_sweep()
    print("replication sweep (3-member groups, pinned seed)")
    print(f"  {'quorum':>6} {'ops':>6} {'op/s':>14} {'mean us':>9} "
          f"{'p99 us':>10} {'shipped':>8} {'retries':>8}")
    for wl in first["sweep"]:
        rep = wl["replication"]
        print(f"  {wl['quorum']:>6} {wl['ops']:>6} "
              f"{wl['throughput_ops_s']:>14.1f} "
              f"{wl['latency_us']['mean']:>9.2f} "
              f"{wl['latency_us']['p99']:>10.2f} "
              f"{rep['records_shipped']:>8} {rep['ship_retries']:>8}")
    storm = first["storm"]
    print(f"availability storm: {storm['schedules']} kill schedules, "
          f"{storm['failovers']} failovers / {storm['rejoins']} rejoins, "
          f"{storm['acked_writes']} acked writes "
          f"({storm['lost_acked_writes']} lost, "
          f"{storm['torn_records']} torn), "
          f"{storm['truncated_records']} divergent records truncated, "
          f"max failover {storm['max_failover_us']} us")
    print(f"storm digest: {storm['digest']}")
    failures = baseline.replication_self_check(first, second)
    if args.out:
        baseline.write_baseline(args.out, first)
        print(f"wrote {args.out}")
    if failures:
        for line in failures:
            print("FAILED: " + line, file=sys.stderr)
        return 1
    print("replication sweep OK: deterministic, quorum latency strictly "
          "ordered, zero lost acked writes, failover bounded")
    return 0


def _cmd_bench_traffic(args: argparse.Namespace) -> int:
    """Open-loop traffic sweep: closed-loop capacity calibration,
    offered-load points across the saturation knee, and token-bucket
    admission under overload.  Self-checks determinism (two runs
    byte-identical), the knee (throughput saturates while p999 grows),
    and admission (bounded p999, exact shed accounting)."""
    from repro.bench import baseline

    first = baseline.run_traffic_sweep()
    second = baseline.run_traffic_sweep()
    print("traffic sweep (open-loop arrivals, pinned seed)")
    print(f"  closed-loop capacity: {first['capacity_ops_s']:.1f} op/s")
    print(f"  {'offered':>8} {'policy':>7} {'done':>5} {'shed':>5} "
          f"{'op/s':>12} {'p99 us':>9} {'p999 us':>9} {'depth':>6}")
    for wl in first["sweep"]:
        adm = wl["admission"]
        policy = adm["policy"] if adm else "-"
        print(f"  {wl['offered_mult']:>7.2f}x {policy:>7} "
              f"{wl['completed']:>5} {wl['shed']:>5} "
              f"{wl['throughput_ops_s']:>12.1f} "
              f"{wl['latency_us']['p99']:>9.1f} "
              f"{wl['latency_us']['p999']:>9.1f} "
              f"{wl['max_dispatch_depth']:>6}")
    failures = baseline.traffic_self_check(first, second)
    if args.out:
        baseline.write_baseline(args.out, first)
        print(f"wrote {args.out}")
    if failures:
        for line in failures:
            print("FAILED: " + line, file=sys.stderr)
        return 1
    print("traffic sweep OK: deterministic, knee saturates with a "
          "growing tail, admission bounds p999 with exact shed counts")
    return 0


def _cmd_bench_pmem(args: argparse.Namespace) -> int:
    """Heterogeneous-storage sweep: durable-ack commit latency with the
    WAL on PMem vs NVMe across group-commit windows, plus the stripe
    width throughput sweep.  Self-checks determinism (two runs
    byte-identical), WAL-on-PMem strictly below NVMe at every window,
    and monotone >=2x stripe speedup at the widest point."""
    from repro.bench import baseline

    first = baseline.run_pmem_sweep()
    second = baseline.run_pmem_sweep()
    print("pmem sweep (durable-ack commit latency, pinned seed)")
    print(f"  {'window us':>9} {'wal on':>6} {'ops':>5} {'mean us':>8} "
          f"{'p99 us':>8} {'appends':>8} {'WA':>7}")
    for wl in first["commit"]:
        print(f"  {wl['window_us']:>9.1f} {wl['wal_on']:>6} "
              f"{wl['ops']:>5} {wl['latency_us']['mean']:>8.3f} "
              f"{wl['latency_us']['p99']:>8.3f} "
              f"{wl['wal']['byte_appends']:>8} "
              f"{wl['write_amplification']:>7.4f}")
    print("stripe sweep (scatter reads + write-back over K members)")
    print(f"  {'devices':>7} {'ops':>6} {'op/s':>12} {'p99 us':>9} "
          f"{'coalesce':>9}")
    for wl in first["stripe"]:
        print(f"  {wl['n_devices']:>7} {wl['ops']:>6} "
              f"{wl['throughput_ops_s']:>12.1f} "
              f"{wl['latency_us']['p99']:>9.1f} "
              f"{wl['io']['coalesce_ratio']:>9.4f}")
    failures = baseline.pmem_self_check(first, second)
    if args.out:
        baseline.write_baseline(args.out, first)
        print(f"wrote {args.out}")
    if failures:
        for line in failures:
            print("FAILED: " + line, file=sys.stderr)
        return 1
    print("pmem sweep OK: deterministic, WAL-on-PMem strictly faster at "
          "every window, stripe speedup monotone and >=2x at 4 devices")
    return 0


def _cmd_bench_index(args: argparse.Namespace) -> int:
    """Adaptive-indexing sweep: the relation-index crossover (learned
    tier vs ART vs B-Tree on uniform read-mostly and Zipf write-heavy
    mixes) plus the interval-numbered recursive-scan comparison.
    Self-checks determinism (two runs byte-identical), the crossover in
    both directions, and >=3x interval-scan speedup with identical
    listings."""
    from repro.bench import baseline

    first = baseline.run_index_sweep()
    second = baseline.run_index_sweep()
    print("index crossover sweep (bare relation index, pinned seed)")
    print(f"  {'engine':>7} {'theta':>5} {'writes':>6} {'ops':>5} "
          f"{'op/s':>10} {'mean us':>8} {'p99 us':>8} {'retrains':>8}")
    for wl in first["engines"]:
        learned = wl.get("learned", {})
        print(f"  {wl['engine']:>7} {wl['zipf_theta']:>5.2f} "
              f"{wl['write_ratio']:>6.0%} {wl['ops']:>5} "
              f"{wl['throughput_ops_s']:>10.1f} "
              f"{wl['latency_us']['mean']:>8.3f} "
              f"{wl['latency_us']['p99']:>8.3f} "
              f"{learned.get('retrains', 0):>8}")
    print("recursive-scan comparison (per-level walk vs interval scan)")
    print(f"  {'workload':>9} {'entries':>7} {'plain us':>9} "
          f"{'accel us':>9} {'speedup':>8} {'match':>5}")
    for wl in first["ns_scan"]:
        print(f"  {wl['workload']:>9} {wl['entries']:>7} "
              f"{wl['plain_us']:>9.1f} {wl['accelerated_us']:>9.1f} "
              f"{wl['speedup']:>8.2f} {str(wl['listings_match']):>5}")
    failures = baseline.index_self_check(first, second)
    if args.out:
        baseline.write_baseline(args.out, first)
        print(f"wrote {args.out}")
    if failures:
        for line in failures:
            print("FAILED: " + line, file=sys.stderr)
        return 1
    print("index sweep OK: deterministic, learned/ART crossover in both "
          "directions, interval scans >=3x with identical listings")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import baseline

    if args.mode == "iodepth":
        return _cmd_bench_iodepth(args)
    if args.mode == "shards":
        return _cmd_bench_shards(args)
    if args.mode == "replication":
        return _cmd_bench_replication(args)
    if args.mode == "traffic":
        return _cmd_bench_traffic(args)
    if args.mode == "pmem":
        return _cmd_bench_pmem(args)
    if args.mode == "index":
        return _cmd_bench_index(args)
    doc = baseline.run_suite(args.label)
    # Provenance stamp attached *outside* the deterministic suite; the
    # regression gate ignores unknown top-level keys.
    doc["host"] = baseline.host_stamp()
    out = args.out or f"BENCH_{args.label}.json"
    baseline.write_baseline(out, doc)
    print(baseline.format_report(doc))
    print(f"wrote {out}")
    if args.compare:
        base = baseline.load_baseline(args.compare)
        regressions, notes = baseline.compare(base, doc,
                                              tolerance=args.tolerance)
        for note in notes:
            print(f"note: {note}")
        if regressions:
            for line in regressions:
                print(line, file=sys.stderr)
            print(f"FAILED: {len(regressions)} perf regression(s) vs "
                  f"{args.compare}", file=sys.stderr)
            return 1
        print(f"regression gate OK vs {args.compare} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import lint as linter

    paths = args.paths or ["src/repro"]
    files = linter.iter_python_files(paths)
    findings = linter.lint_paths(paths)
    if args.json_out:
        report = linter.render_json(findings, files_scanned=len(files))
        with open(args.json_out, "w", encoding="utf-8") as fh:  # repro: allow[RPR004] host report artifact
            fh.write(report)
        print(f"wrote {args.json_out}", file=sys.stderr)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"FAILED: {len(findings)} lint finding(s) across "
              f"{len(files)} files scanned", file=sys.stderr)
        return 1
    if not files:
        # An empty scan is almost always a CI misconfiguration (wrong
        # path, wrong checkout); say so instead of a silent exit 0.
        print("lint OK: 0 files scanned, 0 findings — no Python files "
              "under the given paths")
        return 0
    print(f"lint OK: {len(files)} files scanned, 0 findings")
    return 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.analysis import attach_sanitizer
    from repro.bench.adapters import make_store

    store = make_store(args.system, capacity_bytes=1 << 30,
                       buffer_bytes=256 << 20,
                       group_commit_window_ns=args.window_ns)
    san = attach_sanitizer(store.model, mode="collect")
    _drive_traced_workload(store, args.workload, args.seed, args.ops)
    if args.checkpoint and hasattr(store, "db"):
        store.db.checkpoint()
    print(san.format_summary())
    if san.stats.violations:
        print(f"FAILED: {san.stats.violations} invariant violation(s)",
              file=sys.stderr)
        return 1
    print("sanitizer OK: no latch or WAL-ordering violations")
    return 0


def _cmd_race(args: argparse.Namespace) -> int:
    from repro.analysis.explorer import ScheduleExplorer

    explorer = ScheduleExplorer(schedules=args.schedules, seed=args.seed)
    result = explorer.explore()
    print("race detector self-check OK: planted race detected, "
          "guarded control clean")
    print(result.format_summary())
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:  # repro: allow[RPR004] host report artifact
            fh.write(json.dumps(result.to_dict(), indent=2,
                                sort_keys=True))
            fh.write("\n")
        print(f"wrote {args.json_out}", file=sys.stderr)
    if not result.ok:
        print(f"FAILED: {result.races} race(s), "
              f"{result.sanitizer_violations} sanitizer violation(s), "
              f"{len(result.invariant_failures)} invariant failure(s)",
              file=sys.stderr)
        return 1
    print(f"race exploration OK: {result.schedules} schedules, "
          f"store digest invariant, zero races")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.db.config import EngineConfig

    config = EngineConfig()
    print(f"repro {repro.__version__} — reproduction of "
          f"'Why Files If You Have a DBMS?' (ICDE 2024)")
    print(f"default engine: pool={config.pool}, "
          f"log_policy={config.log_policy}, "
          f"concurrency={config.concurrency}, "
          f"index={config.index_structure}")
    print(f"device {config.device_pages * config.page_size >> 20} MiB, "
          f"buffer pool {config.buffer_pool_pages * config.page_size >> 20} "
          f"MiB, WAL {config.wal_pages * config.page_size >> 20} MiB")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Single-flush BLOB storage engine (paper reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="quick cross-system comparison")
    demo.add_argument("--payload-kb", type=int, default=100)
    demo.add_argument("--ops", type=int, default=200)
    demo.add_argument("--records", type=int, default=24)
    demo.add_argument("--all", action="store_true",
                      help="include every system (slower)")
    demo.add_argument("--json", action="store_true",
                      help="machine-readable output")
    demo.set_defaults(func=_cmd_demo)

    survey = sub.add_parser("survey", help="measured Table I design survey")
    survey.add_argument("--json", action="store_true",
                        help="machine-readable output")
    survey.set_defaults(func=_cmd_survey)

    figures = sub.add_parser("figures",
                             help="regenerate every paper figure/table")
    figures.set_defaults(func=_cmd_figures)

    sweep = sub.add_parser("faultsweep",
                           help="seeded fault-injection sweep")
    sweep.add_argument("--schedules", type=int, default=200)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--json", action="store_true",
                       help="machine-readable output")
    sweep.set_defaults(func=_cmd_faultsweep)

    trace = sub.add_parser(
        "trace", help="record a deterministic Chrome trace of a workload")
    trace.add_argument("workload", choices=TRACE_WORKLOADS)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--ops", type=int, default=120)
    trace.add_argument("--out", default="-",
                       help="Chrome trace JSON path ('-' for stdout)")
    trace.add_argument("--flamegraph", metavar="PATH",
                       help="also write collapsed-stack flamegraph text")
    trace.add_argument("--summary", action="store_true",
                       help="print a span-time summary to stderr")
    trace.add_argument("--max-events", type=int, default=500_000)
    trace.set_defaults(func=_cmd_trace)

    bench = sub.add_parser(
        "bench", help="deterministic benchmark baseline + regression gate")
    bench.add_argument("mode", nargs="?",
                       choices=("suite", "iodepth", "shards",
                                "replication", "traffic", "pmem",
                                "index"),
                       default="suite",
                       help="'suite' (default), 'iodepth' for the "
                            "queue-depth sweep, 'shards' for the "
                            "sharded scatter-gather sweep, "
                            "'replication' for the quorum sweep plus "
                            "the availability storm, 'traffic' for "
                            "the open-loop saturation/admission sweep, "
                            "'pmem' for the heterogeneous-storage "
                            "WAL-placement and stripe-width sweep, "
                            "or 'index' for the adaptive-indexing "
                            "crossover and interval-scan sweep "
                            "— every sweep runs built-in self-checks")
    bench.add_argument("--traces", metavar="DIR",
                       help="with mode 'shards': also write per-shard "
                            "Chrome traces of a 4-shard run to DIR")
    bench.add_argument("--label", default="local")
    bench.add_argument("--out", default=None,
                       help="output path (default BENCH_<label>.json)")
    bench.add_argument("--compare", metavar="BASELINE",
                       help="gate against this BENCH_*.json; exit 1 on "
                            ">tolerance regression")
    bench.add_argument("--tolerance", type=float, default=0.10)
    bench.set_defaults(func=_cmd_bench)

    lint = sub.add_parser(
        "lint", help="AST determinism/invariant lint over the source tree")
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: src/repro)")
    lint.add_argument("--json", dest="json_out", metavar="PATH",
                      help="also write a machine-readable JSON report")
    lint.set_defaults(func=_cmd_lint)

    sanitize = sub.add_parser(
        "sanitize",
        help="run a workload with the latch/WAL-order sanitizer attached")
    sanitize.add_argument("workload", choices=TRACE_WORKLOADS)
    sanitize.add_argument("--system", choices=("our", "our.physlog"),
                          default="our")
    sanitize.add_argument("--seed", type=int, default=0)
    sanitize.add_argument("--ops", type=int, default=120)
    sanitize.add_argument("--checkpoint", action="store_true",
                          help="force a checkpoint at the end (exercises "
                               "the write-back path)")
    sanitize.add_argument("--window-ns", type=float, default=200_000.0,
                          help="group-commit window in simulated ns "
                               "(0 disables; default 200us so the async "
                               "cross-worker commit path is sanitized)")
    sanitize.set_defaults(func=_cmd_sanitize)

    race = sub.add_parser(
        "race",
        help="happens-before race detection over explored schedules")
    race.add_argument("--schedules", type=int, default=100,
                      help="tie-break seeds to explore (default 100)")
    race.add_argument("--seed", type=int, default=0,
                      help="base seed; schedule i uses a derived seed")
    race.add_argument("--json", dest="json_out", metavar="PATH",
                      help="also write the exploration digest report")
    race.set_defaults(func=_cmd_race)

    info = sub.add_parser("info", help="version and configuration")
    info.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
