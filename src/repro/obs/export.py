"""Trace exporters: Chrome ``trace_event`` JSON and collapsed stacks.

Both formats are emitted deterministically — sorted keys, stable event
order, integer-nanosecond timestamps scaled to microseconds — so two
runs of the same seeded workload export *byte-identical* artifacts.

* :func:`to_chrome_trace` produces the Trace Event Format consumed by
  ``about:tracing``, Perfetto (https://ui.perfetto.dev), and
  ``chrome://tracing``: complete ("X") events for spans, instant ("i")
  events for point records, all on one pid/tid since the engine's
  virtual clock is single-threaded.
* :func:`to_collapsed_stacks` produces Brendan Gregg's collapsed-stack
  text format (``a;b;c <value>``), aggregating each span path's
  *exclusive* virtual nanoseconds — pipe it into ``flamegraph.pl`` or
  paste into https://www.speedscope.app.
"""

from __future__ import annotations

import json

from repro.obs.trace import Tracer


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """The ``traceEvents`` list, in recording order."""
    events = []
    for ev in tracer.events:
        cat = ev.name.split(".", 1)[0]
        entry: dict = {
            "name": ev.name,
            "cat": cat,
            "pid": 1,
            "tid": 1,
            "ts": ev.ts_ns / 1000.0,
        }
        if ev.dur_ns is None:
            entry["ph"] = "i"
            entry["s"] = "t"
        else:
            entry["ph"] = "X"
            entry["dur"] = ev.dur_ns / 1000.0
        if ev.args:
            entry["args"] = {k: ev.args[k] for k in sorted(ev.args)}
        events.append(entry)
    return events


def to_chrome_trace(tracer: Tracer, label: str = "repro") -> str:
    """Serialize the trace as Chrome Trace Event Format JSON."""
    doc = {
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "virtual-ns",
            "dropped_events": tracer.dropped_events,
            "label": label,
        },
        "metrics": tracer.metrics.as_dict(),
        "traceEvents": chrome_trace_events(tracer),
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def to_collapsed_stacks(tracer: Tracer) -> str:
    """Aggregate exclusive span time by stack path (flamegraph input).

    Instant events carry no duration and are skipped.  Lines are sorted
    lexicographically for byte-stable output; values are integer virtual
    nanoseconds.
    """
    weights: dict[str, int] = {}
    for ev in tracer.events:
        if ev.dur_ns is None:
            continue
        weights[ev.path] = weights.get(ev.path, 0) + ev.self_ns
    lines = [f"{path} {weights[path]}" for path in sorted(weights)]
    return "\n".join(lines) + ("\n" if lines else "")


def format_span_summary(tracer: Tracer, top: int = 20) -> str:
    """Human-readable table of where virtual time went, by span name."""
    totals = tracer.span_totals()
    if not totals:
        return "(no spans recorded)"
    rows = sorted(totals.items(),
                  key=lambda kv: (-kv[1]["self_ns"], kv[0]))[:top]
    name_w = max(len(name) for name, _ in rows)
    lines = [f"{'span':<{name_w}}  {'calls':>8}  {'total_us':>12}  "
             f"{'self_us':>12}"]
    for name, agg in rows:
        lines.append(
            f"{name:<{name_w}}  {agg['calls']:>8}  "
            f"{agg['total_ns'] / 1000:>12.1f}  "
            f"{agg['self_ns'] / 1000:>12.1f}")
    return "\n".join(lines)
