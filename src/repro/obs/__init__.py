"""Deterministic observability: tracing, metrics, and exporters.

The subsystem is opt-in and zero-cost when unused: a
:class:`~repro.obs.trace.Tracer` attached to a cost model's ``obs``
attribute activates span/event/metric recording in every instrumented
layer (transactions, WAL, buffer pool, allocator, device, network,
recovery); when ``model.obs`` is ``None`` — the default — the hot paths
skip instrumentation without allocating anything.

See ``docs/observability.md`` for the span taxonomy and trace-reading
guide, and ``python -m repro trace`` for the CLI entry point.
"""

from repro.obs.export import (
    format_span_summary,
    to_chrome_trace,
    to_collapsed_stacks,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.trace import TraceEvent, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "Tracer",
    "format_span_summary",
    "to_chrome_trace",
    "to_collapsed_stacks",
]


def attach(model, *, capture: bool = True,
           max_events: int = 500_000) -> Tracer:
    """Create a :class:`Tracer` on ``model``'s clock and attach it.

    Returns the tracer; detach by setting ``model.obs = None``.
    """
    tracer = Tracer(model.clock, capture=capture, max_events=max_events)
    model.obs = tracer
    return tracer
