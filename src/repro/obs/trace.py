"""Zero-wall-clock tracer: nested spans and point events in virtual time.

A :class:`Tracer` timestamps everything from the engine's
:class:`~repro.sim.clock.VirtualClock`, so a trace is a pure function of
the workload and seed — two runs produce byte-identical exports.  It is
attached to a :class:`~repro.sim.cost.CostModel` via ``model.obs``; every
instrumented layer reads that attribute and does nothing when it is
``None``, so the uninstrumented fast path stays allocation-free:

    obs = self.model.obs
    if obs is not None:
        obs.begin("wal.flush")
    try:
        ...  # priced work
    finally:
        if obs is not None:
            obs.end(bytes=nbytes)

Span durations feed ``span.<name>`` histograms in the attached
:class:`~repro.obs.metrics.MetricsRegistry` even when event capture is
off (``capture=False``), which is how the bench harness collects p99
latencies without paying trace memory.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

#: Shared empty-args singleton so argless spans allocate no dict.
_NO_ARGS: dict = {}


class TraceEvent:
    """One recorded span or instant, in virtual nanoseconds.

    ``dur_ns`` is ``None`` for instant events.  ``path`` is the
    semicolon-joined span stack (ending with ``name``) captured at
    recording time — the unit of flamegraph aggregation.  ``self_ns`` is
    the span's exclusive time (duration minus traced children).
    """

    __slots__ = ("ts_ns", "dur_ns", "name", "path", "args", "self_ns")

    def __init__(self, ts_ns: int, dur_ns: int | None, name: str,
                 path: str, args: dict, self_ns: int = 0) -> None:
        self.ts_ns = ts_ns
        self.dur_ns = dur_ns
        self.name = name
        self.path = path
        self.args = args
        self.self_ns = self_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TraceEvent({self.name!r}, ts={self.ts_ns}, "
                f"dur={self.dur_ns})")


class _SpanContext:
    """``with obs.span("name"):`` sugar over :meth:`begin`/:meth:`end`."""

    __slots__ = ("_tracer", "_name", "_args")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_SpanContext":
        self._tracer.begin(self._name)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer.end(**self._args)


class Tracer:
    """Records spans, instants, and metrics against a virtual clock."""

    __slots__ = ("clock", "metrics", "capture", "max_events", "events",
                 "dropped_events", "_stack")

    def __init__(self, clock, *, capture: bool = True,
                 max_events: int = 500_000,
                 metrics: MetricsRegistry | None = None) -> None:
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: When False, spans still time work and feed histograms, but no
        #: events are stored (metrics-only mode for long benchmarks).
        self.capture = capture
        #: Hard cap on stored events; beyond it events are counted as
        #: dropped instead of stored, bounding trace memory.
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped_events = 0
        #: Open-span stack: [name, start_ns, child_ns, path] frames.
        self._stack: list[list] = []

    # -- spans -------------------------------------------------------------

    def begin(self, name: str) -> None:
        """Open a span; must be closed by exactly one :meth:`end`."""
        stack = self._stack
        path = f"{stack[-1][3]};{name}" if stack else name
        stack.append([name, self.clock.now_ns, 0, path])

    def end(self, **args: object) -> None:
        """Close the innermost open span, recording its duration."""
        if not self._stack:
            raise RuntimeError("Tracer.end() with no open span")
        name, start_ns, child_ns, path = self._stack.pop()
        now = self.clock.now_ns
        dur = now - start_ns
        if self._stack:
            self._stack[-1][2] += dur
        self.metrics.histogram(f"span.{name}").observe(dur)
        if self.capture:
            self._record(TraceEvent(start_ns, dur, name, path,
                                    args if args else _NO_ARGS,
                                    self_ns=dur - child_ns))

    def span(self, name: str, **args: object) -> _SpanContext:
        """Context-manager form; ``args`` are attached at span end."""
        return _SpanContext(self, name, args if args else _NO_ARGS)

    @property
    def depth(self) -> int:
        return len(self._stack)

    # -- instants ----------------------------------------------------------

    def instant(self, name: str, **args: object) -> None:
        """Record a typed point event at the current virtual time."""
        if self.capture:
            stack = self._stack
            path = f"{stack[-1][3]};{name}" if stack else name
            self._record(TraceEvent(self.clock.now_ns, None, name, path,
                                    args if args else _NO_ARGS))

    def _record(self, event: TraceEvent) -> None:
        if len(self.events) < self.max_events:
            self.events.append(event)
        else:
            self.dropped_events += 1

    # -- metrics shortcuts -------------------------------------------------

    def count(self, name: str, value: int = 1, **labels: object) -> None:
        self.metrics.counter(name).add(value, **labels)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    # -- summaries ----------------------------------------------------------

    def span_totals(self) -> dict[str, dict[str, int]]:
        """Aggregate inclusive/exclusive time and call counts per name."""
        totals: dict[str, dict[str, int]] = {}
        for ev in self.events:
            if ev.dur_ns is None:
                continue
            agg = totals.setdefault(
                ev.name, {"calls": 0, "total_ns": 0, "self_ns": 0})
            agg["calls"] += 1
            agg["total_ns"] += ev.dur_ns
            agg["self_ns"] += ev.self_ns
        return totals
