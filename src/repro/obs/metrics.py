"""Deterministic metrics: labelled counters and fixed-bucket histograms.

Everything here is driven by *virtual* quantities (simulated nanoseconds,
byte counts), so two runs of the same seeded workload produce identical
registries — metric output is part of the reproducibility surface, like
the fault-sweep digest.

Histograms use fixed geometric bucket boundaries shared by every
instance, so summaries (p50/p95/p99/p999) are stable across runs and
across code that merely *reads* them: percentile estimation never
depends on insertion order or float accumulation quirks.  p999 is
first-class because tail latency is what the open-loop traffic
scheduler (:mod:`repro.sched`) exists to measure — the p50 of an
overloaded system looks fine right up until it doesn't.
"""

from __future__ import annotations

#: Default histogram boundaries: powers of two from 128 ns to ~17.6 s.
#: Wide enough for a single vmcache translation (25 ns rounds into the
#: first bucket) and for multi-second recovery phases.
DEFAULT_BUCKET_BOUNDS: tuple[int, ...] = tuple(
    1 << e for e in range(7, 35))


def _label_key(labels: dict[str, object]) -> tuple:
    """Canonical hashable form of a label set (sorted by label name)."""
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing counter with optional labels.

    ``add(n, category="wal")`` and ``add(n, category="data")`` accumulate
    under distinct label sets; ``total()`` sums across all of them.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: dict[tuple, int] = {}

    def add(self, value: int = 1, **labels: object) -> None:
        key = _label_key(labels)
        self.values[key] = self.values.get(key, 0) + value

    def total(self) -> int:
        return sum(self.values.values())

    def get(self, **labels: object) -> int:
        return self.values.get(_label_key(labels), 0)

    def as_dict(self) -> dict[str, int]:
        """Stable rendering: ``{"k=v,k2=v2": value}`` sorted by label."""
        out = {}
        for key in sorted(self.values):
            label = ",".join(f"{k}={v}" for k, v in key) or "_"
            out[label] = self.values[key]
        return out


class Histogram:
    """Fixed-bucket latency/size histogram with deterministic quantiles.

    Values land in the first bucket whose upper bound is >= the value;
    anything beyond the last bound goes to the overflow bucket.  The
    quantile estimate is the upper bound of the bucket holding the
    target rank, clamped to the observed min/max — coarse, but exactly
    reproducible and monotone in the data.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "count", "sum",
                 "min", "max")

    def __init__(self, name: str,
                 bounds: tuple[int, ...] = DEFAULT_BUCKET_BOUNDS) -> None:
        self.name = name
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0
        self.min = 0
        self.max = 0

    def observe(self, value: float) -> None:
        value = int(value)
        if self.count == 0:
            self.min = self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.count += 1
        self.sum += value
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bucket with bound >= value
            mid = (lo + hi) // 2
            if self.bounds[mid] >= value:
                hi = mid
            else:
                lo = mid + 1
        if lo < len(self.bounds):
            self.counts[lo] += 1
        else:
            self.overflow += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> int:
        """Deterministic quantile estimate; ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0
        if q == 0.0:
            return self.min
        target = q * self.count
        cum = 0
        for bound, n in zip(self.bounds, self.counts):
            cum += n
            if cum >= target and n:
                return max(self.min, min(bound, self.max))
        return self.max

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 3),
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
        }


class MetricsRegistry:
    """Owns every counter and histogram of one observability session."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def histogram(self, name: str,
                  bounds: tuple[int, ...] = DEFAULT_BUCKET_BOUNDS) \
            -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, bounds)
        return h

    def as_dict(self) -> dict:
        """Plain-data snapshot with stable key order (JSON-ready)."""
        return {
            "counters": {name: self.counters[name].as_dict()
                         for name in sorted(self.counters)},
            "histograms": {name: self.histograms[name].summary()
                           for name in sorted(self.histograms)},
        }
