"""Deterministic hash routing of keys to shards.

The router is the only component that sees the whole keyspace: it maps
each key to a shard by content hash (the same SHA-256 family the engine
already uses for BLOB digests, :mod:`repro.core.hashing`), so the
assignment is a pure function of the key bytes — identical across runs,
processes, and shard counts that agree.  Routing work is priced on the
*router's* cost model: the per-key hash + bucket math via
:meth:`~repro.sim.cost.CostModel.shard_route`, and a per-shard scatter
charge via :meth:`~repro.sim.cost.CostModel.shard_fanout` when a batch
fans out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hashing import new_hasher
from repro.sim.cost import CostModel


@dataclass
class RouterStats:
    """Cumulative routing counters (the balance picture)."""

    routed_keys: int = 0
    fanout_batches: int = 0
    #: Keys routed to each shard, indexed by shard id.
    per_shard_keys: list[int] = field(default_factory=list)

    def imbalance(self) -> float:
        """Max-over-mean ratio of per-shard key counts.

        1.0 is a perfectly balanced keyspace; a Zipf-skewed workload on
        few shards drives this up.  Guarded: with fewer than two shards
        or no routed keys there is no balance to speak of, so the ratio
        is reported as 0.0 rather than dividing by the shard count.
        """
        if len(self.per_shard_keys) < 2 or not self.routed_keys:
            return 0.0
        mean = self.routed_keys / len(self.per_shard_keys)
        return max(self.per_shard_keys) / mean if mean else 0.0


class ShardRouter:
    """Routes keys to one of ``n_shards`` buckets, charging the model."""

    def __init__(self, n_shards: int, model: CostModel,
                 hasher_kind: str = "fast") -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self.model = model
        self.hasher_kind = hasher_kind
        self.stats = RouterStats(per_shard_keys=[0] * n_shards)

    def shard_of(self, key: bytes) -> int:
        """Deterministic shard id for ``key`` (pure function of bytes)."""
        self.model.shard_route(len(key))
        digest = new_hasher(self.hasher_kind, key).digest()
        shard = int.from_bytes(digest[:8], "big") % self.n_shards
        self.stats.routed_keys += 1
        self.stats.per_shard_keys[shard] += 1
        if self.model.obs is not None:
            self.model.obs.count("shard.requests", shard=str(shard))
        return shard

    def partition(self, keys: list[bytes]) -> dict[int, list[tuple[int, bytes]]]:
        """Split ``keys`` into per-shard sub-batches.

        Each sub-batch entry keeps the key's position in the original
        batch so scatter-gather results can be stitched back in request
        order.  The returned dict's iteration order is insertion order
        (first key seen for each shard) — callers that must be
        deterministic iterate shards in sorted order.
        """
        parts: dict[int, list[tuple[int, bytes]]] = {}
        for pos, key in enumerate(keys):
            parts.setdefault(self.shard_of(key), []).append((pos, key))
        return parts

    def charge_fanout(self, n_sub_batches: int) -> None:
        """Charge the scatter cost of one fan-out batch."""
        self.model.shard_fanout(n_sub_batches)
        self.stats.fanout_batches += 1
        if self.model.obs is not None:
            self.model.obs.count("shard.fanout")
            self.model.obs.observe("shard.fanout_width", n_sub_batches)
