"""Hash-partitioned engine: N independent ``BlobDB`` shards.

Each shard is a complete engine — its own :class:`SimulatedNVMe`, WAL,
buffer pool, and I/O scheduler — running on its **own**
:class:`~repro.sim.clock.VirtualClock`.  A deterministic
:class:`~repro.shard.router.ShardRouter` partitions the keyspace by
content hash, and cross-shard batches run *scatter-gather*: every shard
executes its sub-batch on its private clock, and the router's observed
latency is the **makespan** — the maximum per-shard elapsed time — plus
a per-shard fan-out charge.  This lifts the wave-pipelining idea of
:meth:`CostModel._charge_io` (overlapped NVMe commands pay the slowest
wave, not the sum) one layer up: overlapped shard executions pay the
slowest shard, not the sum.

The consequence the bench sweep demonstrates: a uniform key batch over
N shards approaches N-way speedup, a Zipf-0.99 batch lands almost
entirely on one shard and the makespan collapses back to the serial
time — sharding buys nothing against skew it cannot split.
"""

from __future__ import annotations

from repro.db.config import EngineConfig
from repro.db.database import BlobDB
from repro.db.stats import EngineReport
from repro.shard.router import ShardRouter
from repro.sim.cost import CostModel


def gather_makespan(model: CostModel, clocks, runner,
                    obs_label: str = "shard") -> float:
    """Run ``runner(pid)`` for each ``(pid, clock)`` participant.

    The scatter-gather pricing core, shared by the sharded engine, its
    network front ends, and the replica layer one level up: every
    participant executes on its *own* virtual clock, the coordinator's
    clock (``model``) advances by the **makespan** — the maximum
    per-participant elapsed time — and each participant's elapsed time
    is observed under ``<obs_label>.s<pid>.batch_ns``.  Participants run
    in sorted id order so the simulation stays order-deterministic even
    though the model says "parallel".
    """
    obs = model.obs
    makespan = 0.0
    for pid, clock in sorted(clocks, key=lambda pc: pc[0]):
        start_ns = clock.now_ns
        runner(pid)
        elapsed = clock.now_ns - start_ns
        if obs is not None:
            obs.observe(f"{obs_label}.s{pid}.batch_ns", elapsed)
        makespan = max(makespan, elapsed)
    if obs is not None:
        obs.observe(f"{obs_label}.makespan_ns", makespan)
    model.clock.advance(makespan)
    return makespan


class ShardedBlobDB:
    """Scatter-gather facade over hash-partitioned ``BlobDB`` shards."""

    def __init__(self, n_shards: int = 4,
                 config: EngineConfig | None = None,
                 model: CostModel | None = None,
                 table: str = "blobs",
                 hasher_kind: str = "fast",
                 _shards: list[BlobDB] | None = None) -> None:
        self.config = config or EngineConfig()
        #: The router's cost model: fan-out charges and makespans land
        #: here; this clock is what a client of the sharded engine sees.
        self.model = model or CostModel()
        self.table = table
        if _shards is not None:
            self.shards = _shards
        else:
            # Each shard runs on its own clock but shares the router's
            # price list, so per-shard work is comparable and overridden
            # parameters apply everywhere.
            self.shards = [
                BlobDB(config=self.config,
                       model=CostModel(self.model.params))
                for _ in range(n_shards)
            ]
        self.n_shards = len(self.shards)
        self.router = ShardRouter(self.n_shards, self.model, hasher_kind)
        for shard in self.shards:
            if table not in shard.list_tables():
                shard.create_table(table)
        #: Makespan / serial-sum of the per-shard recovery that built
        #: this engine (0.0 unless constructed via :meth:`recover`).
        self.recovery_makespan_ns = 0.0
        self.recovery_serial_ns = 0.0

    # -- scatter-gather core -------------------------------------------------

    def _gather(self, shard_ids, runner) -> float:
        """Run ``runner(shard_id)`` on each shard's private clock.

        Returns the makespan over the touched shards and advances the
        router's clock by it — the scatter-gather latency a client
        observes.  Shards execute in sorted id order so the simulation
        is order-deterministic even though the model says "parallel".
        """
        ids = sorted(shard_ids)
        self.router.charge_fanout(len(ids))
        makespan = gather_makespan(
            self.model,
            [(sid, self.shards[sid].model.clock) for sid in ids], runner)
        if self.model.obs is not None:
            self.model.obs.observe("shard.imbalance",
                                   int(self.router.stats.imbalance() * 1000))
        return makespan

    def _upsert(self, shard: BlobDB, txn, key: bytes, data: bytes) -> None:
        if shard.exists(self.table, key):
            shard.delete_blob(txn, self.table, key)
        shard.put_blob(txn, self.table, key, data)

    # -- single-key operations ------------------------------------------------

    def put(self, key: bytes, data: bytes) -> None:
        shard_id = self.router.shard_of(key)

        def run(sid: int) -> None:
            shard = self.shards[sid]
            with shard.transaction() as txn:
                self._upsert(shard, txn, key, data)
        self._gather([shard_id], run)

    def get(self, key: bytes) -> bytes:
        shard_id = self.router.shard_of(key)
        out: list[bytes] = []

        def run(sid: int) -> None:
            out.append(self.shards[sid].read_blob(self.table, key))
        self._gather([shard_id], run)
        return out[0]

    def delete(self, key: bytes) -> None:
        shard_id = self.router.shard_of(key)

        def run(sid: int) -> None:
            shard = self.shards[sid]
            with shard.transaction() as txn:
                shard.delete_blob(txn, self.table, key)
        self._gather([shard_id], run)

    def stat(self, key: bytes) -> int:
        shard_id = self.router.shard_of(key)
        out: list[int] = []

        def run(sid: int) -> None:
            out.append(self.shards[sid].get_state(self.table, key).size)
        self._gather([shard_id], run)
        return out[0]

    def exists(self, key: bytes) -> bool:
        return self.shards[self.router.shard_of(key)].exists(self.table, key)

    # -- scatter-gather batches ------------------------------------------------

    def multiget(self, keys: list[bytes]) -> list[bytes]:
        """Read a batch; latency is the slowest shard's sub-batch."""
        parts = self.router.partition(list(keys))
        results: list[bytes | None] = [None] * len(keys)

        def run(sid: int) -> None:
            shard = self.shards[sid]
            for pos, key in parts[sid]:
                results[pos] = shard.read_blob(self.table, key)
        self._gather(parts.keys(), run)
        return results  # type: ignore[return-value]

    def multiput(self, items: list[tuple[bytes, bytes]]) -> None:
        """Write a batch: one transaction per touched shard.

        Each shard commits its whole sub-batch atomically (its own WAL,
        one group-commit window); cross-shard atomicity is explicitly
        *not* promised — the router is a client of N independent
        engines, not a distributed transaction coordinator.
        """
        items = list(items)
        parts = self.router.partition([key for key, _ in items])

        def run(sid: int) -> None:
            shard = self.shards[sid]
            with shard.transaction() as txn:
                for pos, key in parts[sid]:
                    self._upsert(shard, txn, key, items[pos][1])
        self._gather(parts.keys(), run)

    def scan(self, start: bytes | None = None,
             end: bytes | None = None) -> list[tuple[bytes, object]]:
        """Scatter the scan to every shard, gather a key-ordered merge."""
        per_shard: list[list[tuple[bytes, object]]] = \
            [[] for _ in self.shards]

        def run(sid: int) -> None:
            per_shard[sid] = list(
                self.shards[sid].scan(self.table, start, end))
        self._gather(range(self.n_shards), run)
        merged: list[tuple[bytes, object]] = []
        for rows in per_shard:
            merged.extend(rows)
        merged.sort(key=lambda kv: kv[0])
        # The gather-side merge is router CPU, one comparison per row.
        self.model.cpu(len(merged) * self.model.params.shard_route_ns)
        return merged

    def drain_commit_window(self) -> None:
        """Settle every shard's open group-commit window (makespan)."""
        def run(sid: int) -> None:
            self.shards[sid].drain_commit_window()
        self._gather(range(self.n_shards), run)

    # -- crash & recovery -------------------------------------------------------

    def crash(self):
        """Drop all volatile state; returns the surviving shard devices."""
        return [shard.crash() for shard in self.shards]

    @classmethod
    def recover(cls, devices, config: EngineConfig,
                model: CostModel | None = None, table: str = "blobs",
                hasher_kind: str = "fast") -> "ShardedBlobDB":
        """Rebuild from crashed shard devices; recovery runs per shard.

        Every shard replays its own WAL on its own clock, so total
        restart time is the *makespan* over shards — the near-linear
        recovery speedup that motivates partitioned logs.  Both the
        makespan and the serial sum are recorded so callers can report
        the speedup.
        """
        shards: list[BlobDB] = []
        makespan = 0.0
        serial = 0.0
        for device in devices:
            shard_model = device.model
            start_ns = shard_model.clock.now_ns
            shards.append(BlobDB.recover(device, config, model=shard_model))
            elapsed = shard_model.clock.now_ns - start_ns
            serial += elapsed
            makespan = max(makespan, elapsed)
        sdb = cls(config=config, model=model, table=table,
                  hasher_kind=hasher_kind, _shards=shards)
        sdb.model.shard_fanout(len(shards))
        sdb.model.clock.advance(makespan)
        sdb.recovery_makespan_ns = makespan
        sdb.recovery_serial_ns = serial
        if sdb.model.obs is not None:
            sdb.model.obs.observe("shard.recovery_makespan_ns", makespan)
        return sdb

    # -- introspection ----------------------------------------------------------

    def shard_reports(self) -> list[EngineReport]:
        return [shard.stats_report() for shard in self.shards]

    def stats_report(self) -> EngineReport:
        """Aggregate per-shard counters plus the shard-balance picture."""
        reports = self.shard_reports()
        agg = EngineReport(shard_count=self.n_shards,
                           shard_fanout_batches=self.router.stats
                           .fanout_batches,
                           shard_routed_keys=self.router.stats.routed_keys,
                           shard_imbalance=self.router.stats.imbalance(),
                           shard_keys_per_shard=list(
                               self.router.stats.per_shard_keys))
        for rep in reports:
            agg.accumulate(rep)
        # Ratios recomputed from summed raw counters, not averaged.
        hits = sum(s.pool.stats.hits for s in self.shards)
        misses = sum(s.pool.stats.misses for s in self.shards)
        agg.pool_hit_ratio = hits / (hits + misses) if hits + misses else 0.0
        if agg.io_requests_in:
            agg.io_coalesce_ratio = \
                (agg.io_requests_in - agg.io_requests_out) \
                / agg.io_requests_in
        utils = [s.allocator.utilization() for s in self.shards]
        agg.allocator_utilization = sum(utils) / len(utils) if utils else 0.0
        agg.simulated_seconds = self.model.clock.now_s
        return agg
