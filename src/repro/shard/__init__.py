"""Sharded engine: hash-partitioned shards with scatter-gather pricing.

A single engine is bounded by one WAL, one buffer pool, and one device
queue.  This package partitions the keyspace by content hash across N
fully independent :class:`~repro.db.database.BlobDB` shards — each with
its own :class:`SimulatedNVMe`, WAL, buffer pool, and I/O scheduler —
and prices cross-shard batches the way the device layer prices
overlapped NVMe commands: parallel work pays the slowest participant
(the *makespan*), not the sum.

* :class:`ShardRouter` — deterministic key→shard assignment (SHA-256
  content hash, ``repro.core.hashing``), routing charged per key;
* :class:`ShardedBlobDB` — scatter-gather ``multiget`` / ``multiput`` /
  ``scan``, per-shard crash recovery with makespan pricing, aggregated
  :class:`~repro.db.stats.EngineReport` with a shard-balance line.

See ``docs/sharding.md`` for the design and its caveats (skew!).
"""

from repro.shard.router import RouterStats, ShardRouter
from repro.shard.sharded import ShardedBlobDB

__all__ = ["ShardRouter", "RouterStats", "ShardedBlobDB"]
