"""Reproduction of "Why Files If You Have a DBMS?" (ICDE 2024).

Public API quick reference::

    from repro import BlobDB, EngineConfig, FuseMount

    db = BlobDB(EngineConfig())
    db.create_table("image")
    with db.transaction() as txn:
        db.put_blob(txn, "image", b"cat.jpg", image_bytes)

    mount = FuseMount(db)
    with mount.open("/image/cat.jpg") as f:   # unmodified file code
        data = f.read()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.
"""

from repro.core import (
    BlobState,
    BlobStateComparator,
    ExtentAllocator,
    ExtentTier,
    FibonacciTier,
    PowerOfTwoTier,
    StorageFull,
)
from repro.db import (
    BlobDB,
    BlobStateIndex,
    EngineConfig,
    PrefixIndex,
    SemanticIndex,
    Transaction,
)
from repro.fuse import BlobFuse, FuseMount
from repro.sim import CostModel, CostParams, VirtualClock, WorkerSim
from repro.storage import SimulatedNVMe

__version__ = "1.0.0"

__all__ = [
    "BlobDB",
    "EngineConfig",
    "Transaction",
    "BlobState",
    "BlobStateComparator",
    "BlobStateIndex",
    "PrefixIndex",
    "SemanticIndex",
    "ExtentTier",
    "PowerOfTwoTier",
    "FibonacciTier",
    "ExtentAllocator",
    "StorageFull",
    "BlobFuse",
    "FuseMount",
    "CostModel",
    "CostParams",
    "VirtualClock",
    "WorkerSim",
    "SimulatedNVMe",
    "__version__",
]
