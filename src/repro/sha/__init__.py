"""Resumable SHA-256.

The paper's Blob State stores the *intermediate* SHA-256 digest — the
chaining value before the final padded block — so that appending to a
BLOB can resume hashing without re-reading any of the existing content
(Section III-B/III-D).  Python's ``hashlib`` cannot export intermediate
state, so :mod:`repro.sha.sha256` implements SHA-256 from scratch with
``state()`` / ``resume()``, validated against ``hashlib`` by the tests.

:mod:`repro.sha.fast` provides a drop-in hashlib-backed implementation
for benchmarks: identical digests, resumable via a live-object registry,
with a documented rehash fallback after state loss (e.g. a simulated
crash).
"""

from repro.sha.sha256 import Sha256, Sha256State
from repro.sha.fast import FastSha256

__all__ = ["Sha256", "Sha256State", "FastSha256"]
