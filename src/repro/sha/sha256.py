"""Pure-Python SHA-256 (FIPS 180-4) with exportable intermediate state.

This is the reference hasher for the reproduction: Blob State persists
:class:`Sha256State` (the 32-byte chaining value plus the processed byte
count and the unprocessed tail), and a later append resumes from it —
the mechanism behind the paper's O(append) BLOB-growth cost.

Correctness is property-tested against ``hashlib.sha256`` on arbitrary
inputs and arbitrary split points (``tests/test_sha256.py``).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

_MASK32 = 0xFFFFFFFF

#: SHA-256 initial hash values (FIPS 180-4 section 5.3.3).
_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

#: SHA-256 round constants (FIPS 180-4 section 4.2.2).
_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)


def _compress(h: tuple[int, ...], block: bytes | memoryview) -> tuple[int, ...]:
    """One SHA-256 compression of a 64-byte ``block`` into state ``h``."""
    w = list(struct.unpack(">16I", block))
    for i in range(16, 64):
        x = w[i - 15]
        s0 = ((x >> 7 | x << 25) ^ (x >> 18 | x << 14) ^ (x >> 3)) & _MASK32
        y = w[i - 2]
        s1 = ((y >> 17 | y << 15) ^ (y >> 19 | y << 13) ^ (y >> 10)) & _MASK32
        w.append((w[i - 16] + s0 + w[i - 7] + s1) & _MASK32)

    a, b, c, d, e, f, g, hh = h
    for i in range(64):
        s1 = ((e >> 6 | e << 26) ^ (e >> 11 | e << 21) ^ (e >> 25 | e << 7)) & _MASK32
        ch = (e & f) ^ (~e & g)
        t1 = (hh + s1 + ch + _K[i] + w[i]) & _MASK32
        s0 = ((a >> 2 | a << 30) ^ (a >> 13 | a << 19) ^ (a >> 22 | a << 10)) & _MASK32
        maj = (a & b) ^ (a & c) ^ (b & c)
        t2 = (s0 + maj) & _MASK32
        hh, g, f, e, d, c, b, a = (
            g, f, e, (d + t1) & _MASK32, c, b, a, (t1 + t2) & _MASK32,
        )
    return (
        (h[0] + a) & _MASK32, (h[1] + b) & _MASK32,
        (h[2] + c) & _MASK32, (h[3] + d) & _MASK32,
        (h[4] + e) & _MASK32, (h[5] + f) & _MASK32,
        (h[6] + g) & _MASK32, (h[7] + hh) & _MASK32,
    )


@dataclass(frozen=True)
class Sha256State:
    """Serializable intermediate SHA-256 state.

    ``chaining`` is the 32-byte intermediate digest the paper stores in
    Blob State; ``length`` is the total bytes absorbed so far and ``tail``
    is the (< 64 B) unprocessed remainder of the last partial block.
    """

    chaining: bytes
    length: int
    tail: bytes

    SERIALIZED_SIZE = 32 + 8 + 1 + 63

    def serialize(self) -> bytes:
        """Fixed-size binary encoding (104 bytes)."""
        if len(self.tail) > 63:
            raise ValueError("tail must be shorter than one block")
        return (self.chaining
                + struct.pack(">QB", self.length, len(self.tail))
                + self.tail.ljust(63, b"\x00"))

    @classmethod
    def deserialize(cls, raw: bytes | memoryview) -> "Sha256State":
        raw = bytes(raw)
        if len(raw) != cls.SERIALIZED_SIZE:
            raise ValueError(f"expected {cls.SERIALIZED_SIZE} bytes, got {len(raw)}")
        chaining = raw[:32]
        length, tail_len = struct.unpack(">QB", raw[32:41])
        return cls(chaining=chaining, length=length, tail=raw[41:41 + tail_len])


class Sha256:
    """Incremental SHA-256 with ``state()`` export and ``resume()`` import."""

    block_size = 64
    digest_size = 32
    name = "sha256"

    def __init__(self, data: bytes = b"") -> None:
        self._h = _H0
        self._length = 0
        self._tail = b""
        if data:
            self.update(data)

    def update(self, data: bytes | bytearray | memoryview) -> None:
        """Absorb ``data`` into the hash."""
        data = bytes(data)
        self._length += len(data)
        buf = self._tail + data
        nblocks = len(buf) // 64
        view = memoryview(buf)
        h = self._h
        for i in range(nblocks):
            h = _compress(h, view[i * 64:(i + 1) * 64])
        self._h = h
        self._tail = bytes(view[nblocks * 64:])

    def digest(self) -> bytes:
        """Return the final 32-byte digest (does not consume the hasher)."""
        # Padding: 0x80, zeros, 8-byte big-endian bit length.
        bitlen = self._length * 8
        pad_zero = (55 - self._length) % 64
        padded = self._tail + b"\x80" + b"\x00" * pad_zero + struct.pack(">Q", bitlen)
        h = self._h
        view = memoryview(padded)
        for i in range(len(padded) // 64):
            h = _compress(h, view[i * 64:(i + 1) * 64])
        return struct.pack(">8I", *h)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def copy(self) -> "Sha256":
        clone = Sha256()
        clone._h = self._h
        clone._length = self._length
        clone._tail = self._tail
        return clone

    # -- resumable-state interface -------------------------------------------

    def state(self) -> Sha256State:
        """Export the intermediate state (storable in a Blob State)."""
        return Sha256State(
            chaining=struct.pack(">8I", *self._h),
            length=self._length,
            tail=self._tail,
        )

    @classmethod
    def resume(cls, state: Sha256State) -> "Sha256":
        """Reconstruct a hasher from an exported intermediate state."""
        if len(state.chaining) != 32:
            raise ValueError("chaining value must be 32 bytes")
        if state.length % 64 != len(state.tail) % 64:
            raise ValueError("tail length inconsistent with total length")
        hasher = cls()
        hasher._h = struct.unpack(">8I", state.chaining)
        hasher._length = state.length
        hasher._tail = state.tail
        return hasher

    @property
    def length(self) -> int:
        """Total bytes absorbed so far."""
        return self._length
