"""hashlib-backed hasher with the resumable interface of :class:`Sha256`.

Pure-Python SHA-256 runs at roughly 1 MB/s, which would dominate the wall
time of benchmarks hashing multi-megabyte BLOBs.  ``FastSha256`` produces
bit-identical digests via ``hashlib`` and supports ``state()``/``resume()``
through a process-local registry of live hasher objects:

* ``state()`` registers a ``hashlib`` copy under a token and returns a
  :class:`~repro.sha.sha256.Sha256State` whose ``chaining`` field carries
  the token (hashlib cannot export real chaining values).
* ``resume()`` looks the token up and continues from the copy.
* If the token is gone — e.g. the state was recovered from a simulated
  crash, which drops all volatile state — ``resume()`` raises
  :class:`StateLost` and the caller (the blob manager) falls back to
  re-hashing from the BLOB content.

Tests exercising the *algorithmic* resumable-hashing property use the
reference :class:`~repro.sha.sha256.Sha256`; this class exists so that
benchmark wall time stays sane without changing any digest.
"""

from __future__ import annotations

import hashlib
import itertools
import struct

from repro.sha.sha256 import Sha256State

_TOKEN_PREFIX = b"FASTSHA*"


class StateLost(Exception):
    """The referenced intermediate state is no longer available."""


class _Registry:
    """Process-local store of live hashlib objects keyed by token."""

    def __init__(self) -> None:
        self._items: dict[int, "hashlib._Hash"] = {}
        self._ids = itertools.count(1)

    def put(self, hasher: "hashlib._Hash") -> int:
        token = next(self._ids)
        self._items[token] = hasher
        return token

    def get(self, token: int) -> "hashlib._Hash":
        try:
            return self._items[token]
        except KeyError:
            raise StateLost(f"intermediate state {token} lost") from None

    def drop_all(self) -> None:
        """Simulate a crash: every live intermediate state vanishes."""
        self._items.clear()


_registry = _Registry()


def simulate_state_loss() -> None:
    """Drop all registered intermediate states (crash injection hook)."""
    _registry.drop_all()


class FastSha256:
    """Drop-in replacement for :class:`~repro.sha.sha256.Sha256`."""

    block_size = 64
    digest_size = 32
    name = "sha256"

    def __init__(self, data: bytes = b"") -> None:
        self._inner = hashlib.sha256()
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes | bytearray | memoryview) -> None:
        self._inner.update(data)
        self._length += len(data)

    def digest(self) -> bytes:
        return self._inner.digest()

    def hexdigest(self) -> str:
        return self._inner.hexdigest()

    def copy(self) -> "FastSha256":
        clone = FastSha256()
        clone._inner = self._inner.copy()
        clone._length = self._length
        return clone

    def state(self) -> Sha256State:
        """Register a live copy and return a token-bearing state record."""
        token = _registry.put(self._inner.copy())
        chaining = _TOKEN_PREFIX + struct.pack(">Q", token) + b"\x00" * 16
        return Sha256State(chaining=chaining, length=self._length, tail=b"")

    @classmethod
    def resume(cls, state: Sha256State) -> "FastSha256":
        """Continue from a previously exported state.

        Raises :class:`StateLost` when the live object behind the token is
        gone (crash simulation) — callers must then re-hash from content.
        """
        if not state.chaining.startswith(_TOKEN_PREFIX):
            raise StateLost("state was not produced by FastSha256")
        (token,) = struct.unpack(">Q", state.chaining[8:16])
        hasher = cls()
        hasher._inner = _registry.get(token).copy()
        hasher._length = state.length
        return hasher

    @property
    def length(self) -> int:
        return self._length
