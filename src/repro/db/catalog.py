"""Checkpoint catalog: binary snapshot of tables + allocator state.

A checkpoint serializes the whole logical state (table contents, the
allocator's bump pointer and free lists, transaction-id high-water mark)
into one of two alternating slots, then atomically flips the superblock.
Recovery loads the snapshot and replays only the WAL tail — which is why
less WAL traffic (the paper's single-flush logging) means fewer and
cheaper checkpoints.

Table values are tagged: ``S`` marks a serialized Blob State, ``V`` a
plain (inline) value.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.core.blob_state import BlobState

_MAGIC = b"BLOBCAT1"
_SUPER_MAGIC = b"BLOBDB01"

TAG_STATE = 0x53   # 'S'
TAG_VALUE = 0x56   # 'V'


def encode_value(value) -> bytes:
    """Tag-encode a table value (Blob State or inline bytes)."""
    if isinstance(value, BlobState):
        return bytes([TAG_STATE]) + value.serialize()
    if isinstance(value, (bytes, bytearray)):
        return bytes([TAG_VALUE]) + bytes(value)
    raise TypeError(f"unsupported table value type {type(value).__name__}")


def decode_value(raw: bytes):
    if not raw:
        raise ValueError("empty encoded value")
    tag, body = raw[0], raw[1:]
    if tag == TAG_STATE:
        return BlobState.deserialize(body)
    if tag == TAG_VALUE:
        return body
    raise ValueError(f"unknown value tag {tag:#x}")


def _w_bytes(out: bytearray, part: bytes) -> None:
    out += struct.pack(">I", len(part))
    out += part


class _Reader:
    def __init__(self, raw: bytes) -> None:
        self.raw = raw
        self.off = 0

    def bytes_(self) -> bytes:
        (n,) = struct.unpack_from(">I", self.raw, self.off)
        self.off += 4
        part = self.raw[self.off:self.off + n]
        if len(part) != n:
            raise ValueError("truncated catalog")
        self.off += n
        return part

    def u64(self) -> int:
        (v,) = struct.unpack_from(">Q", self.raw, self.off)
        self.off += 8
        return v


@dataclass
class CatalogSnapshot:
    """Everything a checkpoint persists."""

    checkpoint_id: int
    next_txn_id: int
    allocator_next_pid: int
    free_extents: dict[int, list[int]] = field(default_factory=dict)
    free_tails: dict[int, list[int]] = field(default_factory=dict)
    #: table name -> list of (key, encoded value)
    tables: dict[str, list[tuple[bytes, bytes]]] = field(default_factory=dict)

    def serialize(self) -> bytes:
        out = bytearray(_MAGIC)
        out += struct.pack(">QQQ", self.checkpoint_id, self.next_txn_id,
                           self.allocator_next_pid)
        out += struct.pack(">I", len(self.free_extents))
        for tier, pids in sorted(self.free_extents.items()):
            out += struct.pack(">II", tier, len(pids))
            for pid in pids:
                out += struct.pack(">Q", pid)
        out += struct.pack(">I", len(self.free_tails))
        for npages, pids in sorted(self.free_tails.items()):
            out += struct.pack(">II", npages, len(pids))
            for pid in pids:
                out += struct.pack(">Q", pid)
        out += struct.pack(">I", len(self.tables))
        for name, rows in sorted(self.tables.items()):
            _w_bytes(out, name.encode())
            out += struct.pack(">I", len(rows))
            for key, value in rows:
                _w_bytes(out, key)
                _w_bytes(out, value)
        return bytes(out) + struct.pack(">I", zlib.crc32(bytes(out)))

    @classmethod
    def deserialize(cls, raw: bytes) -> "CatalogSnapshot":
        if len(raw) < len(_MAGIC) + 4 or raw[:len(_MAGIC)] != _MAGIC:
            raise ValueError("not a catalog snapshot")
        body, (crc,) = raw[:-4], struct.unpack(">I", raw[-4:])
        if zlib.crc32(body) != crc:
            raise ValueError("catalog snapshot CRC mismatch")
        reader = _Reader(body)
        reader.off = len(_MAGIC)
        checkpoint_id = reader.u64()
        next_txn_id = reader.u64()
        allocator_next_pid = reader.u64()
        snap = cls(checkpoint_id=checkpoint_id, next_txn_id=next_txn_id,
                   allocator_next_pid=allocator_next_pid)
        (n_tiers,) = struct.unpack_from(">I", body, reader.off)
        reader.off += 4
        for _ in range(n_tiers):
            tier, n = struct.unpack_from(">II", body, reader.off)
            reader.off += 8
            pids = [reader.u64() for _ in range(n)]
            snap.free_extents[tier] = pids
        (n_sizes,) = struct.unpack_from(">I", body, reader.off)
        reader.off += 4
        for _ in range(n_sizes):
            npages, n = struct.unpack_from(">II", body, reader.off)
            reader.off += 8
            snap.free_tails[npages] = [reader.u64() for _ in range(n)]
        (n_tables,) = struct.unpack_from(">I", body, reader.off)
        reader.off += 4
        for _ in range(n_tables):
            name = reader.bytes_().decode()
            (n_rows,) = struct.unpack_from(">I", body, reader.off)
            reader.off += 4
            rows = [(reader.bytes_(), reader.bytes_()) for _ in range(n_rows)]
            snap.tables[name] = rows
        return snap


@dataclass
class Superblock:
    """Page 0: points at the live catalog slot (atomically switched)."""

    active_slot: int = 0          # 0 = A, 1 = B; -1 = no checkpoint yet
    catalog_len: int = 0
    checkpoint_id: int = 0

    _STRUCT = struct.Struct(">8sbQQ I")

    def serialize(self, page_size: int) -> bytes:
        body = struct.pack(">8sbQQ", _SUPER_MAGIC, self.active_slot,
                           self.catalog_len, self.checkpoint_id)
        raw = body + struct.pack(">I", zlib.crc32(body))
        return raw.ljust(page_size, b"\x00")

    @classmethod
    def deserialize(cls, raw: bytes) -> "Superblock":
        body_len = struct.calcsize(">8sbQQ")
        body = raw[:body_len]
        (crc,) = struct.unpack_from(">I", raw, body_len)
        if zlib.crc32(body) != crc:
            raise ValueError("superblock CRC mismatch")
        magic, slot, cat_len, ckpt = struct.unpack(">8sbQQ", body)
        if magic != _SUPER_MAGIC:
            raise ValueError("not a BlobDB superblock")
        return cls(active_slot=slot, catalog_len=cat_len, checkpoint_id=ckpt)
