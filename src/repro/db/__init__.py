"""BlobDB: the transactional engine facade.

This package wires the paper's pieces into a usable database:

* :class:`BlobDB` — tables, ACID transactions, BLOB operations, crash
  and recovery entry points;
* :class:`EngineConfig` — every knob the evaluation varies (buffer pool
  kind, logging policy, tail extents, hasher, worker-local aliasing size);
* indexes — the Blob State index, the prefix-index baseline, and the
  semantic (expression) index of Section III-F;
* 2PL locking on Blob State records (Section III-H).
"""

from repro.db.config import EngineConfig
from repro.db.database import BlobDB
from repro.db.errors import (
    BlobTooBigError,
    ChecksumMismatchError,
    DatabaseError,
    DeviceIOError,
    DuplicateKeyError,
    KeyNotFoundError,
    RemoteProtocolError,
    RetriesExhaustedError,
    TableNotFoundError,
    TransactionConflict,
    TransactionStateError,
    TransientError,
    TransientNetworkError,
    WalCorruptionError,
)
from repro.db.index import BlobStateIndex, PrefixIndex, SemanticIndex
from repro.db.transaction import LockTable, Transaction

__all__ = [
    "BlobDB",
    "EngineConfig",
    "Transaction",
    "LockTable",
    "BlobStateIndex",
    "PrefixIndex",
    "SemanticIndex",
    "DatabaseError",
    "TableNotFoundError",
    "KeyNotFoundError",
    "DuplicateKeyError",
    "TransactionConflict",
    "TransactionStateError",
    "BlobTooBigError",
    "TransientError",
    "DeviceIOError",
    "TransientNetworkError",
    "ChecksumMismatchError",
    "WalCorruptionError",
    "RetriesExhaustedError",
    "RemoteProtocolError",
]
