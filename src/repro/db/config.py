"""Engine configuration: every knob the paper's evaluation varies."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hashing import HASHER_KINDS
from repro.storage.device import CapabilityError

POOL_KINDS = ("vmcache", "hashtable")
LOG_POLICIES = ("async-blob", "physlog")
CONCURRENCY_MODES = ("2pl", "occ")
WAL_PLACEMENTS = ("auto", "pmem", "nvme")
#: Relation-index engines: the accepted set, the validation error text,
#: and the ablation/bench sweeps all derive from this one registry.
INDEX_ENGINES = ("btree", "art", "learned")


@dataclass
class EngineConfig:
    """Configuration of a :class:`~repro.db.database.BlobDB` instance.

    The defaults describe ``Our`` in the paper: vmcache+exmap buffer
    manager, asynchronous single-flush BLOB logging, 10-tiers-per-level
    extent tiers, no tail extents.  ``Our.ht`` is ``pool="hashtable"``;
    ``Our.physlog`` is ``log_policy="physlog"``.
    """

    page_size: int = 4096
    #: Total simulated device size in pages (default 256 MiB).
    device_pages: int = 65536
    #: Pages of the WAL ring region.
    wal_pages: int = 2048
    #: Pages reserved for each of the two catalog checkpoint slots.
    catalog_pages: int = 1024
    #: Buffer pool capacity in pages (default 128 MiB).
    buffer_pool_pages: int = 32768
    #: WAL buffer in bytes; physlog segments BLOBs through this.
    wal_buffer_bytes: int = 1 << 20
    pool: str = "vmcache"
    log_policy: str = "async-blob"
    hasher: str = "fast"
    #: Concurrency control on the Blob State relation (Section III-H):
    #: strict 2PL with no-wait conflicts, or OCC (reads never block;
    #: commit-time validation of the read set, Silo-style write markers).
    concurrency: str = "2pl"
    #: Structure backing the relations — Section III-F: "DBMSs can use
    #: any data structure like B-Tree or ART".  One of
    #: :data:`INDEX_ENGINES`: "btree" (prefix-compressed B-Tree), "art"
    #: (adaptive radix tree), or "learned" (disk-resident updatable
    #: learned index, :mod:`repro.lindex`).
    index_structure: str = "btree"
    #: Learned-index error bound: a probe's last-mile search is confined
    #: to ``+-lindex_epsilon`` positions around the model's prediction.
    lindex_epsilon: int = 64
    #: Buffered updates a learned-index segment tolerates before it is
    #: deterministically retrained (merged, refitted, rewritten).
    lindex_delta_max: int = 32
    use_tail_extents: bool = False
    tiers_per_level: int = 10
    max_levels: int = 13
    n_workers: int = 1
    #: Worker-local aliasing area in pages (default 16 MiB).
    worker_local_pages: int = 4096
    eviction_seed: int = 0
    #: Checkpoint when the WAL region is this full (background trigger).
    checkpoint_threshold: float = 0.5
    #: Out-of-place writes (the paper's Section VI proposal): logical
    #: PIDs are decoupled from physical addresses, so extent allocation
    #: never fragments; physical space is exhausted only by live data.
    out_of_place: bool = False
    #: Logical address space as a multiple of the physical device when
    #: ``out_of_place`` is on.
    logical_space_multiplier: int = 8
    #: Attempts (total tries) for transient device/network faults before
    #: the engine degrades to a typed ``RetriesExhaustedError``.
    io_retries: int = 4
    #: First retry backoff in virtual nanoseconds (doubles per retry).
    io_retry_base_ns: float = 50_000.0
    #: Submission-queue depth of the pool's I/O scheduler: how many
    #: requests of one batch the cost model overlaps in flight.
    io_queue_depth: int = 32
    #: Largest coalesced transfer (pages) the scheduler builds from
    #: pid-adjacent requests.
    io_max_merge_pages: int = 64
    #: Cross-worker group-commit window in virtual ns.  0 (the default)
    #: flushes at every commit; > 0 lets commits inside the window share
    #: one WAL flush and one sorted extent batch.
    group_commit_window_ns: float = 0.0
    #: Byte-addressable PMem tier in pages (0 = no PMem tier).  When
    #: present it holds the superblock and catalog slots — and the WAL
    #: ring, unless ``wal_placement`` forces it back onto NVMe.
    pmem_pages: int = 0
    #: Where the WAL ring lives: "auto" prefers the PMem tier when one
    #: is configured and falls back to NVMe otherwise; "pmem" *requires*
    #: a tier (a :class:`CapabilityError` without one); "nvme" forces
    #: the block device even when PMem exists.
    wal_placement: str = "auto"
    #: Member devices of the striped data tier (1 = no striping).
    stripe_devices: int = 1
    #: Stripe unit in pages when ``stripe_devices > 1``.
    stripe_chunk_pages: int = 64

    def __post_init__(self) -> None:
        if self.io_retries < 1:
            raise ValueError("io_retries must be at least 1")
        if self.io_retry_base_ns < 0:
            raise ValueError("io_retry_base_ns must be non-negative")
        if self.io_queue_depth < 1:
            raise ValueError("io_queue_depth must be at least 1")
        if self.io_max_merge_pages < 1:
            raise ValueError("io_max_merge_pages must be at least 1")
        if self.group_commit_window_ns < 0:
            raise ValueError("group_commit_window_ns must be non-negative")
        if self.pool not in POOL_KINDS:
            raise ValueError(f"pool must be one of {POOL_KINDS}")
        if self.log_policy not in LOG_POLICIES:
            raise ValueError(f"log_policy must be one of {LOG_POLICIES}")
        if self.hasher not in HASHER_KINDS:
            raise ValueError(f"hasher must be one of {HASHER_KINDS}")
        if self.concurrency not in CONCURRENCY_MODES:
            raise ValueError(
                f"concurrency must be one of {CONCURRENCY_MODES}")
        if self.index_structure not in INDEX_ENGINES:
            raise ValueError(
                f"index_structure must be one of {INDEX_ENGINES}")
        if self.lindex_epsilon < 1:
            raise ValueError("lindex_epsilon must be at least 1")
        if self.lindex_delta_max < 1:
            raise ValueError("lindex_delta_max must be at least 1")
        if not 0.0 < self.checkpoint_threshold <= 1.0:
            raise ValueError("checkpoint_threshold must be in (0, 1]")
        if self.wal_placement not in WAL_PLACEMENTS:
            raise ValueError(
                f"wal_placement must be one of {WAL_PLACEMENTS}")
        if self.pmem_pages < 0:
            raise ValueError("pmem_pages must be non-negative")
        if self.wal_placement == "pmem" and self.pmem_pages == 0:
            raise CapabilityError(
                "wal_placement='pmem' needs a byte-addressable tier: "
                "set pmem_pages > 0 (or use 'auto' to fall back to NVMe)")
        if self.stripe_devices < 1:
            raise ValueError("stripe_devices must be at least 1")
        if self.stripe_chunk_pages < 1:
            raise ValueError("stripe_chunk_pages must be at least 1")
        if self.out_of_place and self.stripe_devices > 1:
            raise ValueError(
                "out_of_place remapping and striping are exclusive")
        if 0 < self.pmem_pages < self.min_pmem_pages:
            raise ValueError(
                f"pmem_pages={self.pmem_pages} too small for the metadata"
                f" regions (need at least {self.min_pmem_pages})")
        if self.data_pages <= 0:
            raise ValueError("device too small for the configured regions")

    # -- device layout -------------------------------------------------------
    #
    # Homogeneous (pmem_pages == 0) — everything on one block device:
    #
    #   [0]                superblock
    #   [1 .. C]           catalog slot A
    #   [1+C .. 1+2C]      catalog slot B
    #   [1+2C .. 1+2C+W]   WAL ring
    #   [rest]             data area (extent allocator)
    #
    # Heterogeneous (pmem_pages > 0) — the PMem tier holds the
    # superblock and both catalog slots (the pids above, on the *meta*
    # device) plus the WAL ring when ``wal_on_pmem``; the data device
    # then starts its extent area at pid 0.  With ``wal_placement=
    # "nvme"`` the ring occupies the data device's first ``wal_pages``.

    @property
    def catalog_a_pid(self) -> int:
        return 1

    @property
    def catalog_b_pid(self) -> int:
        return 1 + self.catalog_pages

    @property
    def wal_on_pmem(self) -> bool:
        """Placement decision: does the WAL ring land on the PMem tier?"""
        return self.pmem_pages > 0 and self.wal_placement != "nvme"

    @property
    def min_pmem_pages(self) -> int:
        """Smallest PMem tier holding the metadata (and WAL) regions."""
        need = 1 + 2 * self.catalog_pages
        if self.wal_placement != "nvme":
            need += self.wal_pages
        return need

    @property
    def wal_region_pid(self) -> int:
        """Start of the WAL ring *on the device that hosts it*."""
        if self.pmem_pages > 0 and not self.wal_on_pmem:
            return 0
        return 1 + 2 * self.catalog_pages

    @property
    def data_start_pid(self) -> int:
        if self.pmem_pages > 0:
            return 0 if self.wal_on_pmem else self.wal_pages
        return self.wal_region_pid + self.wal_pages

    @property
    def data_pages(self) -> int:
        return self.device_pages - self.data_start_pid
