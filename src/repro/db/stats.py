"""Engine observability: one structured snapshot of every subsystem.

``BlobDB.stats_report()`` gathers the counters a storage engineer would
put on a dashboard — buffer pool hit ratio, device write amplification
by category, WAL pressure and checkpoint counts, allocator recycling,
lock/OCC activity — in one plain-data object that examples and tests can
assert against.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EngineReport:
    """A point-in-time engine snapshot (all values cumulative)."""

    # Buffer pool
    pool_used_pages: int = 0
    pool_capacity_pages: int = 0
    pool_hit_ratio: float = 0.0
    pool_evictions: int = 0

    # Device
    device_bytes_written_by_category: dict[str, int] = field(
        default_factory=dict)
    device_bytes_read: int = 0
    device_write_requests: int = 0

    # Storage tiers (defaults describe the homogeneous single-NVMe case)
    storage_heterogeneous: bool = False
    wal_device_kind: str = "nvme"
    stripe_width: int = 1
    pmem_bytes_written: int = 0
    wal_byte_appends: int = 0

    # I/O scheduler (the pool's SQ/CQ front end)
    io_requests_in: int = 0
    io_requests_out: int = 0
    io_drains: int = 0
    io_coalesce_ratio: float = 0.0

    # WAL
    wal_records: int = 0
    wal_bytes_appended: int = 0
    wal_synchronous_flushes: int = 0
    wal_used_fraction: float = 0.0
    checkpoints_taken: int = 0

    # Allocator
    allocator_utilization: float = 0.0
    extents_fresh: int = 0
    extents_reused: int = 0
    extents_freed: int = 0

    # Transactions
    active_transactions: int = 0
    occ_aborts: int = 0

    # Faults and repair (zero on a healthy device)
    faults_injected: int = 0
    fault_breakdown: dict[str, int] = field(default_factory=dict)
    io_retries: int = 0
    io_retries_exhausted: int = 0
    checksum_pages_verified: int = 0
    checksum_failures: int = 0
    wal_corrupt_pages: int = 0
    wal_records_truncated: int = 0
    extents_quarantined: int = 0
    keys_quarantined: int = 0
    keys_repaired: int = 0
    scrub_blobs_scanned: int = 0
    scrub_corrupt_found: int = 0

    # Sharding (all zero/empty on a single-engine report)
    shard_count: int = 0
    shard_fanout_batches: int = 0
    shard_routed_keys: int = 0
    shard_imbalance: float = 0.0
    shard_keys_per_shard: list[int] = field(default_factory=list)

    # Replication (all zero without replica groups)
    replica_groups: int = 0
    replica_members: int = 0
    replica_quorum: int = 0
    replica_epoch: int = 0
    replica_acked_writes: int = 0
    replica_records_shipped: int = 0
    replica_ship_retries: int = 0
    replica_failovers: int = 0
    replica_rejoins: int = 0
    replica_fenced_ships: int = 0
    replica_truncated_records: int = 0
    replica_max_lag_records: int = 0
    replica_stale_reads: int = 0

    # Relation index (learned-tier counters zero on btree/art engines).
    # The structure starts unset ("") so aggregates adopt the first
    # member's engine; ``build_report`` always fills it from the config.
    index_structure: str = ""
    index_probes: int = 0
    index_delta_hits: int = 0
    index_segment_retrains: int = 0
    index_segments: int = 0
    index_entries: int = 0

    # Namespace accelerator (all zero without an attached interval index)
    ns_nodes: int = 0
    ns_range_scans: int = 0
    ns_renumbers: int = 0

    # Simulated time
    simulated_seconds: float = 0.0

    @property
    def extent_reuse_ratio(self) -> float:
        total = self.extents_fresh + self.extents_reused
        return self.extents_reused / total if total else 0.0

    @property
    def index_delta_hit_ratio(self) -> float:
        return self.index_delta_hits / self.index_probes \
            if self.index_probes else 0.0

    @property
    def pool_fill_fraction(self) -> float:
        if not self.pool_capacity_pages:
            return 0.0
        return self.pool_used_pages / self.pool_capacity_pages

    def accumulate(self, other: "EngineReport") -> None:
        """Fold one member engine's raw counters into this aggregate.

        Used by the sharded and replicated engines, whose reports sum
        the per-member engines.  Only *summable raw counters* are
        folded (plus max-style gauges like WAL pressure); ratios must be
        recomputed by the caller from the summed raws, never averaged.
        """
        self.pool_used_pages += other.pool_used_pages
        self.pool_capacity_pages += other.pool_capacity_pages
        self.pool_evictions += other.pool_evictions
        for cat, nbytes in other.device_bytes_written_by_category.items():
            self.device_bytes_written_by_category[cat] = \
                self.device_bytes_written_by_category.get(cat, 0) + nbytes
        self.device_bytes_read += other.device_bytes_read
        self.device_write_requests += other.device_write_requests
        self.storage_heterogeneous |= other.storage_heterogeneous
        if other.wal_device_kind != self.wal_device_kind:
            self.wal_device_kind = "mixed"
        self.stripe_width = max(self.stripe_width, other.stripe_width)
        self.pmem_bytes_written += other.pmem_bytes_written
        self.wal_byte_appends += other.wal_byte_appends
        self.io_requests_in += other.io_requests_in
        self.io_requests_out += other.io_requests_out
        self.io_drains += other.io_drains
        self.wal_records += other.wal_records
        self.wal_bytes_appended += other.wal_bytes_appended
        self.wal_synchronous_flushes += other.wal_synchronous_flushes
        self.wal_used_fraction = max(self.wal_used_fraction,
                                     other.wal_used_fraction)
        self.checkpoints_taken += other.checkpoints_taken
        self.extents_fresh += other.extents_fresh
        self.extents_reused += other.extents_reused
        self.extents_freed += other.extents_freed
        self.active_transactions += other.active_transactions
        self.occ_aborts += other.occ_aborts
        self.faults_injected += other.faults_injected
        for kind, count in other.fault_breakdown.items():
            self.fault_breakdown[kind] = \
                self.fault_breakdown.get(kind, 0) + count
        self.io_retries += other.io_retries
        self.io_retries_exhausted += other.io_retries_exhausted
        self.checksum_pages_verified += other.checksum_pages_verified
        self.checksum_failures += other.checksum_failures
        self.wal_corrupt_pages += other.wal_corrupt_pages
        self.wal_records_truncated += other.wal_records_truncated
        self.extents_quarantined += other.extents_quarantined
        self.keys_quarantined += other.keys_quarantined
        self.keys_repaired += other.keys_repaired
        self.scrub_blobs_scanned += other.scrub_blobs_scanned
        self.scrub_corrupt_found += other.scrub_corrupt_found
        if not self.index_structure:
            self.index_structure = other.index_structure
        elif other.index_structure != self.index_structure:
            self.index_structure = "mixed"
        self.index_probes += other.index_probes
        self.index_delta_hits += other.index_delta_hits
        self.index_segment_retrains += other.index_segment_retrains
        self.index_segments += other.index_segments
        self.index_entries += other.index_entries
        self.ns_nodes += other.ns_nodes
        self.ns_range_scans += other.ns_range_scans
        self.ns_renumbers += other.ns_renumbers

    def format(self) -> str:
        """Human-readable multi-line summary."""
        cats = ", ".join(f"{k}={v >> 10}K"
                         for k, v in sorted(
                             self.device_bytes_written_by_category.items())
                         if v)
        lines = [
            f"simulated time: {self.simulated_seconds:.3f}s",
            f"buffer pool:    {self.pool_used_pages}/"
            f"{self.pool_capacity_pages} pages "
            f"({self.pool_fill_fraction:.0%} full, "
            f"hit ratio {self.pool_hit_ratio:.1%}, "
            f"{self.pool_evictions} evictions)",
            f"device:         wrote [{cats}], "
            f"read {self.device_bytes_read >> 10}K "
            f"in {self.device_write_requests} write requests",
            f"io scheduler:   {self.io_requests_in} submitted -> "
            f"{self.io_requests_out} issued in {self.io_drains} drains "
            f"({self.io_coalesce_ratio:.0%} coalesced)",
            f"wal:            {self.wal_records} records, "
            f"{self.wal_bytes_appended >> 10}K appended, "
            f"{self.wal_synchronous_flushes} sync flushes, "
            f"{self.checkpoints_taken} checkpoints, "
            f"ring {self.wal_used_fraction:.0%} full",
            f"allocator:      {self.allocator_utilization:.1%} utilized, "
            f"{self.extents_fresh} fresh / {self.extents_reused} reused "
            f"({self.extent_reuse_ratio:.0%} recycling)",
            f"transactions:   {self.active_transactions} active, "
            f"{self.occ_aborts} OCC aborts",
            f"integrity:      {self.faults_injected} faults injected, "
            f"{self.io_retries} I/O retries "
            f"({self.io_retries_exhausted} exhausted), "
            f"{self.checksum_failures} checksum failures / "
            f"{self.checksum_pages_verified} pages verified, "
            f"{self.wal_records_truncated} WAL truncations, "
            f"{self.keys_repaired} keys repaired, "
            f"{self.keys_quarantined} keys "
            f"({self.extents_quarantined} extents) quarantined",
        ]
        # Storage tier line only when placement is non-trivial: a plain
        # single-NVMe engine must not print pmem/stripe noise.
        if self.storage_heterogeneous or self.stripe_width > 1:
            lines.append(
                f"storage:        wal on {self.wal_device_kind}, "
                f"data striped x{self.stripe_width}, "
                f"{self.pmem_bytes_written >> 10}K to pmem, "
                f"{self.wal_byte_appends} byte appends")
        # Shard balance only makes sense with at least two shards:
        # single-engine (or one-shard) reports must not divide by the
        # shard count or print a meaningless imbalance ratio.
        if self.shard_count >= 2:
            spread = "/".join(str(n) for n in self.shard_keys_per_shard)
            lines.append(
                f"shards:         {self.shard_count} shards, "
                f"{self.shard_routed_keys} keys routed "
                f"[{spread}] in {self.shard_fanout_batches} fan-outs, "
                f"imbalance {self.shard_imbalance:.2f}x")
        # Learned-index line only for that engine: btree/art reports must
        # not print segment/delta noise (and the delta ratio guards its
        # zero-probe denominator).
        if self.index_structure in ("learned", "mixed"):
            lines.append(
                f"index:          {self.index_structure}, "
                f"{self.index_segments} segments / "
                f"{self.index_entries} entries, "
                f"{self.index_probes} probes "
                f"({self.index_delta_hit_ratio:.0%} delta hits), "
                f"{self.index_segment_retrains} retrains")
        # Namespace line only when an interval index is attached.
        if self.ns_nodes or self.ns_range_scans:
            lines.append(
                f"namespace:      {self.ns_nodes} interval nodes, "
                f"{self.ns_range_scans} range scans, "
                f"{self.ns_renumbers} renumbers")
        # Replication line only for actual replica groups; a plain or
        # merely sharded engine must not print quorum/epoch noise.
        if self.replica_groups >= 1:
            lines.append(
                f"replication:    {self.replica_groups} group(s) x "
                f"{self.replica_members // max(self.replica_groups, 1)} "
                f"members, quorum {self.replica_quorum}, "
                f"epoch {self.replica_epoch}; "
                f"{self.replica_acked_writes} acked writes, "
                f"{self.replica_records_shipped} records shipped "
                f"({self.replica_ship_retries} retried), "
                f"{self.replica_failovers} failovers / "
                f"{self.replica_rejoins} rejoins, "
                f"{self.replica_fenced_ships} fenced ships, "
                f"{self.replica_truncated_records} divergent records "
                f"truncated, max lag {self.replica_max_lag_records}, "
                f"{self.replica_stale_reads} stale reads")
        return "\n".join(lines)


def build_report(db) -> EngineReport:
    """Collect an :class:`EngineReport` from a live engine."""
    from repro.storage.device import capabilities_of
    pool = db.pool
    device = db.device
    fault_stats = getattr(device, "fault_stats", None)
    integrity = getattr(device, "integrity", None)
    recovery = getattr(db, "recovery_info", None)
    wal_caps = capabilities_of(db.wal_device)
    index_probes = index_delta = index_retrains = 0
    index_segments = index_entries = 0
    if db.config.index_structure == "learned":
        for name in sorted(db._tables):
            tree = db._tables[name]
            tree_stats = tree.stats()
            index_probes += tree_stats.probe_count
            index_delta += tree_stats.delta_hit_count
            index_retrains += tree_stats.retrain_count
            index_segments += tree_stats.segment_count
            index_entries += tree_stats.entry_count
    ns = db.ns
    pmem_bytes = sum(
        sum(dev.stats.bytes_written_by_category.values())
        for dev in db.storage.devices
        if capabilities_of(dev).kind == "pmem")
    return EngineReport(
        pool_used_pages=pool.used_pages,
        pool_capacity_pages=pool.capacity_pages,
        pool_hit_ratio=pool.stats.hit_ratio,
        pool_evictions=pool.stats.evictions,
        device_bytes_written_by_category=dict(
            device.stats.bytes_written_by_category),
        device_bytes_read=device.stats.bytes_read,
        device_write_requests=device.stats.write_requests,
        storage_heterogeneous=db.storage.heterogeneous,
        wal_device_kind=wal_caps.kind,
        stripe_width=capabilities_of(device).stripe_width,
        pmem_bytes_written=pmem_bytes,
        wal_byte_appends=db.wal_device.stats.byte_append_requests,
        io_requests_in=pool.io.stats.requests_in,
        io_requests_out=pool.io.stats.requests_out,
        io_drains=pool.io.stats.drains,
        io_coalesce_ratio=pool.io.stats.coalesce_ratio,
        wal_records=db.wal.stats.records,
        wal_bytes_appended=db.wal.stats.bytes_appended,
        wal_synchronous_flushes=db.wal.stats.synchronous_flushes,
        wal_used_fraction=db.wal.used_fraction(),
        checkpoints_taken=db.checkpoints_taken,
        allocator_utilization=db.allocator.utilization(),
        extents_fresh=db.allocator.stats.fresh_extents,
        extents_reused=db.allocator.stats.reused_extents,
        extents_freed=db.allocator.stats.freed_extents,
        active_transactions=len(db._active),
        occ_aborts=db.occ_aborts,
        faults_injected=fault_stats.total if fault_stats else 0,
        fault_breakdown=fault_stats.as_dict() if fault_stats else {},
        io_retries=db.retry.stats.retries,
        io_retries_exhausted=db.retry.stats.exhausted,
        checksum_pages_verified=integrity.pages_verified if integrity else 0,
        checksum_failures=integrity.checksum_failures if integrity else 0,
        wal_corrupt_pages=recovery.wal_corrupt_pages if recovery else 0,
        wal_records_truncated=(recovery.wal_records_truncated
                               if recovery else 0),
        extents_quarantined=db.quarantined_extents,
        keys_quarantined=len(db._quarantined),
        keys_repaired=recovery.repaired_keys if recovery else 0,
        scrub_blobs_scanned=db.scrub_stats.blobs_scanned,
        scrub_corrupt_found=db.scrub_stats.corrupt_found,
        index_structure=db.config.index_structure,
        index_probes=index_probes,
        index_delta_hits=index_delta,
        index_segment_retrains=index_retrains,
        index_segments=index_segments,
        index_entries=index_entries,
        ns_nodes=ns.nodes if ns is not None else 0,
        ns_range_scans=ns.range_scans if ns is not None else 0,
        ns_renumbers=ns.renumbers if ns is not None else 0,
        simulated_seconds=db.model.clock.now_s,
    )
