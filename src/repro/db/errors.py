"""Exception hierarchy of the engine."""


class DatabaseError(Exception):
    """Base class for all engine errors."""


class TableNotFoundError(DatabaseError):
    """The referenced table does not exist."""


class KeyNotFoundError(DatabaseError):
    """The referenced key is not present in the table."""


class DuplicateKeyError(DatabaseError):
    """An insert collided with an existing primary key."""


class TransactionConflict(DatabaseError):
    """2PL no-wait: the lock is held by another transaction."""


class TransactionStateError(DatabaseError):
    """The transaction is not in a state that allows the operation."""


class BlobTooBigError(DatabaseError):
    """The BLOB exceeds a configured limit (used by DBMS baselines)."""


# -- storage-fault hierarchy --------------------------------------------------
#
# Faults split into *transient* ones (a retry of the same operation may
# succeed: a device returning EIO once, a dropped network exchange) and
# *persistent* ones (the bytes on storage are wrong: checksum mismatches,
# corrupted WAL regions).  Retry loops key off :class:`TransientError`;
# everything else must be repaired or reported, never retried blindly.


class TransientError(DatabaseError):
    """A fault that may clear on retry (base for retry policies)."""


class DeviceIOError(TransientError):
    """The device returned a transient I/O error (simulated EIO)."""


class TransientNetworkError(TransientError):
    """One request/response exchange was lost on the wire."""


class ChecksumMismatchError(DatabaseError):
    """Stored bytes do not match their recorded checksum.

    Raised instead of returning silently corrupt data: by a verifying
    device read when a page fails its per-page CRC32, and by the engine
    when a key has been quarantined because its content no longer
    matches the SHA-256 in its Blob State.
    """

    def __init__(self, message: str, pid: int | None = None) -> None:
        super().__init__(message)
        #: Page id of the first failing page, when known.
        self.pid = pid


class WalCorruptionError(DatabaseError):
    """The WAL ring is damaged in a way recovery cannot truncate away.

    Tail damage (a torn final flush) is handled by truncating the log at
    the first bad record; this error means valid committed records exist
    *beyond* the damaged region, so truncation would silently drop them.
    """


class RetriesExhaustedError(DatabaseError):
    """A transient fault persisted through every configured retry."""


class RemoteProtocolError(DatabaseError):
    """A remote request was malformed or addressed the wrong value kind."""


# -- replication hierarchy -----------------------------------------------------


class QuorumLostError(DatabaseError):
    """A write could not be acknowledged by the configured quorum.

    Raised by a replica group when too few members durably applied a
    shipped record (lost links, partitions, crashed members).  The write
    is *not acknowledged*: it may survive on the members that did apply
    it or be truncated as a divergent tail at the next failover — either
    way the client was never promised it.
    """


class StaleEpochError(DatabaseError):
    """A deposed primary tried to ship records under an old epoch.

    Epoch fencing: every shipped record carries the shipper's epoch, and
    members reject anything below their own — so a primary that was
    partitioned away (rather than crashed) cannot overwrite writes
    acknowledged by its successor.
    """
