"""Exception hierarchy of the engine."""


class DatabaseError(Exception):
    """Base class for all engine errors."""


class TableNotFoundError(DatabaseError):
    """The referenced table does not exist."""


class KeyNotFoundError(DatabaseError):
    """The referenced key is not present in the table."""


class DuplicateKeyError(DatabaseError):
    """An insert collided with an existing primary key."""


class TransactionConflict(DatabaseError):
    """2PL no-wait: the lock is held by another transaction."""


class TransactionStateError(DatabaseError):
    """The transaction is not in a state that allows the operation."""


class BlobTooBigError(DatabaseError):
    """The BLOB exceeds a configured limit (used by DBMS baselines)."""
