"""Transactions and 2PL locking on Blob State records (Section III-H).

The paper argues BLOB concurrency control reduces to single-version
concurrency control on the Blob State relation.  We implement strict
two-phase locking with shared/exclusive modes and a *no-wait* conflict
policy: a conflicting acquisition raises
:class:`~repro.db.errors.TransactionConflict` and the caller aborts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.buffer.frames import ExtentFrame
from repro.core.extent import Extent, TailExtent
from repro.db.errors import TransactionConflict, TransactionStateError
from repro.sim.cost import CostModel


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class _Lock:
    mode: LockMode
    holders: set[int] = field(default_factory=set)


class LockTable:
    """Shared/exclusive record locks keyed by ``(table, key)``."""

    def __init__(self, model: CostModel) -> None:
        self.model = model
        self._locks: dict[tuple[str, bytes], _Lock] = {}

    def acquire(self, txn_id: int, table: str, key: bytes,
                mode: LockMode) -> None:
        """No-wait acquisition; upgrades S->X when the holder is alone."""
        lock_key = (table, key)
        lock = self._locks.get(lock_key)
        if lock is None:
            self.model.latch(contended=False)
            self._locks[lock_key] = _Lock(mode=mode, holders={txn_id})
            return
        if txn_id in lock.holders:
            if mode is LockMode.EXCLUSIVE and lock.mode is LockMode.SHARED:
                if len(lock.holders) > 1:
                    self.model.latch(contended=True)
                    raise TransactionConflict(
                        f"txn {txn_id} cannot upgrade lock on {lock_key}")
                lock.mode = LockMode.EXCLUSIVE
            return
        if mode is LockMode.SHARED and lock.mode is LockMode.SHARED:
            self.model.latch(contended=False)
            lock.holders.add(txn_id)
            return
        self.model.latch(contended=True)
        raise TransactionConflict(
            f"txn {txn_id} blocked on {lock_key} "
            f"(held {lock.mode.value} by {sorted(lock.holders)})")

    def release_all(self, txn_id: int) -> None:
        dead = []
        for lock_key, lock in self._locks.items():
            lock.holders.discard(txn_id)
            if not lock.holders:
                dead.append(lock_key)
        for lock_key in dead:
            del self._locks[lock_key]

    def held_by(self, table: str, key: bytes) -> set[int]:
        lock = self._locks.get((table, key))
        return set(lock.holders) if lock else set()

    def __len__(self) -> int:
        return len(self._locks)


@dataclass
class UndoEntry:
    """Reverts one logical table change on abort."""

    table: str
    key: bytes
    #: Previous value (``None`` means the key did not exist before).
    old_value: Any


class Transaction:
    """State carried by one transaction between ``begin`` and commit/abort."""

    def __init__(self, txn_id: int) -> None:
        self.txn_id = txn_id
        self.status = TxnStatus.ACTIVE
        #: True once the begin record hit the WAL.  Begin is logged
        #: lazily, ahead of the first mutation record, so read-only
        #: transactions never touch the WAL at all.
        self.logged = False
        #: Dirty BLOB extents awaiting the commit-time single flush.
        self.pending_flush: list[ExtentFrame] = []
        #: Extents to publish to the free lists when the commit is durable
        #: (the paper's transaction-local temporary free list).
        self.pending_free: list[Extent] = []
        self.pending_free_tails: list[TailExtent] = []
        #: Extents allocated by this txn — reclaimed if it aborts.
        self.allocated: list[Extent] = []
        self.allocated_tails: list[TailExtent] = []
        #: Head PIDs whose buffer frames are dropped at commit.  Dropping
        #: earlier would destroy content an abort must restore (dirty
        #: physlog frames hold the only copy until their second write).
        self.pending_drop: list[int] = []
        #: Logical undo entries, newest last.
        self.undo: list[UndoEntry] = []
        #: Physlog only: content-bearing frames that stay dirty past
        #: commit (their second write happens at eviction/checkpoint).
        self.physlog_frames: list[ExtentFrame] = []
        #: Pre-images for in-place delta updates: (head_pid, offset, old).
        self.delta_undo: list[tuple[int, int, bytes]] = []
        #: OCC: record versions observed by reads; validated at commit.
        self.read_set: dict[tuple[str, bytes], int] = {}
        #: OCC: records written (their versions bump on commit).
        self.write_set: set[tuple[str, bytes]] = set()
        #: Quarantine flags this txn cleared (restored if it aborts).
        self.requarantine: list[tuple[str, bytes]] = []
        #: Namespace-accelerator events (op, table, key, size, etag),
        #: applied to ``db.ns`` only when this txn commits.
        self.ns_events: list[tuple[str, str, bytes, int, str]] = []

    def ensure_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionStateError(
                f"txn {self.txn_id} is {self.status.value}")

    def remember_flush(self, frames: list[ExtentFrame]) -> None:
        self.pending_flush.extend(frames)

    def remember_undo(self, table: str, key: bytes, old_value: Any) -> None:
        self.undo.append(UndoEntry(table=table, key=key, old_value=old_value))
        self.write_set.add((table, key))
