"""BlobDB: the transactional storage engine facade.

A :class:`BlobDB` owns one simulated device laid out as superblock /
catalog slots / WAL ring / data area, a buffer pool (vmcache or hash
table), the extent allocator, a WAL with group commit, and the BLOB
manager.  Tables map byte keys to either inline byte values or Blob
States; all mutations run under strict 2PL with logical undo.

Crash & recovery: :meth:`crash` drops every volatile structure and
returns the surviving device; :meth:`recover` rebuilds an engine from the
superblock, the latest catalog checkpoint, and the WAL tail — validating
every committed BLOB's SHA-256 exactly as Section III-C describes.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, replace as dc_replace
from typing import Iterator

from repro.btree import BTree
from repro.buffer.frames import BlobView
from repro.buffer.hashtable_pool import HashTablePool
from repro.buffer.vmcache import VmcachePool
from repro.core.allocator import ExtentAllocator
from repro.core.blob_manager import BlobManager
from repro.core.blob_state import BlobState
from repro.core.extent import Extent
from repro.core.log_policy import make_policy
from repro.core.tier import ExtentTier
from repro.db.catalog import CatalogSnapshot, Superblock, encode_value
from repro.db.config import EngineConfig
from repro.db.errors import (
    ChecksumMismatchError,
    DuplicateKeyError,
    KeyNotFoundError,
    TableNotFoundError,
    TransactionConflict,
    TransactionStateError,
)
from repro.db.transaction import LockMode, LockTable, Transaction, TxnStatus
from repro.sha.fast import simulate_state_loss
from repro.sim.cost import CostModel
from repro.storage.device import SimulatedNVMe
from repro.storage.factory import StorageSet, build_storage
from repro.wal.records import InsertRecord, DeleteRecord, TxnBeginRecord, UpdateRecord
from repro.wal.writer import WalFullError, WalWriter

#: System table listing user tables (so DDL survives recovery).
_TABLES_TABLE = "\x00tables"


@dataclass
class ScrubStats:
    """Counters of the background integrity scrub (:meth:`BlobDB.scrub`)."""

    blobs_scanned: int = 0
    bytes_scanned: int = 0
    corrupt_found: int = 0


class BlobDB:
    """The engine facade.  See the package docstring for the model."""

    def __init__(self, config: EngineConfig | None = None,
                 device: SimulatedNVMe | StorageSet | None = None,
                 model: CostModel | None = None,
                 _skip_format: bool = False) -> None:
        self.config = config or EngineConfig()
        self.model = model or CostModel()
        if device is None:
            storage = build_storage(self.config, self.model)
        elif isinstance(device, StorageSet):
            storage = device
        else:
            storage = StorageSet(data=device, meta=device, wal=device)
        #: The device set placement policy chose (data / meta / wal may
        #: alias); subsystems below bind to the tier they persist through.
        self.storage = storage
        #: Data tier: blobs and the extent area.
        self.device = storage.data
        #: Superblock + catalog checkpoint slots (PMem tier when present).
        self.meta_device = storage.meta
        #: The device hosting the WAL ring.
        self.wal_device = storage.wal
        cfg = self.config
        self.tiers = ExtentTier(tiers_per_level=cfg.tiers_per_level,
                                max_levels=cfg.max_levels)
        pool_cls = VmcachePool if cfg.pool == "vmcache" else HashTablePool
        pool_kwargs = {"eviction_seed": cfg.eviction_seed}
        if cfg.pool == "vmcache":
            pool_kwargs.update(n_workers=cfg.n_workers,
                               worker_local_pages=cfg.worker_local_pages)
        self.pool = pool_cls(self.device, self.model,
                             capacity_pages=cfg.buffer_pool_pages,
                             **pool_kwargs)
        self.pool.io.queue_depth = cfg.io_queue_depth
        self.pool.io.max_merge_pages = cfg.io_max_merge_pages
        # The data area spans the device's (possibly logical) page space.
        self.allocator = ExtentAllocator(
            self.tiers, cfg.data_start_pid,
            self.device.capacity_pages - cfg.data_start_pid,
            model=self.model)
        self.wal = WalWriter(self.wal_device, self.model,
                             region_pid=cfg.wal_region_pid,
                             region_pages=cfg.wal_pages,
                             buffer_bytes=cfg.wal_buffer_bytes,
                             checkpoint_cb=self._forced_checkpoint)
        # Shared bounded-retry policy for transient device faults, used
        # by the pool, the WAL writer, formatting, and checkpoints.
        # Imported lazily: faults.py imports repro.db.errors.
        from repro.storage.faults import RetryPolicy
        self.retry = RetryPolicy(self.model, attempts=cfg.io_retries,
                                 base_delay_ns=cfg.io_retry_base_ns)
        self.pool.retry = self.retry
        self.wal.retry = self.retry
        #: Keys whose durable content failed its digest and could not be
        #: repaired; reads surface ``ChecksumMismatchError``.
        self._quarantined: set[tuple[str, bytes]] = set()
        self.quarantined_extents = 0
        self.scrub_stats = ScrubStats()
        #: RecoveredState of the recovery that built this engine, if any.
        self.recovery_info = None
        self.blobs = BlobManager(self.pool, self.allocator, self.tiers,
                                 self.model, cfg.page_size,
                                 hasher_kind=cfg.hasher,
                                 use_tail_extents=cfg.use_tail_extents)
        self.policy = make_policy(cfg.log_policy, self.wal)
        self.policy.commit_window_ns = cfg.group_commit_window_ns
        self.locks = LockTable(self.model)
        self._tables: dict[str, BTree] = {
            _TABLES_TABLE: self._new_btree()}
        self._active: dict[int, Transaction] = {}
        self._next_txn_id = 1
        self._checkpoint_id = 0
        self.checkpoints_taken = 0
        #: OCC record versions (volatile: no transactions span a crash).
        self._versions: dict[tuple[str, bytes], int] = {}
        self.occ_aborts = 0
        #: Nullable namespace accelerator hook (interval numbering over
        #: the key hierarchy, :mod:`repro.namespace`).  When attached,
        #: committed key mutations are replayed into it; aborted
        #: transactions leave it untouched.
        self.ns = None
        if not _skip_format:
            self._format()

    def _new_btree(self):
        """Create a relation index (B-Tree, ART, or learned, per config)."""
        kind = self.config.index_structure
        if kind == "art":
            from repro.art import ArtTree
            return ArtTree(model=self.model)
        if kind == "learned":
            from repro.lindex import LearnedIndex
            return LearnedIndex(model=self.model,
                                epsilon=self.config.lindex_epsilon,
                                delta_max=self.config.lindex_delta_max)
        return BTree(node_bytes=self.config.page_size, model=self.model,
                     key_size=lambda k: len(k))

    def _format(self) -> None:
        super_block = Superblock(active_slot=-1, catalog_len=0,
                                 checkpoint_id=0)
        self.retry.run(lambda: self.meta_device.write(
            0, super_block.serialize(self.config.page_size),
            category="meta"))

    # -- DDL ------------------------------------------------------------------

    def create_table(self, name: str) -> None:
        """Create a table (auto-committed; survives recovery via the WAL)."""
        if not name or name.startswith("\x00"):
            raise ValueError("table names must be non-empty and not reserved")
        if name in self._tables:
            raise DuplicateKeyError(f"table {name!r} already exists")
        txn = self.begin()
        try:
            self._insert(txn, _TABLES_TABLE, name.encode(), b"")
            self._tables[name] = self._new_btree()
            self.commit(txn)
        except Exception:
            self._tables.pop(name, None)
            self.abort(txn)
            raise

    def drop_table(self, name: str) -> None:
        """Drop a table and free every BLOB it holds (auto-committed)."""
        if name not in self._tables or name.startswith("\x00"):
            raise TableNotFoundError(f"no such table: {name!r}")
        txn = self.begin()
        try:
            for key, _ in list(self._tables[name].scan()):
                self.delete(txn, name, key)
            self.delete(txn, _TABLES_TABLE, name.encode())
            self.commit(txn)
        except Exception:
            self.abort(txn)
            raise
        del self._tables[name]

    def list_tables(self) -> list[str]:
        return sorted(n for n in self._tables if not n.startswith("\x00"))

    def _table(self, name: str) -> BTree:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(f"no such table: {name!r}") from None

    # -- transaction control ------------------------------------------------------

    def begin(self) -> Transaction:
        txn = Transaction(self._next_txn_id)
        self._next_txn_id += 1
        self._active[txn.txn_id] = txn
        return txn

    def _ensure_begin(self, txn: Transaction) -> None:
        """Log the begin record lazily, ahead of the first mutation.

        Read-only transactions therefore never append to (or flush) the
        WAL; recovery still sees begin first for every logged txn.
        """
        if not txn.logged:
            txn.logged = True
            self.wal.append(TxnBeginRecord(txn_id=txn.txn_id))

    @property
    def _occ(self) -> bool:
        return self.config.concurrency == "occ"

    def commit(self, txn: Transaction) -> None:
        txn.ensure_active()
        obs = self.model.obs
        if obs is None:
            self._commit_body(txn)
            return
        obs.begin("txn.commit")
        try:
            self._commit_body(txn)
        finally:
            obs.end(txn=txn.txn_id)
            obs.count("txn.commits")

    def _commit_body(self, txn: Transaction) -> None:
        if self._occ:
            self._occ_validate(txn)
        self.policy.on_commit(txn, self.pool)
        # Drop the frames of replaced/deleted extents, then publish the
        # transaction-local temporary free list (III-D).  Order matters:
        # a reuser must find the frame gone before the PID is free.
        for pid in txn.pending_drop:
            self.pool.drop(pid)
        self.allocator.free_extents(txn.pending_free)
        for tail in txn.pending_free_tails:
            self.allocator.free_tail(tail)
        # Out-of-place devices reclaim the physical pages immediately.
        if hasattr(self.device, "trim"):
            for extent in txn.pending_free:
                self.device.trim(extent.pid, extent.npages)
            for tail in txn.pending_free_tails:
                self.device.trim(tail.pid, tail.npages)
        if self._occ:
            for record in txn.write_set:
                self._versions[record] = self._versions.get(record, 0) + 1
        if self.ns is not None and txn.ns_events:
            self.ns.apply_events(txn.ns_events)
        txn.status = TxnStatus.COMMITTED
        self.locks.release_all(txn.txn_id)
        del self._active[txn.txn_id]
        self._maybe_checkpoint()

    def _occ_validate(self, txn: Transaction) -> None:
        """Commit-time read-set validation (OCC, Section III-H).

        Reads took no locks; if any record this transaction read was
        overwritten by a committed writer since, the transaction aborts
        — the classic backward-validation rule.
        """
        for record, seen_version in txn.read_set.items():
            self.model.cpu(40.0)
            if self._versions.get(record, 0) != seen_version:
                self.occ_aborts += 1
                self.abort(txn)
                raise TransactionConflict(
                    f"txn {txn.txn_id} failed OCC validation on {record}")

    def abort(self, txn: Transaction) -> None:
        txn.ensure_active()
        obs = self.model.obs
        if obs is None:
            self._abort_body(txn)
            return
        obs.begin("txn.abort")
        try:
            self._abort_body(txn)
        finally:
            obs.end(txn=txn.txn_id)
            obs.count("txn.aborts")

    def _abort_body(self, txn: Transaction) -> None:
        self._quarantined.update(txn.requarantine)
        # Logical undo, newest first.
        for entry in reversed(txn.undo):
            tree = self._tables.get(entry.table)
            if tree is None:
                continue
            if entry.old_value is None:
                tree.delete(entry.key)
            else:
                tree.insert(entry.key, entry.old_value)
        # Physical undo of in-place deltas (frames never hit the device
        # pre-commit, so restoring the buffered bytes suffices).
        for pid, offset, old in reversed(txn.delta_undo):
            frame = self.pool.get_frame(pid)
            if frame is not None:
                frame.write_at(offset, old)
        # Reclaim extents this transaction allocated; they were never
        # reachable from durable state.  Frames of *pre-existing* extents
        # (delta-updated in place) are only unprotected, never dropped:
        # the restored row still points at them, and under physical
        # logging a dirty frame may hold the only copy of the content.
        allocated_pids = {e.pid for e in txn.allocated}
        allocated_pids.update(t.pid for t in txn.allocated_tails)
        for frame in txn.pending_flush + txn.physlog_frames:
            frame.prevent_evict = False
            if frame.head_pid in allocated_pids:
                frame.clean()
                self.pool.drop(frame.head_pid)
        self.allocator.free_extents(txn.allocated)
        for tail in txn.allocated_tails:
            self.allocator.free_tail(tail)
        self.policy.on_abort(txn, self.pool)
        txn.status = TxnStatus.ABORTED
        self.locks.release_all(txn.txn_id)
        del self._active[txn.txn_id]

    @contextlib.contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """``with db.transaction() as txn:`` — commit on success."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            if txn.status is TxnStatus.ACTIVE:
                self.abort(txn)
            raise
        else:
            if txn.status is TxnStatus.ACTIVE:
                self.commit(txn)

    # -- inline (non-BLOB) values ----------------------------------------------------

    def put(self, txn: Transaction, table: str, key: bytes,
            value: bytes) -> None:
        """Insert an inline value (small payloads, e.g. 120 B YCSB rows)."""
        txn.ensure_active()
        self.locks.acquire(txn.txn_id, table, key, LockMode.EXCLUSIVE)
        self._insert(txn, table, key, bytes(value))

    def _insert(self, txn: Transaction, table: str, key: bytes, value) -> None:
        tree = self._table(table)
        if tree.lookup(key) is not None:
            raise DuplicateKeyError(f"{table}[{key!r}] exists")
        self._ensure_begin(txn)
        self.wal.append(InsertRecord(txn_id=txn.txn_id, table=table, key=key,
                                     value=encode_value(value)))
        txn.remember_undo(table, key, None)
        tree.insert(key, value)
        self._ns_note(txn, "put", table, key, value)

    def _ns_note(self, txn: Transaction, op: str, table: str, key: bytes,
                 value=None) -> None:
        """Queue a namespace-accelerator event on ``txn``.

        Events are applied to :attr:`ns` only in ``_commit_body`` — an
        aborting transaction discards them, keeping the interval
        numbering consistent with committed state.  System tables and
        staging keys (``\\x00`` prefixes) never enter the namespace.
        """
        if self.ns is None or table.startswith("\x00") \
                or key.startswith(b"\x00"):
            return
        if op == "del":
            txn.ns_events.append(("del", table, key, 0, ""))
        elif isinstance(value, BlobState):
            txn.ns_events.append(
                ("put", table, key, value.size, value.sha256.hex()))
        else:
            size = len(value) if isinstance(value, (bytes, bytearray)) else 0
            txn.ns_events.append(("put", table, key, size, ""))

    def get(self, table: str, key: bytes,
            txn: Transaction | None = None) -> bytes:
        value = self._lookup(table, key, txn)
        if isinstance(value, BlobState):
            raise TypeError(f"{table}[{key!r}] is a BLOB; use read_blob")
        return value

    def _lookup(self, table: str, key: bytes, txn: Transaction | None):
        if txn is not None:
            txn.ensure_active()
            if self._occ:
                # OCC: reads never block committed data — but because
                # this engine applies writes in place (no private write
                # buffer), a record under another transaction's write
                # marker holds *uncommitted* bytes; reading it would be
                # a dirty read if the writer aborts.  Such reads conflict
                # immediately.
                holders = self.locks.held_by(table, key)
                if holders and txn.txn_id not in holders:
                    self.model.latch(contended=True)
                    raise TransactionConflict(
                        f"txn {txn.txn_id} read of {table}[{key!r}] "
                        f"hit an uncommitted write by {sorted(holders)}")
                txn.read_set[(table, key)] = \
                    self._versions.get((table, key), 0)
            else:
                self.locks.acquire(txn.txn_id, table, key, LockMode.SHARED)
        value = self._table(table).lookup(key)
        if value is None:
            raise KeyNotFoundError(f"{table}[{key!r}] not found")
        return value

    def exists(self, table: str, key: bytes) -> bool:
        return self._table(table).lookup(key) is not None

    def scan(self, table: str, start: bytes | None = None,
             end: bytes | None = None) -> Iterator[tuple[bytes, object]]:
        yield from self._table(table).scan(start, end)

    # -- BLOB operations ------------------------------------------------------------------

    def put_blob(self, txn: Transaction, table: str, key: bytes,
                 data: bytes, use_tail: bool | None = None) -> BlobState:
        """Store ``data`` as a BLOB under ``key`` (Figure 2(b) write path)."""
        txn.ensure_active()
        obs = self.model.obs
        if obs is None:
            return self._put_blob_body(txn, table, key, data, use_tail)
        obs.begin("db.put_blob")
        try:
            return self._put_blob_body(txn, table, key, data, use_tail)
        finally:
            obs.end(bytes=len(data))

    def _put_blob_body(self, txn: Transaction, table: str, key: bytes,
                       data: bytes, use_tail: bool | None) -> BlobState:
        self.locks.acquire(txn.txn_id, table, key, LockMode.EXCLUSIVE)
        tree = self._table(table)
        if tree.lookup(key) is not None:
            raise DuplicateKeyError(f"{table}[{key!r}] exists")
        self._ensure_begin(txn)
        result = self.blobs.create(data, use_tail=use_tail)
        txn.allocated.extend(result.new_extents)
        if result.new_tail is not None:
            txn.allocated_tails.append(result.new_tail)
        self.policy.log_blob_content(txn, table, key, data, 0,
                                     result.dirty_frames)
        self.wal.append(InsertRecord(txn_id=txn.txn_id, table=table, key=key,
                                     value=encode_value(result.state)))
        txn.remember_undo(table, key, None)
        tree.insert(key, result.state)
        self._ns_note(txn, "put", table, key, result.state)
        return result.state

    def put_blob_stream(self, txn: Transaction, table: str, key: bytes,
                        chunks, use_tail: bool | None = None) -> BlobState:
        """Store a BLOB from an iterable of chunks, constant memory.

        The first chunk creates the BLOB; every further chunk appends,
        resuming the stored intermediate hash — so a multi-gigabyte
        object streams in without the writer ever holding (or the engine
        re-reading) more than one chunk.
        """
        state: BlobState | None = None
        for chunk in chunks:
            chunk = bytes(chunk)
            if state is None:
                state = self.put_blob(txn, table, key, chunk,
                                      use_tail=use_tail)
            elif chunk:
                state = self.append_blob(txn, table, key, chunk)
        if state is None:
            state = self.put_blob(txn, table, key, b"", use_tail=use_tail)
        return state

    def get_state(self, table: str, key: bytes,
                  txn: Transaction | None = None) -> BlobState:
        value = self._lookup(table, key, txn)
        if not isinstance(value, BlobState):
            raise TypeError(f"{table}[{key!r}] is not a BLOB")
        if (table, key) in self._quarantined:
            raise ChecksumMismatchError(
                f"{table}[{key!r}] is quarantined: its durable content "
                f"no longer matches its recorded SHA-256")
        return value

    def read_blob(self, table: str, key: bytes,
                  txn: Transaction | None = None, worker_id: int = 0) -> bytes:
        """Full content as bytes (one relation lookup + one client copy)."""
        obs = self.model.obs
        if obs is None:
            state = self.get_state(table, key, txn)
            return self.blobs.read_bytes(state, worker_id=worker_id)
        obs.begin("db.read_blob")
        nbytes = 0
        try:
            state = self.get_state(table, key, txn)
            nbytes = state.size
            return self.blobs.read_bytes(state, worker_id=worker_id)
        finally:
            obs.end(bytes=nbytes)

    def read_blob_view(self, table: str, key: bytes,
                       txn: Transaction | None = None,
                       worker_id: int = 0) -> BlobView:
        """Zero-copy contiguous view (vmcache aliasing / HT staging copy)."""
        state = self.get_state(table, key, txn)
        return self.blobs.read(state, worker_id=worker_id)

    def read_blob_range(self, table: str, key: bytes, offset: int,
                        length: int, txn: Transaction | None = None,
                        worker_id: int = 0) -> bytes:
        """``pread``-style partial read: only overlapping extents load."""
        state = self.get_state(table, key, txn)
        return self.blobs.read_range(state, offset, length,
                                     worker_id=worker_id)

    def append_blob(self, txn: Transaction, table: str, key: bytes,
                    extra: bytes) -> BlobState:
        """Grow a BLOB (Figure 3): resume the hash, touch only new pages."""
        txn.ensure_active()
        obs = self.model.obs
        if obs is None:
            return self._append_blob_body(txn, table, key, extra)
        obs.begin("db.append_blob")
        try:
            return self._append_blob_body(txn, table, key, extra)
        finally:
            obs.end(bytes=len(extra))

    def _append_blob_body(self, txn: Transaction, table: str, key: bytes,
                          extra: bytes) -> BlobState:
        self.locks.acquire(txn.txn_id, table, key, LockMode.EXCLUSIVE)
        old_state = self.get_state(table, key)
        self._ensure_begin(txn)
        result = self.blobs.grow(old_state, extra)
        txn.allocated.extend(result.new_extents)
        if result.freed_tail is not None:
            txn.pending_free_tails.append(result.freed_tail)
            txn.pending_drop.append(result.freed_tail.pid)
        if result.clone_log is not None:
            # The tail clone relocated live content: flush it with this
            # transaction (and re-log it under physical logging).
            clone_off, clone_bytes, clone_frame = result.clone_log
            self.policy.log_blob_content(txn, table, key, clone_bytes,
                                         clone_off, [clone_frame])
        self.policy.log_blob_content(txn, table, key, extra, old_state.size,
                                     result.dirty_frames)
        self.wal.append(UpdateRecord(
            txn_id=txn.txn_id, table=table, key=key,
            old_value=encode_value(old_state),
            new_value=encode_value(result.state)))
        txn.remember_undo(table, key, old_state)
        self._table(table).insert(key, result.state)
        self._ns_note(txn, "put", table, key, result.state)
        return result.state

    def update_blob_range(self, txn: Transaction, table: str, key: bytes,
                          offset: int, data: bytes,
                          scheme: str = "auto") -> BlobState:
        """Overwrite part of a BLOB via the delta or clone scheme (III-D)."""
        txn.ensure_active()
        obs = self.model.obs
        if obs is None:
            return self._update_blob_range_body(txn, table, key, offset,
                                                data, scheme)
        obs.begin("db.update_blob")
        try:
            return self._update_blob_range_body(txn, table, key, offset,
                                                data, scheme)
        finally:
            obs.end(offset=offset, bytes=len(data), scheme=scheme)

    def _update_blob_range_body(self, txn: Transaction, table: str,
                                key: bytes, offset: int, data: bytes,
                                scheme: str) -> BlobState:
        self.locks.acquire(txn.txn_id, table, key, LockMode.EXCLUSIVE)
        old_state = self.get_state(table, key)
        self._ensure_begin(txn)
        if scheme in ("auto", "delta"):
            # Capture pre-images for abort before the in-place write.
            self._capture_delta_preimages(txn, old_state, offset, len(data))
        result = self.blobs.update_range(old_state, offset, data, scheme)
        if result.scheme_used == "delta":
            deltas = [dc_replace(d, table=table, key=key)
                      for d in result.delta_records]
            self.policy.log_deltas(txn, deltas)
            txn.remember_flush(result.dirty_frames)
            for frame in result.dirty_frames:
                frame.prevent_evict = True
        else:
            txn.pending_free.extend(result.freed_extents)
            txn.pending_drop.extend(e.pid for e in result.freed_extents)
            if result.freed_tail is not None:
                txn.pending_free_tails.append(result.freed_tail)
                txn.pending_drop.append(result.freed_tail.pid)
            new_pids = set(result.state.extent_pids) - set(old_state.extent_pids)
            for i, pid in enumerate(result.state.extent_pids):
                if pid in new_pids:
                    txn.allocated.append(
                        Extent(pid=pid, npages=self.tiers.size(i),
                               tier_index=i))
            if (result.state.tail_extent is not None
                    and result.state.tail_extent != old_state.tail_extent):
                txn.allocated_tails.append(result.state.tail_extent)
            txn.remember_flush(result.dirty_frames)
        self.wal.append(UpdateRecord(
            txn_id=txn.txn_id, table=table, key=key,
            old_value=encode_value(old_state),
            new_value=encode_value(result.state)))
        txn.remember_undo(table, key, old_state)
        self._table(table).insert(key, result.state)
        self._ns_note(txn, "put", table, key, result.state)
        return result.state

    def _capture_delta_preimages(self, txn: Transaction, state: BlobState,
                                 offset: int, length: int) -> None:
        ranges = state.page_ranges(self.tiers)
        pos = 0
        ps = self.config.page_size
        for pid, npages in ranges:
            lo = max(pos, offset)
            hi = min(pos + npages * ps, offset + length)
            if lo < hi:
                frames = self.pool.fetch_extents([(pid, npages)])
                old = bytes(frames[0].data[lo - pos:hi - pos])
                self.pool.unpin(frames)
                txn.delta_undo.append((pid, lo - pos, old))
            pos += npages * ps

    def delete_blob(self, txn: Transaction, table: str, key: bytes) -> None:
        """Delete a BLOB; its extents join the free lists at commit."""
        txn.ensure_active()
        obs = self.model.obs
        if obs is None:
            self._delete_blob_body(txn, table, key)
            return
        obs.begin("db.delete_blob")
        try:
            self._delete_blob_body(txn, table, key)
        finally:
            obs.end()

    def _delete_blob_body(self, txn: Transaction, table: str,
                          key: bytes) -> None:
        self.locks.acquire(txn.txn_id, table, key, LockMode.EXCLUSIVE)
        # Bypass the quarantine gate: deleting a corrupt BLOB is how an
        # operator clears it, and the Blob State itself is intact.
        old_state = self._lookup(table, key, None)
        if not isinstance(old_state, BlobState):
            raise TypeError(f"{table}[{key!r}] is not a BLOB")
        self._ensure_begin(txn)
        self.wal.append(DeleteRecord(txn_id=txn.txn_id, table=table, key=key,
                                     old_value=encode_value(old_state)))
        extents, tail = self.blobs.delete(old_state)
        txn.pending_free.extend(extents)
        txn.pending_drop.extend(
            pid for pid, _ in old_state.page_ranges(self.tiers))
        if tail is not None:
            txn.pending_free_tails.append(tail)
        txn.remember_undo(table, key, old_state)
        if (table, key) in self._quarantined:
            # Restore the flag if this delete is undone by an abort.
            txn.requarantine.append((table, key))
            self._quarantined.discard((table, key))
        self._table(table).delete(key)
        self._ns_note(txn, "del", table, key)

    def delete(self, txn: Transaction, table: str, key: bytes) -> None:
        """Delete any row (BLOB or inline)."""
        value = self._table(table).lookup(key)
        if value is None:
            raise KeyNotFoundError(f"{table}[{key!r}] not found")
        if isinstance(value, BlobState):
            self.delete_blob(txn, table, key)
            return
        txn.ensure_active()
        self.locks.acquire(txn.txn_id, table, key, LockMode.EXCLUSIVE)
        self._ensure_begin(txn)
        self.wal.append(DeleteRecord(txn_id=txn.txn_id, table=table, key=key,
                                     old_value=encode_value(value)))
        txn.remember_undo(table, key, value)
        self._table(table).delete(key)
        self._ns_note(txn, "del", table, key)

    # -- checkpointing -----------------------------------------------------------------------

    def drain_commit_window(self) -> None:
        """Settle any open group-commit window (see the log policy)."""
        self.policy.drain_commit_window(self.pool)

    def _maybe_checkpoint(self) -> None:
        if (self.wal.used_fraction() > self.config.checkpoint_threshold
                and not self._active):
            self.checkpoint()

    def _forced_checkpoint(self) -> None:
        """WAL ring exhausted mid-flush; only safe with no active txns."""
        if self._active:
            raise WalFullError(
                "WAL region exhausted while transactions are active; "
                "enlarge wal_pages for this workload")
        self._write_snapshot()

    def checkpoint(self) -> None:
        """Snapshot tables + allocator to the inactive slot, rewind WAL."""
        if self._active:
            raise TransactionStateError(
                "checkpoint requires no active transactions")
        self._write_snapshot()
        self.wal.reset()

    def _write_snapshot(self) -> None:
        obs = self.model.obs
        if obs is None:
            self._write_snapshot_body()
            return
        obs.begin("db.checkpoint")
        try:
            self._write_snapshot_body()
        finally:
            obs.end(checkpoint_id=self._checkpoint_id)
            obs.count("db.checkpoints")

    def _write_snapshot_body(self) -> None:
        # Deferred group commits must settle before the WAL records that
        # cover them can be discarded by the ring rewind.
        self.policy.drain_commit_window(self.pool)
        # Physlog leaves committed BLOB content dirty in the pool; a
        # checkpoint must push it out (the second write) before the WAL
        # chunks that could redo it are discarded.
        self.pool.flush_all_dirty(category="data", background=True)
        self._checkpoint_id += 1
        next_pid, free_extents, free_tails = self.allocator.snapshot()
        snap = CatalogSnapshot(
            checkpoint_id=self._checkpoint_id,
            next_txn_id=self._next_txn_id,
            allocator_next_pid=next_pid,
            free_extents=free_extents,
            free_tails=free_tails,
            tables={name: [(k, encode_value(v)) for k, v in tree.scan()]
                    for name, tree in self._tables.items()},
        )
        raw = snap.serialize()
        ps = self.config.page_size
        npages = (len(raw) + ps - 1) // ps
        if npages > self.config.catalog_pages:
            raise WalFullError(
                f"catalog snapshot needs {npages} pages, slot holds "
                f"{self.config.catalog_pages}; enlarge catalog_pages")
        slot = self._checkpoint_id % 2
        slot_pid = (self.config.catalog_a_pid if slot == 0
                    else self.config.catalog_b_pid)
        self.retry.run(lambda: self.meta_device.write(
            slot_pid, raw.ljust(npages * ps, b"\x00"),
            category="meta", background=True))
        super_block = Superblock(active_slot=slot, catalog_len=len(raw),
                                 checkpoint_id=self._checkpoint_id)
        self.retry.run(lambda: self.meta_device.write(
            0, super_block.serialize(ps), category="meta", background=True))
        self.checkpoints_taken += 1

    # -- integrity scrub ---------------------------------------------------------------------

    def scrub(self) -> ScrubStats:
        """Background scrub: re-digest every live BLOB against its state.

        Reads content unverified (the digest is the stronger check),
        retries transient faults, and quarantines any BLOB whose
        recomputed SHA no longer matches — after which reads surface
        :class:`~repro.db.errors.ChecksumMismatchError` instead of wrong
        bytes.  All device reads and hashing are charged to the cost
        model: scrubbing is real, priced background work.
        """
        obs = self.model.obs
        if obs is None:
            return self._scrub_body()
        obs.begin("db.scrub")
        try:
            return self._scrub_body()
        finally:
            obs.end(blobs=self.scrub_stats.blobs_scanned,
                    corrupt=self.scrub_stats.corrupt_found)

    def _scrub_body(self) -> ScrubStats:
        from repro.core.hashing import new_hasher
        ps = self.config.page_size
        for table in [_TABLES_TABLE] + self.list_tables():
            for key, value in list(self._tables[table].scan()):
                if not isinstance(value, BlobState):
                    continue
                if (table, key) in self._quarantined:
                    continue
                hasher = new_hasher(self.config.hasher)
                remaining = value.size
                for pid, npages in value.page_ranges(self.tiers):
                    if remaining <= 0:
                        break
                    raw = self.retry.run(
                        lambda p=pid, n=npages: self.device.read(
                            p, n, verify=False))
                    take = min(remaining, npages * ps)
                    hasher.update(raw[:take])
                    remaining -= take
                self.model.hash_bytes(value.size)
                self.scrub_stats.blobs_scanned += 1
                self.scrub_stats.bytes_scanned += value.size
                if hasher.digest() != value.sha256:
                    self.scrub_stats.corrupt_found += 1
                    self._quarantined.add((table, key))
                    self.quarantined_extents += value.num_extents + \
                        (1 if value.tail_extent is not None else 0)
        return self.scrub_stats

    # -- crash & recovery ------------------------------------------------------------------------

    def crash(self) -> SimulatedNVMe | StorageSet:
        """Drop all volatile state; returns the surviving device(s).

        A heterogeneous engine survives as its whole :class:`StorageSet`
        (PMem metadata + NVMe data are separate surviving media); the
        homogeneous case keeps returning the bare device.
        """
        self.pool.drop_all_volatile()
        simulate_state_loss()
        self._tables.clear()
        self._active.clear()
        # The namespace accelerator is volatile; rebuild it after
        # recovery with ``NamespaceIndex.build`` (deterministic from the
        # recovered tables).
        self.ns = None
        return self.storage if self.storage.heterogeneous else self.device

    @classmethod
    def recover(cls, device: SimulatedNVMe | StorageSet,
                config: EngineConfig,
                model: CostModel | None = None) -> "BlobDB":
        """Rebuild an engine from a crashed device (Section III-C)."""
        from repro.core.recovery import recover_state
        data = device.data if isinstance(device, StorageSet) else device
        db = cls(config=config, device=device,
                 model=model or data.model, _skip_format=True)
        recovered = recover_state(data, config, db.model, db.tiers,
                                  retry=db.retry,
                                  meta_device=db.meta_device,
                                  wal_device=db.wal_device)
        registry = recovered.tables.get(_TABLES_TABLE, {})
        registered = {name.decode() for name in registry}
        for name in recovered.tables:
            if name != _TABLES_TABLE and name not in registered:
                continue  # the table was dropped before the crash
            if name not in db._tables:
                db._tables[name] = db._new_btree()
            tree = db._tables[name]
            for key, value in recovered.tables[name].items():
                tree.insert(key, value)
        db.allocator.restore(recovered.allocator_next_pid,
                             recovered.free_extents, recovered.free_tails)
        db._next_txn_id = recovered.next_txn_id
        db._checkpoint_id = recovered.checkpoint_id
        # Restart ends with a checkpoint: the recovered state becomes
        # durable in the catalog before the WAL ring is reused, so a
        # second crash cannot depend on the overwritten old records.
        db._write_snapshot()
        db.wal.reset()
        db.wal.set_seq_floor(recovered.wal_max_seq)
        db.failed_txns = recovered.failed_txns
        db._quarantined = set(recovered.quarantined)
        db.quarantined_extents = recovered.extents_quarantined
        db.recovery_info = recovered
        return db

    # -- introspection -------------------------------------------------------------------------------

    def table_size(self, table: str) -> int:
        return len(self._table(table))

    def read_chunks_of(self, state: BlobState) -> Iterator[bytes]:
        """Chunk reader for comparators/indexes bound to this engine."""
        return self.blobs.read_chunks(state)

    def stats_report(self):
        """One structured snapshot of every subsystem's counters."""
        from repro.db.stats import build_report
        return build_report(self)
