"""Secondary indexes over BLOB content (Section III-F).

* :class:`BlobStateIndex` — the paper's contribution: the index stores
  *Blob States* ordered by BLOB content through the incremental
  comparator.  No content is copied into the index, point queries compare
  digests, range queries usually stop at the embedded prefix.
* :class:`PrefixIndex` — the MySQL/PostgreSQL-style baseline: the first N
  bytes of the content are the key, so documents sharing a prefix collide
  and all but one become unindexable (the paper's 17 % miss rate).
* :class:`SemanticIndex` — an expression index over a UDF of the content
  (``CREATE INDEX foo image(classify(content))``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.btree import BTree, BTreeStats
from repro.core.blob_state import PREFIX_LEN, BlobState
from repro.core.comparator import BlobStateComparator
from repro.core.hashing import new_hasher
from repro.db.database import BlobDB


@dataclass(frozen=True)
class ProbeState(BlobState):
    """A Blob State synthesized from query bytes (not stored anywhere).

    Lets point/range queries by raw content run through the same
    comparator as stored states: the comparator reads its content from
    the attached ``data`` instead of extents.
    """

    data: bytes = b""


def make_probe(data: bytes, hasher_kind: str = "fast") -> ProbeState:
    """Build the comparator-compatible probe for query bytes."""
    hasher = new_hasher(hasher_kind, data)
    return ProbeState(size=len(data), sha256=hasher.digest(),
                      sha_state=hasher.state(), prefix=data[:PREFIX_LEN],
                      data=data)


class BlobStateIndex:
    """Orders Blob States by content; maps them to primary keys."""

    def __init__(self, db: BlobDB, table: str,
                 node_bytes: int | None = None) -> None:
        self.db = db
        self.table = table
        self.comparator = BlobStateComparator(self._read_chunks)
        self._tree = BTree(cmp=self.comparator.compare,
                           key_size=lambda s: s.serialized_size(),
                           node_bytes=node_bytes or db.config.page_size,
                           model=db.model)

    def _read_chunks(self, state: BlobState) -> Iterator[bytes]:
        if isinstance(state, ProbeState):
            yield state.data
            return
        yield from self.db.read_chunks_of(state)

    def build(self) -> int:
        """Index every BLOB currently in the table; returns entry count."""
        count = 0
        for key, value in self.db.scan(self.table):
            if isinstance(value, BlobState):
                self.insert(value, key)
                count += 1
        self._persist()
        return count

    def _persist(self) -> None:
        """Charge writing the built index pages (and their WAL copies)."""
        nbytes = self.stats().size_bytes
        self.db.model.memcpy(nbytes)
        self.db.model.cpu(2 * nbytes * self.db.model.params.ssd_write_ns_per_byte)

    def insert(self, state: BlobState, primary_key: bytes) -> None:
        existing = self._tree.lookup(state)
        if existing is None:
            self._tree.insert(state, [primary_key])
        elif primary_key not in existing:
            existing.append(primary_key)

    def remove(self, state: BlobState, primary_key: bytes) -> None:
        existing = self._tree.lookup(state)
        if existing is None:
            return
        if primary_key in existing:
            existing.remove(primary_key)
        if not existing:
            self._tree.delete(state)

    def lookup_content(self, data: bytes) -> list[bytes]:
        """Point query by content (digest comparison fast path)."""
        result = self._tree.lookup(make_probe(data, self.db.config.hasher))
        return list(result) if result else []

    def range_content(self, low: bytes, high: bytes) -> list[bytes]:
        """All primary keys whose content is in ``[low, high)``."""
        probe_lo = make_probe(low, self.db.config.hasher)
        probe_hi = make_probe(high, self.db.config.hasher)
        out: list[bytes] = []
        for _, pks in self._tree.scan(start=probe_lo, end=probe_hi):
            out.extend(pks)
        return out

    def __len__(self) -> int:
        return len(self._tree)

    def stats(self) -> BTreeStats:
        return self._tree.stats()


class PrefixIndex:
    """Baseline: index only the first ``prefix_bytes`` of the content."""

    def __init__(self, db: BlobDB, table: str, prefix_bytes: int = 1024,
                 node_bytes: int | None = None) -> None:
        self.db = db
        self.table = table
        self.prefix_bytes = prefix_bytes
        self._tree = BTree(node_bytes=node_bytes or db.config.page_size,
                           model=db.model)
        #: Documents that could not be indexed (prefix collision).
        self.missed: list[bytes] = []

    def build(self) -> int:
        count = 0
        for key, value in self.db.scan(self.table):
            if isinstance(value, BlobState):
                # Indexing by content requires detoasting/reading the
                # document, then copying its prefix into the index.
                content = b"".join(self.db.read_chunks_of(value))
                self.db.model.memcpy(len(content))
                self.insert_content(content, key)
                count += 1
        nbytes = self.stats().size_bytes
        self.db.model.memcpy(nbytes)
        self.db.model.cpu(2 * nbytes * self.db.model.params.ssd_write_ns_per_byte)
        return count

    def insert_content(self, data: bytes, primary_key: bytes) -> None:
        prefix = data[:self.prefix_bytes]
        self.db.model.memcpy(len(prefix))
        if self._tree.lookup(prefix) is not None:
            # The prefix slot is taken: this document is unindexable,
            # queries for it will miss (paper Table III, miss %).
            self.missed.append(primary_key)
            return
        self._tree.insert(prefix, primary_key)

    def lookup_content(self, data: bytes) -> bytes | None:
        """May return the wrong or no document for shared prefixes."""
        return self._tree.lookup(data[:self.prefix_bytes])

    @property
    def miss_fraction(self) -> float:
        total = len(self._tree) + len(self.missed)
        return len(self.missed) / total if total else 0.0

    def __len__(self) -> int:
        return len(self._tree)

    def stats(self) -> BTreeStats:
        return self._tree.stats()


class SemanticIndex:
    """Expression index: order BLOBs by ``udf(content)`` (Section III-F)."""

    def __init__(self, db: BlobDB, table: str,
                 udf: Callable[[bytes], bytes | str],
                 node_bytes: int | None = None) -> None:
        self.db = db
        self.table = table
        self.udf = udf
        self._tree = BTree(node_bytes=node_bytes or db.config.page_size,
                           model=db.model)

    def _derive(self, value: BlobState) -> bytes:
        content = b"".join(self.db.read_chunks_of(value))
        derived = self.udf(content)
        return derived.encode() if isinstance(derived, str) else derived

    def build(self) -> int:
        count = 0
        for key, value in self.db.scan(self.table):
            if isinstance(value, BlobState):
                self.insert(value, key)
                count += 1
        return count

    def insert(self, state: BlobState, primary_key: bytes) -> None:
        derived = self._derive(state)
        bucket = self._tree.lookup(derived)
        if bucket is None:
            self._tree.insert(derived, [primary_key])
        elif primary_key not in bucket:
            bucket.append(primary_key)

    def lookup(self, derived: bytes | str) -> list[bytes]:
        """``SELECT * WHERE classify(content) = 'cat'``."""
        key = derived.encode() if isinstance(derived, str) else derived
        bucket = self._tree.lookup(key)
        return list(bucket) if bucket else []

    def __len__(self) -> int:
        return len(self._tree)
