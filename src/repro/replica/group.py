"""Replica groups: WAL shipping, quorum commit, deterministic failover.

A :class:`ReplicaGroup` promotes one engine to a group of ``1 primary +
N replicas``.  Every member owns a complete engine — its own
:class:`~repro.storage.device.SimulatedNVMe` (optionally wrapped in
:class:`~repro.storage.faults.FaultyNVMe`), WAL, buffer pool, and
virtual clock.  The primary executes each write locally, then ships the
resulting replication record (:mod:`repro.replica.record`) to every
replica over that member's own
:class:`~repro.net.transport.TransportProfile` link; a commit is
acknowledged only once a configurable *quorum* of members (primary
included) has durably applied it.

Pricing follows PR 5's scatter-gather discipline one level up: each
replica applies its records on its **own** clock, and the group clock —
what the client observes — advances by the primary's local time plus
the *quorum makespan*: the ``(quorum - 1)``-th smallest per-replica
clock delta.  ``quorum=1`` is asynchronous replication (the client
never waits for a link), ``quorum=N+1`` is fully synchronous (the
slowest member gates every commit), and anything between prices exactly
the partial wait a real quorum protocol buys.

Failure handling, all driven by seeded :class:`FaultPlan` draws:

* a drawn network fault loses one ship exchange in flight; the member's
  retry policy re-issues it inside that member's clock delta;
* a drawn partition (:meth:`FaultPlan.draw_partition_ns`) kills the
  link until the member's clock passes the deadline;
* a member whose retries exhaust simply *lags* — it catches up on the
  next ship, on :meth:`ReplicaGroup.catch_up`, or at failover;
* a primary crash (or a commit that cannot reach quorum) triggers
  epoch-fenced promotion of the most-caught-up replica — safe for
  ``quorum >= 2`` because every acknowledged record lives on at least
  ``quorum - 1`` surviving members applied *in LSN order*, so the
  longest survivor log contains all of them;
* a deposed primary's :meth:`rejoin` is fenced by epoch (its stale
  ship is rejected), its divergent tail is truncated back to the
  authoritative state, and it re-enters as a replica.

See ``docs/replication.md`` for the full state machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.config import EngineConfig
from repro.db.database import BlobDB
from repro.db.errors import (
    QuorumLostError,
    RetriesExhaustedError,
    StaleEpochError,
    TransientNetworkError,
)
from repro.db.stats import EngineReport
from repro.net.transport import TCP_ETHERNET, TransportProfile
from repro.replica.record import ACK_BYTES, ReplicationRecord
from repro.sim.cost import CostModel
from repro.storage.faults import FaultPlanFactory, FaultyNVMe, RetryPolicy
from repro.storage.factory import build_storage


@dataclass
class GroupStats:
    """Cumulative replication counters of one group."""

    acked_writes: int = 0
    records_shipped: int = 0
    quorum_losses: int = 0
    failovers: int = 0
    rejoins: int = 0
    fenced_ships: int = 0
    truncated_records: int = 0
    resynced_records: int = 0
    stale_reads: int = 0
    replica_reads: int = 0
    primary_crashes: int = 0
    #: Group-clock duration of the most recent failover.
    last_failover_ns: float = 0.0


class ReplicaMember:
    """One member of a replica group: a full engine plus its link state."""

    def __init__(self, member_id: int, config: EngineConfig,
                 model: CostModel, table: str,
                 transport: TransportProfile,
                 device_plan=None, link_plan=None,
                 retry_attempts: int = 4,
                 retry_base_ns: float = 50_000.0) -> None:
        self.member_id = member_id
        self.model = model
        storage = build_storage(config, model)
        if device_plan is not None:
            # Wrap every distinct device of the member's placement —
            # PMem/stripe tiers fault independently, aliases stay shared.
            storage = storage.map(lambda dev: FaultyNVMe(dev, device_plan))
        self.db: BlobDB | None = BlobDB(config=config, device=storage,
                                        model=model)
        self.db.create_table(table)
        self.table = table
        self.transport = transport
        self.link_plan = link_plan
        #: Bound to this member's model so retry backoff is simulated
        #: inside the member's clock delta — and therefore inside the
        #: quorum makespan, exactly like the sharded server's retries.
        self.retry = RetryPolicy(model, attempts=retry_attempts,
                                 base_delay_ns=retry_base_ns)
        #: Highest replication LSN durably applied by this member.
        self.applied_lsn = 0
        #: Primary term this member has accepted (fencing floor).
        self.epoch = 1
        #: Records applied, in LSN order (the member's view of the
        #: stream; the current primary's list is authoritative).
        self.history: list[ReplicationRecord] = []
        self.alive = True
        #: Surviving device of a crashed member (for recovery on rejoin).
        self.device = None
        #: Member-clock deadline until which the ship link is dead.
        self.partitioned_until_ns = 0.0

    def lag(self, primary_lsn: int) -> int:
        return max(0, primary_lsn - self.applied_lsn)

    def apply(self, record: ReplicationRecord) -> None:
        """Durably apply one record to this member's engine, in order."""
        assert self.db is not None
        if record.lsn != self.applied_lsn + 1:
            raise AssertionError(
                f"member {self.member_id}: stream gap "
                f"(applied {self.applied_lsn}, got {record.lsn})")
        with self.db.transaction() as txn:
            if record.op == "put":
                if self.db.exists(self.table, record.key):
                    self.db.delete_blob(txn, self.table, record.key)
                assert record.payload is not None
                self.db.put_blob(txn, self.table, record.key, record.payload)
            elif self.db.exists(self.table, record.key):
                self.db.delete_blob(txn, self.table, record.key)
        self.applied_lsn = record.lsn
        self.history.append(record)


class ReplicaGroup:
    """1 primary + N replicas with quorum commit and failover."""

    def __init__(self, n_replicas: int = 2, quorum: int = 2,
                 config: EngineConfig | None = None,
                 model: CostModel | None = None,
                 table: str = "blobs",
                 transport: TransportProfile | list = TCP_ETHERNET,
                 name: str = "group",
                 device_faults: FaultPlanFactory | None = None,
                 link_faults: FaultPlanFactory | None = None,
                 retry_attempts: int = 4,
                 retry_base_ns: float = 50_000.0,
                 auto_failover: bool = True) -> None:
        if n_replicas < 0:
            raise ValueError("need a non-negative replica count")
        n_members = n_replicas + 1
        if not 1 <= quorum <= n_members:
            raise ValueError(
                f"quorum {quorum} out of range for {n_members} members")
        self.config = config or EngineConfig()
        #: The group coordinator's model: quorum waits and fan-out
        #: charges land here; this clock is what a client observes.
        self.model = model or CostModel()
        self.table = table
        self.name = name
        self.quorum = quorum
        self.auto_failover = auto_failover
        if isinstance(transport, TransportProfile):
            transports = [transport] * n_members
        else:
            transports = list(transport)
            if len(transports) != n_members:
                raise ValueError(
                    f"need one transport per member: got {len(transports)} "
                    f"for {n_members} members")
        # Each member runs on its own clock but shares the coordinator's
        # price list; fault plans are derived per member from one base
        # seed, so the whole group replays from (code, seed).
        self.members = [
            ReplicaMember(
                i, self.config, CostModel(self.model.params), table,
                transports[i],
                device_plan=(device_faults.plan_for(f"{name}.m{i}.device")
                             if device_faults is not None else None),
                link_plan=(link_faults.plan_for(f"{name}.m{i}.link")
                           if link_faults is not None else None),
                retry_attempts=retry_attempts,
                retry_base_ns=retry_base_ns)
            for i in range(n_members)
        ]
        self.primary_id = 0
        #: Current primary term; bumped (and fenced) at every promotion.
        self.epoch = 1
        #: Highest LSN the group has acknowledged to a client.
        self.acked_lsn = 0
        #: New primary's applied LSN at the last promotion — the point
        #: beyond which the old primary's log is divergent.
        self.fence_lsn = 0
        self.stats = GroupStats()

    # -- membership helpers --------------------------------------------------

    @property
    def primary(self) -> ReplicaMember:
        return self.members[self.primary_id]

    def replicas(self) -> list[ReplicaMember]:
        """Non-primary members, in member-id order (determinism)."""
        return [m for m in self.members if m.member_id != self.primary_id]

    def ship_retries(self) -> int:
        return sum(m.retry.stats.retries for m in self.members)

    def max_lag(self) -> int:
        lsn = self.primary.applied_lsn
        lags = [m.lag(lsn) for m in self.replicas() if m.alive]
        return max(lags) if lags else 0

    # -- WAL shipping --------------------------------------------------------

    def _ship(self, member: ReplicaMember, upto_lsn: int) -> bool:
        """Ship the primary's records up to ``upto_lsn`` to one member.

        Runs entirely on the member's clock: the link exchange per
        record, the member's apply work, and any retry backoff.  A
        member that misses earlier records catches the whole gap here —
        applies are strictly in LSN order, so every member's log is a
        prefix of the primary's (the property failover safety rests
        on).  Returns False when the link stayed down through every
        retry (the member lags; nothing was partially applied beyond a
        record boundary).
        """
        primary = self.primary
        src_epoch = self.epoch
        obs = self.model.obs

        def attempt() -> None:
            now = member.model.clock.now_ns
            if member.partitioned_until_ns > now:
                raise TransientNetworkError(
                    f"link to member {member.member_id} partitioned")
            if member.link_plan is not None:
                partition_ns = member.link_plan.draw_partition_ns()
                if partition_ns:
                    member.partitioned_until_ns = now + partition_ns
                    raise TransientNetworkError(
                        f"partition opened to member {member.member_id}")
                if member.link_plan.draw_network_fault():
                    raise TransientNetworkError(
                        f"ship to member {member.member_id} lost in flight")
            if src_epoch < member.epoch:
                raise StaleEpochError(
                    f"member {member.member_id} fenced epoch {src_epoch} "
                    f"(its epoch is {member.epoch})")
            member.epoch = max(member.epoch, src_epoch)
            while member.applied_lsn < upto_lsn:
                record = primary.history[member.applied_lsn]
                member.transport.charge_exchange(
                    member.model, record.wire_bytes(), ACK_BYTES)
                member.apply(record)
                self.stats.records_shipped += 1
                if obs is not None:
                    obs.count("replica.records_shipped")

        try:
            member.retry.run(attempt)
        except RetriesExhaustedError:
            return False
        if obs is not None:
            obs.observe("replica.lag",
                        member.lag(self.primary.applied_lsn))
        return True

    # -- the write path ------------------------------------------------------

    def put(self, key: bytes, data: bytes) -> None:
        self._commit("put", key, data)

    def delete(self, key: bytes) -> None:
        self._commit("delete", key, None)

    def _commit(self, op: str, key: bytes, payload: bytes | None,
                _failed_over: bool = False) -> None:
        """Execute on the primary, ship, and wait for the quorum.

        The group clock advances by the primary's local commit time plus
        the quorum makespan — the ``(quorum - 1)``-th smallest successful
        replica delta.  Slower members still apply on their own clocks;
        they just never gate the acknowledgement (asynchronous tail).
        On quorum loss the controller promotes a reachable replica and
        re-executes once; if that is impossible the typed
        :class:`QuorumLostError` reports the write as unacknowledged.
        """
        primary = self.primary
        if not primary.alive:
            self._handle_quorum_loss(op, key, payload, _failed_over,
                                     reason="primary down")
            return
        start_primary = primary.model.clock.now_ns
        record = ReplicationRecord(lsn=primary.applied_lsn + 1,
                                   epoch=self.epoch, op=op, key=key,
                                   payload=payload)
        primary.apply(record)
        primary_delta = primary.model.clock.now_ns - start_primary

        replicas = [m for m in self.replicas() if m.alive]
        self.model.replica_ship(len(replicas))
        ack_deltas: list[float] = []
        for member in replicas:
            start = member.model.clock.now_ns
            if self._ship(member, record.lsn):
                ack_deltas.append(member.model.clock.now_ns - start)
        self.model.quorum_commit()

        need = self.quorum - 1
        ack_deltas.sort()
        if len(ack_deltas) < need:
            self.stats.quorum_losses += 1
            self._handle_quorum_loss(op, key, payload, _failed_over,
                                     reason=f"{len(ack_deltas)}/{need} acks")
            return
        quorum_wait = ack_deltas[need - 1] if need else 0.0
        self.model.clock.advance(primary_delta + quorum_wait)
        self.acked_lsn = record.lsn
        self.stats.acked_writes += 1
        obs = self.model.obs
        if obs is not None:
            obs.count("replica.acked_writes")
            obs.observe("replica.quorum_makespan_ns", quorum_wait)

    def _handle_quorum_loss(self, op, key, payload, already_failed_over,
                            reason: str) -> None:
        """Quorum lost: promote a reachable replica and retry once."""
        if already_failed_over or not self.auto_failover:
            raise QuorumLostError(
                f"{self.name}: write not acknowledged ({reason})")
        self.failover()
        self._commit(op, key, payload, _failed_over=True)

    def _fence(self, src_epoch: int) -> None:
        """Authoritative-side epoch fence: reject stale-term shipments."""
        if src_epoch < self.epoch:
            raise StaleEpochError(
                f"{self.name}: ship from epoch {src_epoch} rejected, "
                f"group is at epoch {self.epoch}")

    # -- reads ----------------------------------------------------------------

    def get(self, key: bytes) -> bytes:
        """Linearizable read from the primary."""
        primary = self.primary
        if not primary.alive:
            raise QuorumLostError(f"{self.name}: primary down")
        assert primary.db is not None
        start = primary.model.clock.now_ns
        data = primary.db.read_blob(self.table, key)
        self.model.clock.advance(primary.model.clock.now_ns - start)
        return data

    def exists(self, key: bytes) -> bool:
        primary = self.primary
        assert primary.db is not None
        return primary.db.exists(self.table, key)

    def read_any(self, key: bytes) -> bytes:
        """Read from the next member in rotation, with staleness
        accounting.

        The read rides the member's replication link (one priced
        exchange) and may observe a *stale* value — or a missing key —
        if the member lags the primary; the lag in records is counted
        and observed so staleness is a measured property, never a
        silent one.
        """
        candidates = [m for m in self.members if m.alive]
        if not candidates:
            raise QuorumLostError(f"{self.name}: no live members")
        member = candidates[self.stats.replica_reads % len(candidates)]
        self.stats.replica_reads += 1
        staleness = member.lag(self.primary.applied_lsn)
        if staleness:
            self.stats.stale_reads += 1
        obs = self.model.obs
        if obs is not None:
            obs.observe("replica.staleness", staleness)
        assert member.db is not None
        start = member.model.clock.now_ns
        data = member.db.read_blob(self.table, key)
        if member.member_id != self.primary_id:
            member.transport.charge_exchange(member.model, len(key),
                                             len(data))
        self.model.clock.advance(member.model.clock.now_ns - start)
        return data

    # -- convergence ----------------------------------------------------------

    def catch_up(self) -> None:
        """Drive every lagging live replica to the primary's LSN.

        Makespan-priced like any other fan-out; members whose links are
        still down simply remain lagging.
        """
        primary = self.primary
        makespan = 0.0
        for member in self.replicas():
            if not member.alive:
                continue
            start = member.model.clock.now_ns
            self._ship(member, primary.applied_lsn)
            makespan = max(makespan,
                           member.model.clock.now_ns - start)
        self.model.clock.advance(makespan)

    def drain(self) -> None:
        """Settle the primary's commit window and converge replicas."""
        primary = self.primary
        assert primary.db is not None
        start = primary.model.clock.now_ns
        primary.db.drain_commit_window()
        self.model.clock.advance(primary.model.clock.now_ns - start)
        self.catch_up()

    # -- failover controller ---------------------------------------------------

    def crash_primary(self, mid_record: tuple | None = None):
        """Kill the primary, optionally mid-batch, and promote.

        ``mid_record=(key, data, n_ships)`` models a crash *inside* a
        commit: the primary applies the record locally and ships it to
        only the first ``n_ships`` replicas, then dies before the quorum
        decision — so the record was never acknowledged.  After the
        promotion it either survives (a shipped copy reached the new
        primary) or vanishes as a divergent tail: all-or-nothing per
        record, never a torn value.  Returns the crashed device.
        """
        primary = self.primary
        assert primary.alive and primary.db is not None
        if mid_record is not None:
            key, data, n_ships = mid_record
            record = ReplicationRecord(lsn=primary.applied_lsn + 1,
                                       epoch=self.epoch, op="put", key=key,
                                       payload=data)
            primary.apply(record)
            for member in [m for m in self.replicas()
                           if m.alive][:n_ships]:
                self._ship(member, record.lsn)
        device = primary.db.crash()
        primary.device = device
        primary.db = None
        primary.alive = False
        self.stats.primary_crashes += 1
        if self.auto_failover:
            self.failover()
        return device

    def failover(self) -> int:
        """Epoch-fenced promotion of the most-caught-up live replica.

        Deterministic election: the candidate with the highest applied
        LSN wins, ties broken by the lowest member id.  The new primary
        settles its commit window and fsyncs (its promotion record);
        surviving peers learn the new epoch over their links and catch
        up from the new primary's log.  The group clock advances by the
        makespan of promotion + announcements — the failover duration a
        client experiences as unavailability.  Returns the new primary
        id.
        """
        candidates = [m for m in self.replicas() if m.alive]
        if not candidates:
            raise QuorumLostError(
                f"{self.name}: no live replica to promote")
        new_primary = max(candidates,
                          key=lambda m: (m.applied_lsn, -m.member_id))
        self.epoch += 1
        self.fence_lsn = new_primary.applied_lsn
        assert new_primary.db is not None
        start_new = new_primary.model.clock.now_ns
        new_primary.db.drain_commit_window()
        new_primary.model.syscall("fdatasync")
        new_primary.epoch = self.epoch
        self.primary_id = new_primary.member_id
        makespan = new_primary.model.clock.now_ns - start_new
        for peer in candidates:
            if peer.member_id == new_primary.member_id:
                continue
            start = peer.model.clock.now_ns
            peer.transport.charge_exchange(peer.model, 32, ACK_BYTES)
            self._ship(peer, new_primary.applied_lsn)
            makespan = max(makespan, peer.model.clock.now_ns - start)
        self.model.clock.advance(makespan)
        self.stats.failovers += 1
        self.stats.last_failover_ns = makespan
        obs = self.model.obs
        if obs is not None:
            obs.count("replica.failovers")
            obs.observe("replica.failover_ns", makespan)
        return new_primary.member_id

    def rejoin(self, member_id: int) -> dict:
        """Bring a crashed or deposed member back as a replica.

        Three fenced, priced steps:

        1. a crashed member first recovers its engine from its
           surviving device (per-member WAL replay, on its own clock);
        2. a member deposed while holding an older epoch *offers* its
           tail to the group and is rejected — the epoch fence — before
           accepting the authoritative state;
        3. divergent-tail truncation: every key whose content differs
           from the current primary (compared by Blob State SHA-256) is
           rolled back or overwritten, divergent inserts are deleted,
           and missing records are copied over the member's link.  No
           acknowledged write is touched: acknowledged records are, by
           quorum intersection, part of the authoritative log.

        Returns ``{"truncated": n, "resynced": n}``.
        """
        member = self.members[member_id]
        if member_id == self.primary_id:
            raise ValueError("the current primary cannot rejoin")
        primary = self.primary
        assert primary.db is not None
        start_member = member.model.clock.now_ns
        start_primary = primary.model.clock.now_ns
        if not member.alive:
            member.db = BlobDB.recover(member.device, self.config,
                                       model=member.model)
            member.device = None
            member.alive = True
        assert member.db is not None
        obs = self.model.obs
        if member.epoch < self.epoch:
            # The deposed member does not know it was deposed: it offers
            # the tip of its log and the primary fences it by epoch.
            member.transport.charge_exchange(member.model, 32, ACK_BYTES)
            try:
                self._fence(member.epoch)
            except StaleEpochError:
                self.stats.fenced_ships += 1
                if obs is not None:
                    obs.count("replica.fenced_ships")
        truncated = 0
        resynced = 0
        member_keys = {key for key, _ in member.db.scan(self.table)}
        auth_keys = {key for key, _ in primary.db.scan(self.table)}
        for key in sorted(member_keys - auth_keys):
            # Divergent insert: committed on the old primary past the
            # fence point, never acknowledged — truncated on rejoin.
            with member.db.transaction() as txn:
                member.db.delete_blob(txn, self.table, key)
            member.transport.charge_exchange(member.model, len(key),
                                            ACK_BYTES)
            truncated += 1
        for key in sorted(auth_keys):
            auth_sha = primary.db.get_state(self.table, key).sha256
            have = key in member_keys
            if have and member.db.get_state(self.table,
                                            key).sha256 == auth_sha:
                continue
            data = primary.db.read_blob(self.table, key)
            member.transport.charge_exchange(member.model,
                                             len(key) + len(data),
                                             ACK_BYTES)
            with member.db.transaction() as txn:
                if have:
                    member.db.delete_blob(txn, self.table, key)
                member.db.put_blob(txn, self.table, key, data)
            if have:
                truncated += 1
            else:
                resynced += 1
        member.history = list(primary.history)
        member.applied_lsn = primary.applied_lsn
        member.epoch = self.epoch
        member.partitioned_until_ns = 0.0
        self.model.clock.advance(max(
            member.model.clock.now_ns - start_member,
            primary.model.clock.now_ns - start_primary))
        self.stats.rejoins += 1
        self.stats.truncated_records += truncated
        self.stats.resynced_records += resynced
        if obs is not None:
            obs.count("replica.rejoins")
            obs.count("replica.truncated_records", truncated)
        return {"truncated": truncated, "resynced": resynced}

    # -- introspection ---------------------------------------------------------

    def stats_report(self) -> EngineReport:
        """Aggregate member engines plus the group's replication line."""
        agg = EngineReport(
            replica_groups=1,
            replica_members=len(self.members),
            replica_quorum=self.quorum,
            replica_epoch=self.epoch,
            replica_acked_writes=self.stats.acked_writes,
            replica_records_shipped=self.stats.records_shipped,
            replica_ship_retries=self.ship_retries(),
            replica_failovers=self.stats.failovers,
            replica_rejoins=self.stats.rejoins,
            replica_fenced_ships=self.stats.fenced_ships,
            replica_truncated_records=self.stats.truncated_records,
            replica_max_lag_records=self.max_lag(),
            replica_stale_reads=self.stats.stale_reads,
        )
        live = [m for m in self.members if m.alive and m.db is not None]
        for member in live:
            agg.accumulate(member.db.stats_report())
        hits = sum(m.db.pool.stats.hits for m in live)
        misses = sum(m.db.pool.stats.misses for m in live)
        agg.pool_hit_ratio = hits / (hits + misses) if hits + misses else 0.0
        if agg.io_requests_in:
            agg.io_coalesce_ratio = \
                (agg.io_requests_in - agg.io_requests_out) \
                / agg.io_requests_in
        utils = [m.db.allocator.utilization() for m in live]
        agg.allocator_utilization = sum(utils) / len(utils) if utils else 0.0
        agg.simulated_seconds = self.model.clock.now_s
        return agg
