"""Replicated shard groups: WAL shipping, quorum commit, failover.

Promotes the engine's shards to replica groups — ``1 primary + N
replicas`` each, every member a complete engine on its own virtual
clock — with quorum-priced commits, per-link fault injection, read
fan-out with staleness accounting, and deterministic epoch-fenced
failover.  See ``docs/replication.md``.
"""

from repro.replica.group import GroupStats, ReplicaGroup, ReplicaMember
from repro.replica.record import (
    ACK_BYTES,
    OP_DELETE,
    OP_PUT,
    ReplicationRecord,
)
from repro.replica.sharded import ReplicatedShardedBlobDB

__all__ = [
    "ACK_BYTES",
    "OP_DELETE",
    "OP_PUT",
    "GroupStats",
    "ReplicaGroup",
    "ReplicaMember",
    "ReplicatedShardedBlobDB",
    "ReplicationRecord",
]
