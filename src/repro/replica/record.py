"""The replication stream's record type and its wire framing.

A replica group ships the primary's logical WAL stream — one record per
committed operation, in commit order, with a dense group LSN.  Unlike
the engine's own WAL (single-flush logging: BLOB content stays in its
extents, only Blob State metadata is logged), the *shipped* record
carries the content inline: each replica materializes its own extents
on its own device, so the content must cross the link, as it would in
physical log shipping.

Framing mirrors :mod:`repro.wal.records`:
``[u8 op][u64 lsn][u64 epoch][u32 key_len][key][u32 payload_len]
[payload][u32 crc32]`` — a CRC-framed, self-delimiting record a
receiving member can validate before applying.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

_HEADER = struct.Struct(">BQQ")
_LEN = struct.Struct(">I")
_CRC = struct.Struct(">I")

#: Operation codes on the wire.
OP_PUT = 1
OP_DELETE = 2

_OP_NAMES = {OP_PUT: "put", OP_DELETE: "delete"}
_OP_CODES = {name: code for code, name in _OP_NAMES.items()}

#: Fixed wire bytes of one shipped record's response (ack envelope).
ACK_BYTES = 16


@dataclass(frozen=True)
class ReplicationRecord:
    """One operation of the replication stream.

    ``lsn`` is dense and group-wide (1-based); ``epoch`` is the term of
    the primary that *created* the record.  Epoch fencing compares the
    shipping primary's current epoch (carried in the ship envelope, see
    :meth:`ReplicaGroup._ship`), not this origin epoch — catch-up
    legitimately re-ships old-epoch records under a new primary.
    """

    lsn: int
    epoch: int
    op: str              # "put" | "delete"
    key: bytes
    payload: bytes | None = None   # None for deletes

    def __post_init__(self) -> None:
        if self.op not in _OP_CODES:
            raise ValueError(f"unknown replication op {self.op!r}")
        if self.op == "delete" and self.payload is not None:
            raise ValueError("delete records carry no payload")

    def encode(self) -> bytes:
        payload = self.payload or b""
        body = (_HEADER.pack(_OP_CODES[self.op], self.lsn, self.epoch)
                + _LEN.pack(len(self.key)) + self.key
                + _LEN.pack(len(payload)) + payload)
        return body + _CRC.pack(zlib.crc32(body))

    def wire_bytes(self) -> int:
        """Request payload size of shipping this record (framing incl.)."""
        return (_HEADER.size + 2 * _LEN.size + _CRC.size
                + len(self.key) + len(self.payload or b""))

    @classmethod
    def decode(cls, raw: bytes) -> "ReplicationRecord":
        if len(raw) < _HEADER.size + 2 * _LEN.size + _CRC.size:
            raise ValueError("truncated replication record")
        body, crc_raw = raw[:-_CRC.size], raw[-_CRC.size:]
        if zlib.crc32(body) != _CRC.unpack(crc_raw)[0]:
            raise ValueError("replication record CRC mismatch")
        op_code, lsn, epoch = _HEADER.unpack_from(body, 0)
        if op_code not in _OP_NAMES:
            raise ValueError(f"unknown replication op code {op_code}")
        off = _HEADER.size
        (key_len,) = _LEN.unpack_from(body, off)
        off += _LEN.size
        key = body[off:off + key_len]
        if len(key) != key_len:
            raise ValueError("truncated replication key")
        off += key_len
        (payload_len,) = _LEN.unpack_from(body, off)
        off += _LEN.size
        payload = body[off:off + payload_len]
        if len(payload) != payload_len:
            raise ValueError("truncated replication payload")
        op = _OP_NAMES[op_code]
        return cls(lsn=lsn, epoch=epoch, op=op, key=key,
                   payload=payload if op == "put" else None)
