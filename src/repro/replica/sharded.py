"""Replicated shard groups: the router over N :class:`ReplicaGroup`\\ s.

PR 5 hash-partitioned the keyspace across independent engines; this
layer promotes each partition to a replica group.  The
:class:`~repro.shard.router.ShardRouter` is unchanged — it routes keys
to *groups* instead of single engines — and cross-group batches reuse
:func:`~repro.shard.sharded.gather_makespan` one level up: every group
commits its sub-batch (primary work + quorum wait) on its own
coordinator clock, and the router's clock advances by the slowest
group.  A primary crash inside one group is invisible to the others:
the group fails over on its own clock and the router keeps routing to
the same group id — group membership is a replication concern, not a
partitioning one.
"""

from __future__ import annotations

from repro.db.config import EngineConfig
from repro.db.stats import EngineReport
from repro.net.transport import TCP_ETHERNET
from repro.replica.group import ReplicaGroup
from repro.shard.router import ShardRouter
from repro.shard.sharded import gather_makespan
from repro.sim.cost import CostModel


class ReplicatedShardedBlobDB:
    """Scatter-gather facade over hash-partitioned replica groups."""

    def __init__(self, n_groups: int = 4, n_replicas: int = 2,
                 quorum: int = 2,
                 config: EngineConfig | None = None,
                 model: CostModel | None = None,
                 table: str = "blobs",
                 hasher_kind: str = "fast",
                 transport=TCP_ETHERNET,
                 device_faults=None, link_faults=None,
                 auto_failover: bool = True) -> None:
        if n_groups < 1:
            raise ValueError("need at least one replica group")
        self.config = config or EngineConfig()
        self.model = model or CostModel()
        self.table = table
        # One coordinator clock per group; fault plans derive per-member
        # seeds from the group-qualified target name, so every link and
        # device in the fleet faults independently but reproducibly.
        self.groups = [
            ReplicaGroup(n_replicas=n_replicas, quorum=quorum,
                         config=self.config,
                         model=CostModel(self.model.params),
                         table=table, transport=transport,
                         name=f"g{gid}",
                         device_faults=device_faults,
                         link_faults=link_faults,
                         auto_failover=auto_failover)
            for gid in range(n_groups)
        ]
        self.n_groups = n_groups
        self.router = ShardRouter(n_groups, self.model, hasher_kind)

    # -- scatter-gather core -------------------------------------------------

    def _gather(self, group_ids, runner) -> float:
        ids = sorted(group_ids)
        self.router.charge_fanout(len(ids))
        return gather_makespan(
            self.model,
            [(gid, self.groups[gid].model.clock) for gid in ids],
            runner, obs_label="replica.group")

    # -- single-key operations ------------------------------------------------

    def put(self, key: bytes, data: bytes) -> None:
        gid = self.router.shard_of(key)
        self._gather([gid], lambda g: self.groups[g].put(key, data))

    def get(self, key: bytes) -> bytes:
        gid = self.router.shard_of(key)
        out: list[bytes] = []
        self._gather([gid], lambda g: out.append(self.groups[g].get(key)))
        return out[0]

    def read_any(self, key: bytes) -> bytes:
        """Route to the owning group, read from its member rotation."""
        gid = self.router.shard_of(key)
        out: list[bytes] = []
        self._gather([gid],
                     lambda g: out.append(self.groups[g].read_any(key)))
        return out[0]

    def delete(self, key: bytes) -> None:
        gid = self.router.shard_of(key)
        self._gather([gid], lambda g: self.groups[g].delete(key))

    def exists(self, key: bytes) -> bool:
        return self.groups[self.router.shard_of(key)].exists(key)

    # -- scatter-gather batches ------------------------------------------------

    def multiget(self, keys: list[bytes]) -> list[bytes]:
        parts = self.router.partition(list(keys))
        results: list[bytes | None] = [None] * len(keys)

        def run(gid: int) -> None:
            group = self.groups[gid]
            for pos, key in parts[gid]:
                results[pos] = group.get(key)
        self._gather(parts.keys(), run)
        return results  # type: ignore[return-value]

    def multiput(self, items: list[tuple[bytes, bytes]]) -> None:
        """Quorum-commit a batch: each group acks its own sub-batch."""
        items = list(items)
        parts = self.router.partition([key for key, _ in items])

        def run(gid: int) -> None:
            group = self.groups[gid]
            for pos, key in parts[gid]:
                group.put(key, items[pos][1])
        self._gather(parts.keys(), run)

    def drain(self) -> None:
        """Settle every group's commit window and converge replicas."""
        self._gather(range(self.n_groups),
                     lambda gid: self.groups[gid].drain())

    # -- failure surface --------------------------------------------------------

    def crash_primary(self, group_id: int, mid_record=None):
        """Crash one group's primary; the group fails over on its clock."""
        group = self.groups[group_id]
        out = []
        self._gather([group_id],
                     lambda g: out.append(group.crash_primary(mid_record)))
        return out[0]

    def rejoin(self, group_id: int, member_id: int) -> dict:
        group = self.groups[group_id]
        out: list[dict] = []
        self._gather([group_id],
                     lambda g: out.append(group.rejoin(member_id)))
        return out[0]

    # -- introspection ----------------------------------------------------------

    def group_reports(self) -> list[EngineReport]:
        return [group.stats_report() for group in self.groups]

    def stats_report(self) -> EngineReport:
        """Aggregate engine raws and replication counters across groups."""
        reports = self.group_reports()
        agg = EngineReport(shard_count=self.n_groups,
                           shard_fanout_batches=self.router.stats
                           .fanout_batches,
                           shard_routed_keys=self.router.stats.routed_keys,
                           shard_imbalance=self.router.stats.imbalance(),
                           shard_keys_per_shard=list(
                               self.router.stats.per_shard_keys))
        for rep in reports:
            agg.accumulate(rep)
            agg.replica_groups += rep.replica_groups
            agg.replica_members += rep.replica_members
            agg.replica_quorum = max(agg.replica_quorum, rep.replica_quorum)
            agg.replica_epoch = max(agg.replica_epoch, rep.replica_epoch)
            agg.replica_acked_writes += rep.replica_acked_writes
            agg.replica_records_shipped += rep.replica_records_shipped
            agg.replica_ship_retries += rep.replica_ship_retries
            agg.replica_failovers += rep.replica_failovers
            agg.replica_rejoins += rep.replica_rejoins
            agg.replica_fenced_ships += rep.replica_fenced_ships
            agg.replica_truncated_records += rep.replica_truncated_records
            agg.replica_max_lag_records = max(agg.replica_max_lag_records,
                                              rep.replica_max_lag_records)
            agg.replica_stale_reads += rep.replica_stale_reads
        # Ratios recomputed from summed raws (accumulate never averages).
        live = [m for g in self.groups for m in g.members
                if m.alive and m.db is not None]
        hits = sum(m.db.pool.stats.hits for m in live)
        misses = sum(m.db.pool.stats.misses for m in live)
        agg.pool_hit_ratio = hits / (hits + misses) if hits + misses else 0.0
        if agg.io_requests_in:
            agg.io_coalesce_ratio = \
                (agg.io_requests_in - agg.io_requests_out) \
                / agg.io_requests_in
        utils = [m.db.allocator.utilization() for m in live]
        agg.allocator_utilization = sum(utils) / len(utils) if utils else 0.0
        agg.simulated_seconds = self.model.clock.now_s
        return agg
