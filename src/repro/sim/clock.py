"""Virtual clock measuring simulated nanoseconds.

The clock only moves when a priced operation charges time to it, so runs
are fully deterministic and independent of host machine speed.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically increasing counter of simulated nanoseconds."""

    __slots__ = ("now_ns",)

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError("clock cannot start before t=0")
        self.now_ns = start_ns

    def advance(self, delta_ns: float) -> None:
        """Move the clock forward by ``delta_ns`` simulated nanoseconds."""
        if delta_ns < 0:
            raise ValueError(f"cannot move time backwards ({delta_ns} ns)")
        self.now_ns += int(delta_ns)

    def advance_to(self, t_ns: int) -> None:
        """Move the clock forward to absolute time ``t_ns`` (no-op if past)."""
        if t_ns > self.now_ns:
            self.now_ns = t_ns

    @property
    def now_us(self) -> float:
        return self.now_ns / 1_000.0

    @property
    def now_ms(self) -> float:
        return self.now_ns / 1_000_000.0

    @property
    def now_s(self) -> float:
        return self.now_ns / 1_000_000_000.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now_ns={self.now_ns})"


class Stopwatch:
    """Measures elapsed simulated time over a region of code.

    Usage::

        with Stopwatch(clock) as sw:
            ...  # operations that charge the clock
        elapsed = sw.elapsed_ns
    """

    __slots__ = ("_clock", "_start_ns", "elapsed_ns")

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._start_ns = 0
        self.elapsed_ns = 0

    def __enter__(self) -> "Stopwatch":
        self._start_ns = self._clock.now_ns
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_ns = self._clock.now_ns - self._start_ns
