"""Cost model: prices every primitive operation in simulated nanoseconds.

The parameters are calibrated to a machine resembling the paper's testbed
(Intel i7-13700K, Samsung 980 Pro NVMe, Linux 6.2; Section V-A).  Absolute
values are best-effort estimates from public measurements; what matters
for the reproduction is that *all* systems are charged from the same
table, so the relative results (who wins and by what factor) are driven by
how many of each operation a design issues.

Besides time, the model maintains symbolic hardware counters
(``instructions``, ``cycles``, ``kernel_cycles``, ``cache_misses``) so the
paper's perf-counter tables (Table II, Table IV) can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.sim.clock import VirtualClock

#: Nanoseconds per CPU cycle at the model's 5 GHz clock.
NS_PER_CYCLE = 0.2

#: Syscall entry/exit + dispatch costs in nanoseconds.  These include the
#: kernel-side bookkeeping each call performs (path resolution for ``open``,
#: dentry/inode lookup for ``fstat``, ...), but *not* per-byte data movement,
#: which is charged separately via :meth:`CostModel.kernel_copy`.
SYSCALL_NS = {
    "open": 2600.0,
    "openat": 2600.0,
    "creat": 3200.0,
    "close": 1100.0,
    "fstat": 1400.0,
    "stat": 1700.0,
    "pread": 850.0,
    "pwrite": 950.0,
    "read": 850.0,
    "write": 950.0,
    "ftruncate": 2400.0,
    "fallocate": 2100.0,
    "unlink": 2800.0,
    "mkdir": 3000.0,
    "readdir": 1600.0,
    "fsync": 5000.0,
    "fdatasync": 4200.0,
    "io_submit": 1200.0,
    "io_getevents": 700.0,
    "mmap": 1800.0,
    "munmap": 1500.0,
    "generic": 800.0,
}


@dataclass
class CostParams:
    """Tunable price list; see module docstring for calibration notes."""

    # -- CPU / memory -----------------------------------------------------
    #: Single-thread memcpy throughput (~16 GB/s on DDR5).
    memcpy_ns_per_byte: float = 0.0625
    #: Aggregate DRAM bandwidth shared by all workers (~64 GB/s).
    memory_bandwidth_bytes_per_s: float = 64e9
    #: L3 cache capacity (paper's machine: 30 MB).
    l3_bytes: int = 30 * 1024 * 1024
    #: Slowdown factor applied to memcpy when the combined working set of
    #: active workers spills out of L3 (cache-line ping-pong + DRAM misses).
    l3_spill_factor: float = 1.6
    #: Soft page fault on a fresh anonymous mapping.  Linux fault-around
    #: populates FAULT_AROUND_PAGES (16) PTEs per fault, so large
    #: malloc+memcpy staging buffers pay one of these per 64 KiB — the
    #: price aliasing avoids (Section V-E).
    page_fault_ns: float = 1500.0
    fault_around_pages: int = 16
    #: malloc() of a large block (arena bookkeeping, excludes faults).
    malloc_ns: float = 900.0
    #: SHA-256 hashing fused with the ingest copy (pipelined SHA-NI over
    #: data already streaming through the cache; ~20 GB/s effective).
    #: The paper's engine hashes BLOBs without them ever dominating the
    #: write path (Fig. 6), which requires copy-level hash throughput.
    hash_ns_per_byte: float = 0.05
    #: Hardware CRC32 (SSE4.2 ``crc32`` instruction, ~30 GB/s) charged
    #: when per-page protection information is computed or verified.
    crc32_ns_per_byte: float = 0.03

    # -- Virtual memory / exmap -------------------------------------------
    #: One exmap page-table manipulation batch (alias or unalias call).
    exmap_call_ns: float = 1500.0
    #: Per-page cost of writing page-table entries during aliasing.
    pte_write_ns: float = 12.0
    #: TLB shootdown broadcast on unalias: an IPI to all 32 hardware
    #: threads of the paper's i7-13700K, ~10 us end to end.  This is why
    #: the hash-table pool stays slightly ahead for 100 KB BLOBs
    #: (Fig. 10: "TLB flush is more expensive than malloc() & memcpy()
    #: when BLOBs are small").
    tlb_shootdown_ns: float = 11000.0

    # -- Buffer manager ----------------------------------------------------
    #: One page-translation through a hash-table buffer pool.
    hashtable_probe_ns: float = 110.0
    #: One page-translation through vmcache (virtual-memory indexed).
    vmcache_translate_ns: float = 25.0
    #: Visiting one B-Tree node (binary search within node included).
    btree_node_ns: float = 140.0
    #: Acquiring an uncontended latch / lock.
    latch_ns: float = 20.0
    #: Extra penalty when a latch acquisition is contended.
    latch_contended_ns: float = 450.0

    # -- OS page cache (file-system baselines) -------------------------------
    #: Allocating + radix-tree-inserting one fresh page-cache page during
    #: an extending write.
    page_cache_alloc_ns: float = 400.0
    #: Writes dirtying more than this much page cache are throttled to
    #: device write bandwidth (Linux dirty-ratio balancing); the paper's
    #: engine uses O_DIRECT and never hits this.
    dirty_throttle_bytes: int = 256 * 1024 * 1024

    # -- NVMe SSD (Samsung 980 Pro class) ----------------------------------
    ssd_read_latency_ns: float = 70_000.0
    ssd_write_latency_ns: float = 22_000.0
    #: Sequential read bandwidth (~7 GB/s) expressed as ns/byte.
    ssd_read_ns_per_byte: float = 1.0 / 7.0
    #: Sequential write bandwidth (~5 GB/s) expressed as ns/byte.
    ssd_write_ns_per_byte: float = 0.2
    #: Device-internal parallelism: up to this many queued requests overlap
    #: their latency (NVMe queue depth effect for async batches).
    ssd_queue_depth: int = 32

    # -- Byte-addressable persistent memory (Optane DCPMM class) ------------
    #: Load latency of one PMem access (media + on-DIMM controller).
    pmem_read_latency_ns: float = 300.0
    #: Sequential read bandwidth (~40 GB/s across channels) as ns/byte.
    pmem_read_ns_per_byte: float = 0.025
    #: Sequential store bandwidth (~10 GB/s sustained) as ns/byte.
    pmem_write_ns_per_byte: float = 0.1
    #: One cache-line write-back (``clwb``) reaching the persistence
    #: domain; PMem persists per 64-byte line, not per block.
    pmem_cacheline_flush_ns: float = 60.0
    #: One store fence (``sfence``) ordering the flushed lines — the
    #: durability point a byte-addressable WAL uses instead of fdatasync.
    pmem_fence_ns: float = 30.0

    # -- Client/server DBMS access path ------------------------------------
    #: Unix-domain-socket round trip incl. scheduler wakeups.
    ipc_roundtrip_ns: float = 24_000.0
    #: Wire (de)serialization of payload bytes in client protocols.
    serialize_ns_per_byte: float = 0.45
    #: SQL statement parse/plan for a trivial prepared statement.
    sql_overhead_ns: float = 3_500.0
    #: Server-side request dispatch: parsing the header, finding the op.
    rpc_dispatch_ns: float = 900.0

    # -- Sharded engine -----------------------------------------------------
    #: Router CPU per key on top of the content hash (bucket arithmetic,
    #: sub-batch bookkeeping).
    shard_route_ns: float = 60.0
    #: Per-shard scatter cost of one fan-out batch (building and handing
    #: off one sub-batch to a shard).
    shard_fanout_ns: float = 400.0

    # -- replicated engine ---------------------------------------------------
    #: Primary-side cost of enqueueing one WAL-ship record onto one
    #: replica link (framing the record, per-link queue append).
    replica_ship_ns: float = 250.0
    #: Coordinator bookkeeping for one quorum-commit decision (tracking
    #: acknowledgements, releasing the commit to the client).
    quorum_commit_ns: float = 300.0

    # -- Learned index (disk-resident, updatable) ---------------------------
    #: One binary-search step through the compact in-memory segment
    #: directory (first-key array, cache-resident).
    lindex_segment_search_ns: float = 12.0
    #: Evaluating the per-segment linear model: two FMAs, a clamp, and
    #: loading the model's cache line.
    lindex_predict_ns: float = 20.0
    #: Comparing one entry during the bounded last-mile search inside the
    #: +-epsilon window (sequential access within a cached segment page),
    #: also used per entry emitted by a segment range scan and per probe
    #: of a segment's delta buffer.
    lindex_scan_ns_per_entry: float = 8.0
    #: Retraining a segment: streaming its pages back in, merging the
    #: delta, refitting the cone, and writing the rebuilt run out — priced
    #: per byte moved (read + write), amortizing NVMe streaming and the
    #: O(n) fit over the segment.
    lindex_retrain_ns_per_byte: float = 0.5

    def copy(self, **overrides: float) -> "CostParams":
        """Return a copy with selected parameters replaced."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        unknown = set(overrides) - set(values)
        if unknown:
            raise TypeError(f"unknown cost parameters: {sorted(unknown)}")
        values.update(overrides)
        return CostParams(**values)


@dataclass
class PerfCounters:
    """Symbolic hardware counters accumulated alongside simulated time.

    Units are abstract "events" that scale with the same operations the
    real counters would: one instruction unit per ~1 ns of user-space
    work, kernel cycles for time spent below the syscall boundary, and
    cache misses for DRAM-touching data movement.
    """

    instructions: int = 0
    cycles: int = 0
    kernel_cycles: int = 0
    cache_misses: int = 0

    def add(self, other: "PerfCounters") -> None:
        self.instructions += other.instructions
        self.cycles += other.cycles
        self.kernel_cycles += other.kernel_cycles
        self.cache_misses += other.cache_misses

    def snapshot(self) -> "PerfCounters":
        return PerfCounters(
            instructions=self.instructions,
            cycles=self.cycles,
            kernel_cycles=self.kernel_cycles,
            cache_misses=self.cache_misses,
        )

    def delta_since(self, earlier: "PerfCounters") -> "PerfCounters":
        return PerfCounters(
            instructions=self.instructions - earlier.instructions,
            cycles=self.cycles - earlier.cycles,
            kernel_cycles=self.kernel_cycles - earlier.kernel_cycles,
            cache_misses=self.cache_misses - earlier.cache_misses,
        )


class CostModel:
    """Charges simulated time and perf counters for primitive operations.

    One ``CostModel`` is shared by a system-under-test and its substrate
    (device, buffer pool, ...).  The optional ``contention`` callable lets
    a multi-worker simulation scale memory-bound work (see
    :mod:`repro.sim.workers`).
    """

    def __init__(self, params: CostParams | None = None,
                 clock: VirtualClock | None = None) -> None:
        self.params = params or CostParams()
        self.clock = clock or VirtualClock()
        self.counters = PerfCounters()
        #: Optional :class:`~repro.obs.trace.Tracer`.  Instrumented
        #: layers read this attribute and skip all tracing work when it
        #: is ``None`` (the default), keeping the fast path
        #: allocation-free.  Attach with :func:`repro.obs.attach`.
        self.obs = None
        #: Optional :class:`~repro.analysis.sanitizer.Sanitizer` (same
        #: nullable-hook pattern as ``obs``): the buffer pool and WAL
        #: writer report latch/write-back/flush events through it when
        #: set.  Attach with :func:`repro.analysis.attach_sanitizer`.
        self.san = None
        #: Optional :class:`~repro.analysis.race.RaceScope` (same
        #: nullable-hook pattern): buffer frames, the WAL writer, and
        #: admission buckets report shared-state accesses through it so
        #: the happens-before detector can check cross-coroutine
        #: ordering.  Bind with ``detector.scope(prefix)``.
        self.race = None
        #: Multiplier applied to memory-bandwidth-bound work; a worker
        #: simulation sets this to model DRAM/L3 contention (Fig. 10).
        self.memory_contention = 1.0
        #: Simulated ns spent in memory-bandwidth-bound work (memcpy and
        #: kernel copies); :mod:`repro.sim.workers` scales this fraction.
        self.memory_time_ns = 0.0
        #: Total bytes moved by memcpy/kernel_copy (bandwidth demand).
        self.memcpy_bytes = 0
        #: Simulated ns spent in *foreground* WAL flushes.  With group
        #: commit one flush serves every worker queued inside the commit
        #: window, so :mod:`repro.sim.workers` amortizes this component
        #: across workers instead of replaying it per worker.
        self.wal_flush_time_ns = 0.0
        #: Simulated ns spent waiting on device I/O (reads, writes, and
        #: WAL flushes alike).  The sharded worker model scales this
        #: component by how many workers queue on each device.
        self.io_time_ns = 0.0
        #: Simulated ns spent in persistent-memory loads/persists.  Kept
        #: separate from ``io_time_ns``: PMem access is synchronous
        #: load/store work on the CPU, not queued block I/O, so worker
        #: models must not scale it by device queueing.
        self.pmem_time_ns = 0.0

    # -- internal charging helpers -----------------------------------------

    def _charge_user(self, ns: float, cache_misses: int = 0) -> None:
        self.clock.advance(ns)
        cycles = int(ns / NS_PER_CYCLE)
        self.counters.cycles += cycles
        self.counters.instructions += int(ns)  # ~1 instr unit per user ns
        self.counters.cache_misses += cache_misses

    def _charge_kernel(self, ns: float, cache_misses: int = 0) -> None:
        self.clock.advance(ns)
        cycles = int(ns / NS_PER_CYCLE)
        self.counters.cycles += cycles
        self.counters.kernel_cycles += cycles
        self.counters.instructions += int(ns * 0.6)
        self.counters.cache_misses += cache_misses

    # -- CPU / memory primitives --------------------------------------------

    def cpu(self, ns: float) -> None:
        """Charge generic user-space computation."""
        self._charge_user(ns)

    def memcpy(self, nbytes: int, *, faults: bool = False) -> None:
        """Copy ``nbytes`` in user space.

        ``faults=True`` models copying into a freshly malloc'ed anonymous
        region (one soft page fault per 4 KiB page), the cost the paper's
        virtual-memory aliasing avoids (Section V-E).
        """
        ns = nbytes * self.params.memcpy_ns_per_byte * self.memory_contention
        misses = nbytes // 64 if nbytes > self.params.l3_bytes // 8 else nbytes // 512
        self._charge_user(ns, cache_misses=misses)
        self.memory_time_ns += ns
        self.memcpy_bytes += nbytes
        if faults:
            npages = (nbytes + 4095) // 4096
            nfaults = (npages + self.params.fault_around_pages - 1) \
                // self.params.fault_around_pages
            self._charge_kernel(nfaults * self.params.page_fault_ns)

    def malloc(self, nbytes: int) -> None:
        """Charge a large allocation (bookkeeping only; faults on touch)."""
        self._charge_user(self.params.malloc_ns)

    def hash_bytes(self, nbytes: int) -> None:
        """Charge SHA-256 over ``nbytes`` (hardware-accelerated rate)."""
        self._charge_user(nbytes * self.params.hash_ns_per_byte,
                          cache_misses=nbytes // 256)

    def crc32_bytes(self, nbytes: int) -> None:
        """Charge CRC32 protection-info computation over ``nbytes``."""
        self._charge_user(nbytes * self.params.crc32_ns_per_byte)

    # -- syscalls ------------------------------------------------------------

    def syscall(self, name: str) -> None:
        """Charge the fixed cost of one syscall (no data movement)."""
        ns = SYSCALL_NS.get(name, SYSCALL_NS["generic"])
        self._charge_kernel(ns)

    def kernel_copy(self, nbytes: int) -> None:
        """Charge the kernel<->user copy a pread/pwrite performs."""
        ns = nbytes * self.params.memcpy_ns_per_byte * self.memory_contention
        self._charge_kernel(ns, cache_misses=nbytes // 128)
        self.memory_time_ns += ns
        self.memcpy_bytes += nbytes

    # -- virtual memory / exmap ----------------------------------------------

    def exmap_alias(self, npages: int) -> None:
        """Charge one exmap aliasing call mapping ``npages`` PTEs."""
        self._charge_kernel(self.params.exmap_call_ns
                            + npages * self.params.pte_write_ns)

    def tlb_shootdown(self) -> None:
        """Charge one inter-processor TLB invalidation broadcast."""
        self._charge_kernel(self.params.tlb_shootdown_ns)

    # -- buffer manager -------------------------------------------------------

    def hashtable_probe(self) -> None:
        self._charge_user(self.params.hashtable_probe_ns, cache_misses=2)

    def vmcache_translate(self) -> None:
        self._charge_user(self.params.vmcache_translate_ns)

    def btree_node(self) -> None:
        self._charge_user(self.params.btree_node_ns, cache_misses=1)

    def latch(self, contended: bool = False) -> None:
        ns = self.params.latch_ns
        if contended:
            ns += self.params.latch_contended_ns
        self._charge_user(ns, cache_misses=1 if contended else 0)

    # -- SSD I/O (invoked by the simulated device) -----------------------------

    def ssd_read(self, nbytes: int, requests: int = 1,
                 queue_depth: int | None = None) -> None:
        """Charge reading ``nbytes`` spread over ``requests`` NVMe commands.

        Requests submitted in one async batch overlap their latency up to
        the effective queue depth (the submitter's ``queue_depth`` capped
        by the device-internal ``ssd_queue_depth``); bandwidth is paid for
        every byte.
        """
        self._charge_io(nbytes, requests, self.params.ssd_read_latency_ns,
                        self.params.ssd_read_ns_per_byte, queue_depth)

    def ssd_write(self, nbytes: int, requests: int = 1,
                  queue_depth: int | None = None) -> None:
        self._charge_io(nbytes, requests, self.params.ssd_write_latency_ns,
                        self.params.ssd_write_ns_per_byte, queue_depth)

    def _charge_io(self, nbytes: int, requests: int,
                   latency_ns: float, ns_per_byte: float,
                   queue_depth: int | None = None) -> None:
        if requests <= 0:
            return
        qd = self.params.ssd_queue_depth
        if queue_depth is not None:
            qd = max(1, min(queue_depth, qd))
        # In-flight commands pipeline their latency instead of summing it:
        # the batch is limited either by latency (waves of up to `qd`
        # overlapped commands) or by transfer bandwidth, whichever binds.
        waves = (requests + qd - 1) // qd
        ns = max(waves * latency_ns, latency_ns + nbytes * ns_per_byte)
        self._charge_kernel(ns, cache_misses=nbytes // 256)
        self.io_time_ns += ns

    # -- persistent memory (invoked by the simulated PMem device) --------------

    def pmem_read(self, nbytes: int) -> None:
        """Charge loading ``nbytes`` from byte-addressable PMem.

        One media latency plus bandwidth — no command queue, no waves:
        loads are synchronous CPU work, which is why PMem reads price
        orders of magnitude below an NVMe command for small transfers.
        """
        ns = self.params.pmem_read_latency_ns \
            + nbytes * self.params.pmem_read_ns_per_byte
        self._charge_user(ns, cache_misses=nbytes // 64)
        self.pmem_time_ns += ns

    def pmem_persist(self, nbytes: int) -> None:
        """Charge persisting ``nbytes`` to PMem (store + clwb + fence).

        Byte-granular: exactly the stored bytes are priced (no page
        round-up, no read-modify-write), one cache-line flush per
        touched 64-byte line, and a single fence as the durability
        point — the pricing asymmetry the WAL byte-append path exploits.
        """
        lines = (nbytes + 63) // 64
        ns = nbytes * self.params.pmem_write_ns_per_byte \
            + lines * self.params.pmem_cacheline_flush_ns \
            + self.params.pmem_fence_ns
        self._charge_user(ns, cache_misses=lines)
        self.pmem_time_ns += ns

    # -- client/server access path ----------------------------------------------

    def ipc_roundtrip(self, payload_bytes: int = 0) -> None:
        """Charge one client<->server round trip incl. (de)serialization."""
        self._charge_kernel(self.params.ipc_roundtrip_ns)
        if payload_bytes:
            self._charge_user(payload_bytes * self.params.serialize_ns_per_byte,
                              cache_misses=payload_bytes // 128)

    def sql_statement(self) -> None:
        """Charge parsing/planning one (prepared) SQL statement."""
        self._charge_user(self.params.sql_overhead_ns)

    def rpc_dispatch(self) -> None:
        """Charge server-side dispatch of one protocol request."""
        self._charge_user(self.params.rpc_dispatch_ns)

    # -- sharded engine ----------------------------------------------------------

    def shard_route(self, key_bytes: int) -> None:
        """Charge routing one key to its shard (hash + bucket math)."""
        self._charge_user(key_bytes * self.params.hash_ns_per_byte
                          + self.params.shard_route_ns,
                          cache_misses=key_bytes // 256)

    def shard_fanout(self, n_shards: int) -> None:
        """Charge scattering one batch to ``n_shards`` sub-batches."""
        if n_shards > 0:
            self._charge_user(n_shards * self.params.shard_fanout_ns)

    # -- replicated engine ----------------------------------------------------

    def replica_ship(self, n_links: int) -> None:
        """Charge enqueueing one record onto ``n_links`` replica links."""
        if n_links > 0:
            self._charge_user(n_links * self.params.replica_ship_ns)

    def quorum_commit(self) -> None:
        """Charge one quorum-commit acknowledgement decision."""
        self._charge_user(self.params.quorum_commit_ns)

    # -- learned index ---------------------------------------------------------

    def lindex_segment_search(self, steps: int) -> None:
        """Charge ``steps`` binary-search steps over the segment directory."""
        if steps > 0:
            self._charge_user(steps * self.params.lindex_segment_search_ns)

    def lindex_predict(self) -> None:
        """Charge one linear-model evaluation (slope * x + intercept)."""
        self._charge_user(self.params.lindex_predict_ns)

    def lindex_last_mile(self, entries: int) -> None:
        """Charge touching ``entries`` entries inside the epsilon window
        (bounded last-mile search, delta-buffer probe, or range-scan emit)."""
        if entries > 0:
            self._charge_user(entries * self.params.lindex_scan_ns_per_entry,
                              cache_misses=entries // 8)

    def lindex_retrain(self, nbytes: int) -> None:
        """Charge retraining one segment: ``nbytes`` moved (read + write)."""
        if nbytes > 0:
            ns = nbytes * self.params.lindex_retrain_ns_per_byte
            self._charge_user(ns, cache_misses=nbytes // 256)
            self.io_time_ns += ns
