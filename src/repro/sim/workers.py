"""Deterministic multi-worker simulation with memory-contention modelling.

The paper's scaling experiments (Fig. 10, Table II) are governed by two
shared hardware resources: aggregate DRAM bandwidth and L3 capacity.
Python threads cannot demonstrate those effects, so this module runs
*logical* workers: one worker's operation stream is executed for real
(charging a :class:`~repro.sim.cost.CostModel`), and the memory-bound
fraction of its per-op time is then scaled by a fixed-point contention
factor derived from how many workers compete for bandwidth and whether
their combined working set spills out of L3.

This reproduces the paper's observations deterministically: a design that
performs two memcpys per read (hash-table pool: internal copy + client
copy) saturates bandwidth at high worker counts, while a single-copy
design (vmcache + aliasing) keeps scaling (Section V-E).

``WorkerSim`` is the *analytic baseline*: closed-form stretch factors
are exact for bandwidth ceilings but structurally cannot express
queueing, tail latency, or overload — a stretch factor has no waiting
line.  The discrete-event scheduler (:mod:`repro.sched`) models those
by simulation; ``tests/test_sched_traffic.py`` cross-checks that both
agree where the analytic model is valid (a single uncontended worker)
and documents where it lies (any load-dependent wait).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.cost import CostModel, CostParams, PerfCounters

#: Signature of one benchmark operation: receives the cost model to charge
#: and the worker index, performs the operation (real bytes, real data
#: structures), and returns nothing.
WorkerOp = Callable[[CostModel, int], None]


@dataclass
class WorkerResult:
    """Outcome of a multi-worker simulation run."""

    n_workers: int
    ops_per_worker: int
    per_op_ns: float
    throughput_ops_s: float
    contention_factor: float
    l3_spilled: bool
    counters: PerfCounters
    #: Per-op foreground WAL flush time after group-commit amortization
    #: (0.0 unless the run used ``group_commit=True``).
    wal_flush_ns_per_op: float = 0.0
    #: Shard count of a sharded run (``None``: legacy single-engine mode
    #: that assumes the device scales with the workers).
    n_shards: int | None = None
    #: Queueing stretch applied to the device-bound component — how many
    #: workers share each shard's device (1.0 when not sharded).
    device_factor: float = 1.0

    @property
    def total_ops(self) -> int:
        return self.n_workers * self.ops_per_worker


class WorkerSim:
    """Simulates ``n_workers`` symmetric workers running the same op mix."""

    def __init__(self, n_workers: int, params: CostParams | None = None) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.n_workers = n_workers
        self.params = params or CostParams()

    def run(self, op: WorkerOp, ops_per_worker: int,
            working_set_bytes: int = 0,
            setup: Callable[[CostModel], None] | None = None,
            group_commit: bool = False,
            n_shards: int | None = None) -> WorkerResult:
        """Execute ``ops_per_worker`` operations and model N-worker scaling.

        ``working_set_bytes`` is the per-worker memory footprint an op
        streams through (client buffer + any internal staging buffer); it
        determines whether N workers together spill L3.

        ``group_commit=True`` models cross-worker group commit: the
        foreground WAL flush time the trace accumulated (one flush per
        commit window) is shared by every worker whose commit rode the
        window, so its per-op contribution is divided by the worker
        count instead of being replicated N times.

        ``n_shards`` switches on the sharded contention model: the run
        models ``n_shards`` independent engines (one device + WAL
        each), so each shard's device serves ``n_workers / n_shards``
        queued workers and the device-bound fraction of per-op time
        stretches by that factor.  ``None`` (the default) keeps the
        legacy single-engine assumption that the device scales with the
        workers.  Memory terms are *never* sharded — DRAM bandwidth and
        L3 are host-wide — which is exactly why adding shards stops
        helping once the workload is memory-bound (Section V-E).
        """
        if ops_per_worker < 1:
            raise ValueError("ops_per_worker must be positive")
        if n_shards is not None and n_shards < 1:
            raise ValueError("n_shards must be positive")
        model = CostModel(self.params)
        if setup is not None:
            setup(model)
        if model.san is not None:
            # The scaling model replays one worker's trace; attribute
            # its latch events to worker 0.
            model.san.set_worker(0)
        start_ns = model.clock.now_ns
        start_mem = model.memory_time_ns
        start_bytes = model.memcpy_bytes
        start_wal_flush = model.wal_flush_time_ns
        start_io = model.io_time_ns
        base_counters = model.counters.snapshot()
        for i in range(ops_per_worker):
            op(model, i)
        total_ns = model.clock.now_ns - start_ns
        mem_ns = model.memory_time_ns - start_mem
        copy_bytes = model.memcpy_bytes - start_bytes
        wal_flush_ns = model.wal_flush_time_ns - start_wal_flush
        io_ns = model.io_time_ns - start_io
        counters = model.counters.delta_since(base_counters)

        per_op_total = total_ns / ops_per_worker
        per_op_mem = mem_ns / ops_per_worker
        per_op_other = max(0.0, per_op_total - per_op_mem)
        per_op_bytes = copy_bytes / ops_per_worker
        per_op_wal_flush = 0.0
        if group_commit and wal_flush_ns > 0:
            # Remove the synchronous flush component from the serial
            # part and re-add the amortized 1/N share.
            per_op_flush_full = wal_flush_ns / ops_per_worker
            per_op_wal_flush = per_op_flush_full / self.n_workers
            per_op_other = max(
                0.0, per_op_other - per_op_flush_full) + per_op_wal_flush

        device_factor = 1.0
        if n_shards is not None:
            # Each shard's device queues n_workers/n_shards workers;
            # their device-bound time serializes behind one another.
            # The WAL-flush share a group-commit window amortized above
            # is excluded — one window flush already serves its riders.
            per_op_io = io_ns / ops_per_worker
            if group_commit and wal_flush_ns > 0:
                per_op_io = max(
                    0.0, per_op_io - wal_flush_ns / ops_per_worker)
            device_factor = max(1.0, self.n_workers / n_shards)
            per_op_other += per_op_io * (device_factor - 1.0)

        spilled = (self.n_workers * working_set_bytes) > self.params.l3_bytes
        if spilled:
            per_op_mem *= self.params.l3_spill_factor

        factor = self._bandwidth_factor(per_op_other, per_op_mem, per_op_bytes)
        per_op_ns = per_op_other + factor * per_op_mem
        throughput = self.n_workers * 1e9 / per_op_ns if per_op_ns else 0.0
        return WorkerResult(
            n_workers=self.n_workers,
            ops_per_worker=ops_per_worker,
            per_op_ns=per_op_ns,
            throughput_ops_s=throughput,
            contention_factor=factor,
            l3_spilled=spilled,
            counters=counters,
            wal_flush_ns_per_op=per_op_wal_flush,
            n_shards=n_shards,
            device_factor=device_factor,
        )

    def _bandwidth_factor(self, other_ns: float, mem_ns: float,
                          bytes_per_op: float) -> float:
        """Fixed-point slowdown so aggregate demand fits DRAM bandwidth."""
        if mem_ns <= 0 or bytes_per_op <= 0:
            return 1.0
        bw_bytes_per_ns = self.params.memory_bandwidth_bytes_per_s / 1e9
        factor = 1.0
        for _ in range(64):
            per_op = other_ns + factor * mem_ns
            demand = self.n_workers * bytes_per_op / per_op  # bytes/ns
            new_factor = max(1.0, factor * demand / bw_bytes_per_ns)
            if abs(new_factor - factor) < 1e-9:
                break
            factor = new_factor
        return factor
