"""Deterministic simulation substrate: virtual time, cost model, workers.

Every system in this repository (our engine, the file-system baselines,
and the DBMS baselines) executes its real algorithms over real bytes, but
*time* is simulated: each priced operation (syscall, device I/O, memcpy,
TLB shootdown, IPC round-trip, ...) advances a :class:`VirtualClock` by an
amount determined by a shared :class:`CostModel`.  Because all systems are
priced by the same model, throughput ratios between systems reflect purely
algorithmic differences — which is exactly what the paper's evaluation is
about (see DESIGN.md section 1).
"""

from repro.sim.clock import VirtualClock
from repro.sim.cost import CostModel, CostParams, PerfCounters
from repro.sim.workers import WorkerSim, WorkerResult

__all__ = [
    "VirtualClock",
    "CostModel",
    "CostParams",
    "PerfCounters",
    "WorkerSim",
    "WorkerResult",
]
