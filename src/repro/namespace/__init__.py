"""Interval-numbered namespace accelerator for recursive scans."""

from repro.namespace.intervals import NamespaceIndex, NsNode

__all__ = ["NamespaceIndex", "NsNode"]
