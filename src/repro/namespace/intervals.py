"""Interval-numbered namespace accelerator (XPath-accelerator style).

The FUSE/objectstore namespace is a tree: tables are top-level
directories and ``/``-separated key components form the hierarchy
below.  Classic engines answer recursive questions (``readdir -R``,
subtree ``statfs``, ``list_objects(prefix=...)``) by decomposing them
into per-level lookups — one ``readdir`` plus one ``getattr`` per
entry per directory.  This module maintains a *pre/post-order interval
numbering* over that tree instead: every node owns an integer interval
``[lo, hi]`` strictly nested inside its parent's, so the set of
descendants of any node is exactly the nodes whose ``lo`` falls in
``(lo, hi)`` — and a whole-subtree question becomes **one range scan**
over an ordered index keyed by ``lo``.

The ordered index is built through ``db._new_btree()``, i.e. it runs on
whichever relation-index engine the config selects (B-Tree, ART, or
the learned tier) and every probe of the accelerator is priced through
that engine's cost charges.

Intervals are allocated with gaps so inserts rarely shift neighbours;
when a directory's gap is exhausted the whole tree is deterministically
renumbered (counted in :attr:`renumbers`) with headroom proportional to
each subtree's size.  The accelerator is volatile: it is rebuilt from
committed tables after a crash, and live maintenance rides on the
transaction commit path (``Transaction.ns_events``), so aborted
mutations never touch it.
"""

from __future__ import annotations

from typing import Any, Iterator

#: Interval width reserved for a fresh directory (files take 2 slots:
#: their ``lo`` and ``hi`` marks).  31 files fit before a renumber.
_DIR_SPAN = 64
#: Extra free slots renumbering leaves inside every directory.
_RENUMBER_SLACK = 64


def _enc(number: int) -> bytes:
    return number.to_bytes(8, "big")


class NsNode:
    """One namespace node: a directory, a file, or (S3-style) both."""

    __slots__ = ("name", "parent", "children", "is_file", "size", "etag",
                 "table", "key", "lo", "hi", "cursor", "_span")

    def __init__(self, name: str, parent: "NsNode | None",
                 lo: int, hi: int) -> None:
        self.name = name
        self.parent = parent
        self.children: dict[str, NsNode] = {}
        self.is_file = False
        self.size = 0
        self.etag = ""
        self.table = ""
        self.key: bytes | None = None
        self.lo = lo
        self.hi = hi
        #: High-water mark of allocated child intervals inside ``(lo, hi)``.
        self.cursor = lo
        self._span = 0

    @property
    def is_dir(self) -> bool:
        return bool(self.children) or not self.is_file

    def depth(self) -> int:
        d, node = 0, self
        while node.parent is not None:
            d += 1
            node = node.parent
        return d

    def rel_path(self, ancestor: "NsNode") -> str:
        """Path of this node relative to ``ancestor`` (``a/b/c``)."""
        parts: list[str] = []
        node = self
        while node is not ancestor:
            parts.append(node.name)
            node = node.parent
            if node is None:
                raise ValueError("node is not a descendant of ancestor")
        return "/".join(reversed(parts))


class NamespaceIndex:
    """Pre/post-order interval numbering over a :class:`BlobDB` namespace."""

    def __init__(self, db: Any) -> None:
        self._db = db
        self._model = db.model
        self._root = NsNode("", None, 0, _DIR_SPAN - 1)
        self._tree = db._new_btree()
        self.nodes = 0
        self.range_scans = 0
        self.renumbers = 0
        self._build()

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, db: Any) -> "NamespaceIndex":
        """Build from committed state and attach as ``db.ns``."""
        ns = cls(db)
        db.ns = ns
        return ns

    def _build(self) -> None:
        for table in self._db.list_tables():
            for key, value in self._db.scan(table):
                if key.startswith(b"\x00"):
                    continue
                size, etag = _value_meta(value)
                self.note_put(table, key, size, etag)

    # -- name mapping ------------------------------------------------------

    @staticmethod
    def split_key(table: str, key: bytes) -> list[str]:
        """Path components for ``table``/``key`` (empty segments dropped)."""
        parts = [table]
        parts.extend(c.decode("utf-8", "surrogateescape")
                     for c in key.split(b"/") if c)
        return parts

    # -- maintenance -------------------------------------------------------

    def apply_events(self, events) -> None:
        """Replay one committed transaction's namespace events."""
        for op, table, key, size, etag in events:
            if op == "put":
                self.note_put(table, key, size, etag)
            else:
                self.note_delete(table, key)

    def note_put(self, table: str, key: bytes, size: int, etag: str) -> None:
        parts = self.split_key(table, key)
        node = self._root
        for depth, name in enumerate(parts):
            child = node.children.get(name)
            if child is None:
                is_last = depth == len(parts) - 1
                lo, hi = self._alloc(node, 2 if is_last else _DIR_SPAN)
                child = NsNode(name, node, lo, hi)
                node.children[name] = child
                self.nodes += 1
                self._tree.insert(_enc(lo), child)
            node = child
        node.is_file = True
        node.size = size
        node.etag = etag
        node.table = table
        node.key = key

    def note_delete(self, table: str, key: bytes) -> None:
        parts = self.split_key(table, key)
        node = self._root
        for name in parts:
            node = node.children.get(name)
            if node is None:
                return
        node.is_file = False
        node.size = 0
        node.etag = ""
        node.key = None
        # Prune directories that only existed because of this key.
        while node.parent is not None and not node.is_file \
                and not node.children:
            parent = node.parent
            del parent.children[node.name]
            self._tree.delete(_enc(node.lo))
            self.nodes -= 1
            node = parent

    def _alloc(self, parent: NsNode, want: int) -> tuple[int, int]:
        """Carve a ``want``-slot interval out of ``parent``'s gap."""
        if parent.hi - parent.cursor - 1 < want:
            self._renumber()
            # Renumbering leaves >= _RENUMBER_SLACK free slots per
            # directory; clamp in the (unreachable) degenerate case.
            want = min(want, max(2, parent.hi - parent.cursor - 1))
        lo = parent.cursor + 1
        hi = lo + want - 1
        parent.cursor = hi
        return lo, hi

    def _renumber(self) -> None:
        """Reassign every interval with size-proportional headroom."""
        self.renumbers += 1
        if getattr(self._model, "obs", None) is not None:
            self._model.obs.count("ns.renumbers")
        self._tree = self._db._new_btree()

        def span(node: NsNode) -> int:
            node._span = 2 + _RENUMBER_SLACK \
                + 2 * sum(span(c) for c in node.children.values())
            return node._span

        span(self._root)

        def assign(node: NsNode, lo: int) -> None:
            node.lo = lo
            cur = lo
            for name in sorted(node.children):
                child = node.children[name]
                assign(child, cur + 1)
                cur += child._span
            node.hi = lo + node._span - 1
            node.cursor = cur
            if node.parent is not None:
                self._tree.insert(_enc(node.lo), node)

        assign(self._root, 0)

    # -- queries -----------------------------------------------------------

    def resolve(self, table: str, key: bytes = b"") -> NsNode | None:
        """Walk to the node for ``table``/``key``; ``None`` if absent."""
        node = self._root
        for name in self.split_key(table, key):
            self._model.cpu(20.0)
            node = node.children.get(name)
            if node is None:
                return None
        return node

    def subtree(self, node: NsNode) -> list[NsNode]:
        """All descendants of ``node`` — **one** range scan on the index."""
        self.range_scans += 1
        if getattr(self._model, "obs", None) is not None:
            self._model.obs.count("ns.range_scans")
        return [found for _, found in
                self._tree.scan(_enc(node.lo + 1), _enc(node.hi + 1))]

    def iter_subtree(self, node: NsNode) -> Iterator[NsNode]:
        self.range_scans += 1
        if getattr(self._model, "obs", None) is not None:
            self._model.obs.count("ns.range_scans")
        for _, found in self._tree.scan(_enc(node.lo + 1), _enc(node.hi + 1)):
            yield found

    def subtree_stats(self, node: NsNode) -> dict[str, int]:
        """File/dir/byte totals under ``node`` from one range scan."""
        files = dirs = total = 0
        for found in self.iter_subtree(node):
            if found.is_file:
                files += 1
                total += found.size
            if found.is_dir:
                dirs += 1
        return {"files": files, "dirs": dirs, "bytes": total}

    # -- invariants --------------------------------------------------------

    def verify(self) -> list[str]:
        """Check the numbering invariants; returns failure strings."""
        failures: list[str] = []
        count = 0

        def walk(node: NsNode) -> None:
            nonlocal count
            prev_hi = node.lo
            # Siblings are disjoint in *interval* order; allocation
            # order (and therefore lo order) is independent of name
            # order, so sort by lo before checking adjacency.
            for child in sorted(node.children.values(),
                                key=lambda c: c.lo):
                count += 1
                if not (node.lo < child.lo <= child.hi < node.hi):
                    failures.append(
                        f"{child.name}: interval [{child.lo},{child.hi}] "
                        f"not nested in [{node.lo},{node.hi}]")
                if child.lo <= prev_hi:
                    failures.append(
                        f"{child.name}: interval overlaps a sibling")
                prev_hi = max(prev_hi, child.hi)
                if self._tree.lookup(_enc(child.lo)) is not child:
                    failures.append(
                        f"{child.name}: index entry missing or stale")
                walk(child)
            if node.cursor > node.hi:
                failures.append(f"{node.name}: cursor beyond interval end")

        walk(self._root)
        if count != self.nodes:
            failures.append(f"node count {self.nodes} != walked {count}")
        if len(self._tree) != count:
            failures.append(f"index holds {len(self._tree)} of {count} nodes")
        return failures


def _value_meta(value: Any) -> tuple[int, str]:
    """(size, etag) of a stored value, mirroring ``BlobDB._ns_note``."""
    sha = getattr(value, "sha256", None)
    if sha is not None:
        return value.size, sha.hex()
    if isinstance(value, (bytes, bytearray)):
        return len(value), ""
    return 0, ""
