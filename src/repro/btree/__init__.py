"""B-Tree with prefix compression.

The engine stores every relation and secondary index in this B-Tree.  It
supports a caller-supplied comparator — which is what makes the paper's
Blob State index possible: index structures "can store the Blob States in
sorted order according to their BLOB content ... the indexing structure is
untouched" (Section III-F).

Two paper-relevant features:

* **Prefix compression** (Bayer & Unterauer prefix B-trees): leaves store
  the page-common key prefix once, and inner separators are truncated to
  the shortest string that still separates their subtrees.  Section V-H
  notes this is why the 1 K-prefix index and the Blob State index end up
  with the same tree height.
* **Byte-budgeted nodes**: capacity is bytes, not entry count, so index
  size and leaf counts (Table III) fall out of the key sizes naturally.
"""

from repro.btree.btree import BTree, BTreeStats

__all__ = ["BTree", "BTreeStats"]
