"""Byte-budgeted B-Tree with prefix compression and custom comparators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.sim.cost import CostModel

#: Three-way comparator: negative / zero / positive like C's memcmp.
Comparator = Callable[[Any, Any], int]


def bytes_cmp(a: bytes, b: bytes) -> int:
    """Default comparator: lexicographic byte order."""
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def _common_prefix_len(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


@dataclass
class BTreeStats:
    """Structural statistics used by the indexing evaluation (Table III)."""

    height: int
    leaf_count: int
    inner_count: int
    entry_count: int
    #: Key bytes stored in leaves after prefix compression.
    leaf_key_bytes: int
    #: Key bytes stored in inner nodes (truncated separators).
    inner_key_bytes: int
    #: Estimated total on-page size (keys + per-entry/node overheads).
    size_bytes: int


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[Any] = []       # leaves only
        self.children: list["_Node"] = []  # inner nodes only

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTree:
    """A B-Tree whose node capacity is a byte budget.

    Parameters
    ----------
    cmp:
        Three-way comparator over keys; defaults to byte order.
    key_size:
        Size in bytes an entry's key occupies on a page; defaults to
        ``len(key)`` (works for ``bytes`` keys).  For object keys (e.g.
        Blob State) pass the serialized size.
    node_bytes:
        Byte budget of one node (page size, default 4 KiB).
    entry_overhead:
        Per-entry slot/offset overhead within a node.
    model:
        Optional cost model; every node visited during a lookup or scan
        charges one ``btree_node`` traversal.
    """

    def __init__(self, cmp: Comparator | None = None,
                 key_size: Callable[[Any], int] | None = None,
                 node_bytes: int = 4096,
                 entry_overhead: int = 16,
                 model: CostModel | None = None) -> None:
        if node_bytes < 64:
            raise ValueError("node_bytes too small to hold any entry")
        self._cmp = cmp or bytes_cmp
        self._key_size = key_size or (lambda k: len(k))
        self._node_bytes = node_bytes
        self._entry_overhead = entry_overhead
        self._model = model
        self._root = _Node()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # -- cost charging -------------------------------------------------------

    def _visit(self, node: _Node) -> None:
        if self._model is not None:
            self._model.btree_node()

    # -- node capacity ---------------------------------------------------------

    def _leaf_bytes(self, node: _Node) -> int:
        """Byte usage of a leaf after prefix compression."""
        n = len(node.keys)
        if n == 0:
            return 0
        sizes = [self._key_size(k) for k in node.keys]
        total = sum(sizes) + n * self._entry_overhead
        prefix = self._node_prefix_len(node)
        # The shared prefix is stored once instead of n times.
        return total - prefix * (n - 1)

    def _node_prefix_len(self, node: _Node) -> int:
        """Common byte prefix of a node's keys (0 for non-bytes keys)."""
        if len(node.keys) < 2:
            return 0
        first, last = node.keys[0], node.keys[-1]
        if isinstance(first, (bytes, bytearray)) and isinstance(last, (bytes, bytearray)):
            return _common_prefix_len(bytes(first), bytes(last))
        return 0

    def _inner_bytes(self, node: _Node) -> int:
        total = sum(self._key_size(k) for k in node.keys)
        return total + len(node.children) * self._entry_overhead

    def _leaf_overfull(self, node: _Node) -> bool:
        return len(node.keys) > 1 and self._leaf_bytes(node) > self._node_bytes

    def _inner_overfull(self, node: _Node) -> bool:
        return len(node.children) > 2 and self._inner_bytes(node) > self._node_bytes

    # -- separator truncation -----------------------------------------------------

    def _separator(self, left_max: Any, right_min: Any) -> Any:
        """Shortest key that is > ``left_max`` and <= ``right_min``.

        Classic prefix-B-tree suffix truncation; only applies to byte
        keys, object keys are used verbatim.
        """
        if isinstance(left_max, (bytes, bytearray)) and \
                isinstance(right_min, (bytes, bytearray)):
            left_b, right_b = bytes(left_max), bytes(right_min)
            cut = _common_prefix_len(left_b, right_b) + 1
            return right_b[:cut]
        return right_min

    # -- search helpers -----------------------------------------------------------

    def _lower_bound(self, keys: list[Any], key: Any) -> int:
        """First index whose key is >= ``key``."""
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cmp(keys[mid], key) < 0:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _child_index(self, node: _Node, key: Any) -> int:
        """Index of the child subtree that may contain ``key``."""
        lo, hi = 0, len(node.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cmp(key, node.keys[mid]) < 0:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # -- public operations -----------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert or replace ``key``; replacement keeps the tree size."""
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Node()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert(self, node: _Node, key: Any, value: Any):
        self._visit(node)
        if node.is_leaf:
            idx = self._lower_bound(node.keys, key)
            if idx < len(node.keys) and self._cmp(node.keys[idx], key) == 0:
                node.values[idx] = value
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._count += 1
            if self._leaf_overfull(node):
                return self._split_leaf(node)
            return None
        ci = self._child_index(node, key)
        split = self._insert(node.children[ci], key, value)
        if split is not None:
            sep, right = split
            node.keys.insert(ci, sep)
            node.children.insert(ci + 1, right)
            if self._inner_overfull(node):
                return self._split_inner(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node()
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        sep = self._separator(node.keys[-1], right.keys[0])
        return sep, right

    def _split_inner(self, node: _Node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node()
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep, right

    def lookup(self, key: Any) -> Any | None:
        """Return the value stored under ``key`` or ``None``."""
        node = self._root
        while True:
            self._visit(node)
            if node.is_leaf:
                idx = self._lower_bound(node.keys, key)
                if idx < len(node.keys) and self._cmp(node.keys[idx], key) == 0:
                    return node.values[idx]
                return None
            node = node.children[self._child_index(node, key)]

    def __contains__(self, key: Any) -> bool:
        return self.lookup(key) is not None

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns whether it was present.

        Like several production engines (including LeanStore), underfull
        nodes are tolerated and only empty nodes are unlinked — deletion
        never restructures eagerly.
        """
        removed = self._delete(self._root, key)
        # Collapse a root that lost all separators.
        while not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
        return removed

    def _delete(self, node: _Node, key: Any) -> bool:
        if node.is_leaf:
            idx = self._lower_bound(node.keys, key)
            if idx < len(node.keys) and self._cmp(node.keys[idx], key) == 0:
                node.keys.pop(idx)
                node.values.pop(idx)
                self._count -= 1
                return True
            return False
        ci = self._child_index(node, key)
        child = node.children[ci]
        removed = self._delete(child, key)
        if removed and not child.keys and child.is_leaf and len(node.children) > 1:
            node.children.pop(ci)
            node.keys.pop(max(0, ci - 1))
        return removed

    def scan(self, start: Any | None = None,
             end: Any | None = None) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` in order for ``start <= key < end``."""
        yield from self._scan(self._root, start, end)

    def _scan(self, node: _Node, start: Any | None, end: Any | None):
        self._visit(node)
        if node.is_leaf:
            idx = 0 if start is None else self._lower_bound(node.keys, start)
            for i in range(idx, len(node.keys)):
                if end is not None and self._cmp(node.keys[i], end) >= 0:
                    return
                yield node.keys[i], node.values[i]
            return
        ci = 0 if start is None else self._child_index(node, start)
        for i in range(ci, len(node.children)):
            if i > ci and end is not None and \
                    self._cmp(node.keys[i - 1], end) >= 0:
                return
            yield from self._scan(node.children[i], start if i == ci else None, end)

    def first(self) -> tuple[Any, Any] | None:
        """Smallest entry, or ``None`` if empty."""
        node = self._root
        while not node.is_leaf:
            self._visit(node)
            node = node.children[0]
        self._visit(node)
        if not node.keys:
            return None
        return node.keys[0], node.values[0]

    # -- statistics -----------------------------------------------------------------

    def stats(self) -> BTreeStats:
        """Walk the tree and compute the Table III structural statistics."""
        leaf_count = inner_count = 0
        leaf_bytes = inner_bytes = 0
        height = 0

        def walk(node: _Node, depth: int) -> None:
            nonlocal leaf_count, inner_count, leaf_bytes, inner_bytes, height
            height = max(height, depth + 1)
            if node.is_leaf:
                leaf_count += 1
                leaf_bytes += self._leaf_bytes(node)
            else:
                inner_count += 1
                inner_bytes += self._inner_bytes(node)
                for child in node.children:
                    walk(child, depth + 1)

        walk(self._root, 0)
        node_header = 32
        size = (leaf_bytes + inner_bytes
                + (leaf_count + inner_count) * node_header)
        return BTreeStats(
            height=height,
            leaf_count=leaf_count,
            inner_count=inner_count,
            entry_count=self._count,
            leaf_key_bytes=leaf_bytes,
            inner_key_bytes=inner_bytes,
            size_bytes=size,
        )
