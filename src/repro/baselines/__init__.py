"""Competitor systems from the paper's evaluation (Section V-A).

File systems — simulated at block level over the same device and cost
model as the engine, with the format/journal decisions the paper
attributes their behaviour to:

* :class:`Ext4` (``data=ordered`` and ``data=journal``) — extent trees,
  JBD2-style journal; journal mode writes data through the journal in
  the foreground.
* :class:`Xfs` — B+tree allocator with delayed allocation (fewest
  metadata touches; the fastest file system in Table IV).
* :class:`Btrfs` — copy-on-write with checksummed metadata.
* :class:`F2fs` — log-structured, append-only allocation (stable near
  full storage, Fig. 11).

DBMSs — the BLOB formats and logging of Section II / Table I:

* :class:`PostgresBlobStore` — TOAST chunk relation, two lookups + scan
  per read, full WAL copies, client/server IPC.
* :class:`SqliteBlobStore` — overflow-page linked list, WAL with
  aggressive checkpointing, optional WITHOUT-ROWID content index
  (four copies per BLOB).
* :class:`MysqlBlobStore` — overflow linked list, doublewrite buffer +
  redo log, client/server IPC.
"""

from repro.baselines.filesystem import FsError, FsStats, SimulatedFilesystem
from repro.baselines.ext4 import Ext4, Ext4Journal
from repro.baselines.xfs import Xfs
from repro.baselines.btrfs import Btrfs
from repro.baselines.f2fs import F2fs
from repro.baselines.postgres import PostgresBlobStore
from repro.baselines.sqlite import SqliteBlobStore
from repro.baselines.mysql import MysqlBlobStore

__all__ = [
    "SimulatedFilesystem",
    "FsError",
    "FsStats",
    "Ext4",
    "Ext4Journal",
    "Xfs",
    "Btrfs",
    "F2fs",
    "PostgresBlobStore",
    "SqliteBlobStore",
    "MysqlBlobStore",
]
