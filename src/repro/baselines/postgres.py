"""PostgreSQL baseline: TOAST storage over a client/server access path.

Section II: TOAST stores BLOB chunks (and metadata) in a separate
relation; every read costs *two* relation lookups (main + TOAST index)
plus a scan over the chunk pages, and "every TOAST page contains only
four chunks by default".  Content is additionally copied in full to the
WAL.  Fig. 6d: the client library rejects parameters of 1 GB and above
("Statement parameter length overflow").
"""

from __future__ import annotations

from repro.baselines.dbms import DbmsBlobStoreBase
from repro.btree import BTree

#: TOAST_MAX_CHUNK_SIZE for 8 KiB pages — four chunks per page.
TOAST_CHUNK_BYTES = 1996
#: libpq limits a single statement parameter to < 1 GB.
PARAM_LIMIT_BYTES = 10**9 - 1


class PostgresBlobStore(DbmsBlobStoreBase):
    name = "postgresql"
    page_size = 8192
    max_blob_bytes = PARAM_LIMIT_BYTES
    client_server = True

    def __init__(self, model, device) -> None:
        super().__init__(model, device)
        #: Index over (value_id, chunk_seq) in pg_toast.
        self._toast_index = BTree(node_bytes=self.page_size, model=model,
                                  key_size=lambda k: len(k))

    def _chunks(self, size: int) -> int:
        return max(1, (size + TOAST_CHUNK_BYTES - 1) // TOAST_CHUNK_BYTES)

    def _chunk_pages(self, size: int) -> int:
        return (self._chunks(size) + 3) // 4  # four chunks per page

    def _store(self, key: bytes, data: bytes) -> None:
        nchunks = self._chunks(len(data))
        # Chunk the value into the TOAST relation, indexing each chunk.
        self.model.memcpy(len(data))
        for seq in range(nchunks):
            self._toast_index.insert(key + seq.to_bytes(4, "big"), seq)
        # Full content goes to the WAL, then heap pages at checkpoint.
        self._wal_append(len(data))
        self._data_write(self._chunk_pages(len(data)) * self.page_size)

    def _load(self, key: bytes, size: int) -> None:
        # Second lookup: the TOAST index; then scan all chunk pages.
        self._toast_index.lookup(key + (0).to_bytes(4, "big"))
        pages = self._chunk_pages(size)
        # Chunk reassembly touches every page and copies the content.
        self.model.cpu(pages * 250.0)
        self.model.memcpy(size)

    def _drop(self, key: bytes, size: int) -> None:
        for seq in range(self._chunks(size)):
            self._toast_index.delete(key + seq.to_bytes(4, "big"))
        self._wal_append(64 * self._chunks(size))
