"""MySQL/InnoDB baseline: overflow chains, redo log, doublewrite buffer.

Section II / Table I: BLOBs beyond the row land in a linked list of
externally stored pages; the redo log receives another full copy, and
the doublewrite buffer writes every flushed page twice more — "DWB &
Redo" in the paper's duplicated-copies column.  Client/server access
adds the IPC and (de)serialization overheads of Fig. 5/6.
"""

from __future__ import annotations

from repro.baselines.dbms import DbmsBlobStoreBase

#: LONGBLOB limit.
MAX_LONGBLOB = (1 << 32) - 1


class MysqlBlobStore(DbmsBlobStoreBase):
    name = "mysql"
    page_size = 16384
    max_blob_bytes = MAX_LONGBLOB
    client_server = True

    def _pages(self, size: int) -> int:
        usable = self.page_size - 38 - 8  # FIL header + chain pointer
        return max(1, (size + usable - 1) // usable)

    def _store(self, key: bytes, data: bytes) -> None:
        pages = self._pages(len(data))
        # Build the external page chain.
        self.model.memcpy(len(data))
        self.model.cpu(pages * 150.0)
        # Redo log gets the content...
        self._wal_append(len(data))
        # ...and page flushes pass through the doublewrite buffer first.
        self._data_write(pages * self.page_size, category="dwb")
        self._data_write(pages * self.page_size, category="data")

    def _load(self, key: bytes, size: int) -> None:
        pages = self._pages(size)
        # Serial traversal of the externally-stored page list.
        self.model.cpu(pages * 200.0)
        self.model.memcpy(size)

    def _drop(self, key: bytes, size: int) -> None:
        pages = self._pages(size)
        self.model.cpu(pages * 100.0)
        self._wal_append(128)
