"""Shared machinery for the DBMS competitor models.

Each baseline implements the BLOB format and logging scheme the paper
describes for it (Section II, Table I) over the shared device and cost
model.  Content is kept byte-exact; time is charged for the operations
the real engine would perform: client/server round trips with wire
(de)serialization, SQL statement handling, B-Tree traversals, per-page
processing of chunk/overflow structures, WAL copies of the content, and
(for SQLite) foreground WAL checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree import BTree
from repro.db.errors import BlobTooBigError, DuplicateKeyError, KeyNotFoundError
from repro.sim.cost import CostModel
from repro.storage.device import SimulatedNVMe


@dataclass
class DbmsStats:
    """Counters the benchmarks read."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    checkpoints: int = 0
    wal_bytes: int = 0


class DbmsBlobStoreBase:
    """Key -> BLOB store with the competitor's access-path costs."""

    name = "dbms"
    #: Database page size (engine-specific).
    page_size = 8192
    #: BLOB size limit; exceeding it raises BlobTooBigError (Fig. 6d).
    max_blob_bytes = 1 << 62
    #: Client/server engines pay an IPC round trip per statement.
    client_server = False

    def __init__(self, model: CostModel, device: SimulatedNVMe) -> None:
        self.model = model
        self.device = device
        self.stats = DbmsStats()
        self._content: dict[bytes, bytes] = {}
        self._primary = BTree(node_bytes=self.page_size, model=model,
                              key_size=lambda k: len(k))
        self._next_pid = 0

    # -- common charging helpers ---------------------------------------------

    def _statement(self, payload_bytes: int) -> None:
        """One SQL statement: parse/plan, plus the wire cost if remote."""
        self.model.sql_statement()
        if self.client_server:
            self.model.ipc_roundtrip(payload_bytes)

    def _wal_append(self, nbytes: int, foreground: bool = False) -> None:
        """Copy ``nbytes`` through the WAL buffer and write it out."""
        self.model.memcpy(nbytes)
        self.stats.wal_bytes += nbytes
        npages = (nbytes + self.device.page_size - 1) // self.device.page_size
        if npages:
            pid = self._wal_cursor(npages)
            self.device.write(pid, b"\x00" * (npages * self.device.page_size),
                              category="wal", background=not foreground)

    _WAL_REGION_PAGES = 65536

    def _wal_cursor(self, npages: int) -> int:
        pid = self._next_pid % max(1, self._WAL_REGION_PAGES - npages)
        self._next_pid += npages
        return pid

    def _data_write(self, nbytes: int, category: str = "data",
                    foreground: bool = False) -> None:
        """Write content pages to their home location (page-granular)."""
        npages = (nbytes + self.device.page_size - 1) // self.device.page_size
        if npages:
            pid = self._wal_cursor(npages)
            self.device.write(pid, b"\x00" * (npages * self.device.page_size),
                              category=category, background=not foreground)

    # -- public API -------------------------------------------------------------

    def put(self, key: bytes, data: bytes) -> None:
        if len(data) > self.max_blob_bytes:
            raise BlobTooBigError(
                f"{self.name}: BLOB of {len(data)} bytes exceeds the "
                f"{self.max_blob_bytes}-byte limit")
        if self._primary.lookup(key) is not None:
            raise DuplicateKeyError(f"{key!r} exists")
        self._statement(len(data))
        self._content[key] = bytes(data)
        self._primary.insert(key, len(data))
        self._store(key, data)
        self.stats.puts += 1

    def get(self, key: bytes) -> bytes:
        size = self._primary.lookup(key)
        if size is None:
            raise KeyNotFoundError(f"{key!r} not found")
        self._statement(size)
        data = self._content[key]
        self._load(key, size)
        self.stats.gets += 1
        return data

    def delete(self, key: bytes) -> None:
        size = self._primary.lookup(key)
        if size is None:
            raise KeyNotFoundError(f"{key!r} not found")
        self._statement(0)
        self._drop(key, size)
        self._primary.delete(key)
        del self._content[key]
        self.stats.deletes += 1

    def exists(self, key: bytes) -> bool:
        return self._primary.lookup(key) is not None

    def flush(self) -> None:
        """Force any deferred home-location writes (accounting hook)."""

    # -- engine-specific hooks ------------------------------------------------------

    def _store(self, key: bytes, data: bytes) -> None:
        raise NotImplementedError

    def _load(self, key: bytes, size: int) -> None:
        raise NotImplementedError

    def _drop(self, key: bytes, size: int) -> None:
        raise NotImplementedError
