"""SQLite baseline: overflow-page chains, WAL, aggressive checkpoints.

Section II: BLOBs live in a linked list of overflow pages traversed
sequentially ("I/O interleaved with computation"); WAL mode copies every
dirty page to the WAL, and the default 1000-page checkpoint threshold
makes a 10 MB BLOB trigger ~2.5 checkpoints — each copying WAL pages
back into the main database *in the foreground* (the writer runs it).
With a WITHOUT-ROWID content index, content is doubled in the index and
logged again: four copies per BLOB.
"""

from __future__ import annotations

from repro.baselines.dbms import DbmsBlobStoreBase

#: PRAGMA wal_autocheckpoint default.
CHECKPOINT_PAGES = 1000
#: SQLITE_MAX_LENGTH default: ~1 GB ("BLOB too big" beyond it, Fig. 6d).
MAX_LENGTH = 10**9


class SqliteBlobStore(DbmsBlobStoreBase):
    name = "sqlite"
    page_size = 4096
    max_blob_bytes = MAX_LENGTH
    client_server = False  # embedded: the paper's fast non-server DBMS

    def __init__(self, model, device, with_content_index: bool = False) -> None:
        super().__init__(model, device)
        #: WITHOUT-ROWID index duplicating full BLOB content.
        self.with_content_index = with_content_index
        self._wal_pages_pending = 0

    def _pages(self, size: int) -> int:
        usable = self.page_size - 8  # next-page pointer per overflow page
        return max(1, (size + usable - 1) // usable)

    def _store(self, key: bytes, data: bytes) -> None:
        pages = self._pages(len(data))
        copies = 2 if self.with_content_index else 1
        # Build the overflow chain (and optionally the index copy).
        self.model.memcpy(len(data) * copies)
        self.model.cpu(pages * copies * 120.0)
        # WAL mode: every dirty page is appended to the WAL.
        self._wal_append(pages * copies * self.page_size)
        self._note_wal_pages(pages * copies)

    def _load(self, key: bytes, size: int) -> None:
        pages = self._pages(size)
        # Serial pointer-chase through the overflow chain: per-page
        # computation interleaves with (cached) page accesses.
        self.model.cpu(pages * 180.0)
        self.model.memcpy(size)

    def _drop(self, key: bytes, size: int) -> None:
        pages = self._pages(size)
        copies = 2 if self.with_content_index else 1
        self.model.cpu(pages * copies * 80.0)
        self._wal_append(pages * copies * 64)
        self._note_wal_pages(1)

    def flush(self) -> None:
        """Checkpoint whatever WAL pages are still pending."""
        if self._wal_pages_pending:
            nbytes = self._wal_pages_pending * self.page_size
            self.model.memcpy(nbytes)
            self._data_write(nbytes, foreground=True)
            self.stats.checkpoints += 1
            self._wal_pages_pending = 0

    def _note_wal_pages(self, pages: int) -> None:
        self._wal_pages_pending += pages
        while self._wal_pages_pending >= CHECKPOINT_PAGES:
            self._checkpoint()
            self._wal_pages_pending -= CHECKPOINT_PAGES

    def _checkpoint(self) -> None:
        """Copy WAL pages into the main database — in the foreground."""
        nbytes = CHECKPOINT_PAGES * self.page_size
        self.model.memcpy(nbytes)
        self._data_write(nbytes, foreground=True)
        self.stats.checkpoints += 1
