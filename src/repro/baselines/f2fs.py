"""F2FS: log-structured flash file system.

All writes append to the current log segment, so allocation never
searches for space and performance stays flat as the device fills —
the one file system that does not degrade in the paper's Fig. 11.
"""

from __future__ import annotations

from repro.baselines.filesystem import FsFile, SimulatedFilesystem


class F2fs(SimulatedFilesystem):
    name = "f2fs"
    journal_blocks = 1024  # checkpoint packs
    data_journaling = False
    log_structured = True
    write_block_cpu_ns = 24.0
    #: NAT/SIT updates and roll-forward node blocks per create: F2FS is
    #: comparatively slow on metadata-heavy small-file churn (Table IV).
    create_cpu_ns = 4000.0

    def _create_metadata_blocks(self) -> int:
        # NAT/SIT entries batch into checkpoint packs.
        return 2

    def _metadata_chain_length(self, file: FsFile) -> int:
        # NAT lookup + node block.
        return 2
