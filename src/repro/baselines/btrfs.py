"""BtrFS: copy-on-write B-tree file system with checksummed blocks.

Every overwrite relocates blocks (no in-place update), and all data is
checksummed on write — extra CPU per block.  Near-full storage the COW
allocator struggles to find space, the Fig. 11 degradation.
"""

from __future__ import annotations

from repro.baselines.filesystem import FsFile, SimulatedFilesystem


class Btrfs(SimulatedFilesystem):
    name = "btrfs"
    journal_blocks = 2048  # the log tree
    data_journaling = False
    copy_on_write = True
    #: CRC32C checksum per block on the write path.
    write_block_cpu_ns = 60.0
    #: COW B-tree inserts per created file.
    create_cpu_ns = 1500.0

    def _create_metadata_blocks(self) -> int:
        # fs-tree item + checksum-tree item + extent-tree item.
        return 3

    def _metadata_chain_length(self, file: FsFile) -> int:
        # fs-tree lookup (2 levels) + extent item per fragmented file.
        return 2 if len(file.extents) <= 4 else 3
