"""Block-level simulated file systems (competitors of Section V).

The base class implements the VFS layer every Linux file system shares:
path/fd management, the page cache with background writeback, dirty-page
throttling, and free-space management.  Subclasses plug in the decisions
the paper attributes performance differences to:

* the *allocation policy* (extent-based best-effort, copy-on-write,
  log-structured append);
* the *metadata read chain* (how many dependent block reads a cold
  access needs: inode, extent-tree levels, ...);
* the *journal behaviour* (none, metadata-only background commits, or
  data-through-the-journal in the foreground, as Ext4 ``data=journal``).

Calibration anchors (see DESIGN.md): ``fsync`` is disabled exactly as in
the paper; readahead is disabled, so cold reads fetch one block per
device command — which reproduces the paper's measured Ext4 read ceiling
of ~59 MB/s on 4 KiB blocks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.sim.cost import CostModel
from repro.storage.device import IoRequest, SimulatedNVMe


class FsError(OSError):
    """File-system level error (missing file, no space, bad fd)."""


@dataclass
class FsStats:
    """Counters the benchmarks read."""

    files_created: int = 0
    files_deleted: int = 0
    foreground_journal_bytes: int = 0
    writeback_bytes: int = 0
    alloc_fragments: int = 0


@dataclass
class FsFile:
    inode: int
    path: str
    size: int = 0
    #: Physical extents in logical order: (start_block, nblocks).
    extents: list[tuple[int, int]] = field(default_factory=list)

    def nblocks(self, block_size: int) -> int:
        return (self.size + block_size - 1) // block_size


class FreeSpace:
    """Free extent list with coalescing and best-effort allocation.

    Allocation takes from the largest free run first (the paper's
    "best-effort approach ... seeking the largest free space available"),
    splitting across runs when no single run suffices — which is exactly
    what produces fragmentation as utilization climbs (Fig. 11).
    """

    def __init__(self, start: int, nblocks: int) -> None:
        self._runs: list[tuple[int, int]] = [(start, nblocks)]
        self.free_blocks = nblocks

    def allocate(self, nblocks: int) -> list[tuple[int, int]]:
        if nblocks > self.free_blocks:
            raise FsError(28, f"no space: need {nblocks} blocks, "
                              f"{self.free_blocks} free")
        got: list[tuple[int, int]] = []
        remaining = nblocks
        while remaining > 0:
            # Largest run first.
            idx = max(range(len(self._runs)), key=lambda i: self._runs[i][1])
            start, length = self._runs[idx]
            take = min(length, remaining)
            got.append((start, take))
            if take == length:
                self._runs.pop(idx)
            else:
                self._runs[idx] = (start + take, length - take)
            remaining -= take
        self.free_blocks -= nblocks
        return got

    def allocate_append(self, nblocks: int) -> list[tuple[int, int]]:
        """Log-structured policy: take from the lowest-addressed run
        (F2FS always appends to the current log segment)."""
        if nblocks > self.free_blocks:
            raise FsError(28, "no space")
        got: list[tuple[int, int]] = []
        remaining = nblocks
        while remaining > 0:
            idx = min(range(len(self._runs)), key=lambda i: self._runs[i][0])
            start, length = self._runs[idx]
            take = min(length, remaining)
            got.append((start, take))
            if take == length:
                self._runs.pop(idx)
            else:
                self._runs[idx] = (start + take, length - take)
            remaining -= take
        self.free_blocks -= nblocks
        return got

    def free(self, start: int, nblocks: int) -> None:
        self._runs.append((start, nblocks))
        self.free_blocks += nblocks
        self._coalesce()

    def _coalesce(self) -> None:
        self._runs.sort()
        merged: list[tuple[int, int]] = []
        for start, length in self._runs:
            if merged and merged[-1][0] + merged[-1][1] == start:
                merged[-1] = (merged[-1][0], merged[-1][1] + length)
            else:
                merged.append((start, length))
        self._runs = merged

    @property
    def largest_run(self) -> int:
        return max((length for _, length in self._runs), default=0)

    @property
    def run_count(self) -> int:
        return len(self._runs)


class SimulatedFilesystem:
    """Base: VFS + page cache + writeback.  Subclasses set the policy."""

    name = "fs"
    #: Blocks reserved at partition start for the journal (0 = none).
    journal_blocks = 0
    #: True = file data passes through the journal in the foreground
    #: (Ext4 ``data=journal``); False = metadata-only, background.
    data_journaling = False
    #: Copy-on-write: overwrites allocate new blocks (BtrFS).
    copy_on_write = False
    #: Log-structured allocation (F2FS).
    log_structured = False
    #: Per-block metadata CPU on writes (checksums etc.).
    write_block_cpu_ns = 30.0
    #: CPU cost of creating one file beyond the syscall itself: dirent
    #: insertion, inode initialization, allocator bookkeeping.  This is
    #: the Table IV differentiator — git clone is dominated by ``open``
    #: for file creation (36 % of Ext4's runtime).
    create_cpu_ns = 1000.0
    #: Foreground data journaling batches into JBD2-style transactions.
    journal_batch_bytes = 4 * 1024 * 1024

    def __init__(self, model: CostModel, device: SimulatedNVMe) -> None:
        self.model = model
        self.device = device
        data_start = self.journal_blocks
        self.free = FreeSpace(data_start,
                              device.capacity_pages - data_start)
        self.block_size = device.page_size
        self.stats = FsStats()
        self._files: dict[str, FsFile] = {}
        self._fds: dict[int, FsFile] = {}
        self._next_fd = itertools.count(3)
        self._next_inode = itertools.count(1)
        #: Logical content per inode (host memory; costs are simulated).
        self._data: dict[int, bytearray] = {}
        #: Page-cache residency/dirtiness per (inode, block index).
        self._resident: set[tuple[int, int]] = set()
        self._dirty: set[tuple[int, int]] = set()
        self._inode_cached: set[int] = set()
        self._journal_pos = 0
        self._journal_pending_bytes = 0

    # -- path / fd management ----------------------------------------------

    def create(self, path: str) -> int:
        """``open(O_CREAT)``: directory update + inode allocation."""
        self.model.syscall("creat")
        if path in self._files:
            raise FsError(17, f"exists: {path}")
        inode = next(self._next_inode)
        file = FsFile(inode=inode, path=path)
        self._files[path] = file
        self._data[inode] = bytearray()
        self._inode_cached.add(inode)
        self.stats.files_created += 1
        self.model.cpu(self.create_cpu_ns)
        self._journal_metadata(self._create_metadata_blocks())
        return self._new_fd(file)

    def open(self, path: str) -> int:
        self.model.syscall("open")
        file = self._lookup(path)
        if file.inode not in self._inode_cached:
            # Cold open: read the inode block.
            self.device.read(self._inode_block(file), 1)
            self._inode_cached.add(file.inode)
        return self._new_fd(file)

    def _new_fd(self, file: FsFile) -> int:
        fd = next(self._next_fd)
        self._fds[fd] = file
        return fd

    def close(self, fd: int) -> None:
        self.model.syscall("close")
        if fd not in self._fds:
            raise FsError(9, f"bad fd {fd}")
        del self._fds[fd]

    def _lookup(self, path: str) -> FsFile:
        try:
            return self._files[path]
        except KeyError:
            raise FsError(2, f"no such file: {path}") from None

    def _file(self, fd: int) -> FsFile:
        try:
            return self._fds[fd]
        except KeyError:
            raise FsError(9, f"bad fd {fd}") from None

    # -- stat -------------------------------------------------------------------

    def fstat(self, fd: int) -> FsFile:
        self.model.syscall("fstat")
        return self._file(fd)

    def stat(self, path: str) -> FsFile:
        self.model.syscall("stat")
        file = self._lookup(path)
        if file.inode not in self._inode_cached:
            self.device.read(self._inode_block(file), 1)
            self._inode_cached.add(file.inode)
        return file

    def exists(self, path: str) -> bool:
        return path in self._files

    def listdir(self) -> list[str]:
        self.model.syscall("readdir")
        return sorted(self._files)

    # -- write path ---------------------------------------------------------------

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        """Write into the page cache; allocation policy runs here."""
        self.model.syscall("pwrite")
        file = self._file(fd)
        end = offset + len(data)
        bs = self.block_size
        old_blocks = file.nblocks(bs)
        new_blocks = (max(end, file.size) + bs - 1) // bs

        buf = self._data[file.inode]
        if len(buf) < end:
            buf.extend(b"\x00" * (end - len(buf)))
        buf[offset:end] = data
        file.size = max(file.size, end)

        # Fresh page-cache pages for the extension.
        grown = new_blocks - old_blocks
        if grown > 0:
            self.model.cpu(grown * self.model.params.page_cache_alloc_ns)
            self._allocate_blocks(file, grown)

        touched = range(offset // bs, (end + bs - 1) // bs)
        if self.copy_on_write:
            self._cow_remap(file, touched, old_blocks)
        for b in touched:
            self._resident.add((file.inode, b))
            self._dirty.add((file.inode, b))
        self.model.kernel_copy(len(data))
        self.model.cpu(len(touched) * self.write_block_cpu_ns)

        if self.data_journaling:
            self._journal_data(len(data))
        self._throttle_if_needed(len(data))
        return len(data)

    def _allocate_blocks(self, file: FsFile, nblocks: int) -> None:
        if self.log_structured:
            # Log-structured allocation appends to the current segment:
            # no search, constant cost — why F2FS stays flat in Fig. 11.
            runs = self.free.allocate_append(nblocks)
            self.model.cpu(200.0)
        else:
            # Best-effort allocators scan their free structures (block
            # groups, bitmaps, free-space trees); near-full they find no
            # single run large enough, and *every* fragment of the split
            # allocation repeats the search.  That multiplicative cost
            # is the Fig. 11 slowdown: "complicated mechanisms to
            # prevent fragmentation ... will not work well when the
            # storage is almost full".
            scan_before = self.free.run_count
            runs = self.free.allocate(nblocks)
            self.model.cpu(400.0 * max(1, scan_before) * len(runs))
            self.model.cpu(len(runs) * 350.0)
        self.stats.alloc_fragments += len(runs)
        for start, count in runs:
            if file.extents and \
                    file.extents[-1][0] + file.extents[-1][1] == start:
                file.extents[-1] = (file.extents[-1][0],
                                    file.extents[-1][1] + count)
            else:
                file.extents.append((start, count))

    def _cow_remap(self, file: FsFile, touched, old_blocks: int) -> None:
        """Copy-on-write: overwritten blocks move to fresh locations."""
        overwritten = [b for b in touched if b < old_blocks]
        if not overwritten:
            return
        scan_before = self.free.run_count
        runs = self.free.allocate(len(overwritten))
        self.model.cpu(400.0 * max(1, scan_before) * len(runs))
        self.stats.alloc_fragments += len(runs)
        new_positions = [start + i for start, count in runs
                         for i in range(count)]
        for b, pos in zip(overwritten, new_positions):
            old_pos = self._phys_block(file, b)
            if old_pos is not None:
                self.free.free(old_pos, 1)
            self._set_phys_block(file, b, pos)

    def _throttle_if_needed(self, nbytes: int) -> None:
        """Linux dirty-ratio balancing: huge buffered writes run at
        device speed.  (The engine uses O_DIRECT and never pays this.)"""
        limit = self.model.params.dirty_throttle_bytes
        dirty_bytes = len(self._dirty) * self.block_size
        if dirty_bytes > limit:
            self.writeback()
            overflow = max(0, nbytes - limit // 4)
            if overflow:
                self.model.cpu(overflow * self.model.params.ssd_write_ns_per_byte)

    def ftruncate(self, fd: int, size: int) -> None:
        """Resize; shrinking frees blocks, growing allocates."""
        self.model.syscall("ftruncate")
        file = self._file(fd)
        bs = self.block_size
        old_blocks = file.nblocks(bs)
        new_blocks = (size + bs - 1) // bs
        buf = self._data[file.inode]
        if size < file.size:
            del buf[size:]
            self._release_tail_blocks(file, new_blocks)
        else:
            buf.extend(b"\x00" * (size - len(buf)))
            if new_blocks > old_blocks:
                self.model.cpu((new_blocks - old_blocks)
                               * self.model.params.page_cache_alloc_ns)
                self._allocate_blocks(file, new_blocks - old_blocks)
        file.size = size
        self._journal_metadata(1)

    def _release_tail_blocks(self, file: FsFile, keep_blocks: int) -> None:
        """Free every physical block past the first ``keep_blocks``."""
        kept: list[tuple[int, int]] = []
        remaining = keep_blocks
        for start, count in file.extents:
            if remaining >= count:
                kept.append((start, count))
                remaining -= count
            elif remaining > 0:
                kept.append((start, remaining))
                self.free.free(start + remaining, count - remaining)
                remaining = 0
            else:
                self.free.free(start, count)
        old_blocks = file.nblocks(self.block_size)
        for b in range(keep_blocks, old_blocks):
            self._resident.discard((file.inode, b))
            self._dirty.discard((file.inode, b))
        file.extents = kept

    # -- read path -------------------------------------------------------------------

    def pread(self, fd: int, size: int, offset: int) -> bytes:
        """Read via the page cache; cold blocks fetched one per command
        (readahead disabled, as in the paper's configuration)."""
        self.model.syscall("pread")
        file = self._file(fd)
        if offset >= file.size:
            return b""
        size = min(size, file.size - offset)
        bs = self.block_size
        first, last = offset // bs, (offset + size - 1) // bs
        missing = [b for b in range(first, last + 1)
                   if (file.inode, b) not in self._resident]
        if missing:
            self._charge_metadata_walk(file)
            for b in missing:
                pos = self._phys_block(file, b)
                if pos is not None:
                    self.device.read(pos, 1)
                self._resident.add((file.inode, b))
        data = bytes(self._data[file.inode][offset:offset + size])
        self.model.kernel_copy(size)
        return data

    def read_file(self, path: str) -> bytes:
        """Convenience: open + fstat + pread-all + close, like an app."""
        fd = self.open(path)
        try:
            file = self.fstat(fd)
            return self.pread(fd, file.size, 0)
        finally:
            self.close(fd)

    def write_file(self, path: str, data: bytes) -> None:
        """Convenience: create (or truncate) + pwrite + close."""
        if self.exists(path):
            fd = self.open(path)
            self.ftruncate(fd, 0)
        else:
            fd = self.create(path)
        try:
            self.pwrite(fd, data, 0)
        finally:
            self.close(fd)

    # -- delete --------------------------------------------------------------------------

    def unlink(self, path: str) -> None:
        self.model.syscall("unlink")
        file = self._lookup(path)
        for start, count in file.extents:
            self.free.free(start, count)
        for b in range(file.nblocks(self.block_size)):
            self._resident.discard((file.inode, b))
            self._dirty.discard((file.inode, b))
        self._inode_cached.discard(file.inode)
        del self._data[file.inode]
        del self._files[path]
        self.stats.files_deleted += 1
        self._journal_metadata(self._create_metadata_blocks())

    # -- writeback / caches ------------------------------------------------------------------

    def writeback(self) -> int:
        """Flush dirty page-cache pages to their home locations
        (background: kworker flusher threads)."""
        requests: list[IoRequest] = []
        total = 0
        by_inode: dict[int, list[int]] = {}
        for inode, block in self._dirty:
            by_inode.setdefault(inode, []).append(block)
        inode_to_file = {f.inode: f for f in self._files.values()}
        for inode, blocks in by_inode.items():
            file = inode_to_file.get(inode)
            if file is None:
                continue
            data = self._data[inode]
            bs = self.block_size
            for block in sorted(blocks):
                pos = self._phys_block(file, block)
                if pos is None:
                    continue
                chunk = bytes(data[block * bs:(block + 1) * bs]).ljust(bs, b"\x00")
                requests.append(IoRequest(pid=pos, npages=1, data=chunk,
                                          category="data"))
                total += bs
        if requests:
            self.device.submit(requests, background=True)
        self._dirty.clear()
        self.stats.writeback_bytes += total
        if self.data_journaling:
            self._flush_journal_batch()
        return total

    def drop_caches(self) -> None:
        """``echo 3 > /proc/sys/vm/drop_caches`` for cold-cache runs."""
        self.writeback()
        self._resident.clear()
        self._inode_cached.clear()

    # -- journal --------------------------------------------------------------------------------

    def _journal_metadata(self, nblocks: int) -> None:
        """Metadata journaling: committed in the background."""
        if self.journal_blocks <= 0 or nblocks <= 0:
            return
        self._journal_write(nblocks, foreground=False)

    def _journal_data(self, nbytes: int) -> None:
        """``data=journal``: file data written to the journal, and the
        paper observes this I/O lands in the execution time.  JBD2
        batches dirty data into journal transactions, so the commit
        latency amortizes over ``journal_batch_bytes``."""
        self._journal_pending_bytes += nbytes
        self.stats.foreground_journal_bytes += nbytes
        if self._journal_pending_bytes >= self.journal_batch_bytes:
            self._flush_journal_batch()

    def _flush_journal_batch(self) -> None:
        nblocks = (self._journal_pending_bytes + self.block_size - 1) \
            // self.block_size
        if nblocks:
            self._journal_write(nblocks, foreground=True)
        self._journal_pending_bytes = 0

    def _journal_write(self, nblocks: int, foreground: bool) -> None:
        bs = self.block_size
        while nblocks > 0:
            take = min(nblocks, self.journal_blocks - self._journal_pos)
            if take <= 0:
                self._journal_pos = 0
                continue
            self.device.write(self._journal_pos, b"\x00" * (take * bs),
                              category="journal",
                              background=not foreground)
            self._journal_pos = (self._journal_pos + take) % self.journal_blocks
            nblocks -= take

    # -- policy hooks -------------------------------------------------------------------------------

    def _create_metadata_blocks(self) -> int:
        """Metadata blocks a create/unlink journals (dirent + inode + map)."""
        return 2

    def _metadata_chain_length(self, file: FsFile) -> int:
        """Dependent metadata block reads for a cold access."""
        return 1  # the inode block

    def _charge_metadata_walk(self, file: FsFile) -> None:
        """Cold read: walk the metadata chain with dependent reads."""
        if file.inode in self._inode_cached:
            return
        for _ in range(self._metadata_chain_length(file)):
            self.device.read(self._inode_block(file), 1)
        self._inode_cached.add(file.inode)

    def _inode_block(self, file: FsFile) -> int:
        # Inode tables live in the journal-free metadata area; model as
        # a deterministic block derived from the inode number.
        return self.journal_blocks + file.inode % 64

    # -- geometry helpers ------------------------------------------------------------------------------

    def _phys_block(self, file: FsFile, logical: int) -> int | None:
        remaining = logical
        for start, count in file.extents:
            if remaining < count:
                return start + remaining
            remaining -= count
        return None

    def _set_phys_block(self, file: FsFile, logical: int, pos: int) -> None:
        """Repoint one logical block (COW); splits extents as needed."""
        new_extents: list[tuple[int, int]] = []
        remaining = logical
        placed = False
        for start, count in file.extents:
            if placed or remaining >= count:
                new_extents.append((start, count))
                if not placed:
                    remaining -= count
                continue
            # Split this extent around `remaining`.
            if remaining > 0:
                new_extents.append((start, remaining))
            new_extents.append((pos, 1))
            if count - remaining - 1 > 0:
                new_extents.append((start + remaining + 1,
                                    count - remaining - 1))
            placed = True
        file.extents = _merge_extents(new_extents)

    def utilization(self) -> float:
        used = self.device.capacity_pages - self.journal_blocks \
            - self.free.free_blocks
        return used / (self.device.capacity_pages - self.journal_blocks)


def _merge_extents(extents: list[tuple[int, int]]) -> list[tuple[int, int]]:
    merged: list[tuple[int, int]] = []
    for start, count in extents:
        if merged and merged[-1][0] + merged[-1][1] == start:
            merged[-1] = (merged[-1][0], merged[-1][1] + count)
        else:
            merged.append((start, count))
    return merged
