"""XFS: B+tree allocation groups with delayed allocation.

Table IV's best file system: delayed allocation produces few, large
extents, and its metadata updates touch the fewest journal blocks (the
paper: XFS "only spends 36.6 % of the execution time on system calls,
the least compared to other file systems").
"""

from __future__ import annotations

from repro.baselines.filesystem import FsFile, SimulatedFilesystem


class Xfs(SimulatedFilesystem):
    name = "xfs"
    journal_blocks = 4096
    data_journaling = False
    #: Cheaper per-block write path (no bitmap scanning; B+tree extents).
    write_block_cpu_ns = 18.0
    #: Delayed logging makes inode creation the cheapest of the group —
    #: why XFS spends the least time in syscalls (Table IV).
    create_cpu_ns = 500.0

    def _create_metadata_blocks(self) -> int:
        # Inode clusters + a compact log item: fewer blocks than ext4.
        return 2

    def _metadata_chain_length(self, file: FsFile) -> int:
        # Inode + at most one B+tree level for any realistic file here.
        return 1 if len(file.extents) <= 8 else 2
