"""Ext4: extent trees + JBD2 journal, ``data=ordered`` or ``data=journal``.

The extent tree (Section II's first figure) holds 4 extents inline in
the inode; beyond that, index blocks of ~340 entries each add a level.
Cold accesses walk the tree with dependent block reads — the traversal
overhead the paper contrasts with the flat extent sequence.
"""

from __future__ import annotations

from repro.baselines.filesystem import FsFile, SimulatedFilesystem

#: Extents stored directly in the inode before a tree is needed.
_INLINE_EXTENTS = 4
#: Extent entries per 4 KiB index block.
_ENTRIES_PER_BLOCK = 340


def extent_tree_depth(n_extents: int) -> int:
    """Levels of index blocks above the inline root (0 = none)."""
    if n_extents <= _INLINE_EXTENTS:
        return 0
    depth = 1
    capacity = _ENTRIES_PER_BLOCK
    while n_extents > capacity:
        depth += 1
        capacity *= _ENTRIES_PER_BLOCK
    return depth


class Ext4(SimulatedFilesystem):
    """Ext4 with ``data=ordered`` (metadata-only journaling)."""

    name = "ext4.ordered"
    journal_blocks = 8192  # 32 MiB journal (mkfs default scale-down)
    data_journaling = False
    #: Dirent hashing + inode/block bitmap scans per create.
    create_cpu_ns = 2500.0

    def _metadata_chain_length(self, file: FsFile) -> int:
        # Inode block, then one dependent read per extent-tree level.
        return 1 + extent_tree_depth(len(file.extents))

    def _create_metadata_blocks(self) -> int:
        # Directory block + inode bitmap + block bitmap + group desc.
        return 4


class Ext4Journal(Ext4):
    """Ext4 with ``data=journal``: file data goes through the journal.

    The paper: "Ext4.journal exhibits bad performance because [it]
    includes I/O in the execution time while other file systems do not,
    and it also triggers journaling operations more excessively."
    """

    name = "ext4.journal"
    data_journaling = True
