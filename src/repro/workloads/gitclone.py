"""Synthetic ``git clone --depth 1`` filesystem trace (Section V-I).

The paper records the filesystem-level trace of cloning the Linux
kernel at depth 1 (1.28 GB) and replays it single-threaded.  The trace
has a characteristic shape:

* one large packfile written sequentially in chunks, then read back
  during checkout;
* tens of thousands of small source files created, written once, and
  closed — so ``open`` (file creation) dominates the system-call time
  (36 % for Ext4 in Table IV), followed by ``fstat`` (4.8 %) and
  ``close`` (1.6 %);
* ``fstat`` on every path during index construction.

``GitCloneTrace`` reproduces that op mix at a configurable scale
(default ~40 MB, same file-count ratios).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

#: Source-file sizes in the kernel tree: lognormal, ~12 KB mean.
_FILE_MU = 8.6
_FILE_SIGMA = 1.1


@dataclass(frozen=True)
class TraceOp:
    """One trace record: ``op`` in {mkdir, create, write, fstat, close,
    open, read}; ``size`` used by write/read."""

    op: str
    path: str
    size: int = 0
    offset: int = 0


@dataclass
class GitCloneTrace:
    """Deterministic scaled-down linux-clone trace."""

    #: Number of checkout files (the real clone has ~75k).
    n_files: int = 1500
    #: Directories (the real tree has ~4.5k).
    n_dirs: int = 90
    #: Packfile size (the real depth-1 pack is ~1.2 GB).
    pack_bytes: int = 24 * 1024 * 1024
    #: Chunk size git uses when streaming the pack.
    pack_chunk: int = 1 << 20
    seed: int = 23

    def file_sizes(self) -> list[int]:
        rng = random.Random(self.seed)
        return [max(64, min(int(math.exp(rng.gauss(_FILE_MU, _FILE_SIGMA))),
                            512 * 1024))
                for _ in range(self.n_files)]

    @property
    def total_bytes(self) -> int:
        return self.pack_bytes + sum(self.file_sizes())

    def operations(self) -> Iterator[TraceOp]:
        """The full trace in order: pack download, index, checkout."""
        sizes = self.file_sizes()

        # Phase 1: receive the packfile (sequential chunked writes).
        pack = "/.git/objects/pack/pack-000.pack"
        yield TraceOp("create", pack)
        offset = 0
        while offset < self.pack_bytes:
            chunk = min(self.pack_chunk, self.pack_bytes - offset)
            yield TraceOp("write", pack, size=chunk, offset=offset)
            offset += chunk
        yield TraceOp("close", pack)

        # Phase 2: index the pack (read it back in chunks).
        yield TraceOp("open", pack)
        yield TraceOp("fstat", pack)
        offset = 0
        while offset < self.pack_bytes:
            chunk = min(self.pack_chunk, self.pack_bytes - offset)
            yield TraceOp("read", pack, size=chunk, offset=offset)
            offset += chunk
        yield TraceOp("close", pack)

        # Phase 3: checkout — the metadata-dominated part.
        for d in range(self.n_dirs):
            yield TraceOp("mkdir", f"/src/dir{d:04d}")
        for i, size in enumerate(sizes):
            path = f"/src/dir{i % self.n_dirs:04d}/file{i:06d}.c"
            yield TraceOp("create", path)
            yield TraceOp("write", path, size=size, offset=0)
            yield TraceOp("close", path)
        # Index construction stats every checked-out path.
        for i in range(self.n_files):
            path = f"/src/dir{i % self.n_dirs:04d}/file{i:06d}.c"
            yield TraceOp("fstat", path)

    def op_histogram(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for op in self.operations():
            counts[op.op] = counts.get(op.op, 0) + 1
        return counts
