"""Synthetic English-Wikipedia corpus (Sections V-D and V-H).

The paper builds a 23 GB database from enwiki article sizes and view
counts; the experiments depend only on those two distributions, so this
module fits them to the quantiles the paper itself reports:

* 43 % of articles are larger than 767 B (MySQL's index-prefix limit);
* ~95 % are smaller than 8191 B (PostgreSQL's limit).

A lognormal with ``mu = 6.356``, ``sigma = 1.613`` (natural log of
bytes) satisfies both anchors.  Article popularity follows a Zipf law,
the standard model for Wikipedia page views.

Content generation mimics text: repeated word-like tokens seeded per
article, so prefix-sharing across articles is realistic (many articles
start with common templates — which is precisely what defeats prefix
indexes in Table III).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

#: Lognormal parameters fitted to the paper's quantile anchors.
SIZE_MU = 6.356
SIZE_SIGMA = 1.613

#: Common lead-ins: Wikipedia articles share multi-kilobyte boilerplate
#: (infobox templates, navboxes, citation scaffolding), which is what
#: makes 1 KB-prefix indexes collide (Table III: 17 % of documents are
#: unindexable).  Each template is expanded deterministically to ~1.5 KB.
_TEMPLATE_COUNT = 40
_TEMPLATE_BYTES = 1536


def _template(template_id: int) -> bytes:
    seed_rng = random.Random(0xC0FFEE + template_id)
    fields = [b"{{Infobox article\n"]
    while sum(len(f) for f in fields) < _TEMPLATE_BYTES:
        word = bytes(seed_rng.randrange(97, 123) for _ in range(10))
        fields.append(b"| " + word + b" = \n")
    return b"".join(fields)[:_TEMPLATE_BYTES]


@dataclass
class Article:
    title: bytes
    size: int
    views: int


@dataclass
class WikipediaCorpus:
    """A deterministic synthetic corpus."""

    n_articles: int = 2000
    seed: int = 7
    #: Cap on one article (the dumps have multi-MB list pages).
    max_article_bytes: int = 2 * 1024 * 1024
    #: Fraction of articles opening with a shared boilerplate template.
    #: Tuned so a 1 KB-prefix index misses ~17 % of documents, the
    #: paper's Table III number for enwiki (only articles longer than
    #: the prefix limit can collide, hence the fraction exceeds 17 %).
    shared_prefix_fraction: float = 0.45
    articles: list[Article] = field(init=False)

    def __post_init__(self) -> None:
        rng = random.Random(self.seed)
        self.articles = []
        for i in range(self.n_articles):
            size = int(math.exp(rng.gauss(SIZE_MU, SIZE_SIGMA)))
            size = max(16, min(size, self.max_article_bytes))
            views = max(1, int(1000 / (i + 1) ** 0.8 * self.n_articles))
            self.articles.append(Article(
                title=b"article%08d" % i, size=size, views=views))
        self._rng = rng

    @property
    def total_bytes(self) -> int:
        return sum(a.size for a in self.articles)

    def content(self, article: Article) -> bytes:
        """Deterministic pseudo-text content of the requested size.

        A ``shared_prefix_fraction`` of articles open with one of the
        ~1.5 KB boilerplate templates; the rest (and everything past the
        template) is article-specific word salad.
        """
        rng = random.Random(int.from_bytes(article.title, "big") & 0xFFFFFFFF)
        if rng.random() < self.shared_prefix_fraction:
            head = _template(rng.randrange(_TEMPLATE_COUNT))
        else:
            head = b""
        body_unit = bytes(rng.randrange(97, 123) for _ in range(64)) + b" "
        reps = math.ceil(max(0, article.size - len(head)) / len(body_unit))
        return (head + body_unit * reps)[:article.size]

    def view_sampler(self, seed: int = 99):
        """Sample articles proportionally to their view counts."""
        rng = random.Random(seed)
        cumulative = []
        total = 0
        for article in self.articles:
            total += article.views
            cumulative.append(total)

        def sample() -> Article:
            target = rng.randrange(total)
            lo, hi = 0, len(cumulative) - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if cumulative[mid] <= target:
                    lo = mid + 1
                else:
                    hi = mid
            return self.articles[lo]

        return sample

    def fraction_larger_than(self, nbytes: int) -> float:
        bigger = sum(1 for a in self.articles if a.size > nbytes)
        return bigger / len(self.articles)
