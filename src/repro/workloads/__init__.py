"""Workload generators for the paper's evaluation.

* :mod:`repro.workloads.ycsb` — YCSB with BLOB payloads (Section V-B):
  fixed sizes from 120 B to 1 GB, a mixed 4 KB–10 MB configuration, and
  Zipfian key popularity.
* :mod:`repro.workloads.wikipedia` — synthetic English-Wikipedia article
  sizes and view counts fitted to the quantiles the paper itself cites
  (43 % of articles > 767 B; 95th percentile ≈ 8191 B), used by the
  read-only experiments (Figs. 8, 9) and the indexing study (Table III).
* :mod:`repro.workloads.gitclone` — a filesystem-level trace shaped like
  ``git clone --depth 1`` of the Linux kernel (Table IV): one large
  packfile plus thousands of small checkout files, dominated by
  open/fstat/close metadata traffic.
"""

from repro.workloads.ycsb import YcsbConfig, YcsbWorkload, zipf_sampler
from repro.workloads.wikipedia import WikipediaCorpus
from repro.workloads.gitclone import GitCloneTrace, TraceOp

__all__ = [
    "YcsbConfig",
    "YcsbWorkload",
    "zipf_sampler",
    "WikipediaCorpus",
    "GitCloneTrace",
    "TraceOp",
]
