"""YCSB-style workload generation with BLOB payloads (Section V-B).

The paper runs YCSB with payloads of 120 B, 100 KB, 10 MB, a random mix
of 4 KB–10 MB, and 1 GB, at a 50 % read ratio, single-threaded, with the
working set in memory.  Keys follow the standard YCSB Zipfian
distribution (theta 0.99 by default).

Payload bytes are real but generated cheaply: one random base buffer per
workload, with a per-operation stamp so every payload is distinct without
regenerating megabytes of random data per op.
"""

from __future__ import annotations

import math
import random
import struct
from dataclasses import dataclass
from typing import Callable, Iterator


def zipf_sampler(n: int, theta: float, rng: random.Random) -> Callable[[], int]:
    """Standard YCSB Zipfian generator over ``[0, n)``.

    Uses the Gray et al. rejection-free method with precomputed
    constants, like YCSB's ``ZipfianGenerator``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if theta <= 0 or theta >= 1:
        raise ValueError("theta must be in (0, 1)")
    zetan = sum(1.0 / (i ** theta) for i in range(1, n + 1))
    zeta2 = 1.0 + 2.0 ** -theta
    alpha = 1.0 / (1.0 - theta)
    eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - zeta2 / zetan)

    def sample() -> int:
        u = rng.random()
        uz = u * zetan
        if uz < 1.0:
            return 0
        if uz < zeta2:
            return 1
        return int(n * (eta * u - eta + 1.0) ** alpha)

    return sample


@dataclass
class YcsbConfig:
    """One YCSB experiment configuration."""

    n_records: int = 1000
    #: Fixed payload bytes, or a (min, max) range for the mixed workload.
    payload: int | tuple[int, int] = 100 * 1024
    read_ratio: float = 0.5
    zipf_theta: float = 0.99
    seed: int = 42

    def payload_bounds(self) -> tuple[int, int]:
        if isinstance(self.payload, tuple):
            return self.payload
        return self.payload, self.payload

    @property
    def max_payload(self) -> int:
        return self.payload_bounds()[1]

    @property
    def mean_payload(self) -> float:
        lo, hi = self.payload_bounds()
        return (lo + hi) / 2


class YcsbWorkload:
    """Generates keys, payloads, and operation streams."""

    def __init__(self, config: YcsbConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._zipf = zipf_sampler(config.n_records, config.zipf_theta,
                                  self._rng)
        # One random base buffer; per-op payloads stamp a unique header.
        self._base = random.Random(config.seed ^ 0x5EED).randbytes(
            min(self.config.max_payload, 1 << 20))
        self._stamp = 0

    def key(self, index: int) -> bytes:
        return b"user%010d" % index

    def payload_for(self, index: int) -> bytes:
        """Deterministic, distinct payload for one operation."""
        lo, hi = self.config.payload_bounds()
        size = lo if lo == hi else self._rng.randint(lo, hi)
        self._stamp += 1
        stamp = struct.pack(">IQ", index & 0xFFFFFFFF, self._stamp)
        if size <= len(stamp):
            return stamp[:size]
        body = self._base
        reps = math.ceil((size - len(stamp)) / len(body))
        return (stamp + body * reps)[:size]

    def load_phase(self) -> Iterator[tuple[bytes, bytes]]:
        """Initial dataset: every record inserted once."""
        for i in range(self.config.n_records):
            yield self.key(i), self.payload_for(i)

    def operations(self, n_ops: int) -> Iterator[tuple[str, bytes, bytes | None]]:
        """Benchmark phase: ``(op, key, payload-or-None)`` tuples.

        ``read`` returns the BLOB; ``write`` replaces it entirely (the
        paper: "most applications primarily interact with entire BLOBs").
        """
        for _ in range(n_ops):
            index = self._zipf()
            if self._rng.random() < self.config.read_ratio:
                yield "read", self.key(index), None
            else:
                yield "write", self.key(index), self.payload_for(index)
