"""Ablation: coarse vs fine extent latching (Section III-G).

The paper's argument: when N workers fault the same N-page extent, a
per-page latch design has every worker win one latch and issue one
pread each (N interleaved I/Os); coarse (per-extent) latching lets one
worker issue a single batched read while the rest move on.  This
ablation prices both protocols under the shared cost model.
"""

from conftest import print_table

from repro.sim.cost import CostModel

EXTENT_PAGES = 32
N_WORKERS = 8


def coarse_protocol() -> float:
    """One worker latches the extent head and reads it in one batch."""
    model = CostModel()
    model.latch()                                   # the winning worker
    model.syscall("io_submit")
    model.ssd_read(EXTENT_PAGES * 4096, requests=EXTENT_PAGES)
    for _ in range(N_WORKERS - 1):
        model.latch(contended=True)                 # others bounce off
    return model.clock.now_ns


def fine_protocol() -> float:
    """N workers each win one page latch and pread one page.

    The pages arrive via independent, unbatched syscalls; the extent is
    usable only after the *last* page lands, so the critical path holds
    every page's syscall + its share of contended latching.
    """
    model = CostModel()
    for _ in range(EXTENT_PAGES):
        model.latch(contended=True)
        model.syscall("pread")
    # Unbatched 4K reads from N workers: no submission batching, the
    # device sees bursts of at most N_WORKERS parallel commands.
    pages_per_wave = N_WORKERS
    waves = (EXTENT_PAGES + pages_per_wave - 1) // pages_per_wave
    for _ in range(waves):
        model.ssd_read(pages_per_wave * 4096, requests=1)
    return model.clock.now_ns


def test_ablation_latching(bench_once):
    times = bench_once(lambda: {"coarse (per extent)": coarse_protocol(),
                                "fine (per page)": fine_protocol()})
    rows = [[name, f"{ns / 1000:.1f}"] for name, ns in times.items()]
    print_table("Ablation: extent latching granularity "
                f"({EXTENT_PAGES}-page extent, {N_WORKERS} workers)",
                ["protocol", "us until extent resident"], rows)
    assert times["coarse (per extent)"] < times["fine (per page)"] / 2
