"""Table II: overhead of shared-aliasing-area synchronization.

Paper setup: read-only YCSB with 10 MB BLOBs, 16 workers, two
worker-local aliasing sizes — 4 MB (every BLOB overflows to the shared
area and pays the bitmap range lock) and 16 MB (worker-local only).
Result: both variants perform alike (3453 vs 3477 txn/s) and all perf
counters are nearly identical: the bitmap CAS is trivial.
"""

from conftest import print_table

from repro.bench.adapters import make_store
from repro.sim.cost import CostModel
from repro.sim.workers import WorkerSim

PAYLOAD = 10 << 20
N_WORKERS = 16
OPS = 12
LOCAL_SIZES = {"4MB": 1024, "16MB": 4096}  # pages


def run_variant(local_pages: int):
    store = make_store("our", capacity_bytes=1 << 30,
                       buffer_bytes=256 << 20,
                       n_workers=N_WORKERS, worker_local_pages=local_pages)
    store.put(b"blob", b"s" * PAYLOAD)
    state = store.db.get_state(store.TABLE, b"blob")
    db = store.db

    def op(model: CostModel, worker: int) -> None:
        originals = (db.model, db.pool.model, db.device.model,
                     db.blobs.model, db.pool.aliasing.model)
        db.model = db.pool.model = db.device.model = model
        db.blobs.model = db.pool.aliasing.model = model
        try:
            data = db.blobs.read_bytes(state, worker_id=worker % N_WORKERS)
            assert len(data) == PAYLOAD
        finally:
            (db.model, db.pool.model, db.device.model,
             db.blobs.model, db.pool.aliasing.model) = originals

    sim = WorkerSim(N_WORKERS)
    result = sim.run(op, OPS, working_set_bytes=PAYLOAD)
    return result, db.pool.aliasing.stats


def test_table2_shared_area_overhead(bench_once):
    outcomes = bench_once(
        lambda: {label: run_variant(pages)
                 for label, pages in LOCAL_SIZES.items()})
    rows = []
    for label, (result, alias_stats) in outcomes.items():
        uses_shared = "yes" if alias_stats.shared_acquires else "no"
        c = result.counters
        rows.append([f"{label} local", uses_shared,
                     f"{result.throughput_ops_s:.0f}",
                     f"{c.instructions}", f"{c.cycles}",
                     f"{c.kernel_cycles}", f"{c.cache_misses}"])
    print_table("Table II: shared-area synchronization overhead",
                ["wrk-local size", "uses shared", "txn/s", "instr.",
                 "cycles", "kernel cyc", "cache miss"], rows)

    small, small_stats = outcomes["4MB"]
    large, large_stats = outcomes["16MB"]
    # The 4 MB config must actually exercise the shared area...
    assert small_stats.shared_acquires > 0
    assert large_stats.shared_acquires == 0
    # ...yet throughput is within a whisker (paper: 3453 vs 3477).
    ratio = small.throughput_ops_s / large.throughput_ops_s
    assert 0.98 <= ratio <= 1.02
    # Counters nearly identical.
    assert abs(small.counters.kernel_cycles - large.counters.kernel_cycles) \
        <= 0.05 * large.counters.kernel_cycles
    assert abs(small.counters.cycles - large.counters.cycles) \
        <= 0.05 * large.counters.cycles
