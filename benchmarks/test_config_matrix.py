"""Configuration-matrix smoke bench: every engine variant, one workload.

Runs a compact mixed workload across the cross-product of engine knobs
(pool x logging policy x concurrency x relation index x out-of-place)
and asserts correctness plus sane relative throughput.  This is the
"does every supported configuration actually hold together" bench a
downstream user runs before adopting a combination.
"""

import itertools

from conftest import print_table

from repro.db import BlobDB, EngineConfig
from repro.sim.clock import Stopwatch

POOLS = ("vmcache", "hashtable")
POLICIES = ("async-blob", "physlog")
CONCURRENCY = ("2pl", "occ")
INDEXES = ("btree", "art")
PLACEMENT = (False, True)

N_OPS = 30
PAYLOAD = 40_000


def run_config(pool, policy, concurrency, index, out_of_place):
    config = EngineConfig(device_pages=16384, wal_pages=2048,
                          catalog_pages=256, buffer_pool_pages=4096,
                          pool=pool, log_policy=policy,
                          concurrency=concurrency, index_structure=index,
                          out_of_place=out_of_place)
    db = BlobDB(config)
    db.create_table("t")
    with Stopwatch(db.model.clock) as sw:
        for i in range(N_OPS):
            key = b"k%02d" % (i % 8)
            with db.transaction() as txn:
                if db.exists("t", key):
                    db.delete_blob(txn, "t", key)
                db.put_blob(txn, "t", key, bytes([i]) * PAYLOAD)
            db.read_blob("t", key)
    # Correctness: crash and recover the final state.
    expected = {}
    for key, state in db.scan("t"):
        expected[key] = db.read_blob("t", key)
    recovered = BlobDB.recover(db.crash(), config)
    for key, content in expected.items():
        assert recovered.read_blob("t", key) == content, (
            pool, policy, concurrency, index, out_of_place, key)
    return N_OPS * 2 * 1e9 / sw.elapsed_ns


def run_matrix():
    results = {}
    for combo in itertools.product(POOLS, POLICIES, CONCURRENCY,
                                   INDEXES, PLACEMENT):
        results[combo] = run_config(*combo)
    return results


def test_config_matrix(bench_once):
    results = bench_once(run_matrix)
    rows = [["/".join([p, lp, cc, ix, "oop" if oop else "inplace"]),
             f"{tp:.0f}"]
            for (p, lp, cc, ix, oop), tp in sorted(results.items())]
    print_table(f"Config matrix: {len(results)} variants, mixed workload "
                "(all recovered correctly after crash)",
                ["configuration", "txn/s (sim)"], rows)
    # Every combination completed and recovered (asserted inside).
    assert len(results) == 32
    # Sanity: the async single-flush policy never loses to physlog on
    # the same pool/index, and throughputs stay within a sane band.
    for pool, cc, ix, oop in itertools.product(POOLS, CONCURRENCY,
                                               INDEXES, PLACEMENT):
        fast = results[(pool, "async-blob", cc, ix, oop)]
        slow = results[(pool, "physlog", cc, ix, oop)]
        assert fast >= 0.95 * slow
    values = list(results.values())
    assert max(values) < 50 * min(values)
