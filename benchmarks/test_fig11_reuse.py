"""Figure 11: extent reusability / performance vs storage utilization.

Paper setup: allocate BLOBs of random 1-10 MB (80 %) and delete random
BLOBs (20 %) until the 32 GB device fills.  Result: best-effort file
systems (Ext4, BtrFS, XFS) lose throughput as utilization approaches
100 % (fragmented free space defeats their allocators); F2FS
(log-structured) and Our (static per-tier free lists) stay stable.
"""

import random

from conftest import print_table

from repro.bench.adapters import make_store
from repro.core.allocator import StorageFull
from repro.baselines.filesystem import FsError
from repro.sim.clock import Stopwatch

CAPACITY = 256 << 20          # scaled from the paper's 32 GB
BLOB_MIN, BLOB_MAX = 128 * 1024, 1280 * 1024   # scaled from 1-10 MB
SYSTEMS = ("our", "ext4.ordered", "xfs", "btrfs", "f2fs")
BUCKETS = [0.2, 0.4, 0.6, 0.8, 0.95, 0.995]


def utilization_of(store) -> float:
    if store.name.startswith("our"):
        return store.db.allocator.utilization()
    return store.fs.utilization()


def run_churn(name: str) -> dict[float, float]:
    """Alloc 80 / delete 20 until full; throughput per utilization band."""
    store = make_store(name, capacity_bytes=CAPACITY,
                       buffer_bytes=64 << 20)
    rng = random.Random(17)
    live: list[bytes] = []
    counter = 0
    band_tp: dict[float, float] = {}
    band_idx = 0
    ops_in_band = 0
    band_start_ns = store.model.clock.now_ns
    while band_idx < len(BUCKETS):
        try:
            if live and rng.random() < 0.2:
                victim = live.pop(rng.randrange(len(live)))
                store.delete(victim)
            else:
                size = rng.randint(BLOB_MIN, BLOB_MAX)
                key = b"blob%08d" % counter
                counter += 1
                store.put(key, b"\xab" * size)
                live.append(key)
        except (StorageFull, FsError):
            break  # device full: the run ends, as in the paper
        ops_in_band += 1
        if utilization_of(store) >= BUCKETS[band_idx] or ops_in_band > 4000:
            elapsed = store.model.clock.now_ns - band_start_ns
            band_tp[BUCKETS[band_idx]] = ops_in_band * 1e9 / max(elapsed, 1)
            band_idx += 1
            ops_in_band = 0
            band_start_ns = store.model.clock.now_ns
    return band_tp


def test_fig11_storage_utilization(bench_once):
    results = bench_once(lambda: {name: run_churn(name) for name in SYSTEMS})
    rows = []
    for name, bands in results.items():
        rows.append([name] + [f"{bands.get(b, float('nan')):.0f}"
                              for b in BUCKETS])
    print_table("Figure 11: txn/s by storage-utilization band",
                ["system"] + [f"<= {int(b * 100)}%" for b in BUCKETS], rows)

    def retention(bands) -> float:
        """Near-full throughput relative to the start of the run."""
        return bands[BUCKETS[-1]] / bands[BUCKETS[0]]

    # Our engine and F2FS stay stable even as the device fills...
    assert retention(results["our"]) > 0.78
    assert retention(results["f2fs"]) > 0.78
    # ...while the best-effort allocators degrade in the last stretch
    # (paper: performance stable before 80 %, drops near full).  The
    # workload is fully deterministic, so the margin is stable.
    for fs in ("ext4.ordered", "xfs", "btrfs"):
        assert retention(results[fs]) < 0.75, fs
