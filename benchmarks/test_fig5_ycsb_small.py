"""Figure 5: YCSB with normal payload size (120 B).

Paper result: all file systems and SQLite (which operate in main memory
without a client/server hop) beat PostgreSQL and MySQL, and "Our DBMS
provides at least 3.5x higher throughput compared to other systems."
"""

from conftest import build_store, report_figure, scaled, ycsb_config

from repro.bench.adapters import ALL_SYSTEMS
from repro.bench.harness import run_ycsb

N_OPS = scaled(400)


def run_all():
    cfg = ycsb_config(payload=120, n_records=100)
    return {name: run_ycsb(build_store(name), cfg, N_OPS)
            for name in ALL_SYSTEMS}


def test_fig5_120b_payload(bench_once):
    results = bench_once(run_all)
    report_figure("Figure 5: YCSB 120 B payload, 50% reads", results)

    tp = {name: r.throughput_ops_s for name, r in results.items()}
    fastest_competitor = max(v for k, v in tp.items() if k == "sqlite"
                             or k.startswith(("ext4", "xfs", "btrfs", "f2fs")))
    # Client/server DBMSs trail the in-memory systems.
    assert tp["postgresql"] < fastest_competitor
    assert tp["mysql"] < fastest_competitor
    # The headline: Our >= 3.5x every competitor.
    competitors = {k: v for k, v in tp.items() if not k.startswith("our")}
    assert tp["our"] >= 3.5 * max(competitors.values())
