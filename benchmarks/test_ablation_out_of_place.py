"""Ablation: out-of-place writes vs in-place extents (Section VI).

The paper's future-work proposal: decoupling logical PIDs from physical
addresses makes every extent allocation "fresh", so the engine cannot
age — a fragmented free list can never block a large allocation, and
deleted space is reclaimed at page granularity.

This ablation ages both variants with small-BLOB churn and measures
(a) the largest BLOB still allocatable and (b) sustained throughput,
plus the remapping layer's translation overhead on the happy path.
"""

import random

from conftest import print_table

from repro.core.allocator import StorageFull
from repro.db import BlobDB, EngineConfig
from repro.sim.clock import Stopwatch
from repro.storage.device import DeviceFull

DEVICE_PAGES = 8192  # 32 MiB physical


def build(out_of_place: bool) -> BlobDB:
    config = EngineConfig(device_pages=DEVICE_PAGES, wal_pages=512,
                          catalog_pages=128, buffer_pool_pages=4096,
                          out_of_place=out_of_place)
    db = BlobDB(config)
    db.create_table("t")
    return db


def age(db: BlobDB, rng: random.Random) -> int:
    """Churn small BLOBs until the device is ~80 % full; returns count."""
    i = 0
    def full() -> bool:
        if hasattr(db.device, "physical_utilization"):
            return db.device.physical_utilization() > 0.8
        return db.allocator.utilization() > 0.8
    while not full():
        try:
            with db.transaction() as txn:
                db.put_blob(txn, "t", b"s%06d" % i, b"\x33" * 30_000)
            i += 1
            if i % 3 == 0:
                victim = b"s%06d" % rng.randrange(i)
                if db.exists("t", victim):
                    with db.transaction() as txn:
                        db.delete_blob(txn, "t", victim)
        except (StorageFull, DeviceFull):
            break
    # End state of an aged system: plenty of free space, but (for the
    # in-place engine) only in small-tier fragments.
    for j in range(0, i, 2):
        key = b"s%06d" % j
        if db.exists("t", key):
            with db.transaction() as txn:
                db.delete_blob(txn, "t", key)
    return i


def largest_allocatable(db: BlobDB) -> int:
    """Binary-search the biggest BLOB the aged engine still accepts."""
    lo, hi = 0, 8 * 1024 * 1024
    while lo + 65536 < hi:
        mid = (lo + hi) // 2
        try:
            with db.transaction() as txn:
                db.put_blob(txn, "t", b"probe", b"\x44" * mid)
            with db.transaction() as txn:
                db.delete_blob(txn, "t", b"probe")
            lo = mid
        except (StorageFull, DeviceFull):
            hi = mid
    return lo


def run_both():
    results = {}
    for label, oop in (("in-place", False), ("out-of-place", True)):
        rng = random.Random(13)
        db = build(oop)
        age(db, rng)
        biggest = largest_allocatable(db)
        with Stopwatch(db.model.clock) as sw:
            for i in range(40):
                with db.transaction() as txn:
                    db.put_blob(txn, "t", b"p%04d" % i, b"\x55" * 20_000)
                with db.transaction() as txn:
                    db.delete_blob(txn, "t", b"p%04d" % i)
        results[label] = dict(biggest=biggest,
                              churn_ns=sw.elapsed_ns / 80)
    return results


def test_ablation_out_of_place(bench_once):
    results = bench_once(run_both)
    rows = [[label, f"{r['biggest'] >> 20} MiB", f"{r['churn_ns'] / 1000:.1f}"]
            for label, r in results.items()]
    print_table("Ablation: out-of-place writes after aging",
                ["variant", "largest allocatable BLOB", "us/op after aging"],
                rows)
    # Aging caps the in-place engine's largest allocation; the
    # out-of-place engine still takes multi-MiB objects.
    assert results["out-of-place"]["biggest"] >= \
        4 * results["in-place"]["biggest"]
    # The translation overhead on the steady-state path stays small.
    assert results["out-of-place"]["churn_ns"] < \
        2.0 * results["in-place"]["churn_ns"]
