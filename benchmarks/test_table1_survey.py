"""Table I: large-object implementations compared.

The paper's Table I is a design survey (physical format, max size, read
cost, indexing limit, duplicated copies).  Here the survey is *measured*
where possible: copies per BLOB come from device write accounting, read
indirection cost from the actual access paths, and size limits from the
implemented engines.
"""

from conftest import build_store, print_table

from repro.baselines.mysql import MAX_LONGBLOB
from repro.baselines.postgres import PARAM_LIMIT_BYTES
from repro.baselines.sqlite import MAX_LENGTH
from repro.core.tier import ExtentTier

PAYLOAD = 256 * 1024


def copies_per_blob(store) -> float:
    """Device bytes written per payload byte for one BLOB insert."""
    before = store.device.stats.snapshot()
    store.put(b"probe", b"\x6b" * PAYLOAD)
    if hasattr(store, "db"):
        store.db.checkpoint()
    elif hasattr(store, "fs"):
        store.fs.writeback()
    elif hasattr(store, "store"):
        store.store.flush()
    delta = store.device.stats.delta_since(before)
    content_categories = ("data", "wal", "journal", "dwb", "index")
    written = sum(delta.bytes_written_by_category.get(c, 0)
                  for c in content_categories)
    return written / PAYLOAD


def our_max_blob_bytes() -> int:
    """Theoretical max with 127 extents, 10 tiers/level, 4 KiB pages."""
    return ExtentTier(tiers_per_level=10, max_levels=13).max_pages(127) * 4096


def test_table1_design_survey(bench_once):
    systems = ("our", "ext4.ordered", "ext4.journal", "postgresql",
               "sqlite", "mysql")
    copies = bench_once(
        lambda: {name: copies_per_blob(build_store(name))
                 for name in systems})

    max_size = {
        "our": our_max_blob_bytes(),
        "ext4.ordered": 16 * (1 << 40),     # Ext4 max file size
        "ext4.journal": 16 * (1 << 40),
        "postgresql": PARAM_LIMIT_BYTES,
        "sqlite": MAX_LENGTH,
        "mysql": MAX_LONGBLOB,
    }
    indexing = {
        "our": "arbitrary (Blob State)",
        "ext4.ordered": "not supported",
        "ext4.journal": "not supported",
        "postgresql": "8191 B prefix",
        "sqlite": "arbitrary (content copy)",
        "mysql": "767 B prefix",
    }
    rows = [[name, f"{max_size[name] / (1 << 40):.0f} TiB"
             if max_size[name] >= (1 << 40)
             else f"{max_size[name] / 1e9:.1f} GB",
             f"{copies[name]:.2f}", indexing[name]]
            for name in systems]
    print_table("Table I: measured design survey",
                ["system", "max BLOB", "copies/byte", "indexing"], rows)

    # Our design: single flush — about one copy per byte (page rounding
    # and the Blob-State WAL record are the only overhead).
    assert copies["our"] < 1.2
    # Ext4 data=journal doubles it; ordered mode writes data once.
    assert copies["ext4.journal"] > 1.8
    assert copies["ext4.ordered"] < 1.3
    # The DBMS baselines all write the content at least twice.
    for name in ("postgresql", "sqlite", "mysql"):
        assert copies[name] >= 1.8, name
    # MySQL: data + redo + doublewrite = three copies.
    assert copies["mysql"] >= 2.7
    # Our max object beats Ext4's 16 TB by orders of magnitude
    # (paper: 10 PB with 127 extents).
    assert max_size["our"] > 10 * (1 << 50)


def test_table1_sqlite_four_copies(bench_once):
    """SQLite with a WITHOUT-ROWID content index: four copies per BLOB
    (database + index, each logged to the WAL)."""

    def run():
        from repro.sim.cost import CostModel
        from repro.storage.device import SimulatedNVMe
        from repro.baselines.sqlite import SqliteBlobStore
        model = CostModel()
        device = SimulatedNVMe(model, capacity_pages=1 << 18)
        store = SqliteBlobStore(model, device, with_content_index=True)
        store.put(b"k", b"\x42" * PAYLOAD)
        store.flush()  # checkpoint the WAL into the main database
        return device.stats.bytes_written / PAYLOAD

    copies = bench_once(run)
    # Two copies in the WAL (table + index) plus two checkpointed home
    # copies: at least four, the paper's worst case.
    assert copies >= 3.8
