"""Ablation: B-Tree vs ART vs learned index as the relation index.

"The indexing structure is untouched, and DBMSs can use any data
structure like B-Tree or ART" (Section III-F).  All three back the Blob
State relation here; the interesting contrast is lookup cost under
different key shapes: ART's radix paths collapse dense/shared-prefix
keys, the B-Tree's node binary searches are shape-agnostic, and the
learned tier's segment models thrive on smoothly distributed keys but
degrade when many keys collide in their 16-byte model prefix.
"""

from conftest import print_table

from repro.art import ArtTree
from repro.btree import BTree
from repro.lindex import LearnedIndex
from repro.sim.clock import Stopwatch
from repro.sim.cost import CostModel

N_KEYS = 4000
N_LOOKUPS = 6000


def key_sets():
    import random
    rng = random.Random(3)
    return {
        "dense-int": [i.to_bytes(8, "big") for i in range(N_KEYS)],
        "uuid-like": [rng.randbytes(16) for _ in range(N_KEYS)],
        "paths": [b"/srv/app/data/%04d/file%06d.bin" % (i % 40, i)
                  for i in range(N_KEYS)],
    }


def measure(structure: str, keys) -> dict:
    model = CostModel()
    if structure == "art":
        tree = ArtTree(model=model)
    elif structure == "learned":
        tree = LearnedIndex(model=model)
    else:
        tree = BTree(node_bytes=4096, model=model,
                     key_size=lambda k: len(k))
    with Stopwatch(model.clock) as build:
        for k in keys:
            tree.insert(k, k)
    with Stopwatch(model.clock) as probe:
        for i in range(N_LOOKUPS):
            assert tree.lookup(keys[i % len(keys)]) is not None
    return dict(build_us=build.elapsed_ns / 1000,
                lookup_ns=probe.elapsed_ns / N_LOOKUPS)


def run_all():
    return {(shape, structure): measure(structure, keys)
            for shape, keys in key_sets().items()
            for structure in ("btree", "art", "learned")}


def test_ablation_index_structure(bench_once):
    results = bench_once(run_all)
    rows = []
    for (shape, structure), r in results.items():
        rows.append([shape, structure, f"{r['build_us']:.0f}",
                     f"{r['lookup_ns']:.0f}"])
    print_table("Ablation: relation index structure",
                ["key shape", "structure", "build (us)", "lookup (ns)"],
                rows)

    # Dense integer keys: the radix tree resolves in a few byte hops,
    # beating the B-Tree's per-level binary searches.
    assert results[("dense-int", "art")]["lookup_ns"] < \
        results[("dense-int", "btree")]["lookup_ns"]
    # Both structures answer shared-prefix path keys correctly and within
    # a small factor of each other (prefix compression vs radix paths).
    ratio = results[("paths", "art")]["lookup_ns"] / \
        results[("paths", "btree")]["lookup_ns"]
    assert 0.2 < ratio < 5.0
    # The learned tier beats the B-Tree on smoothly distributed keys
    # (dense integers are one perfect linear segment)...
    assert results[("dense-int", "learned")]["lookup_ns"] < \
        results[("dense-int", "btree")]["lookup_ns"]
    # ...and stays within a sane factor even on path keys, where the
    # shared prefix crowds many keys into one model x-coordinate.
    ratio = results[("paths", "learned")]["lookup_ns"] / \
        results[("paths", "btree")]["lookup_ns"]
    assert 0.05 < ratio < 5.0
