"""Table III: Blob State index vs 1 K-prefix index on Wikipedia.

Paper results: the Blob State index serves every query (0 % miss) while
the prefix index cannot index 17 % of documents (shared prefixes); the
Blob State index builds ~3.8x faster, is ~8.4x smaller, has ~8.5x fewer
leaves (22 k vs 187 k), and — thanks to prefix compression keeping tree
heights equal — lookup throughput is essentially the same.
"""

from conftest import build_store, print_table

from repro.db.config import INDEX_ENGINES
from repro.db.index import BlobStateIndex, PrefixIndex
from repro.sim.clock import Stopwatch
from repro.workloads.wikipedia import WikipediaCorpus

N_ARTICLES = 1200
N_LOOKUPS = 800


def build_and_measure():
    corpus = WikipediaCorpus(n_articles=N_ARTICLES, seed=31)
    store = build_store("our")
    for article in corpus.articles:
        store.put(article.title, corpus.content(article))
    db = store.db

    results = {}
    blob_index = BlobStateIndex(db, store.TABLE)
    with Stopwatch(db.model.clock) as sw:
        blob_index.build()
    results["Blob State"] = dict(index=blob_index, build_ns=sw.elapsed_ns,
                                 missed=0)

    prefix_index = PrefixIndex(db, store.TABLE, prefix_bytes=1024)
    with Stopwatch(db.model.clock) as sw:
        prefix_index.build()
    results["1K Prefix"] = dict(index=prefix_index, build_ns=sw.elapsed_ns,
                                missed=len(prefix_index.missed))

    # Lookup throughput: point queries for random articles by content.
    sample = corpus.view_sampler(seed=77)
    queries = [corpus.content(sample()) for _ in range(N_LOOKUPS)]
    for label, entry in results.items():
        index = entry["index"]
        hits = 0
        with Stopwatch(db.model.clock) as sw:
            for content in queries:
                if label == "Blob State":
                    hits += bool(index.lookup_content(content))
                else:
                    hits += index.lookup_content(content) is not None
        entry["lookup_ns"] = sw.elapsed_ns
        entry["hits"] = hits
    return results


def test_table3_blob_state_vs_prefix_index(bench_once):
    results = bench_once(build_and_measure)
    rows = []
    table_stats = {}
    for label, entry in results.items():
        stats = entry["index"].stats()
        miss_pct = 100 * entry["missed"] / N_ARTICLES
        lookups_s = N_LOOKUPS * 1e9 / entry["lookup_ns"]
        table_stats[label] = (miss_pct, entry["build_ns"], stats, lookups_s,
                              entry["hits"])
        rows.append([label, f"{miss_pct:.1f}%",
                     f"{entry['build_ns'] / 1e6:.2f}",
                     f"{stats.size_bytes / 1e6:.2f}",
                     f"{stats.leaf_count}", f"{stats.height}",
                     f"{lookups_s:.0f}"])
    print_table("Table III: indexing variants",
                ["variant", "miss", "build (sim ms)", "size (MB)",
                 "# leaf", "height", "lookup/s"], rows)

    blob_miss, blob_build, blob_stats, blob_lookups, blob_hits = \
        table_stats["Blob State"]
    pfx_miss, pfx_build, pfx_stats, pfx_lookups, pfx_hits = \
        table_stats["1K Prefix"]

    # Blob State index misses nothing; the prefix index misses ~17 %.
    assert blob_miss == 0.0
    assert 10.0 <= pfx_miss <= 26.0
    assert blob_hits == N_LOOKUPS
    # Faster to build (paper: 3.8x; the ratio compresses at this scale
    # because the scaled index fits in memory — see EXPERIMENTS.md)...
    assert blob_build < pfx_build
    # ...smaller with fewer leaves (paper: 8.4x size, 8.5x leaves; again
    # compressed because scaled articles are shorter than enwiki's).
    assert blob_stats.size_bytes < pfx_stats.size_bytes / 2
    assert blob_stats.leaf_count < pfx_stats.leaf_count / 2
    # Same tree height (prefix compression), similar lookup throughput.
    assert abs(blob_stats.height - pfx_stats.height) <= 1
    assert 0.5 <= blob_lookups / pfx_lookups <= 2.5


def run_relation_engines():
    """The same Wikipedia workload on every relation-index engine.

    The engines differ only in ``EngineConfig.index_structure``; every
    probe and retrain is priced through the shared ``CostModel`` — no
    engine touches the substrate directly — so the virtual clock is the
    entire story.
    """
    corpus = WikipediaCorpus(n_articles=N_ARTICLES // 4, seed=31)
    sample = corpus.view_sampler(seed=77)
    results = {}
    for engine in INDEX_ENGINES:
        store = build_store("our", index_structure=engine)
        db = store.db
        with Stopwatch(db.model.clock) as load:
            for article in corpus.articles:
                store.put(article.title, corpus.content(article))
        with Stopwatch(db.model.clock) as probe:
            for _ in range(N_LOOKUPS):
                article = sample()
                assert store.get(article.title)
        results[engine] = dict(load_ns=load.elapsed_ns,
                               probe_ns=probe.elapsed_ns,
                               report=db.stats_report())
    return results


def test_table3_relation_index_engines(bench_once):
    results = bench_once(run_relation_engines)
    rows = []
    for engine, entry in results.items():
        report = entry["report"]
        rows.append([engine, f"{entry['load_ns'] / 1e6:.2f}",
                     f"{entry['probe_ns'] / 1e6:.2f}",
                     f"{report.index_segments}",
                     f"{report.index_segment_retrains}"])
    print_table("Table III addendum: relation-index engines",
                ["engine", "load (sim ms)", "probe (sim ms)",
                 "segments", "retrains"], rows)

    # Every engine advanced the virtual clock: all index work is priced
    # through the cost model, none of it is free.
    for engine, entry in results.items():
        assert entry["load_ns"] > 0 and entry["probe_ns"] > 0, engine
    # The learned tier actually engaged: segments were fit, probes were
    # counted, and its report says so.
    learned = results["learned"]["report"]
    assert learned.index_structure == "learned"
    assert learned.index_segments > 0
    assert learned.index_probes > 0
    assert learned.index_entries >= N_ARTICLES // 4
    # The classic engines carry no learned-tier counters.
    for engine in ("btree", "art"):
        report = results[engine]["report"]
        assert report.index_structure == engine
        assert report.index_segments == 0
