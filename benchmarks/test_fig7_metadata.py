"""Figure 7: metadata operations.

Paper setup: "we either retrieve the Blob State of 10 consecutive BLOBs
or call fstat() on ten consecutive files"; 100 KB payloads.  Result:
file systems all perform alike, and Our provides 15.6x their throughput,
because Blob States live in a B-Tree with efficient lookup/scan while
file-system metadata operations are syscalls.
"""

from conftest import build_store, report_figure, scaled

from repro.bench.harness import RunResult
from repro.sim.clock import Stopwatch

N_BLOBS = 64
PAYLOAD = 100 * 1024
BATCHES = scaled(300)


def run_metadata(store) -> RunResult:
    keys = [b"blob%06d" % i for i in range(N_BLOBS)]
    for key in keys:
        store.put(key, b"m" * PAYLOAD)
    ops = 0
    with Stopwatch(store.model.clock) as sw:
        for batch in range(BATCHES):
            start = (batch * 7) % (N_BLOBS - 10)
            for i in range(start, start + 10):
                assert store.stat(keys[i]) == PAYLOAD
            ops += 1  # one metadata *operation* = 10 consecutive stats
    return RunResult(system=store.name, ops=ops, elapsed_ns=sw.elapsed_ns)


def run_all():
    systems = ("our", "ext4.ordered", "ext4.journal", "xfs", "btrfs", "f2fs")
    return {name: run_metadata(build_store(name)) for name in systems}


def test_fig7_metadata_operations(bench_once):
    results = bench_once(run_all)
    report_figure("Figure 7: metadata ops (10 consecutive stats per op)",
                  results)
    tp = {k: v.throughput_ops_s for k, v in results.items()}
    fs = {k: v for k, v in tp.items() if k != "our"}
    # All file systems perform similarly...
    assert max(fs.values()) < 1.6 * min(fs.values())
    # ...and Our is an order of magnitude ahead (paper: 15.6x).
    assert tp["our"] > 8 * max(fs.values())
