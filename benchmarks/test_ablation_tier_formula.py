"""Ablation: the extent-tier formula vs Power-of-Two vs Fibonacci.

Section III-A rejects the classic growth formulas for their waste (50 %
worst case for Power-of-Two, 38.2 % for Fibonacci) and for how quickly
(or slowly) they reach huge objects.  This ablation measures the actual
internal fragmentation over a realistic size distribution and the
metadata length (extent count) needed per BLOB size.
"""

import math
import random

from conftest import print_table

from repro.core.tier import ExtentTier, FibonacciTier, PowerOfTwoTier

TIERS = {
    "extent-tier(10)": ExtentTier(tiers_per_level=10),
    "extent-tier(5)": ExtentTier(tiers_per_level=5),
    "power-of-two": PowerOfTwoTier(),
    "fibonacci": FibonacciTier(),
}


def waste_stats(table, sizes_pages):
    fractions = [table.waste_fraction(s) for s in sizes_pages]
    return (sum(fractions) / len(fractions), max(fractions))


def extents_needed(table, npages):
    return table.tiers_for_pages(npages)


def run_analysis():
    rng = random.Random(3)
    # Lognormal object sizes centred in the hundreds of megabytes; the
    # formulas only diverge past level 0 (the proposed tiers' level 0
    # *is* power-of-two, so small objects waste identically).
    sizes = [max(1, int(math.exp(rng.gauss(11.0, 2.0))))
             for _ in range(4000)]
    results = {}
    for name, table in TIERS.items():
        mean_waste, worst_waste = waste_stats(table, sizes)
        big = 10 * 1024 * 1024 * 1024 // 4096  # 10 GB in pages
        results[name] = dict(mean=mean_waste, worst=worst_waste,
                             extents_10gb=extents_needed(table, big),
                             max_127=table.max_pages(127) * 4096)
    return results


def test_ablation_tier_formula(bench_once):
    results = bench_once(run_analysis)
    rows = [[name,
             f"{r['mean'] * 100:.1f}%", f"{r['worst'] * 100:.1f}%",
             f"{r['extents_10gb']}",
             f"{min(r['max_127'] / (1 << 50), 10**9):.0f} PiB"]
            for name, r in results.items()]
    print_table("Ablation: tier formulas (waste over lognormal sizes)",
                ["formula", "mean waste", "worst waste", "extents @10GB",
                 "max @127 extents"], rows)

    ours = results["extent-tier(10)"]
    pow2 = results["power-of-two"]
    fib = results["fibonacci"]
    # The proposed formula wastes less than both classics on average...
    assert ours["mean"] < pow2["mean"]
    assert ours["mean"] < fib["mean"]
    # ...and the classics do exhibit their textbook worst cases.
    assert pow2["worst"] > 0.40
    assert fib["worst"] > 0.30
    # For large BLOBs (level 1 and beyond — the regime the paper's
    # 25 % -> 7.3 % numbers describe) the proposed formula's waste drops
    # below Fibonacci's 38.2 % bound.  Small objects live in level 0,
    # which *is* power-of-two, so the blanket worst case stays ~50 %.
    big = 100 * 1024 * 1024 // 4096  # 100 MB in pages
    worst_big = max(TIERS["extent-tier(10)"].waste_fraction(big + delta)
                    for delta in range(0, 5000, 500))
    assert worst_big < 0.382
    # Five tiers per level wastes even less but reaches smaller maxima —
    # the utilization/max-size trade-off the paper discusses.
    five = results["extent-tier(5)"]
    assert five["mean"] < ours["mean"]
    assert five["max_127"] < ours["max_127"]
    # Metadata stays short: a 10 GB BLOB needs only tens of extents.
    assert ours["extents_10gb"] <= 40
