"""Figure 8: Wikipedia reads, hot cache.

Paper setup: a database built from enwiki article sizes, reads sampled
by article views, `memcpy()` as the read operator, page cache warm.
Result: Our outperforms every file system by at least 40 %, due to the
fstat/open/close overheads file systems pay per article and their extra
kernel->user copy.
"""

from conftest import build_store, report_figure, scaled

from repro.bench.harness import RunResult
from repro.sim.clock import Stopwatch
from repro.workloads.wikipedia import WikipediaCorpus

N_ARTICLES = 700
N_READS = scaled(4000)
SYSTEMS = ("our", "our.ht", "ext4.ordered", "xfs", "btrfs", "f2fs")


def load_corpus(store, corpus):
    for article in corpus.articles:
        store.put(article.title, corpus.content(article))


def run_hot(store, corpus) -> RunResult:
    load_corpus(store, corpus)
    sample = corpus.view_sampler(seed=5)
    expected = {a.title: a.size for a in corpus.articles}
    with Stopwatch(store.model.clock) as sw:
        for _ in range(N_READS):
            article = sample()
            data = store.get(article.title)
            assert len(data) == expected[article.title]
    return RunResult(system=store.name, ops=N_READS, elapsed_ns=sw.elapsed_ns)


def run_all():
    corpus = WikipediaCorpus(n_articles=N_ARTICLES, seed=11)
    return {name: run_hot(build_store(name), corpus) for name in SYSTEMS}


def test_fig8_wikipedia_hot_cache(bench_once):
    results = bench_once(run_all)
    report_figure("Figure 8: Wikipedia read-only, hot cache", results)
    tp = {k: v.throughput_ops_s for k, v in results.items()}
    fs = {k: v for k, v in tp.items() if not k.startswith("our")}
    # Our beats every file system by at least 40 % (the paper's bound).
    assert tp["our"] >= 1.4 * max(fs.values())
    # The hash-table pool keeps the BLOB-design advantage too.
    assert tp["our.ht"] > max(fs.values())
