"""Ablation: size-fair vs uniform extent eviction (Section III-G).

The paper argues an N-page extent should be N times more likely to be
evicted than a single page.  Under uniform eviction, large cold extents
squat in the pool while many small hot pages get evicted; size-fair
eviction keeps the small-object hit ratio up with the same capacity.
"""

import random

from conftest import print_table

from repro.buffer.vmcache import VmcachePool
from repro.sim.cost import CostModel
from repro.storage.device import SimulatedNVMe

POOL_PAGES = 512
SMALL_EXTENT = 2
LARGE_EXTENT = 128
N_SMALL = 600
N_LARGE = 12
OPS = 4000


def run_policy(policy: str) -> dict:
    model = CostModel()
    device = SimulatedNVMe(model, capacity_pages=1 << 16)
    pool = VmcachePool(device, model, capacity_pages=POOL_PAGES,
                       eviction_seed=5)
    pool.eviction_policy = policy
    # Lay out small (hot) and large (cold) extents on the device.
    smalls = [(100 + i * SMALL_EXTENT, SMALL_EXTENT) for i in range(N_SMALL)]
    larges = [(20000 + i * LARGE_EXTENT, LARGE_EXTENT)
              for i in range(N_LARGE)]
    rng = random.Random(8)
    for _ in range(OPS):
        if rng.random() < 0.9:
            extent = smalls[rng.randrange(64)]   # hot small working set
        else:
            extent = larges[rng.randrange(N_LARGE)]
        pool.unpin(pool.fetch_extents([extent]))
    return dict(hit_ratio=pool.stats.hit_ratio,
                bytes_read=device.stats.bytes_read,
                evictions=pool.stats.evictions)


def test_ablation_eviction_fairness(bench_once):
    results = bench_once(lambda: {p: run_policy(p)
                                  for p in ("fair", "uniform")})
    rows = [[name, f"{r['hit_ratio'] * 100:.1f}%",
             f"{r['bytes_read'] >> 20} MiB", f"{r['evictions']}"]
            for name, r in results.items()]
    print_table("Ablation: eviction policy (hot small / cold large mix)",
                ["policy", "hit ratio", "device read", "evictions"], rows)
    fair, uniform = results["fair"], results["uniform"]
    # Size-fair eviction preferentially reclaims the cold large extents,
    # protecting the hot small working set.
    assert fair["hit_ratio"] > uniform["hit_ratio"]
    assert fair["bytes_read"] < uniform["bytes_read"]
