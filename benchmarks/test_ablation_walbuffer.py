"""Ablation: physlog WAL-buffer size (Section V-B, 10 MB discussion).

The paper: Our.physlog at 10 MB payloads stalls waiting on the group
committer because BLOB-sized records stream through a BLOB-sized WAL
buffer; "by increasing the size of the WAL buffer (e.g., from 10 MB to
50 MB), this overhead becomes smaller, but the overall throughput is
still lower than that of Our."
"""

from conftest import build_store, report_figure, ycsb_config

from repro.bench.harness import run_ycsb

PAYLOAD = 10 * 1024 * 1024
BUFFERS_MB = (2, 10, 50)


def run_sweep():
    cfg = ycsb_config(payload=PAYLOAD, n_records=8)
    results = {}
    for mb in BUFFERS_MB:
        store = build_store("our.physlog", capacity_bytes=2 << 30,
                            buffer_bytes=512 << 20,
                            wal_buffer_bytes=mb << 20)
        results[f"physlog {mb}MB buf"] = run_ycsb(store, cfg, 40)
    our = build_store("our", capacity_bytes=2 << 30,
                      buffer_bytes=512 << 20)
    results["our"] = run_ycsb(our, cfg, 40)
    return results


def test_ablation_physlog_wal_buffer(bench_once):
    results = bench_once(run_sweep)
    report_figure("Ablation: physlog WAL-buffer size (10 MB payload)",
                  results)
    tp = {k: v.throughput_ops_s for k, v in results.items()}
    # Bigger buffers reduce the synchronous-flush stall...
    assert tp["physlog 10MB buf"] > tp["physlog 2MB buf"]
    assert tp["physlog 50MB buf"] >= tp["physlog 10MB buf"]
    # ...but physlog never reaches the single-flush design.
    assert tp["our"] > max(v for k, v in tp.items() if k != "our")
