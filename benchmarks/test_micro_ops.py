"""Micro-benchmarks of hot engine operations (real wall time).

Unlike the figure benchmarks (which report *simulated* time), these use
pytest-benchmark's actual timing of the Python implementation — the
numbers to watch for performance regressions of this library itself.
"""

import pytest

from repro.db import BlobDB, EngineConfig
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload


def make_db():
    db = BlobDB(EngineConfig(device_pages=65536, wal_pages=2048,
                             catalog_pages=512, buffer_pool_pages=16384))
    db.create_table("t")
    return db


@pytest.fixture
def db():
    return make_db()


@pytest.mark.parametrize("size", [4 * 1024, 256 * 1024],
                         ids=["4KB", "256KB"])
def test_micro_put_blob(benchmark, db, size):
    payload = b"\x42" * size
    counter = iter(range(10**9))

    def put():
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k%09d" % next(counter), payload)

    # Fixed rounds so the device never fills mid-calibration.
    benchmark.pedantic(put, rounds=200, iterations=1)


@pytest.mark.parametrize("size", [4 * 1024, 256 * 1024],
                         ids=["4KB", "256KB"])
def test_micro_read_blob(benchmark, db, size):
    with db.transaction() as txn:
        db.put_blob(txn, "t", b"k", b"\x24" * size)
    result = benchmark(lambda: db.read_blob("t", b"k"))
    assert len(result) == size


def test_micro_stat(benchmark, db):
    with db.transaction() as txn:
        db.put_blob(txn, "t", b"k", b"\x10" * 65536)
    benchmark(lambda: db.get_state("t", b"k"))


def test_micro_append(benchmark, db):
    with db.transaction() as txn:
        db.put_blob(txn, "t", b"k", b"base" * 1000)

    def append():
        with db.transaction() as txn:
            db.append_blob(txn, "t", b"k", b"x" * 1024)

    benchmark.pedantic(append, rounds=30, iterations=1)


def test_micro_range_read(benchmark, db):
    with db.transaction() as txn:
        db.put_blob(txn, "t", b"k", b"\x77" * (4 << 20))
    result = benchmark(lambda: db.read_blob_range("t", b"k", 1 << 20, 4096))
    assert len(result) == 4096


def test_micro_ycsb_mixed(benchmark):
    """One full YCSB op through the adapter stack."""
    from repro.bench.adapters import make_store
    store = make_store("our", capacity_bytes=512 << 20,
                       buffer_bytes=128 << 20)
    workload = YcsbWorkload(YcsbConfig(n_records=32, payload=8192))
    for key, payload in workload.load_phase():
        store.put(key, payload)
    ops = workload.operations(10**9)

    def one_op():
        op, key, payload = next(ops)
        if op == "read":
            store.get(key)
        else:
            store.replace(key, payload)

    benchmark(one_op)


def test_micro_recovery(benchmark):
    """Recovery wall time for a 200-transaction WAL tail."""

    def build():
        db = make_db()
        for i in range(200):
            with db.transaction() as txn:
                db.put_blob(txn, "t", b"k%04d" % i, b"\x31" * 4096)
        return (db.crash(), db.config), {}

    def recover(device, config):
        return BlobDB.recover(device, config)

    recovered = benchmark.pedantic(recover, setup=build, rounds=5,
                                   iterations=1)
    assert recovered.table_size("t") == 200
