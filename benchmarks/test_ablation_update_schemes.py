"""Ablation: delta-log vs clone-extent BLOB update (Section III-D).

The two schemes trade write volume differently: the delta scheme writes
the *new* data twice (WAL record + in-place page write); the clone
scheme writes the *old* extent content once more.  The runtime chooser
("auto") should therefore pick delta for small patches and clone for
near-full-extent rewrites.
"""

from conftest import build_store, print_table

BLOB_SIZE = 512 * 1024


#: Patch offset inside the blob's largest (64-page, 256 KB) extent, so
#: the clone scheme must rewrite that whole extent.
PATCH_OFFSET = 300 * 1024


def measure(scheme: str, patch_bytes: int):
    store = build_store("our")
    db = store.db
    with db.transaction() as txn:
        db.put_blob(txn, store.TABLE, b"u", b"\x30" * BLOB_SIZE)
    db.checkpoint()
    before = db.device.stats.snapshot()
    t0 = db.model.clock.now_ns
    with db.transaction() as txn:
        state = db.update_blob_range(txn, store.TABLE, b"u",
                                     offset=PATCH_OFFSET,
                                     data=b"\x31" * patch_bytes,
                                     scheme=scheme)
    elapsed = db.model.clock.now_ns - t0
    delta = db.device.stats.delta_since(before)
    written = delta.bytes_written
    patched = db.read_blob(store.TABLE, b"u")
    assert patched[PATCH_OFFSET:PATCH_OFFSET + patch_bytes] == \
        b"\x31" * patch_bytes
    return elapsed, written, state


def run_all():
    small, large = 8 * 1024, 192 * 1024
    return {
        ("delta", small): measure("delta", small),
        ("clone", small): measure("clone", small),
        ("delta", large): measure("delta", large),
        ("clone", large): measure("clone", large),
        ("auto", small): measure("auto", small),
        ("auto", large): measure("auto", large),
    }


def test_ablation_update_schemes(bench_once):
    results = bench_once(run_all)
    rows = [[f"{scheme} / {size // 1024}KB patch", f"{ns / 1000:.1f}",
             f"{written // 1024}"]
            for (scheme, size), (ns, written, _) in results.items()]
    print_table("Ablation: BLOB update schemes (512 KB BLOB)",
                ["scheme/patch", "us/op", "device KB written"], rows)

    small, large = 8 * 1024, 192 * 1024
    # Small patch inside a 256 KB extent: delta writes ~16 KB twice,
    # the clone rewrites the whole extent.
    assert results[("delta", small)][1] < results[("clone", small)][1] / 3
    # Near-full-extent patch: delta's double write of new data now
    # exceeds the clone's single extra write of old data.
    assert results[("delta", large)][1] > results[("clone", large)][1]
    # The runtime chooser picks the cheaper scheme on both ends.
    assert results[("auto", small)][2].extent_pids == \
        results[("delta", small)][2].extent_pids       # stayed in place
    assert results[("auto", large)][1] <= \
        1.05 * results[("clone", large)][1]
