"""Ablation: remote BLOB access across transports (Section VI, Networks).

The paper attributes PostgreSQL's and MySQL's standing in Figs. 5/6 to
"communication and (de)serialization overheads" and names RDMA and
shared memory as the upcoming remedies.  This ablation quantifies that
narrative on *our* engine: the same storage design behind four
transports, against the embedded baseline.
"""

from conftest import print_table

from repro.bench.harness import RunResult
from repro.db import BlobDB, EngineConfig
from repro.net import (
    RDMA,
    SHARED_MEMORY,
    TCP_ETHERNET,
    UNIX_SOCKET,
    BlobServer,
    RemoteBlobStore,
)
from repro.sim.clock import Stopwatch

PAYLOADS = {"120B": 120, "100KB": 100 * 1024, "10MB": 10 * 1024 * 1024}
N_OPS = 60


def engine():
    return BlobDB(EngineConfig(device_pages=262144,
                               buffer_pool_pages=65536,
                               wal_pages=4096, catalog_pages=1024))


def run_embedded(payload: int) -> RunResult:
    db = engine()
    db.create_table("blobs")
    with db.transaction() as txn:
        db.put_blob(txn, "blobs", b"k", b"\x11" * payload)
    with Stopwatch(db.model.clock) as sw:
        for _ in range(N_OPS):
            db.read_blob("blobs", b"k")
    return RunResult(system="embedded", ops=N_OPS, elapsed_ns=sw.elapsed_ns)


def run_remote(transport, payload: int) -> RunResult:
    store = RemoteBlobStore(BlobServer(engine()), transport)
    store.put(b"k", b"\x11" * payload)
    with Stopwatch(store.model.clock) as sw:
        for _ in range(N_OPS):
            store.get(b"k")
    return RunResult(system=store.name, ops=N_OPS, elapsed_ns=sw.elapsed_ns)


def run_all():
    results = {}
    for label, payload in PAYLOADS.items():
        results[(label, "embedded")] = run_embedded(payload)
        for transport in (TCP_ETHERNET, UNIX_SOCKET, RDMA, SHARED_MEMORY):
            results[(label, transport.name)] = run_remote(transport, payload)
    return results


def test_ablation_network_transports(bench_once):
    results = bench_once(run_all)
    systems = ("embedded", "shm", "rdma", "unix", "tcp")
    rows = []
    for system in systems:
        row = [system]
        for label in PAYLOADS:
            result = results[(label, system)]
            row.append(f"{result.throughput_ops_s:.0f}")
        rows.append(row)
    print_table("Ablation: GET throughput by transport (txn/s)",
                ["access path"] + list(PAYLOADS), rows)

    def tp(label, system):
        return results[(label, system)].throughput_ops_s

    # 120 B: the round trip is everything — TCP/unix lose an order of
    # magnitude (the Fig. 5 story for client/server DBMSs)...
    assert tp("120B", "embedded") > 8 * tp("120B", "tcp")
    assert tp("120B", "embedded") > 8 * tp("120B", "unix")
    # ...while RDMA and shared memory recover most of it.
    assert tp("120B", "rdma") > 3 * tp("120B", "tcp")
    assert tp("120B", "shm") > tp("120B", "rdma")
    assert tp("120B", "shm") > 10 * tp("120B", "tcp")

    # 10 MB: serialization + wire dominate; zero-copy transports stay
    # within a small factor of embedded.
    assert tp("10MB", "shm") > 0.7 * tp("10MB", "embedded")
    assert tp("10MB", "rdma") > 0.5 * tp("10MB", "embedded")
    assert tp("10MB", "tcp") < 0.2 * tp("10MB", "embedded")
