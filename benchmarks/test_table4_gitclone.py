"""Table IV: simulated git-clone trace.

Paper result (1.28 GB depth-1 linux clone, single-threaded):

    Our 906 ms | XFS 1464 | BtrFS 1688 | Ext4.ordered 1834 | F2FS 2112 |
    Ext4.journal 2330

File systems lose on metadata syscalls — Ext4 spends 36 % of its time in
``open`` (file creation), 4.8 % in ``fstat``, 1.6 % in ``close`` — while
the engine replaces all three with B-Tree operations.
"""

from conftest import build_store, print_table

from repro.sim.clock import Stopwatch
from repro.workloads.gitclone import GitCloneTrace

TRACE = GitCloneTrace()  # ~40 MB scaled from the paper's 1.28 GB


def replay_on_fs(store) -> None:
    fs = store.fs
    fds: dict[str, int] = {}
    for op in TRACE.operations():
        if op.op == "mkdir":
            fs.model.syscall("mkdir")
        elif op.op == "create":
            fds[op.path] = fs.create(op.path)
        elif op.op == "open":
            fds[op.path] = fs.open(op.path)
        elif op.op == "write":
            fs.pwrite(fds[op.path], b"\x67" * op.size, op.offset)
        elif op.op == "read":
            fs.pread(fds[op.path], op.size, op.offset)
        elif op.op == "fstat":
            if op.path in fds:
                fs.fstat(fds[op.path])
            else:
                fs.stat(op.path)
        elif op.op == "close":
            fs.close(fds.pop(op.path))


def replay_on_db(store) -> None:
    """The engine's equivalent: a BLOB per file, Blob-State metadata.

    Creates buffer writes, the final close commits the file's BLOB —
    mkdir/creat/fstat/close become B-Tree operations (Section V-I).
    """
    db = store.db
    pending: dict[str, bytearray] = {}
    for op in TRACE.operations():
        if op.op == "mkdir":
            db.model.cpu(200.0)  # a directory row insert
        elif op.op == "create":
            pending[op.path] = bytearray()
        elif op.op == "open":
            pass  # Blob State point query happens on first use
        elif op.op == "write":
            buf = pending.get(op.path)
            if buf is not None:
                if len(buf) < op.offset + op.size:
                    buf.extend(b"\x00" * (op.offset + op.size - len(buf)))
                buf[op.offset:op.offset + op.size] = b"\x67" * op.size
            # Bytes land straight in blob extents at close/commit.
        elif op.op == "read":
            key = op.path.encode()
            with db.read_blob_view(store.TABLE, key) as view:
                view.contiguous()
                db.model.memcpy(op.size)
        elif op.op == "fstat":
            db.get_state(store.TABLE, op.path.encode())
        elif op.op == "close":
            buf = pending.pop(op.path, None)
            if buf is not None:
                with db.transaction() as txn:
                    db.put_blob(txn, store.TABLE, op.path.encode(),
                                bytes(buf))


SYSTEMS = ("our", "ext4.ordered", "ext4.journal", "xfs", "btrfs", "f2fs")


def run_all():
    results = {}
    for name in SYSTEMS:
        store = build_store(name)
        counters_before = store.model.counters.snapshot()
        with Stopwatch(store.model.clock) as sw:
            if name == "our":
                replay_on_db(store)
            else:
                replay_on_fs(store)
        results[name] = (sw.elapsed_ns,
                         store.model.counters.delta_since(counters_before))
    return results


def test_table4_git_clone(bench_once):
    results = bench_once(run_all)
    rows = [[name, f"{ns / 1e6:.1f}",
             f"{c.instructions // 1000}k", f"{c.kernel_cycles // 1000}k"]
            for name, (ns, c) in results.items()]
    print_table("Table IV: git-clone trace (simulated)",
                ["system", "time (ms)", "instructions", "kernel cycles"],
                rows)

    times = {name: ns for name, (ns, _) in results.items()}
    kernel = {name: c.kernel_cycles for name, (_, c) in results.items()}
    # Our engine wins by roughly the paper's 1.6-2.6x margin.
    assert all(times["our"] < t for n, t in times.items() if n != "our")
    assert times["ext4.ordered"] > 1.4 * times["our"]
    # XFS is the best file system; Ext4.journal the worst.
    fs_times = {n: t for n, t in times.items() if n != "our"}
    assert min(fs_times, key=fs_times.get) == "xfs"
    assert max(fs_times, key=fs_times.get) == "ext4.journal"
    # The gap is kernel time: syscall overhead dominates for the FSes
    # (paper: 9x kernel cycles; compressed here because the scaled pack
    # is a larger fraction of the trace than in the 1.28 GB original).
    assert kernel["ext4.ordered"] > 2 * kernel["our"]
