"""Ablation: tail extent vs plain tier formula (Section III-H).

The paper's summary table:

                       | internal frag. | growth op. |
    tail extent        | minimal        | slow       |
    extent tier formula| low            | fast       |

Measured here: actual wasted pages for static BLOBs, and the simulated
cost of an append (the tail must first be cloned into a tiered extent).
"""

import random

from conftest import build_store, print_table

from repro.sim.clock import Stopwatch


def run_variant(use_tail: bool):
    store = build_store("our", use_tail_extents=use_tail)
    db = store.db
    rng = random.Random(9)
    sizes = [rng.randint(8 * 1024, 800 * 1024) for _ in range(60)]
    for i, size in enumerate(sizes):
        with db.transaction() as txn:
            db.put_blob(txn, store.TABLE, b"b%04d" % i, b"\x11" * size)
    # Internal fragmentation: allocated pages vs needed pages.
    needed = sum((s + 4095) // 4096 for s in sizes)
    allocated = db.allocator.allocated_pages
    waste = (allocated - needed) / allocated

    # Growth cost: append 64 KB to every BLOB.
    with Stopwatch(db.model.clock) as sw:
        for i in range(len(sizes)):
            with db.transaction() as txn:
                db.append_blob(txn, store.TABLE, b"b%04d" % i, b"\x22" * 65536)
    grow_ns_per_op = sw.elapsed_ns / len(sizes)
    return waste, grow_ns_per_op


def test_ablation_tail_extent(bench_once):
    outcomes = bench_once(lambda: {
        "tail extent": run_variant(True),
        "tier formula": run_variant(False),
    })
    rows = [[name, f"{waste * 100:.2f}%", f"{ns / 1000:.1f}"]
            for name, (waste, ns) in outcomes.items()]
    print_table("Ablation: tail extent vs tier formula",
                ["variant", "internal frag.", "append us/op"], rows)

    tail_waste, tail_grow = outcomes["tail extent"]
    tier_waste, tier_grow = outcomes["tier formula"]
    # Tail extents eliminate fragmentation for static BLOBs...
    assert tail_waste < 0.01
    assert tier_waste > tail_waste
    # ...but growth pays for the clone (allocation + full-tail memcpy).
    assert tail_grow > 1.1 * tier_grow
