"""Figure 10: vmcache+exmap vs hash-table buffer pool, scaling workers.

Paper setup: read-only in-memory YCSB, ``memcpy()`` read operator,
payloads 100 KB / 1 MB / 10 MB, 1-16 workers.  Results:

* at 100 KB the hash-table pool is *slightly faster* (a TLB flush costs
  more than malloc+memcpy of a small warm buffer);
* at 1 MB and 10 MB vmcache wins, up to 2.1x at 16 workers / 10 MB;
* the hash-table variant stops scaling at high worker counts: its two
  copies per read saturate L3 (1 MB) and DRAM bandwidth (10 MB).
"""

from conftest import print_table

from repro.bench.adapters import make_store
from repro.sim.cost import CostModel
from repro.sim.workers import WorkerSim

PAYLOADS = {"100KB": 100 * 1024, "1MB": 1 << 20, "10MB": 10 << 20}
WORKERS = (1, 2, 4, 8, 16)
OPS_PER_WORKER = 12


def build_read_op(kind: str, payload: int):
    """One pre-loaded store per (kind, payload); returns the read op.

    The store is built on a throwaway model; the WorkerSim re-charges the
    op against its own model, so only the op's cost profile matters.
    """
    name = "our" if kind == "vmcache" else "our.ht"
    store = make_store(name, capacity_bytes=1 << 30,
                       buffer_bytes=256 << 20)
    store.put(b"blob", b"r" * payload)
    state = store.db.get_state(store.TABLE, b"blob")

    def op(model: CostModel, worker: int) -> None:
        # Swap the engine onto the worker's model for this op.
        old = _swap_model(store.db, model)
        try:
            data = store.db.blobs.read_bytes(state)
            assert len(data) == payload
        finally:
            _swap_model(store.db, old)

    return op


def _swap_model(db, model):
    old = db.model
    db.model = model
    db.pool.model = model
    db.device.model = model
    db.blobs.model = model
    if hasattr(db.pool, "aliasing"):
        db.pool.aliasing.model = model
    return old


def run_grid():
    results = {}
    for label, payload in PAYLOADS.items():
        for kind in ("vmcache", "hashtable"):
            op = build_read_op(kind, payload)
            # Working set per worker: client buffer + (for the copying
            # pool) the malloc'ed staging buffer.
            ws = payload * (2 if kind == "hashtable" else 1)
            for n in WORKERS:
                sim = WorkerSim(n)
                result = sim.run(op, OPS_PER_WORKER, working_set_bytes=ws)
                results[(label, kind, n)] = result.throughput_ops_s
    return results


def test_fig10_vmcache_vs_hashtable(bench_once):
    results = bench_once(run_grid)
    for label in PAYLOADS:
        rows = []
        for kind in ("vmcache", "hashtable"):
            rows.append([kind] + [f"{results[(label, kind, n)]:.0f}"
                                  for n in WORKERS])
        print_table(f"Figure 10 ({label} BLOBs): txn/s by worker count",
                    ["pool"] + [f"{n}w" for n in WORKERS], rows)

    # 100 KB: the hash table is slightly faster (TLB flush > memcpy).
    assert results[("100KB", "hashtable", 1)] >= \
        results[("100KB", "vmcache", 1)]

    # 10 MB, 16 workers: vmcache wins big (paper: up to 2.1x).
    ratio = results[("10MB", "vmcache", 16)] / \
        results[("10MB", "hashtable", 16)]
    assert 1.5 <= ratio <= 3.5

    # The hash-table pool cannot scale to 16 workers at 10 MB
    # (two memcpys saturate memory bandwidth)...
    ht_8, ht_16 = results[("10MB", "hashtable", 8)], \
        results[("10MB", "hashtable", 16)]
    assert ht_16 < 1.4 * ht_8
    # ...while vmcache stays ahead at every point past 100 KB.
    vm_8, vm_16 = results[("10MB", "vmcache", 8)], \
        results[("10MB", "vmcache", 16)]
    assert vm_16 >= 0.999 * vm_8  # both may sit at the bandwidth cap
    assert vm_16 > 2 * ht_8

    # 1 MB, 16 workers: combined working sets spill L3 for the copying
    # pool; vmcache leads there as well.
    assert results[("1MB", "vmcache", 16)] > results[("1MB", "hashtable", 16)]
