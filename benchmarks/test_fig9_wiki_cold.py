"""Figure 9: Wikipedia reads, cold cache (throughput over time).

Paper setup: same view-weighted read workload but the page cache /
buffer pool starts empty.  Results: all file systems perform similarly;
Our leads by at least 2.9x at the start of the benchmark (its flat
extent sequences exploit the NVMe SSD better — read ceiling 174 MB/s vs
Ext4's 59 MB/s), and by ~3.9x at the end (its cache fills faster, so a
growing share of reads are served from memory).
"""

from conftest import build_store, print_table

from repro.sim.clock import Stopwatch
from repro.workloads.wikipedia import WikipediaCorpus

N_ARTICLES = 700
N_READS = 2400
WINDOWS = 4
SYSTEMS = ("our", "ext4.ordered", "xfs", "btrfs", "f2fs")


def run_cold(store, corpus) -> tuple[list[float], float]:
    """Per-window throughput plus the cold-read device bandwidth."""
    for article in corpus.articles:
        store.put(article.title, corpus.content(article))
    store.drop_caches()
    sample = corpus.view_sampler(seed=5)
    window_tp = []
    per_window = N_READS // WINDOWS
    bytes_before = store.device.stats.bytes_read
    ns_before = store.model.clock.now_ns
    for _ in range(WINDOWS):
        with Stopwatch(store.model.clock) as sw:
            for _ in range(per_window):
                store.get(sample().title)
        window_tp.append(per_window * 1e9 / max(sw.elapsed_ns, 1))
    read_bytes = store.device.stats.bytes_read - bytes_before
    elapsed_s = (store.model.clock.now_ns - ns_before) / 1e9
    mb_per_s = read_bytes / (1 << 20) / max(elapsed_s, 1e-9)
    return window_tp, mb_per_s


def run_all():
    corpus = WikipediaCorpus(n_articles=N_ARTICLES, seed=11)
    return {name: run_cold(build_store(name), corpus) for name in SYSTEMS}


def test_fig9_wikipedia_cold_cache(bench_once):
    outcomes = bench_once(run_all)
    series = {name: tps for name, (tps, _) in outcomes.items()}
    bandwidth = {name: mb for name, (_, mb) in outcomes.items()}
    rows = [[name] + [f"{tp:.0f}" for tp in tps]
            + [f"{bandwidth[name]:.0f}"]
            for name, tps in series.items()]
    print_table("Figure 9: Wikipedia read-only, cold cache "
                "(txn/s per quarter; device-read MB/s)",
                ["system"] + [f"window {i + 1}" for i in range(WINDOWS)]
                + ["MB/s"], rows)
    # The paper's calibration anchor: Ext4's cold-read ceiling is
    # 59 MB/s (readahead off); Our reads whole extents and sustains ~3x.
    assert 30 <= bandwidth["ext4.ordered"] <= 95
    assert bandwidth["our"] > 1.5 * bandwidth["ext4.ordered"]
    fs_first = {k: v[0] for k, v in series.items() if k != "our"}
    fs_last = {k: v[-1] for k, v in series.items() if k != "our"}
    # All file systems perform similarly at the cold start.
    assert max(fs_first.values()) < 1.7 * min(fs_first.values())
    # Our leads from the first window (paper: >= 2.9x at the start)...
    assert series["our"][0] >= 2.0 * max(fs_first.values())
    # ...and the gap does not shrink as its buffer pool fills
    # (paper: 3.9x at the end).
    assert series["our"][-1] >= 2.5 * max(fs_last.values())
    # Everyone speeds up as caches warm.
    assert series["our"][-1] > series["our"][0]
