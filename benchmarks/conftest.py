"""Shared helpers for the paper-reproduction benchmarks.

Every file in this directory regenerates one table or figure from the
paper's evaluation (Section V) — see DESIGN.md section 3 for the index.
Numbers are *simulated* throughput (operations per simulated second read
from each system's virtual clock); EXPERIMENTS.md records how the shapes
compare with the paper's measurements.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

import os

from repro.bench.adapters import make_store
from repro.bench.harness import RunResult, bar, human_throughput, print_table
from repro.workloads.ycsb import YcsbConfig

#: Scale-down: every benchmark device/pool is this fraction of the
#: paper's (32 GB pool -> 256 MB), keeping payload:pool:device ratios.
#: REPRO_BENCH_SCALE multiplies op counts for longer, steadier runs.
BENCH_SCALE = max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))
BENCH_CAPACITY = dict(capacity_bytes=1 << 30, buffer_bytes=256 << 20)


def ycsb_config(payload, n_records=24, read_ratio=0.5, seed=1) -> YcsbConfig:
    return YcsbConfig(n_records=n_records, payload=payload,
                      read_ratio=read_ratio, seed=seed)


def scaled(n_ops: int) -> int:
    """Scale an op count by REPRO_BENCH_SCALE (longer, steadier runs)."""
    return n_ops * BENCH_SCALE


def build_store(name: str, **overrides):
    kwargs = dict(BENCH_CAPACITY)
    kwargs.update(overrides)
    return make_store(name, **kwargs)


def report_figure(title: str, results: dict[str, RunResult],
                  baseline: str = "our") -> None:
    """Print a paper-style figure table, normalized to one system."""
    base = results[baseline].throughput_ops_s if baseline in results else None
    best = max(r.throughput_ops_s for r in results.values())
    rows = []
    for name, result in results.items():
        rel = (f"{result.throughput_ops_s / base:.2f}x"
               if base else "-")
        rows.append([name, human_throughput(result.throughput_ops_s),
                     f"{result.per_op_us:.1f}", rel,
                     bar(result.throughput_ops_s, best)])
    print_table(title, ["system", "txn/s (sim)", "us/op", f"vs {baseline}",
                        ""], rows)


@pytest.fixture
def bench_once(benchmark):
    """Run the comparison exactly once under pytest-benchmark timing."""

    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1,
                                  warmup_rounds=0)

    return run
