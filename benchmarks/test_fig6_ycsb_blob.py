"""Figure 6: YCSB with BLOB payloads (100 KB / 10 MB / mixed / 1 GB).

Paper results reproduced here:

* (a) 100 KB — client/server DBMSs are slowest; file systems comparable
  except Ext4.journal (journals data in the foreground); Our and Our.ht
  beat the file systems; Our.physlog trails Our by ~11 %.
* (b) 10 MB — SQLite drops below Ext4.journal (≈2.5 WAL checkpoints per
  BLOB write); file systems are ≥13 % slower than Our (two memory copies
  vs one); Our.physlog loses ~30 % waiting on WAL segment flushes.
* (c) mixed 4 KB–10 MB — the file-system gap widens (ftruncate + fresh
  page-cache allocation on every resize); Our.physlog beats file systems.
* (d) 1 GB — PostgreSQL ("Statement parameter length overflow") and
  SQLite ("BLOB too big") error out; Our leads everything else by ≥70 %.
  (Scaled run: 64 MB payloads with a proportionally scaled dirty-page
  throttle; the error-path check uses the real 1 GB limits.)
"""

import pytest
from conftest import build_store, report_figure, ycsb_config

from repro.bench.adapters import make_store
from repro.bench.harness import run_ycsb
from repro.db.errors import BlobTooBigError
from repro.sim.cost import CostParams


def run_matrix(systems, cfg, n_ops, **store_overrides):
    results = {}
    for name in systems:
        overrides = dict(store_overrides)
        if name == "our.physlog":
            # The paper's physlog baseline uses a 10 MB WAL buffer
            # (Section V-B discusses exactly this configuration).
            overrides["wal_buffer_bytes"] = 10 << 20
        store = build_store(name, **overrides)
        results[name] = run_ycsb(store, cfg, n_ops)
    return results


SYSTEMS_A = ("our", "our.ht", "our.physlog", "ext4.ordered", "ext4.journal",
             "xfs", "btrfs", "f2fs", "postgresql", "sqlite", "mysql")
SYSTEMS_BIG = ("our", "our.ht", "our.physlog", "ext4.ordered",
               "ext4.journal", "xfs", "btrfs", "f2fs", "sqlite",
               "postgresql", "mysql")


def test_fig6a_100kb(bench_once):
    cfg = ycsb_config(payload=100 * 1024, n_records=48)
    results = bench_once(lambda: run_matrix(SYSTEMS_A, cfg, 300))
    report_figure("Figure 6(a): YCSB 100 KB payload", results)
    tp = {k: v.throughput_ops_s for k, v in results.items()}
    # Client/server DBMSs at the bottom.
    assert max(tp["postgresql"], tp["mysql"]) < tp["ext4.journal"]
    # Ext4.journal is the slowest file system.
    fs = {k: tp[k] for k in ("ext4.ordered", "xfs", "btrfs", "f2fs")}
    assert all(tp["ext4.journal"] < v for v in fs.values())
    # Our and Our.ht beat every file system.
    assert min(tp["our"], tp["our.ht"]) > max(fs.values())
    # physlog pays for the WAL copies but stays close at 100 KB.
    assert 0.70 <= tp["our.physlog"] / tp["our"] <= 1.0


def test_fig6b_10mb(bench_once):
    cfg = ycsb_config(payload=10 * 1024 * 1024, n_records=10)
    results = bench_once(
        lambda: run_matrix(SYSTEMS_BIG, cfg, 60,
                           capacity_bytes=2 << 30, buffer_bytes=512 << 20))
    report_figure("Figure 6(b): YCSB 10 MB payload", results)
    tp = {k: v.throughput_ops_s for k, v in results.items()}
    # SQLite checkpoints itself below Ext4.journal.
    assert tp["sqlite"] < tp["ext4.journal"]
    # File systems are at least ~13% slower than Our (one extra memcpy).
    fs = {k: tp[k] for k in ("ext4.ordered", "xfs", "btrfs", "f2fs")}
    assert all(v < tp["our"] / 1.13 for v in fs.values())
    # physlog stalls on WAL segment flushes at BLOB-sized records.
    assert tp["our.physlog"] < 0.85 * tp["our"]


def test_fig6c_mixed_4kb_10mb(bench_once):
    cfg = ycsb_config(payload=(4096, 10 * 1024 * 1024), n_records=16)
    results = bench_once(
        lambda: run_matrix(SYSTEMS_BIG, cfg, 80,
                           capacity_bytes=2 << 30, buffer_bytes=512 << 20))
    report_figure("Figure 6(c): YCSB mixed 4 KB-10 MB payload", results)
    tp = {k: v.throughput_ops_s for k, v in results.items()}
    # Resizing files costs ftruncate + page-cache churn: physlog now
    # beats the file systems, as the paper observes.
    fs = {k: tp[k] for k in ("ext4.ordered", "xfs", "btrfs", "f2fs")}
    assert tp["our.physlog"] > max(fs.values())
    assert tp["our"] > max(fs.values())
    # Ext4.journal trails Ext4.ordered badly (paper: by 45 %).
    assert tp["ext4.journal"] < 0.75 * tp["ext4.ordered"]


SCALE_64MB = 64 * 1024 * 1024


def test_fig6d_1gb(bench_once):
    # Scaled run: 64 MB payloads stand in for 1 GB; the dirty-page
    # throttle scales with them (256 MB -> 16 MB).
    params = CostParams(dirty_throttle_bytes=16 << 20)
    cfg = ycsb_config(payload=SCALE_64MB, n_records=3)
    systems = ("our", "our.ht", "our.physlog", "ext4.ordered",
               "ext4.journal", "xfs", "btrfs", "f2fs", "mysql")
    results = bench_once(
        lambda: run_matrix(systems, cfg, 12, params=params,
                           capacity_bytes=2 << 30, buffer_bytes=512 << 20))
    report_figure("Figure 6(d): YCSB 1 GB payload (scaled to 64 MB)",
                  results)
    tp = {k: v.throughput_ops_s for k, v in results.items()}
    # Everything except Our (including its own ablations) is far behind.
    others = {k: v for k, v in tp.items() if k != "our"}
    assert tp["our"] >= 1.6 * max(others.values())


def test_fig6d_enterprise_dbms_errors(bench_once):
    """PostgreSQL and SQLite reject 1 GB BLOBs outright (paper: the
    benchmark fails with client/engine errors)."""

    def check():
        postgres = make_store("postgresql", capacity_bytes=8 << 30)
        with pytest.raises(BlobTooBigError):
            postgres.put(b"huge", b"\x00" * 10**9)
        sqlite = make_store("sqlite", capacity_bytes=8 << 30)
        with pytest.raises(BlobTooBigError):
            sqlite.put(b"huge", b"\x00" * (10**9 + 1))
        # MySQL's LONGBLOB accepts 4 GB, so 1 GB merely runs slowly.
        mysql = make_store("mysql", capacity_bytes=8 << 30)
        assert mysql.store.max_blob_bytes >= 10**9

    bench_once(check)
