"""Tests for WAL records, the ring writer, group commit, checkpoints."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cost import CostModel
from repro.storage.device import SimulatedNVMe
from repro.wal.records import (
    BlobChunkRecord,
    BlobDeltaRecord,
    CheckpointRecord,
    DeleteRecord,
    InsertRecord,
    TxnAbortRecord,
    TxnBeginRecord,
    TxnCommitRecord,
    UpdateRecord,
    decode_records,
)
from repro.wal.writer import WalFullError, WalWriter

ALL_RECORDS = [
    TxnBeginRecord(txn_id=7),
    TxnCommitRecord(txn_id=7),
    TxnAbortRecord(txn_id=9),
    InsertRecord(txn_id=7, table="image", key=b"cat.jpg", value=b"\x01\x02"),
    DeleteRecord(txn_id=7, table="image", key=b"dog.jpg", old_value=b"\x03"),
    UpdateRecord(txn_id=7, table="t", key=b"k", old_value=b"o", new_value=b"n"),
    BlobDeltaRecord(txn_id=7, pid=42, offset=100, data=b"patch"),
    BlobChunkRecord(txn_id=7, table="t", key=b"k", offset=4096, data=b"seg"),
    CheckpointRecord(checkpoint_id=3),
]


class TestRecordEncoding:
    @pytest.mark.parametrize("record", ALL_RECORDS,
                             ids=lambda r: type(r).__name__)
    def test_roundtrip(self, record):
        decoded = list(decode_records(record.encode(seq=1)))
        assert decoded == [record]

    def test_stream_of_records(self):
        raw = b"".join(r.encode(seq=i + 1) for i, r in enumerate(ALL_RECORDS))
        assert list(decode_records(raw)) == ALL_RECORDS

    def test_decode_stops_at_corruption(self):
        good = TxnBeginRecord(txn_id=1).encode(seq=1)
        bad = bytearray(TxnCommitRecord(txn_id=2).encode(seq=2))
        bad[-1] ^= 0xFF  # break the CRC
        tail = TxnBeginRecord(txn_id=3).encode(seq=3)
        decoded = list(decode_records(good + bytes(bad) + tail))
        assert decoded == [TxnBeginRecord(txn_id=1)]

    def test_decode_stops_at_stale_sequence(self):
        """A ring seam (seq going backwards) ends the valid log."""
        fresh = TxnBeginRecord(txn_id=10).encode(seq=50)
        stale = TxnBeginRecord(txn_id=1).encode(seq=7)  # earlier pass
        decoded = list(decode_records(fresh + stale))
        assert decoded == [TxnBeginRecord(txn_id=10)]

    def test_decode_stops_at_zero_padding(self):
        raw = TxnBeginRecord(txn_id=1).encode(seq=1) + b"\x00" * 64
        assert list(decode_records(raw)) == [TxnBeginRecord(txn_id=1)]

    def test_decode_stops_at_truncated_frame(self):
        raw = TxnBeginRecord(txn_id=1).encode(seq=1)
        assert list(decode_records(raw[:-3])) == []

    def test_empty_input(self):
        assert list(decode_records(b"")) == []

    @given(st.text(max_size=20), st.binary(max_size=100), st.binary(max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_insert_roundtrip_property(self, table, key, value):
        record = InsertRecord(txn_id=1, table=table, key=key, value=value)
        assert list(decode_records(record.encode(seq=1))) == [record]


def make_writer(region_pages=64, buffer_bytes=8192, checkpoint_cb=None):
    model = CostModel()
    device = SimulatedNVMe(model, capacity_pages=256)
    return WalWriter(device, model, region_pid=0, region_pages=region_pages,
                     buffer_bytes=buffer_bytes, checkpoint_cb=checkpoint_cb)


class TestWalWriter:
    def test_append_returns_monotonic_lsn(self):
        wal = make_writer()
        lsns = [wal.append(TxnBeginRecord(txn_id=i)) for i in range(5)]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 5

    def test_buffered_records_are_not_durable(self):
        wal = make_writer()
        wal.append(TxnBeginRecord(txn_id=1))
        assert wal.durable_records() == []

    def test_group_commit_flush_makes_records_durable(self):
        wal = make_writer()
        wal.append(TxnBeginRecord(txn_id=1))
        wal.append(TxnCommitRecord(txn_id=1))
        wal.group_commit_flush()
        assert wal.durable_records() == [TxnBeginRecord(txn_id=1),
                                         TxnCommitRecord(txn_id=1)]

    def test_group_commit_flush_charges_no_device_time(self):
        wal = make_writer()
        wal.append(TxnBeginRecord(txn_id=1))
        before = wal.model.clock.now_ns
        wal.group_commit_flush()
        # Background flush: bytes accounted, no foreground latency.
        assert wal.model.clock.now_ns == before
        assert wal.device.stats.bytes_written_by_category["wal"] > 0

    def test_sync_flush_charges_time(self):
        wal = make_writer()
        wal.append(TxnBeginRecord(txn_id=1))
        before = wal.model.clock.now_ns
        wal.sync_flush()
        assert wal.model.clock.now_ns > before
        assert wal.stats.synchronous_flushes == 1

    def test_multiple_flushes_preserve_record_stream(self):
        """Records spanning many partial-page flushes all decode."""
        wal = make_writer()
        expected = []
        for i in range(40):
            record = InsertRecord(txn_id=i, table="t", key=b"k%d" % i,
                                  value=b"v" * 100)
            wal.append(record)
            expected.append(record)
            if i % 3 == 0:
                wal.group_commit_flush()
        wal.sync_flush()
        assert wal.durable_records() == expected

    def test_oversized_append_flushes_synchronously(self):
        """A record bigger than the buffer segments through it, waiting."""
        wal = make_writer(region_pages=64, buffer_bytes=8192)
        big = BlobChunkRecord(txn_id=1, table="t", key=b"k",
                              offset=0, data=b"x" * 40000)
        wal.append(big)
        assert wal.stats.synchronous_flushes >= 4

    def test_record_larger_than_region_rejected(self):
        wal = make_writer(region_pages=4)
        with pytest.raises(WalFullError):
            wal.append(BlobChunkRecord(txn_id=1, table="t", key=b"k",
                                       offset=0, data=b"x" * 50000))

    def test_checkpoint_triggered_when_region_full(self):
        checkpoints = []
        wal = make_writer(region_pages=8, buffer_bytes=4096,
                          checkpoint_cb=lambda: checkpoints.append(1))
        for i in range(20):
            wal.append(InsertRecord(txn_id=i, table="t", key=b"k",
                                    value=b"v" * 3000))
            wal.group_commit_flush()
        assert checkpoints
        assert wal.stats.checkpoints == len(checkpoints)

    def test_records_after_checkpoint_decode_from_region_start(self):
        wal = make_writer(region_pages=8, buffer_bytes=4096)
        for i in range(20):
            wal.append(InsertRecord(txn_id=i, table="t", key=b"k",
                                    value=b"v" * 3000))
            wal.group_commit_flush()
        durable = wal.durable_records()
        assert durable  # only post-checkpoint tail remains
        assert all(isinstance(r, InsertRecord) for r in durable)

    def test_used_fraction_grows(self):
        wal = make_writer()
        assert wal.used_fraction() == 0.0
        wal.append(TxnBeginRecord(txn_id=1))
        assert wal.used_fraction() > 0.0

    def test_tiny_region_rejected(self):
        model = CostModel()
        device = SimulatedNVMe(model, capacity_pages=16)
        with pytest.raises(ValueError):
            WalWriter(device, model, region_pid=0, region_pages=1)

    def test_tiny_buffer_rejected(self):
        model = CostModel()
        device = SimulatedNVMe(model, capacity_pages=16)
        with pytest.raises(ValueError):
            WalWriter(device, model, region_pid=0, region_pages=4,
                      buffer_bytes=100)
