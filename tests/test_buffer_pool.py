"""Tests for buffer frames, pools, eviction, and prevent_evict."""

import pytest

from repro.buffer.frames import BlobView, ExtentFrame
from repro.buffer.hashtable_pool import HashTablePool
from repro.buffer.vmcache import VmcachePool
from repro.sim.cost import CostModel
from repro.storage.device import SimulatedNVMe

PAGE = 4096


def make_pool(kind, capacity_pages=64, device_pages=4096, seed=0):
    model = CostModel()
    device = SimulatedNVMe(model, capacity_pages=device_pages)
    cls = VmcachePool if kind == "vmcache" else HashTablePool
    return cls(device, model, capacity_pages, eviction_seed=seed)


class TestExtentFrame:
    def test_fresh_frame_is_zeroed_and_clean(self):
        frame = ExtentFrame(head_pid=10, npages=2, page_size=PAGE)
        assert len(frame.data) == 2 * PAGE
        assert not frame.is_dirty

    def test_write_at_dirties_touched_pages_only(self):
        frame = ExtentFrame(head_pid=0, npages=4, page_size=PAGE)
        frame.write_at(PAGE, b"x" * 10)  # within page 1
        assert (frame.dirty_from, frame.dirty_to) == (1, 2)
        assert frame.dirty_pages == 1

    def test_dirty_range_extends(self):
        frame = ExtentFrame(head_pid=0, npages=4, page_size=PAGE)
        frame.write_at(0, b"a")
        frame.write_at(3 * PAGE, b"b")
        assert (frame.dirty_from, frame.dirty_to) == (0, 4)

    def test_dirty_slice_contains_written_bytes(self):
        frame = ExtentFrame(head_pid=0, npages=2, page_size=PAGE)
        frame.write_at(PAGE, b"hello")
        assert frame.dirty_slice()[:5] == b"hello"

    def test_write_beyond_capacity_rejected(self):
        frame = ExtentFrame(head_pid=0, npages=1, page_size=PAGE)
        with pytest.raises(ValueError):
            frame.write_at(PAGE - 2, b"xyz")

    def test_mark_dirty_validates_range(self):
        frame = ExtentFrame(head_pid=0, npages=2, page_size=PAGE)
        with pytest.raises(ValueError):
            frame.mark_dirty(1, 3)

    def test_mismatched_data_rejected(self):
        with pytest.raises(ValueError):
            ExtentFrame(head_pid=0, npages=2, page_size=PAGE,
                        data=bytearray(PAGE))


class TestFetchAndResidency:
    @pytest.mark.parametrize("kind", ["vmcache", "hashtable"])
    def test_fetch_reads_from_device(self, kind):
        pool = make_pool(kind)
        pool.device.write(7, b"\x42" * PAGE)
        frames = pool.fetch_extents([(7, 1)])
        assert bytes(frames[0].data) == b"\x42" * PAGE
        assert pool.stats.misses == 1
        pool.unpin(frames)

    @pytest.mark.parametrize("kind", ["vmcache", "hashtable"])
    def test_second_fetch_hits(self, kind):
        pool = make_pool(kind)
        pool.device.write(7, b"\x42" * PAGE)
        pool.unpin(pool.fetch_extents([(7, 1)]))
        pool.unpin(pool.fetch_extents([(7, 1)]))
        assert pool.stats.hits == 1
        assert pool.stats.hit_ratio == 0.5

    def test_batch_fetch_uses_single_submission(self):
        pool = make_pool("vmcache")
        for pid in (1, 10, 20):
            pool.device.write(pid, b"\x01" * PAGE)
        before = pool.device.stats.read_requests
        pool.unpin(pool.fetch_extents([(1, 1), (10, 1), (20, 1)]))
        # Three commands in the batch, but issued together.
        assert pool.device.stats.read_requests - before == 3

    def test_allocate_frame_is_protected_by_default(self):
        pool = make_pool("vmcache")
        frame = pool.allocate_frame(5, 2)
        assert frame.prevent_evict
        assert pool.used_pages == 2

    def test_allocate_duplicate_rejected(self):
        pool = make_pool("vmcache")
        pool.allocate_frame(5, 1)
        with pytest.raises(ValueError):
            pool.allocate_frame(5, 1)

    def test_oversized_request_rejected(self):
        pool = make_pool("vmcache", capacity_pages=4)
        with pytest.raises(ValueError):
            pool.allocate_frame(0, 8)


class TestWriteBack:
    def test_write_back_flushes_only_dirty_pages(self):
        pool = make_pool("vmcache")
        frame = pool.allocate_frame(10, 4)
        frame.write_at(PAGE, b"dirty!")
        written = pool.write_back(frame)
        assert written == PAGE  # one dirty page, not four
        assert pool.device.peek(11)[:6] == b"dirty!"
        assert not frame.is_dirty

    def test_write_back_clean_frame_is_noop(self):
        pool = make_pool("vmcache")
        frame = pool.allocate_frame(10, 1)
        assert pool.write_back(frame) == 0

    def test_flush_batch(self):
        pool = make_pool("vmcache")
        frames = [pool.allocate_frame(i * 8, 2) for i in range(3)]
        for f in frames:
            f.write_at(0, b"z" * PAGE)
        total = pool.flush_batch(frames)
        assert total == 3 * PAGE
        assert all(not f.is_dirty for f in frames)
        assert pool.device.stats.write_requests == 3


class TestEviction:
    def test_eviction_frees_space(self):
        pool = make_pool("vmcache", capacity_pages=8)
        for i in range(4):
            frame = pool.allocate_frame(i * 2, 2, prevent_evict=False)
            frame.clean()
        pool.allocate_frame(100, 2, prevent_evict=False)  # forces eviction
        assert pool.used_pages <= 8
        assert pool.stats.evictions >= 1

    def test_prevent_evict_is_honoured(self):
        pool = make_pool("vmcache", capacity_pages=8)
        protected = [pool.allocate_frame(i * 2, 2) for i in range(3)]
        victim = pool.allocate_frame(50, 2, prevent_evict=False)
        pool.allocate_frame(100, 2, prevent_evict=False)
        assert all(pool.is_resident(f.head_pid) for f in protected)
        assert not pool.is_resident(victim.head_pid)

    def test_pinned_frames_not_evicted(self):
        pool = make_pool("vmcache", capacity_pages=8, device_pages=4096)
        pool.device.write(30, b"\x07" * (2 * PAGE))
        pinned = pool.fetch_extents([(30, 2)], pin=True)
        for i in range(3):
            pool.allocate_frame(i * 2, 2, prevent_evict=False)
        pool.allocate_frame(100, 2, prevent_evict=False)
        assert pool.is_resident(30)
        pool.unpin(pinned)

    def test_eviction_writes_back_dirty_victims(self):
        pool = make_pool("vmcache", capacity_pages=4)
        frame = pool.allocate_frame(10, 2, prevent_evict=False)
        frame.write_at(0, b"persist me")
        pool.allocate_frame(20, 2, prevent_evict=False)
        pool.allocate_frame(30, 2, prevent_evict=False)  # evicts pid 10 or 20
        assert pool.stats.evictions >= 1
        # If pid 10 was the victim its dirty content must be on the device.
        if not pool.is_resident(10):
            assert pool.device.peek(10)[:10] == b"persist me"

    def test_everything_protected_raises(self):
        pool = make_pool("vmcache", capacity_pages=4)
        pool.allocate_frame(0, 2)  # protected
        pool.allocate_frame(10, 2)
        with pytest.raises(RuntimeError):
            pool.allocate_frame(20, 2)

    def test_fair_eviction_prefers_large_extents(self):
        """Size-weighted acceptance: large extents evict ~N× more often."""
        evicted_large = 0
        trials = 40
        for seed in range(trials):
            pool = make_pool("vmcache", capacity_pages=20, seed=seed)
            pool.allocate_frame(0, 16, prevent_evict=False)   # large
            for i in range(4):
                pool.allocate_frame(100 + i, 1, prevent_evict=False)
            pool.allocate_frame(200, 8, prevent_evict=False)  # forces eviction
            if not pool.is_resident(0):
                evicted_large += 1
        # The 16-page extent is 16x more likely than a 1-page extent.
        assert evicted_large > trials * 0.5

    def test_drop_all_volatile(self):
        pool = make_pool("vmcache")
        pool.allocate_frame(0, 4)
        pool.drop_all_volatile()
        assert pool.used_pages == 0
        assert not pool.is_resident(0)

    def test_drop_single(self):
        pool = make_pool("vmcache")
        pool.allocate_frame(0, 4)
        pool.drop(0)
        assert pool.used_pages == 0


class TestReadBlobViews:
    def test_vmcache_multi_extent_read_is_zero_copy(self):
        pool = make_pool("vmcache")
        pool.alias_threshold_bytes = 0  # always alias for this test
        pool.device.write(0, b"A" * PAGE)
        pool.device.write(10, b"B" * (2 * PAGE))
        with pool.read_blob([(0, 1), (10, 2)], size=PAGE + 100) as view:
            data = view.contiguous()
            assert data == b"A" * PAGE + b"B" * 100
        assert pool.aliasing.stats.local_acquires == 1
        assert pool.aliasing.stats.tlb_shootdowns == 1

    def test_vmcache_small_multi_extent_read_copies_instead(self):
        """Below the threshold the pool copies: TLB flush > memcpy for
        small BLOBs (the paper's Fig. 10 crossover)."""
        pool = make_pool("vmcache")
        pool.device.write(0, b"A" * PAGE)
        pool.device.write(10, b"B" * PAGE)
        with pool.read_blob([(0, 1), (10, 1)], size=2 * PAGE) as view:
            assert view.contiguous() == b"A" * PAGE + b"B" * PAGE
        assert pool.aliasing.stats.local_acquires == 0
        assert pool.aliasing.stats.tlb_shootdowns == 0

    def test_vmcache_large_blob_uses_aliasing(self):
        pool = make_pool("vmcache", capacity_pages=128)
        npages = 40  # 160 KB > the 64 KB threshold
        pool.device.write(0, b"C" * (npages * PAGE))
        pool.device.write(100, b"D" * PAGE)
        size = (npages + 1) * PAGE
        with pool.read_blob([(0, npages), (100, 1)], size=size) as view:
            assert len(view.contiguous()) == size
        assert pool.aliasing.stats.local_acquires == 1

    def test_vmcache_single_extent_needs_no_aliasing(self):
        pool = make_pool("vmcache")
        pool.device.write(0, b"A" * PAGE)
        with pool.read_blob([(0, 1)], size=50) as view:
            assert view.contiguous() == b"A" * 50
        assert pool.aliasing.stats.local_acquires == 0

    def test_hashtable_multi_extent_read_copies(self):
        pool = make_pool("hashtable")
        pool.device.write(0, b"A" * PAGE)
        pool.device.write(10, b"B" * PAGE)
        before = pool.model.memcpy_bytes
        with pool.read_blob([(0, 1), (10, 1)], size=2 * PAGE) as view:
            assert view.contiguous() == b"A" * PAGE + b"B" * PAGE
        assert pool.model.memcpy_bytes - before == 2 * PAGE

    def test_view_release_unpins(self):
        pool = make_pool("vmcache", capacity_pages=8)
        pool.device.write(0, b"A" * PAGE)
        view = pool.read_blob([(0, 1)], size=PAGE)
        view.release()
        view.release()  # idempotent
        # Frame can now be evicted to make room.
        for i in range(4):
            pool.allocate_frame(100 + i * 2, 2, prevent_evict=False)
        assert pool.used_pages <= 8

    def test_view_after_release_raises(self):
        pool = make_pool("vmcache")
        pool.device.write(0, b"A" * PAGE)
        view = pool.read_blob([(0, 1)], size=PAGE)
        view.release()
        with pytest.raises(RuntimeError):
            view.contiguous()

    def test_copy_to_client_charges_one_memcpy(self):
        pool = make_pool("vmcache")
        pool.device.write(0, b"A" * PAGE)
        with pool.read_blob([(0, 1)], size=PAGE) as view:
            before = pool.model.memcpy_bytes
            view.copy_to_client(pool.model)
            assert pool.model.memcpy_bytes - before == PAGE


class TestTranslationCosts:
    def test_vmcache_translation_cheaper_for_large_extents(self):
        """N-page extent: N hash probes vs one vmcache translation."""
        vm = make_pool("vmcache")
        ht = make_pool("hashtable")
        for pool in (vm, ht):
            pool.device.write(0, b"x" * (32 * PAGE))
            pool.unpin(pool.fetch_extents([(0, 32)]))  # load
            t0 = pool.model.clock.now_ns
            pool.unpin(pool.fetch_extents([(0, 32)]))  # hit: translation only
            pool.translation_ns = pool.model.clock.now_ns - t0
        assert vm.translation_ns < ht.translation_ns / 10
