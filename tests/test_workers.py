"""Tests for the deterministic multi-worker simulation."""

import pytest

from repro.sim.cost import CostModel, CostParams
from repro.sim.workers import WorkerSim


def cpu_op(model: CostModel, worker: int) -> None:
    model.cpu(1000.0)


def memory_op(model: CostModel, worker: int) -> None:
    model.cpu(100.0)
    model.memcpy(1 << 20)  # 1 MiB per op


def commit_op(model: CostModel, worker: int) -> None:
    """An op ending in a foreground WAL flush (as WalWriter reports it)."""
    model.cpu(1000.0)
    before = model.clock.now_ns
    model.ssd_write(4096, requests=1)
    model.wal_flush_time_ns += model.clock.now_ns - before


class TestScaling:
    def test_cpu_bound_scales_linearly(self):
        """No shared resource: N workers give N times the throughput."""
        one = WorkerSim(1).run(cpu_op, 50)
        eight = WorkerSim(8).run(cpu_op, 50)
        assert eight.throughput_ops_s == pytest.approx(
            8 * one.throughput_ops_s, rel=0.01)
        assert eight.contention_factor == 1.0

    def test_memory_bound_hits_bandwidth_ceiling(self):
        """Aggregate copy demand cannot exceed DRAM bandwidth."""
        params = CostParams(memory_bandwidth_bytes_per_s=4e9,
                            l3_bytes=1 << 30)  # no L3 spill in this test
        sixteen = WorkerSim(16, params).run(memory_op, 20)
        # 16 workers × 1 MiB/op: the cap is ~4 GB/s / 1 MiB = ~3815 op/s.
        assert sixteen.throughput_ops_s <= 4e9 / (1 << 20) * 1.02
        assert sixteen.contention_factor > 1.0

    def test_l3_spill_slows_memory_ops(self):
        params = CostParams(l3_bytes=4 << 20, l3_spill_factor=2.0)
        fits = WorkerSim(1, params).run(memory_op, 20,
                                        working_set_bytes=1 << 20)
        spills = WorkerSim(8, params).run(memory_op, 20,
                                          working_set_bytes=1 << 20)
        assert not fits.l3_spilled
        assert spills.l3_spilled
        assert spills.per_op_ns > fits.per_op_ns

    def test_result_bookkeeping(self):
        result = WorkerSim(4).run(cpu_op, 25)
        assert result.total_ops == 100
        assert result.ops_per_worker == 25
        assert result.n_workers == 4
        assert result.counters.cycles > 0

    def test_group_commit_amortizes_the_wal_flush(self):
        """One window flush serves every worker whose commit rode it."""
        plain = WorkerSim(4).run(commit_op, 20)
        grouped = WorkerSim(4).run(commit_op, 20, group_commit=True)
        assert plain.wal_flush_ns_per_op == 0.0
        assert grouped.per_op_ns < plain.per_op_ns
        # With one worker the amortization is a no-op: the full flush.
        solo = WorkerSim(1).run(commit_op, 20, group_commit=True)
        assert grouped.wal_flush_ns_per_op == pytest.approx(
            solo.wal_flush_ns_per_op / 4)

    def test_setup_callback_excluded_from_op_stats(self):
        def setup(model: CostModel) -> None:
            model.cpu(1_000_000.0)

        with_setup = WorkerSim(1).run(cpu_op, 10, setup=setup)
        plain = WorkerSim(1).run(cpu_op, 10)
        assert with_setup.per_op_ns == pytest.approx(plain.per_op_ns,
                                                     rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerSim(0)
        with pytest.raises(ValueError):
            WorkerSim(1).run(cpu_op, 0)

    def test_two_copy_design_saturates_before_one_copy(self):
        """The Fig. 10 mechanism in isolation."""
        params = CostParams(memory_bandwidth_bytes_per_s=8e9,
                            l3_bytes=1 << 30)

        def one_copy(model, worker):
            model.memcpy(1 << 20)

        def two_copies(model, worker):
            model.memcpy(1 << 20)
            model.memcpy(1 << 20)

        single = WorkerSim(16, params).run(one_copy, 10)
        double = WorkerSim(16, params).run(two_copies, 10)
        assert single.throughput_ops_s > 1.8 * double.throughput_ops_s
